//! `dedukt` — the command-line face of the reproduction.
//!
//! Subcommands:
//!
//! * `simulate <dataset> [--scale S] [--out FILE]` — generate a synthetic
//!   Table-I dataset as FASTQ.
//! * `count <reads.fastq> [--mode cpu|gpu|supermer] [--nodes N] [--k K]
//!   [--m M] [--canonical] [--round-limit BYTES] [--overlap-rounds]
//!   [--out dump.tsv] [--spectrum spec.tsv] [--trace trace.json]
//!   [--metrics m.json [--metrics-format json|prom]]`
//!   — run a distributed counter on a FASTQ file and export results,
//!   optionally with a Chrome trace and a run-wide metrics snapshot.
//!   Any k up to 63 works in every mode: k ≤ 31 ships 8-byte packed
//!   keys on the wire, k in 32..=63 ships 16-byte keys.
//!   `--round-limit` bounds per-rank exchange memory (§III-A);
//!   `--overlap-rounds` additionally overlaps each round's count kernel
//!   with the next round's wire time.
//!   `--exchange-algo direct|hierarchical` picks the exchange routing
//!   (DESIGN.md §10): `direct` is the paper's flat `MPI_Alltoallv`;
//!   `hierarchical` gathers each node's traffic to a leader rank and
//!   ships one coalesced frame per node pair over the injection tier.
//!   `--wire-compress` ships supermer buckets through the KMC 2-style
//!   wire codec (varint/delta lengths + 2-bit base packing); both knobs
//!   leave the counted spectra bit-identical.
//!   `--fault-seed N` / `--fault-spec k=v,...` inject deterministic
//!   network faults (DESIGN.md §7): failed sends, corrupt buckets and
//!   stragglers, recovered by the driver's bounded retry loop. The
//!   counted spectra stay bit-identical to the fault-free run.
//!   `--mem-seed N` / `--mem-spec k=v,...` inject deterministic memory
//!   pressure (DESIGN.md §8): distinct-count underestimates and denied
//!   grow allocations, recovered by on-device regrow or a bounded host
//!   spill — again bit-identical counts. `--table-safety F` scales the
//!   count-table sizing estimate; `--device-hbm BYTES` shrinks the
//!   simulated V100's memory budget. A rank that exhausts both the
//!   device and its spill budget fails the run cleanly with a
//!   device-out-of-memory error (exit 2), never a panic.
//!   `--rank-seed N` / `--rank-spec rate=R,max-dead=D,kill=ROUND:RANK`
//!   kill whole ranks at exchange-round boundaries (DESIGN.md §11): the
//!   survivors inherit the dead rank's minimizer ranges and replay its
//!   slice of the exchanged rounds, so the counted spectrum stays
//!   bit-identical; exceeding `max-dead` fails the run cleanly (exit 2).
//!   `--checkpoint-rounds N` snapshots each rank's table every N rounds
//!   to bound the replay, and `--rescale ROUND:WORLD,...` grows or
//!   shrinks the active rank set mid-run through the same re-partition
//!   path.
//!   `--two-pass DIR` counts out-of-core (DESIGN.md §12): pass 1 spills
//!   minimizer-keyed, checksum-framed bins to a simulated NVMe store in
//!   DIR with a per-run manifest; pass 2 streams the bins back one at a
//!   time into tables sized to fit `--device-hbm`. `--io-seed N` /
//!   `--io-spec torn=T,rot=R,readerr=E,retries=N,rederive=M,kill=K`
//!   inject deterministic storage faults; recovery retries, then
//!   quarantines the damaged bin and re-derives it from the input, and
//!   `--resume` finishes a killed run by re-counting only unfinished
//!   bins. Spectra stay bit-identical to the in-memory pipelines.
//!   `--min-count N` drops k-mers seen fewer than N times in pass 2
//!   (Gerbil-style pre-filter).
//!   `--journal run.jsonl` records the structured run journal (one JSON
//!   event per superstep span, collective, retry, recovery event, phase
//!   total and wall-clock stage) for offline analysis.
//! * `analyze <run.jsonl>` — reconstruct a journaled run offline: phase
//!   breakdown reconciled against the journal's own span accounting, the
//!   critical path through the superstep DAG, per-round straggler and
//!   imbalance attribution, hidden-vs-exposed exchange time, and
//!   recovery costs. `analyze --diff a.jsonl b.jsonl` prints a
//!   regression triage report between two runs.
//! * `info` — print the simulated hardware presets.
//!
//! Examples:
//!
//! ```text
//! dedukt simulate ecoli --scale tiny --out ecoli.fastq
//! dedukt count ecoli.fastq --mode supermer --nodes 4 --out counts.tsv
//! dedukt count ecoli.fastq --overlap-rounds --journal run.jsonl
//! dedukt analyze run.jsonl
//! ```

use dedukt::core::{dump, pipeline, Mode, PackedKmer, RunConfig};
use dedukt::dna::fastq::parse_fastq;
use dedukt::dna::{Dataset, DatasetId, ScalePreset};
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("count") => cmd_count(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("info") => cmd_info(),
        Some("--help" | "-h" | "help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage:\n  dedukt simulate <ecoli|paeruginosa|vvulnificus|abaumannii|celegans|hsapiens>\n\
         \x20        [--scale tiny|bench|xF] [--seed N] [--out FILE]\n\
         \x20 dedukt count <reads.fastq> [--mode cpu|gpu|supermer] [--nodes N] [--k K] [--m M]\n\
         \x20        [--canonical] [--gpu-direct] [--min-qual Q] [--round-limit BYTES]\n\
         \x20        [--overlap-rounds] [--exchange-algo direct|hierarchical]\n\
         \x20        [--wire-compress] [--out dump.tsv]\n\
         \x20        [--spectrum spec.tsv] [--trace trace.json]\n\
         \x20        [--metrics metrics.json] [--metrics-format json|prom]\n\
         \x20        [--journal run.jsonl]\n\
         \x20        [--fault-seed N] [--fault-spec fail=F,corrupt=C,straggle=S,slow=X,retries=R,backoff=B]\n\
         \x20        [--mem-seed N] [--mem-spec under=U,shrink=S,afail=A,spill=N]\n\
         \x20        [--rank-seed N] [--rank-spec rate=R,max-dead=D,kill=ROUND:RANK]\n\
         \x20        [--checkpoint-rounds N] [--rescale ROUND:WORLD,...]\n\
         \x20        [--table-safety F] [--device-hbm BYTES]\n\
         \x20        [--two-pass DIR] [--resume] [--min-count N]\n\
         \x20        [--io-seed N] [--io-spec torn=T,rot=R,readerr=E,retries=N,rederive=M,kill=K]\n\
         \x20 dedukt analyze <run.jsonl> | dedukt analyze --diff <a.jsonl> <b.jsonl>\n\
         \x20 dedukt compare <a.tsv> <b.tsv> [--k K]\n\
         \x20 dedukt info"
    );
}

/// `dedukt analyze` — offline critical-path and regression analysis of
/// run journals recorded with `count --journal`.
fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    let mut diff: Option<(String, String)> = None;
    let mut single: Option<String> = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--diff" => {
                let a = take_value(&mut it, "--diff")?.to_string();
                let b = it.next().cloned().ok_or("--diff needs two journal paths")?;
                diff = Some((a, b));
            }
            other if !other.starts_with('-') && single.is_none() => {
                single = Some(other.to_string())
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let load = |p: &str| -> Result<dedukt::sim::RunAnalysis, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
        let events = dedukt::sim::read_journal(&text).map_err(|e| format!("{p}: {e}"))?;
        let a = dedukt::sim::analyze(&events).map_err(|e| format!("{p}: {e}"))?;
        a.check_invariants()
            .map_err(|e| format!("{p}: journal accounting is inconsistent: {e}"))?;
        Ok(a)
    };
    match (single, diff) {
        (Some(p), None) => {
            print!("{}", load(&p)?.render());
            Ok(())
        }
        (None, Some((pa, pb))) => {
            print!("{}", dedukt::sim::render_diff(&load(&pa)?, &load(&pb)?));
            Ok(())
        }
        (Some(_), Some(_)) => Err("pass either one journal or --diff A B, not both".into()),
        (None, None) => Err("analyze needs a journal path (or --diff A B)".into()),
    }
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    let path_a = it.next().ok_or("compare needs two dump paths")?;
    let path_b = it.next().ok_or("compare needs two dump paths")?;
    let mut k = 17usize;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--k" => k = take_value(&mut it, "--k")?.parse().map_err(|_| "bad k")?,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let enc = dedukt::dna::Encoding::PaperRandom;
    let load = |p: &str| -> Result<std::collections::HashMap<u64, u32>, String> {
        let f = File::open(p).map_err(|e| format!("{p}: {e}"))?;
        Ok(dump::read_dump(BufReader::new(f), enc)
            .map_err(|e| format!("{p}: {e}"))?
            .into_iter()
            .collect())
    };
    let a = load(path_a)?;
    let b = load(path_b)?;
    let mut only_a = 0u64;
    let mut only_b = 0u64;
    let mut differing = 0u64;
    let mut shown = 0;
    for (kmer, ca) in &a {
        match b.get(kmer) {
            None => only_a += 1,
            Some(cb) if cb != ca => {
                differing += 1;
                if shown < 10 {
                    println!(
                        "  {} : {ca} vs {cb}",
                        dedukt::dna::kmer::Kmer::from_word(*kmer, k).to_ascii(enc)
                    );
                    shown += 1;
                }
            }
            _ => {}
        }
    }
    for kmer in b.keys() {
        if !a.contains_key(kmer) {
            only_b += 1;
        }
    }
    println!(
        "{} k-mers in {path_a}, {} in {path_b}: {} only in A, {} only in B, {} counts differ",
        a.len(),
        b.len(),
        only_a,
        only_b,
        differing
    );
    if only_a + only_b + differing == 0 {
        println!("dumps are identical");
        Ok(())
    } else {
        Err("dumps differ".into())
    }
}

fn dataset_id(name: &str) -> Result<DatasetId, String> {
    Ok(match name {
        "ecoli" => DatasetId::EColi30x,
        "paeruginosa" => DatasetId::PAeruginosa30x,
        "vvulnificus" => DatasetId::VVulnificus30x,
        "abaumannii" => DatasetId::ABaumannii30x,
        "celegans" => DatasetId::CElegans40x,
        "hsapiens" => DatasetId::HSapiens54x,
        other => return Err(format!("unknown dataset {other:?}")),
    })
}

fn take_value<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a str, String> {
    it.next()
        .map(String::as_str)
        .ok_or(format!("{flag} needs a value"))
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    let name = it.next().ok_or("simulate needs a dataset name")?;
    let mut ds = Dataset::new(dataset_id(name)?, ScalePreset::Tiny);
    let mut out_path: Option<String> = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = take_value(&mut it, "--scale")?;
                ds = Dataset::new(ds.id, parse_scale(v)?);
            }
            "--seed" => {
                ds.seed = take_value(&mut it, "--seed")?
                    .parse()
                    .map_err(|_| "bad seed")?
            }
            "--out" => out_path = Some(take_value(&mut it, "--out")?.to_string()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let reads = ds.generate();
    eprintln!(
        "{}: {} reads, {} bases",
        ds.id.short_name(),
        reads.len(),
        reads.total_bases()
    );
    match out_path {
        Some(p) => {
            let mut w = BufWriter::new(File::create(&p).map_err(|e| e.to_string())?);
            dedukt::dna::fastq::write_fastq(&mut w, &reads).map_err(|e| e.to_string())?;
            w.flush().map_err(|e| e.to_string())?;
            eprintln!("wrote {p}");
        }
        None => {
            let stdout = std::io::stdout();
            let mut w = BufWriter::new(stdout.lock());
            dedukt::dna::fastq::write_fastq(&mut w, &reads).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn parse_scale(v: &str) -> Result<ScalePreset, String> {
    Ok(match v {
        "tiny" => ScalePreset::Tiny,
        "bench" => ScalePreset::Bench,
        s if s.starts_with('x') => {
            ScalePreset::Custom(s[1..].parse().map_err(|_| format!("bad scale {s:?}"))?)
        }
        other => return Err(format!("unknown scale {other:?}")),
    })
}

/// Export format for `--metrics`.
#[derive(Clone, Copy)]
enum MetricsFormat {
    Json,
    Prometheus,
}

/// The human-readable phase/imbalance digest printed after every run.
fn print_run_summary<K: PackedKmer>(report: &pipeline::RunReport<K>) {
    eprintln!(
        "simulated phases: parse {} | exchange {} | count {} | total {} | makespan {}",
        report.phases.parse,
        report.phases.exchange,
        report.phases.count,
        report.total_time(),
        report.makespan
    );
    let stats = report.load.stats();
    eprintln!(
        "load: mean {:.0} k-mers/rank, max {} — imbalance {:.2}",
        stats.mean,
        stats.max,
        report.load.imbalance()
    );
    if let Some(rate) = report.insertion_rate() {
        eprintln!("insertion rate: {rate} (compute only)");
    }
    eprintln!(
        "wall clock: {:.3} s host total (parse {:.3} s, rounds {:.3} s, finish {:.3} s)",
        report.wall.total, report.wall.parse, report.wall.rounds, report.wall.finish
    );
}

/// Fails fast on an unwritable export destination: the file is created
/// (and truncated) up front, so a bad path aborts with a clear message
/// *before* any counting work, instead of after the whole run.
fn check_writable(flag: &str, path: &Option<String>) -> Result<(), String> {
    if let Some(p) = path {
        File::create(p).map_err(|e| format!("{flag} {p}: {e}"))?;
    }
    Ok(())
}

fn cmd_count(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    let path = it.next().ok_or("count needs a FASTQ path")?;
    let mut rc = RunConfig::new(Mode::GpuSupermer, 1);
    let mut out_path: Option<String> = None;
    let mut spectrum_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut journal_path: Option<String> = None;
    let mut metrics_format = MetricsFormat::Json;
    let mut min_qual: Option<u8> = None;
    let mut fault_seed: Option<u64> = None;
    let mut fault_spec: Option<String> = None;
    let mut mem_seed: Option<u64> = None;
    let mut mem_spec: Option<String> = None;
    let mut rank_seed: Option<u64> = None;
    let mut rank_spec: Option<String> = None;
    let mut io_seed: Option<u64> = None;
    let mut io_spec: Option<String> = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--mode" => {
                rc.mode = match take_value(&mut it, "--mode")? {
                    "cpu" => Mode::CpuBaseline,
                    "gpu" => Mode::GpuKmer,
                    "supermer" => Mode::GpuSupermer,
                    other => return Err(format!("unknown mode {other:?}")),
                }
            }
            "--nodes" => {
                rc.nodes = take_value(&mut it, "--nodes")?
                    .parse()
                    .map_err(|_| "bad node count")?;
                if rc.nodes == 0 {
                    return Err("--nodes must be positive".into());
                }
            }
            "--k" => rc.counting.k = take_value(&mut it, "--k")?.parse().map_err(|_| "bad k")?,
            "--m" => rc.counting.m = take_value(&mut it, "--m")?.parse().map_err(|_| "bad m")?,
            "--canonical" => rc.counting.canonical = true,
            "--gpu-direct" => rc.gpu_direct = true,
            "--round-limit" => {
                rc.round_limit_bytes = Some(
                    take_value(&mut it, "--round-limit")?
                        .parse()
                        .map_err(|_| "bad round limit")?,
                )
            }
            "--overlap-rounds" => rc.overlap_rounds = true,
            "--exchange-algo" => {
                rc.exchange_algo =
                    dedukt::net::ExchangeRoute::parse(take_value(&mut it, "--exchange-algo")?)?
                        .algo()
            }
            "--wire-compress" => rc.wire_compress = true,
            "--min-qual" => {
                min_qual = Some(
                    take_value(&mut it, "--min-qual")?
                        .parse()
                        .map_err(|_| "bad quality threshold")?,
                )
            }
            "--fault-seed" => {
                fault_seed = Some(
                    take_value(&mut it, "--fault-seed")?
                        .parse()
                        .map_err(|_| "bad fault seed")?,
                )
            }
            "--fault-spec" => fault_spec = Some(take_value(&mut it, "--fault-spec")?.to_string()),
            "--mem-seed" => {
                mem_seed = Some(
                    take_value(&mut it, "--mem-seed")?
                        .parse()
                        .map_err(|_| "bad mem seed")?,
                )
            }
            "--mem-spec" => mem_spec = Some(take_value(&mut it, "--mem-spec")?.to_string()),
            "--rank-seed" => {
                rank_seed = Some(
                    take_value(&mut it, "--rank-seed")?
                        .parse()
                        .map_err(|_| "bad rank seed")?,
                )
            }
            "--rank-spec" => rank_spec = Some(take_value(&mut it, "--rank-spec")?.to_string()),
            "--two-pass" => {
                rc.two_pass_dir = Some(std::path::PathBuf::from(take_value(&mut it, "--two-pass")?))
            }
            "--resume" => rc.two_pass_resume = true,
            "--io-seed" => {
                io_seed = Some(
                    take_value(&mut it, "--io-seed")?
                        .parse()
                        .map_err(|_| "--io-seed: bad io seed")?,
                )
            }
            "--io-spec" => io_spec = Some(take_value(&mut it, "--io-spec")?.to_string()),
            "--min-count" => {
                rc.min_count = take_value(&mut it, "--min-count")?
                    .parse()
                    .map_err(|_| "--min-count: bad count threshold")?
            }
            "--checkpoint-rounds" => {
                rc.checkpoint_rounds = Some(
                    take_value(&mut it, "--checkpoint-rounds")?
                        .parse()
                        .map_err(|_| "bad checkpoint cadence")?,
                )
            }
            "--rescale" => {
                rc.rescale = dedukt::core::config::parse_rescale(take_value(&mut it, "--rescale")?)?
            }
            "--table-safety" => {
                rc.table_safety = take_value(&mut it, "--table-safety")?
                    .parse()
                    .map_err(|_| "bad table safety factor")?
            }
            "--device-hbm" => {
                rc.gpu_device.memory_bytes = take_value(&mut it, "--device-hbm")?
                    .parse()
                    .map_err(|_| "bad device HBM byte count")?
            }
            "--out" => out_path = Some(take_value(&mut it, "--out")?.to_string()),
            "--spectrum" => spectrum_path = Some(take_value(&mut it, "--spectrum")?.to_string()),
            "--trace" => trace_path = Some(take_value(&mut it, "--trace")?.to_string()),
            "--metrics" => metrics_path = Some(take_value(&mut it, "--metrics")?.to_string()),
            "--journal" => journal_path = Some(take_value(&mut it, "--journal")?.to_string()),
            "--metrics-format" => {
                metrics_format = match take_value(&mut it, "--metrics-format")? {
                    "json" => MetricsFormat::Json,
                    "prom" => MetricsFormat::Prometheus,
                    other => return Err(format!("unknown metrics format {other:?}")),
                }
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    // Either fault flag alone activates injection: a bare seed uses the
    // default spec, a bare spec uses seed 0. Spec range errors surface
    // later through `validate_for_width` as a ConfigError.
    if fault_seed.is_some() || fault_spec.is_some() {
        let spec = match &fault_spec {
            Some(s) => dedukt::net::FaultSpec::parse(s)?,
            None => dedukt::net::FaultSpec::default(),
        };
        rc.fault = Some(dedukt::net::FaultPlan::new(fault_seed.unwrap_or(0), spec));
    }
    // Same activation idiom for memory pressure: either flag opts in.
    if mem_seed.is_some() || mem_spec.is_some() {
        let spec = match &mem_spec {
            Some(s) => dedukt::gpu::MemSpec::parse(s)?,
            None => dedukt::gpu::MemSpec::default(),
        };
        rc.mem = Some(dedukt::gpu::MemPlan::new(mem_seed.unwrap_or(0), spec));
    }
    // And for whole-rank failure.
    if rank_seed.is_some() || rank_spec.is_some() {
        let spec = match &rank_spec {
            Some(s) => dedukt::net::RankSpec::parse(s)?,
            None => dedukt::net::RankSpec::default(),
        };
        rc.rank = Some(dedukt::net::RankPlan::new(rank_seed.unwrap_or(0), spec));
    }
    // And for storage faults on the two-pass bin store.
    if io_seed.is_some() || io_spec.is_some() {
        let spec = match &io_spec {
            Some(s) => dedukt::store::IoSpec::parse(s).map_err(|e| format!("--io-spec: {e}"))?,
            None => dedukt::store::IoSpec::default(),
        };
        rc.io = Some(dedukt::store::IoPlan::new(io_seed.unwrap_or(0), spec));
    }
    let outputs = CountOutputs {
        out_path,
        spectrum_path,
        trace_path,
        metrics_path,
        journal_path,
        metrics_format,
        min_qual,
    };
    // One staged driver, two key widths: k ≤ 31 packs into u64 words,
    // k ≤ 63 into u128. Everything past the window clamp is identical —
    // the width is a type parameter, not a separate pipeline.
    if rc.counting.k <= 31 {
        rc.counting.window = rc.counting.window.min(33 - rc.counting.k);
        count_with_width::<u64>(path, rc, outputs)
    } else {
        if rc.counting.k <= 63 {
            rc.counting.window = rc.counting.window.min(65 - rc.counting.k).max(1);
        }
        count_with_width::<u128>(path, rc, outputs)
    }
}

/// Export destinations and read-filtering options for `dedukt count`.
struct CountOutputs {
    out_path: Option<String>,
    spectrum_path: Option<String>,
    trace_path: Option<String>,
    metrics_path: Option<String>,
    journal_path: Option<String>,
    metrics_format: MetricsFormat,
    min_qual: Option<u8>,
}

/// Runs `dedukt count` at the key width `K` and writes every requested
/// export. Narrow and wide k share this path verbatim; invalid
/// configurations (k or m out of range for the width) surface as a
/// `ConfigError` and exit 2.
fn count_with_width<K: PackedKmer>(
    path: &str,
    mut rc: RunConfig,
    outputs: CountOutputs,
) -> Result<(), String> {
    rc.validate_for_width(K::MAX_COUNTING_K, K::MAX_SUPERMER_BASES)
        .map_err(|e| e.to_string())?;
    rc.collect_tables = true;
    rc.collect_spectrum = outputs.spectrum_path.is_some();
    rc.collect_trace = outputs.trace_path.is_some();
    rc.collect_metrics = outputs.metrics_path.is_some();
    rc.collect_journal = outputs.journal_path.is_some();
    check_writable("--out", &outputs.out_path)?;
    check_writable("--spectrum", &outputs.spectrum_path)?;
    check_writable("--trace", &outputs.trace_path)?;
    check_writable("--metrics", &outputs.metrics_path)?;
    check_writable("--journal", &outputs.journal_path)?;

    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let mut reads = parse_fastq(BufReader::new(file), rc.counting.k).map_err(|e| e.to_string())?;
    eprintln!(
        "parsed {} reads ({} bases) from {path}",
        reads.len(),
        reads.total_bases()
    );
    if let Some(q) = outputs.min_qual {
        reads = reads.quality_trimmed(q, rc.counting.k);
        eprintln!(
            "quality trim at Q{q}: {} reads ({} bases) remain",
            reads.len(),
            reads.total_bases()
        );
    }

    let report = pipeline::run_typed::<K>(&reads, &rc).map_err(|e| e.to_string())?;
    eprintln!(
        "mode {:?} (k={}, {}-byte keys on the wire): {} k-mer instances, {} distinct, on {} ranks",
        rc.mode,
        rc.counting.k,
        K::KMER_WIRE_BYTES,
        report.total_kmers,
        report.distinct_kmers,
        report.nranks
    );
    print_run_summary(&report);

    let merged = dump::merge_tables(
        report
            .tables
            .as_ref()
            .ok_or("internal error: pipeline did not collect the rank tables")?,
    );
    if let Some(p) = outputs.out_path {
        let mut w = BufWriter::new(File::create(&p).map_err(|e| e.to_string())?);
        dump::write_dump(&mut w, &merged, rc.counting.k, rc.counting.encoding)
            .map_err(|e| e.to_string())?;
        w.flush().map_err(|e| e.to_string())?;
        eprintln!("wrote {} k-mers to {p}", merged.len());
    }
    if let Some(p) = outputs.spectrum_path {
        let mut w = BufWriter::new(File::create(&p).map_err(|e| e.to_string())?);
        let spectrum = report
            .spectrum
            .as_ref()
            .ok_or("internal error: pipeline did not collect the spectrum")?;
        dump::write_spectrum(&mut w, spectrum).map_err(|e| e.to_string())?;
        w.flush().map_err(|e| e.to_string())?;
        eprintln!("wrote spectrum to {p}");
        // Bonus analysis while we have the spectrum (the §II-A use case).
        if let Some(size) = dedukt::core::analysis::estimate_genome_size(spectrum) {
            eprintln!(
                "spectrum analysis: coverage peak ~{}x, estimated genome size ~{size} bp",
                dedukt::core::analysis::coverage_peak(spectrum).unwrap_or(0)
            );
        }
    }
    if let Some(p) = outputs.trace_path {
        let events = report
            .trace
            .as_ref()
            .ok_or("internal error: pipeline did not collect the trace despite --trace")?;
        let counters = report.trace_counters.as_deref().unwrap_or(&[]);
        let mut w = BufWriter::new(File::create(&p).map_err(|e| e.to_string())?);
        dedukt::sim::trace::write_chrome_trace_with(&mut w, events, counters)
            .map_err(|e| e.to_string())?;
        w.flush().map_err(|e| e.to_string())?;
        eprintln!("wrote chrome trace to {p} (open in chrome://tracing or Perfetto)");
    }
    if let Some(p) = outputs.metrics_path {
        let snapshot = report
            .metrics
            .as_ref()
            .ok_or("internal error: pipeline did not collect metrics despite --metrics")?;
        let mut w = BufWriter::new(File::create(&p).map_err(|e| e.to_string())?);
        match outputs.metrics_format {
            MetricsFormat::Json => snapshot.write_json(&mut w).map_err(|e| e.to_string())?,
            MetricsFormat::Prometheus => snapshot
                .write_prometheus(&mut w)
                .map_err(|e| e.to_string())?,
        }
        w.flush().map_err(|e| e.to_string())?;
        eprintln!("wrote {} metric series to {p}", snapshot.entries.len());
    }
    if let Some(p) = outputs.journal_path {
        let events = report
            .journal
            .as_ref()
            .ok_or("internal error: pipeline did not record a journal despite --journal")?;
        let mut w = BufWriter::new(File::create(&p).map_err(|e| format!("{p}: {e}"))?);
        dedukt::sim::write_journal(&mut w, events).map_err(|e| e.to_string())?;
        w.flush().map_err(|e| e.to_string())?;
        eprintln!(
            "wrote run journal ({} events) to {p} — inspect with `dedukt analyze {p}`",
            events.len()
        );
    }
    // Always show the top heavy hitters as a quick sanity signal.
    eprintln!("top k-mers:");
    for (kmer, count) in dump::heavy_hitters(&merged, 5) {
        eprintln!(
            "  {}  x{count}",
            dump::kmer_ascii(kmer, rc.counting.k, rc.counting.encoding)
        );
    }
    Ok(())
}

fn cmd_info() -> Result<(), String> {
    let v100 = dedukt::gpu::DeviceConfig::v100();
    println!("GPU preset: {}", v100.name);
    println!(
        "  SMs {} @ {:.2} GHz, {} GiB HBM @ {}",
        v100.num_sms,
        v100.clock_ghz,
        v100.memory_bytes >> 30,
        v100.hbm_bandwidth
    );
    println!(
        "  NVLink {} | PCIe {}",
        v100.nvlink_bandwidth, v100.pcie_bandwidth
    );
    let net = dedukt::net::cost::NetworkParams::summit();
    println!("Network preset: Summit fat-tree");
    println!(
        "  injection {} per node, alltoallv efficiency {:.0}%, alpha {:.1} µs",
        net.node_injection,
        net.alltoallv_efficiency * 100.0,
        net.alpha_secs * 1e6
    );
    println!("Placements: 6 GPU ranks/node, 42 CPU ranks/node (paper §V-A)");
    Ok(())
}
