//! DEDUKT-RS — distributed-memory k-mer counting on (simulated) GPUs.
//!
//! Facade crate: re-exports the workspace's public API in one namespace.
//! See the README for a quickstart and DESIGN.md for the architecture.
//!
//! # Quickstart
//!
//! ```
//! use dedukt::core::{pipeline, Mode, RunConfig};
//! use dedukt::dna::{Dataset, DatasetId, ScalePreset};
//!
//! // A deterministic synthetic stand-in for E. coli 30X (Table I).
//! let reads = Dataset::new(DatasetId::EColi30x, ScalePreset::Tiny).generate();
//!
//! // The paper's best configuration: GPU supermer counter, k=17, m=7,
//! // window=15, on a simulated 2-node Summit slice (12 V100s).
//! let config = RunConfig::new(Mode::GpuSupermer, 2);
//! let report = pipeline::run(&reads, &config).expect("valid config");
//!
//! assert_eq!(report.total_kmers, reads.total_kmers(17) as u64);
//! assert!(report.phases.exchange > dedukt::sim::SimTime::ZERO);
//! ```
//!
//! Counting is exact (asserted against a single-threaded oracle across
//! the test suite); phase times are simulated by documented cost models.

#![warn(missing_docs)]

pub use dedukt_core as core;
pub use dedukt_dna as dna;
pub use dedukt_gpu as gpu;
pub use dedukt_hash as hash;
pub use dedukt_net as net;
pub use dedukt_sim as sim;
pub use dedukt_store as store;
