//! The bin store: real files under a run directory, faults applied at
//! write time, verification at read time.
//!
//! Layout of a run directory:
//!
//! ```text
//! manifest.json        pass-1 manifest (fingerprint + per-bin rows)
//! bin-0007.g0.blk      bin 7's blocks, generation 0 (pass-1 write)
//! bin-0007.g1.blk      generation 1, if bin 7 was re-derived
//! bin-0007.counts.tsv  bin 7's completed pass-2 counts (resume state)
//! ```
//!
//! [`IoPlan`] write fates are applied *physically*: a torn write really
//! truncates the file mid-frame and a rotted block really carries a
//! flipped byte, so the pass-2 read path proves the checksummed format
//! catches them rather than trusting a simulated flag.

use std::path::{Path, PathBuf};

use crate::block::{frame_block, parse_block, BLOCK_HEADER_BYTES};
use crate::manifest::Manifest;
use crate::plan::IoPlan;

/// What a bin write did, for cost accounting and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BinWrite {
    /// Payload bytes the bin logically holds (sums the manifest row).
    pub logical_bytes: u64,
    /// Bytes physically written (less than framed size under a torn
    /// write).
    pub physical_bytes: u64,
    /// Blocks the bin logically holds.
    pub blocks: u32,
    /// Did the plan damage this generation (torn or rotted)? The driver
    /// never consults this — recovery must detect damage from the read
    /// path — but tests pin that injection really happened.
    pub damaged: bool,
}

/// Why a bin read failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadFailure {
    /// The bytes came back but failed verification (torn frame, rotted
    /// payload, wrong block count). Retrying re-reads the same damaged
    /// file; only a re-derive at a fresh generation can help.
    Corrupt(String),
    /// The file could not be read at all (missing, permission).
    Io(String),
}

impl std::fmt::Display for ReadFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadFailure::Corrupt(msg) => write!(f, "corrupt: {msg}"),
            ReadFailure::Io(msg) => write!(f, "io: {msg}"),
        }
    }
}

/// Handle on a run directory.
#[derive(Clone, Debug)]
pub struct BinStore {
    dir: PathBuf,
}

impl BinStore {
    /// Opens `dir` as a run directory, creating it if needed.
    pub fn create(dir: &Path) -> Result<BinStore, String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        Ok(BinStore {
            dir: dir.to_path_buf(),
        })
    }

    /// The run directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of `bin`'s block file at `generation`.
    pub fn bin_path(&self, bin: u32, generation: u32) -> PathBuf {
        self.dir.join(format!("bin-{bin:04}.g{generation}.blk"))
    }

    /// Path of `bin`'s completed-counts file.
    pub fn counts_path(&self, bin: u32) -> PathBuf {
        self.dir.join(format!("bin-{bin:04}.counts.tsv"))
    }

    /// Path of the run manifest.
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.json")
    }

    /// Writes the manifest (atomically, like the counts files).
    pub fn write_manifest(&self, manifest: &Manifest) -> Result<(), String> {
        let path = self.manifest_path();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, manifest.to_text())
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path).map_err(|e| format!("rename to {}: {e}", path.display()))?;
        Ok(())
    }

    /// Reads and parses the manifest. `Ok(None)` when none exists (a
    /// fresh directory); `Err` when one exists but does not parse.
    pub fn read_manifest(&self) -> Result<Option<Manifest>, String> {
        let path = self.manifest_path();
        match std::fs::read_to_string(&path) {
            Ok(text) => Manifest::parse(&text)
                .map(Some)
                .map_err(|e| format!("{}: {e}", path.display())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(format!("read {}: {e}", path.display())),
        }
    }

    /// Writes `bin`'s blocks at `generation`, applying the plan's write
    /// fates for that generation: a rotted block carries one flipped
    /// payload byte (after its checksum was computed), a torn write
    /// cuts the file mid-frame and drops every later block.
    pub fn write_bin(
        &self,
        bin: u32,
        generation: u32,
        blocks: &[Vec<u8>],
        plan: Option<&IoPlan>,
    ) -> Result<BinWrite, String> {
        let mut file = Vec::new();
        let mut report = BinWrite {
            blocks: blocks.len() as u32,
            ..BinWrite::default()
        };
        for (seq, payload) in blocks.iter().enumerate() {
            report.logical_bytes += payload.len() as u64;
            let mut framed = frame_block(bin, seq as u32, payload);
            let coords = (bin as u64, seq as u64, generation as u64);
            if plan.is_some_and(|p| p.bit_rot(coords.0, coords.1, coords.2)) {
                // Flip a byte the checksum already covered: mid-payload,
                // or a checksum byte when the payload is empty.
                let at = if payload.is_empty() {
                    BLOCK_HEADER_BYTES - 1
                } else {
                    BLOCK_HEADER_BYTES + payload.len() / 2
                };
                framed[at] ^= 0x01;
                report.damaged = true;
            }
            if plan.is_some_and(|p| p.torn_write(coords.0, coords.1, coords.2)) {
                file.extend_from_slice(&framed[..framed.len() / 2]);
                report.damaged = true;
                break;
            }
            file.extend_from_slice(&framed);
        }
        report.physical_bytes = file.len() as u64;
        let path = self.bin_path(bin, generation);
        std::fs::write(&path, file).map_err(|e| format!("write {}: {e}", path.display()))?;
        Ok(report)
    }

    /// Reads and verifies `bin`'s blocks at `generation`, expecting
    /// exactly `expect_blocks` frames (from the manifest — a tear at a
    /// frame boundary is otherwise invisible). Transient read errors
    /// are the *caller's* injection (drawn per attempt); this method
    /// reports only real damage.
    pub fn read_bin(
        &self,
        bin: u32,
        generation: u32,
        expect_blocks: u32,
    ) -> Result<Vec<Vec<u8>>, ReadFailure> {
        let path = self.bin_path(bin, generation);
        let buf = std::fs::read(&path)
            .map_err(|e| ReadFailure::Io(format!("read {}: {e}", path.display())))?;
        let mut payloads = Vec::with_capacity(expect_blocks as usize);
        let mut offset = 0;
        while offset < buf.len() {
            let (frame, next) = parse_block(&buf, offset).map_err(ReadFailure::Corrupt)?;
            if frame.bin != bin || frame.seq != payloads.len() as u32 {
                return Err(ReadFailure::Corrupt(format!(
                    "frame claims bin {} seq {}, expected bin {bin} seq {}",
                    frame.bin,
                    frame.seq,
                    payloads.len()
                )));
            }
            payloads.push(frame.payload);
            offset = next;
        }
        if payloads.len() as u32 != expect_blocks {
            return Err(ReadFailure::Corrupt(format!(
                "bin {bin} holds {} of {expect_blocks} blocks (torn tail)",
                payloads.len()
            )));
        }
        Ok(payloads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::IoSpec;

    fn tmp_store(tag: &str) -> BinStore {
        let dir =
            std::env::temp_dir().join(format!("dedukt-store-test-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        BinStore::create(&dir).unwrap()
    }

    fn sample_blocks() -> Vec<Vec<u8>> {
        (0..4u8).map(|b| vec![b; 32 + b as usize * 8]).collect()
    }

    #[test]
    fn clean_write_read_roundtrips() {
        let store = tmp_store("clean");
        let blocks = sample_blocks();
        let w = store.write_bin(3, 0, &blocks, None).unwrap();
        assert!(!w.damaged);
        assert_eq!(w.blocks, 4);
        assert_eq!(
            w.logical_bytes,
            blocks.iter().map(|b| b.len() as u64).sum::<u64>()
        );
        assert_eq!(
            w.physical_bytes,
            w.logical_bytes + 4 * BLOCK_HEADER_BYTES as u64
        );
        assert_eq!(store.read_bin(3, 0, 4).unwrap(), blocks);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn empty_bin_roundtrips() {
        let store = tmp_store("empty");
        let w = store.write_bin(0, 0, &[], None).unwrap();
        assert_eq!(w.physical_bytes, 0);
        assert_eq!(store.read_bin(0, 0, 0).unwrap(), Vec::<Vec<u8>>::new());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn injected_damage_is_physically_on_disk_and_detected() {
        let store = tmp_store("damage");
        let blocks = sample_blocks();
        // Find seeds where the very first draw fates bin 1's write, so
        // the test does not depend on rate luck.
        let torn_plan = (0..)
            .map(|seed| IoPlan::new(seed, IoSpec::parse("torn=0.3,rot=0").unwrap()))
            .find(|p| p.torn_write(1, 0, 0))
            .unwrap();
        let w = store.write_bin(1, 0, &blocks, Some(&torn_plan)).unwrap();
        assert!(w.damaged);
        assert!(w.physical_bytes < w.logical_bytes);
        assert!(matches!(
            store.read_bin(1, 0, 4),
            Err(ReadFailure::Corrupt(_))
        ));

        let rot_plan = (0..)
            .map(|seed| IoPlan::new(seed, IoSpec::parse("torn=0,rot=0.3").unwrap()))
            .find(|p| p.bit_rot(1, 1, 0) && !p.bit_rot(1, 0, 0))
            .unwrap();
        let w = store.write_bin(1, 0, &blocks, Some(&rot_plan)).unwrap();
        assert!(w.damaged);
        // Full length — rot is silent until the checksum check.
        assert_eq!(
            w.physical_bytes,
            w.logical_bytes + 4 * BLOCK_HEADER_BYTES as u64
        );
        match store.read_bin(1, 0, 4) {
            Err(ReadFailure::Corrupt(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("rot not detected: {other:?}"),
        }
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn fresh_generation_escapes_persistent_damage() {
        let store = tmp_store("generation");
        let blocks = sample_blocks();
        // A plan that damages generation 0 of bin 2 but leaves
        // generation 1 clean — the re-derive path in miniature.
        let plan = (0..)
            .map(|seed| IoPlan::new(seed, IoSpec::parse("torn=0.3,rot=0").unwrap()))
            .find(|p| p.torn_write(2, 0, 0) && (0..4).all(|s| !p.torn_write(2, s, 1)))
            .unwrap();
        store.write_bin(2, 0, &blocks, Some(&plan)).unwrap();
        assert!(store.read_bin(2, 0, 4).is_err());
        store.write_bin(2, 1, &blocks, Some(&plan)).unwrap();
        assert_eq!(store.read_bin(2, 1, 4).unwrap(), blocks);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn missing_bin_is_an_io_failure_and_manifest_roundtrips() {
        let store = tmp_store("manifest");
        assert!(matches!(store.read_bin(9, 0, 1), Err(ReadFailure::Io(_))));
        assert_eq!(store.read_manifest().unwrap(), None);
        let m = Manifest {
            fingerprint: "fp".into(),
            bins: vec![crate::manifest::BinMeta {
                bin: 0,
                blocks: 1,
                bytes: 10,
                instances: 5,
            }],
        };
        store.write_manifest(&m).unwrap();
        assert_eq!(store.read_manifest().unwrap(), Some(m));
        std::fs::write(store.manifest_path(), "garbage").unwrap();
        assert!(store.read_manifest().is_err());
        std::fs::remove_dir_all(store.dir()).ok();
    }
}
