//! Per-run manifest and per-bin result files — the resume protocol.
//!
//! The manifest is written once, after pass 1 lands every bin, and
//! records the run *fingerprint* (every configuration axis that shapes
//! the stored bytes) plus one row per bin. Pass 2 consumes it to size
//! each bin's count table and to know how many blocks a healthy bin
//! file holds (a torn tail at a frame boundary is otherwise
//! undetectable). `--resume` re-reads it, rejects a fingerprint
//! mismatch, and skips every bin whose result file is already complete.
//!
//! Both artifacts are line-oriented: the manifest reuses the journal's
//! flat-JSON scalar codec ([`dedukt_sim::journal::parse_flat_json`]),
//! and the result files are `key-hex TAB count` under a `#`-prefixed
//! stats header. Result files are written to a temp name and renamed,
//! so a kill mid-write leaves no half-complete file a resume could
//! mistake for a finished bin.

use std::path::Path;

use dedukt_sim::journal::parse_flat_json;

/// One bin's manifest row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BinMeta {
    /// Bin index in `0..nbins`.
    pub bin: u32,
    /// Blocks in a healthy generation of this bin's file.
    pub blocks: u32,
    /// Logical payload bytes across those blocks.
    pub bytes: u64,
    /// k-mer instances the bin's items expand to (sizes the pass-2
    /// count table).
    pub instances: u64,
}

/// The pass-1 manifest: fingerprint plus one [`BinMeta`] per bin.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Configuration fingerprint a resume must match exactly.
    pub fingerprint: String,
    /// Bin rows, indexed by bin.
    pub bins: Vec<BinMeta>,
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c => vec![c],
        })
        .collect()
}

impl Manifest {
    /// Serializes to the line-oriented flat-JSON text format.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "{{\"ev\":\"manifest\",\"fingerprint\":\"{}\",\"nbins\":{}}}\n",
            escape(&self.fingerprint),
            self.bins.len()
        );
        for b in &self.bins {
            out.push_str(&format!(
                "{{\"ev\":\"bin\",\"bin\":{},\"blocks\":{},\"bytes\":{},\"instances\":{}}}\n",
                b.bin, b.blocks, b.bytes, b.instances
            ));
        }
        out
    }

    /// Parses [`Manifest::to_text`] output, verifying the row count and
    /// bin ordering so a truncated manifest never passes.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let head = parse_flat_json(lines.next().ok_or("manifest is empty")?)?;
        if head.str_field("ev")? != "manifest" {
            return Err("manifest header line missing".into());
        }
        let fingerprint = head.str_field("fingerprint")?.to_string();
        let nbins = head.u64_field("nbins")? as usize;
        let mut bins = Vec::with_capacity(nbins);
        for line in lines {
            let row = parse_flat_json(line)?;
            if row.str_field("ev")? != "bin" {
                return Err(format!("unexpected manifest row `{line}`"));
            }
            let bin = row.u64_field("bin")? as u32;
            if bin as usize != bins.len() {
                return Err(format!(
                    "manifest bins out of order: row {} claims bin {bin}",
                    bins.len()
                ));
            }
            bins.push(BinMeta {
                bin,
                blocks: row.u64_field("blocks")? as u32,
                bytes: row.u64_field("bytes")?,
                instances: row.u64_field("instances")?,
            });
        }
        if bins.len() != nbins {
            return Err(format!(
                "manifest truncated: header claims {nbins} bins, found {}",
                bins.len()
            ));
        }
        Ok(Manifest { fingerprint, bins })
    }
}

/// One completed bin's pass-2 result, as persisted for resume. Keys are
/// width-erased to `u128` (the widest packed key) for the text format;
/// the driver narrows them back on load.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BinCounts {
    /// Surviving `(key, count)` entries (post `--min-count`).
    pub entries: Vec<(u128, u32)>,
    /// k-mer instances the surviving entries account for.
    pub instances: u64,
    /// Distinct k-mers dropped by the `--min-count` pre-filter.
    pub filtered: u64,
    /// k-mer instances those dropped entries carried.
    pub filtered_instances: u64,
}

/// Persists a completed bin's counts atomically (temp file + rename), so
/// a kill can never leave a partial file that [`read_bin_counts`] would
/// take for a finished bin.
pub fn write_bin_counts(path: &Path, counts: &BinCounts) -> Result<(), String> {
    let mut text = format!(
        "# entries={} instances={} filtered={} filtered_instances={}\n",
        counts.entries.len(),
        counts.instances,
        counts.filtered,
        counts.filtered_instances
    );
    for &(key, count) in &counts.entries {
        text.push_str(&format!("{key:x}\t{count}\n"));
    }
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, text).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("rename to {}: {e}", path.display()))?;
    Ok(())
}

/// Loads a bin's persisted counts, returning `None` when the file is
/// absent or malformed — either way the bin is simply not done and
/// pass 2 re-counts it.
pub fn read_bin_counts(path: &Path) -> Option<BinCounts> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    let header = lines.next()?.strip_prefix("# ")?;
    let mut counts = BinCounts::default();
    let mut expected_entries = None;
    for part in header.split_whitespace() {
        let (key, value) = part.split_once('=')?;
        let value = value.parse::<u64>().ok()?;
        match key {
            "entries" => expected_entries = Some(value as usize),
            "instances" => counts.instances = value,
            "filtered" => counts.filtered = value,
            "filtered_instances" => counts.filtered_instances = value,
            _ => return None,
        }
    }
    for line in lines.filter(|l| !l.trim().is_empty()) {
        let (hex, count) = line.split_once('\t')?;
        counts
            .entries
            .push((u128::from_str_radix(hex, 16).ok()?, count.parse().ok()?));
    }
    (Some(counts.entries.len()) == expected_entries).then_some(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            fingerprint: "mode=gpu-supermer k=17 nbins=4".into(),
            bins: (0..4)
                .map(|bin| BinMeta {
                    bin,
                    blocks: 2 + bin,
                    bytes: 100 * (bin as u64 + 1),
                    instances: 1000 + bin as u64,
                })
                .collect(),
        }
    }

    #[test]
    fn manifest_roundtrips() {
        let m = sample();
        assert_eq!(Manifest::parse(&m.to_text()).unwrap(), m);
    }

    #[test]
    fn truncated_manifest_is_rejected() {
        let text = sample().to_text();
        let cut: String = text.lines().take(3).map(|l| format!("{l}\n")).collect();
        assert!(Manifest::parse(&cut).unwrap_err().contains("truncated"));
        assert!(Manifest::parse("").unwrap_err().contains("empty"));
    }

    #[test]
    fn out_of_order_bins_are_rejected() {
        let mut m = sample();
        m.bins.swap(1, 2);
        assert!(Manifest::parse(&m.to_text())
            .unwrap_err()
            .contains("out of order"));
    }

    #[test]
    fn fingerprints_with_quotes_survive() {
        let m = Manifest {
            fingerprint: "weird \"quoted\" fp".into(),
            bins: vec![],
        };
        assert_eq!(Manifest::parse(&m.to_text()).unwrap(), m);
    }

    #[test]
    fn bin_counts_roundtrip_and_reject_partials() {
        let dir =
            std::env::temp_dir().join(format!("dedukt-store-test-{}-counts", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bin-0000.counts.tsv");
        let counts = BinCounts {
            entries: vec![(0xDEAD_BEEF, 3), (u128::MAX - 1, 70_000)],
            instances: 70_003,
            filtered: 5,
            filtered_instances: 5,
        };
        write_bin_counts(&path, &counts).unwrap();
        assert_eq!(read_bin_counts(&path), Some(counts));
        // A truncated file (as a crash before the atomic rename could
        // never produce, but defense in depth) reads as "not done".
        let text = std::fs::read_to_string(&path).unwrap();
        let cut: String = text.lines().take(2).map(|l| format!("{l}\n")).collect();
        std::fs::write(&path, cut).unwrap();
        assert_eq!(read_bin_counts(&path), None);
        assert_eq!(read_bin_counts(&dir.join("absent.tsv")), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
