//! Checksum-framed block format for bin files.
//!
//! A bin file is a plain concatenation of frames, each:
//!
//! ```text
//! magic    u32 LE   0x4445_4B42 ("BKED" on disk)
//! bin      u32 LE   bin index (redundant; catches cross-bin mixups)
//! seq      u32 LE   zero-based block index within the bin
//! len      u32 LE   payload length in bytes
//! checksum u64 LE   mix64 fold over the payload (seeded with len)
//! payload  len bytes
//! ```
//!
//! Every field a torn write or bit rot could damage is verifiable:
//! truncation fails the length checks, a flipped payload byte fails the
//! checksum, and a garbled header fails the magic. Parsing never
//! panics — every malformation is a `String` diagnostic the recovery
//! path can attach to its journal events.

use dedukt_sim::rng::mix64;

/// Frame magic, little-endian `0x4445_4B42`.
pub const BLOCK_MAGIC: u32 = 0x4445_4B42;

/// Bytes of framing ahead of each payload.
pub const BLOCK_HEADER_BYTES: usize = 4 + 4 + 4 + 4 + 8;

/// One parsed frame: the identifying coordinates plus the verified
/// payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockFrame {
    /// Bin index stamped at write time.
    pub bin: u32,
    /// Zero-based block index within the bin.
    pub seq: u32,
    /// Verified payload bytes.
    pub payload: Vec<u8>,
}

/// Checksum of a payload: a [`mix64`] fold over its little-endian
/// 8-byte chunks (zero-padded), seeded with the length so a truncated
/// payload of trailing zeros still mismatches.
pub fn payload_checksum(payload: &[u8]) -> u64 {
    let mut sum = mix64(0x5EED_B10C ^ payload.len() as u64);
    for chunk in payload.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        sum = mix64(sum ^ u64::from_le_bytes(word));
    }
    sum
}

/// Serializes one frame (header + payload) ready to append to a bin
/// file.
pub fn frame_block(bin: u32, seq: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(BLOCK_HEADER_BYTES + payload.len());
    out.extend_from_slice(&BLOCK_MAGIC.to_le_bytes());
    out.extend_from_slice(&bin.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload_checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parses and verifies the frame starting at `offset`, returning it
/// with the offset of the next frame. Every corruption mode the
/// [`crate::IoPlan`] can inject surfaces as an `Err` here.
pub fn parse_block(buf: &[u8], offset: usize) -> Result<(BlockFrame, usize), String> {
    let rest = &buf[offset..];
    if rest.len() < BLOCK_HEADER_BYTES {
        return Err(format!(
            "truncated frame header at offset {offset}: {} of {BLOCK_HEADER_BYTES} bytes",
            rest.len()
        ));
    }
    let word_u32 = |at: usize| u32::from_le_bytes(rest[at..at + 4].try_into().unwrap());
    let magic = word_u32(0);
    if magic != BLOCK_MAGIC {
        return Err(format!(
            "bad frame magic {magic:#010x} at offset {offset} (expected {BLOCK_MAGIC:#010x})"
        ));
    }
    let bin = word_u32(4);
    let seq = word_u32(8);
    let len = word_u32(12) as usize;
    let stored = u64::from_le_bytes(rest[16..24].try_into().unwrap());
    let payload = rest
        .get(BLOCK_HEADER_BYTES..BLOCK_HEADER_BYTES + len)
        .ok_or_else(|| {
            format!(
                "truncated payload of block {seq} at offset {offset}: want {len} bytes, \
                 have {}",
                rest.len() - BLOCK_HEADER_BYTES
            )
        })?;
    let computed = payload_checksum(payload);
    if computed != stored {
        return Err(format!(
            "checksum mismatch on block {seq} of bin {bin}: stored {stored:#018x}, \
             computed {computed:#018x}"
        ));
    }
    Ok((
        BlockFrame {
            bin,
            seq,
            payload: payload.to_vec(),
        },
        offset + BLOCK_HEADER_BYTES + len,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrips() {
        let payload: Vec<u8> = (0u8..200).collect();
        let framed = frame_block(7, 3, &payload);
        assert_eq!(framed.len(), BLOCK_HEADER_BYTES + payload.len());
        let (frame, next) = parse_block(&framed, 0).unwrap();
        assert_eq!(frame.bin, 7);
        assert_eq!(frame.seq, 3);
        assert_eq!(frame.payload, payload);
        assert_eq!(next, framed.len());
    }

    #[test]
    fn concatenated_frames_parse_in_sequence() {
        let mut buf = Vec::new();
        for seq in 0..5u32 {
            buf.extend_from_slice(&frame_block(1, seq, &vec![seq as u8; 10 + seq as usize]));
        }
        let mut offset = 0;
        for seq in 0..5u32 {
            let (frame, next) = parse_block(&buf, offset).unwrap();
            assert_eq!(frame.seq, seq);
            assert_eq!(frame.payload.len(), 10 + seq as usize);
            offset = next;
        }
        assert_eq!(offset, buf.len());
    }

    #[test]
    fn empty_payload_is_framed_and_verified() {
        let framed = frame_block(0, 0, &[]);
        let (frame, next) = parse_block(&framed, 0).unwrap();
        assert!(frame.payload.is_empty());
        assert_eq!(next, BLOCK_HEADER_BYTES);
    }

    #[test]
    fn torn_frames_fail_the_length_checks() {
        let framed = frame_block(2, 0, &[9u8; 64]);
        // Torn inside the header.
        let err = parse_block(&framed[..10], 0).unwrap_err();
        assert!(err.contains("truncated frame header"), "{err}");
        // Torn inside the payload.
        let err = parse_block(&framed[..BLOCK_HEADER_BYTES + 20], 0).unwrap_err();
        assert!(err.contains("truncated payload"), "{err}");
    }

    #[test]
    fn every_flipped_payload_bit_fails_the_checksum() {
        let payload = [0xA5u8; 40];
        let framed = frame_block(1, 0, &payload);
        for byte in 0..payload.len() {
            let mut rotted = framed.clone();
            rotted[BLOCK_HEADER_BYTES + byte] ^= 0x01;
            let err = parse_block(&rotted, 0).unwrap_err();
            assert!(err.contains("checksum mismatch"), "byte {byte}: {err}");
        }
    }

    #[test]
    fn garbled_magic_is_rejected() {
        let mut framed = frame_block(1, 0, &[1, 2, 3]);
        framed[0] ^= 0xFF;
        assert!(parse_block(&framed, 0)
            .unwrap_err()
            .contains("bad frame magic"));
    }

    #[test]
    fn checksum_distinguishes_zero_padded_truncations() {
        // A payload of trailing zeros truncated to fewer zeros must not
        // collide (the length seeds the fold).
        assert_ne!(payload_checksum(&[0u8; 16]), payload_checksum(&[0u8; 8]));
        assert_ne!(payload_checksum(&[]), payload_checksum(&[0u8]));
    }
}
