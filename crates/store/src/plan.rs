//! Deterministic storage-fault injection for the bin store.
//!
//! An [`IoPlan`] is the storage twin of the network layer's `FaultPlan`
//! and the device layer's `MemPlan`: a *pure function* from a seed and a
//! fault coordinate to a verdict, built on the stateless
//! [`dedukt_sim::rng::unit_from_coords`] draw. Write fates — torn
//! writes and bit rot — are drawn per `(bin, block, generation)` and are
//! *persistent*: the corruption is physically written to the block file
//! and stays there until the bin is re-derived at the next generation
//! (which draws fresh fates). Read errors are drawn per
//! `(bin, attempt)` and are *transient*: the next attempt draws a fresh
//! verdict, so bounded retries model a flaky-but-functional device.
//!
//! Three fault kinds are modelled (DESIGN.md §12):
//!
//! * **Torn write** — the block file is cut off mid-block, as if power
//!   was lost with the write cache unflushed. Detected in pass 2 by the
//!   frame length check.
//! * **Bit rot** — one payload byte is silently flipped after the
//!   checksum was computed. Detected by the per-block checksum.
//! * **Read error** — the device returns a transient failure for the
//!   whole bin read; the data underneath is intact.

use dedukt_sim::rng::unit_from_coords;

/// Domain-separation salts so the three fault streams never alias (and
/// never alias the network/memory fault salts).
const SALT_TORN: u64 = 0x10F5_0001;
const SALT_ROT: u64 = 0x10F5_0002;
const SALT_READ: u64 = 0x10F5_0003;

/// Storage-fault rates and recovery budgets. Parsed from `--io-spec`
/// (`torn=0.02,rot=0.02,readerr=0.05,retries=3,rederive=2,kill=4`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IoSpec {
    /// Probability a bin write is torn mid-block.
    pub torn_rate: f64,
    /// Probability one payload byte of a written block rots.
    pub rot_rate: f64,
    /// Probability a bin read attempt fails transiently.
    pub read_error_rate: f64,
    /// Read attempts allowed per bin before a transient failure is
    /// escalated to quarantine + re-derive (first attempt + retries).
    pub max_retries: u32,
    /// Re-derivations allowed per bin (each replays the bin's input
    /// slice and rewrites it at a fresh generation) before the run
    /// fails with `StorageFailed`.
    pub max_rederives: u32,
    /// Injected mid-run kill: stop pass 2 cleanly after this many bins
    /// complete, leaving the manifest and finished bins behind for
    /// `--resume`. `None` (the default) runs to completion.
    pub kill_after: Option<u64>,
}

impl Default for IoSpec {
    /// Moderate default rates so `--io-seed` alone exercises the retry
    /// and re-derive paths on a handful of bins.
    fn default() -> IoSpec {
        IoSpec {
            torn_rate: 0.02,
            rot_rate: 0.02,
            read_error_rate: 0.05,
            max_retries: 3,
            max_rederives: 2,
            kill_after: None,
        }
    }
}

impl IoSpec {
    /// The fault-free spec: clean writes, clean reads, no injected
    /// kill. Runs under this spec are bit-identical to a plan-free
    /// world (pinned by the zero-fault regression test).
    pub fn none() -> IoSpec {
        IoSpec {
            torn_rate: 0.0,
            rot_rate: 0.0,
            read_error_rate: 0.0,
            max_retries: 3,
            max_rederives: 2,
            kill_after: None,
        }
    }

    /// Parses a `key=value` comma list. Unknown keys and unparseable
    /// values are errors; range checks live in [`IoSpec::validate`] so
    /// the CLI surfaces them through `ConfigError` like every other
    /// configuration problem.
    pub fn parse(s: &str) -> Result<IoSpec, String> {
        let mut spec = IoSpec::default();
        for part in s.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("io spec entry `{}` is not key=value", part.trim()))?;
            let key = key.trim();
            let value = value.trim();
            let parse_f64 = || {
                value
                    .parse::<f64>()
                    .map_err(|_| format!("io spec {key}=`{value}` is not a number"))
            };
            let parse_u32 = || {
                value
                    .parse::<u32>()
                    .map_err(|_| format!("io spec {key}=`{value}` is not an integer"))
            };
            match key {
                "torn" => spec.torn_rate = parse_f64()?,
                "rot" => spec.rot_rate = parse_f64()?,
                "readerr" => spec.read_error_rate = parse_f64()?,
                "retries" => spec.max_retries = parse_u32()?,
                "rederive" => spec.max_rederives = parse_u32()?,
                "kill" => {
                    spec.kill_after = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| format!("io spec kill=`{value}` is not an integer"))?,
                    )
                }
                _ => {
                    return Err(format!(
                    "unknown io spec key `{key}` (expected torn/rot/readerr/retries/rederive/kill)"
                ))
                }
            }
        }
        Ok(spec)
    }

    /// Range checks, in `FaultSpec::validate` style: rates in [0, 1],
    /// at least one read attempt, a kill after at least one bin.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("torn", self.torn_rate),
            ("rot", self.rot_rate),
            ("readerr", self.read_error_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
                return Err(format!("io rate {name}={rate} must be in [0, 1]"));
            }
        }
        if self.max_retries == 0 {
            return Err("io retries must allow at least one read attempt".into());
        }
        if self.kill_after == Some(0) {
            return Err("io kill must be at least 1 completed bin".into());
        }
        Ok(())
    }

    /// Is this spec semantically empty — valid, but incapable of ever
    /// injecting a fault or a kill? Such plans are normalized away
    /// before a run so `--io-spec torn=0,rot=0,readerr=0` runs exactly
    /// like an absent plan on every engine.
    pub fn is_noop(&self) -> bool {
        self.torn_rate == 0.0
            && self.rot_rate == 0.0
            && self.read_error_rate == 0.0
            && self.kill_after.is_none()
    }
}

/// A seeded, deterministic storage-fault schedule. Cloning is cheap (a
/// few words); every engine and every recovery attempt consult the same
/// plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IoPlan {
    seed: u64,
    spec: IoSpec,
}

impl IoPlan {
    /// A plan drawing every fault verdict from `seed` under `spec`.
    pub fn new(seed: u64, spec: IoSpec) -> IoPlan {
        IoPlan { seed, spec }
    }

    /// The plan's rates and recovery budgets.
    pub fn spec(&self) -> &IoSpec {
        &self.spec
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// One-line summary of the plan for run journals and reports, e.g.
    /// `seed=7 torn=0.02 rot=0.02 readerr=0.05 retries=3 rederive=2 kill=none`.
    pub fn journal_label(&self) -> String {
        format!(
            "seed={} torn={} rot={} readerr={} retries={} rederive={} kill={}",
            self.seed,
            self.spec.torn_rate,
            self.spec.rot_rate,
            self.spec.read_error_rate,
            self.spec.max_retries,
            self.spec.max_rederives,
            self.spec
                .kill_after
                .map_or_else(|| "none".to_string(), |n| n.to_string()),
        )
    }

    /// Uniform `[0, 1)` draw at a fault coordinate.
    fn draw(&self, salt: u64, coords: &[u64]) -> f64 {
        unit_from_coords(self.seed ^ salt, coords)
    }

    /// Is the write of block `seq` of `bin` at `generation` torn?
    /// Persistent: the tear is physically written; re-deriving the bin
    /// bumps the generation and draws a fresh fate.
    pub fn torn_write(&self, bin: u64, seq: u64, generation: u64) -> bool {
        self.spec.torn_rate > 0.0
            && self.draw(SALT_TORN, &[bin, seq, generation]) < self.spec.torn_rate
    }

    /// Does one payload byte of block `seq` of `bin` at `generation`
    /// rot after its checksum was computed? Persistent, like
    /// [`IoPlan::torn_write`].
    pub fn bit_rot(&self, bin: u64, seq: u64, generation: u64) -> bool {
        self.spec.rot_rate > 0.0
            && self.draw(SALT_ROT, &[bin, seq, generation]) < self.spec.rot_rate
    }

    /// Does read `attempt` of `bin` fail transiently? The attempt
    /// coordinate increases monotonically across retries *and*
    /// re-derives of the same bin, so every attempt draws fresh.
    pub fn read_errors(&self, bin: u64, attempt: u64) -> bool {
        self.spec.read_error_rate > 0.0
            && self.draw(SALT_READ, &[bin, attempt]) < self.spec.read_error_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_every_key() {
        let spec =
            IoSpec::parse("torn=0.3, rot=0.2, readerr=0.1, retries=5, rederive=4, kill=7").unwrap();
        assert_eq!(spec.torn_rate, 0.3);
        assert_eq!(spec.rot_rate, 0.2);
        assert_eq!(spec.read_error_rate, 0.1);
        assert_eq!(spec.max_retries, 5);
        assert_eq!(spec.max_rederives, 4);
        assert_eq!(spec.kill_after, Some(7));
        spec.validate().unwrap();
    }

    #[test]
    fn parse_partial_spec_keeps_defaults() {
        let spec = IoSpec::parse("rot=0.9").unwrap();
        assert_eq!(spec.rot_rate, 0.9);
        assert_eq!(spec.torn_rate, IoSpec::default().torn_rate);
        assert_eq!(spec.max_retries, IoSpec::default().max_retries);
        assert_eq!(spec.kill_after, None);
    }

    #[test]
    fn parse_rejects_unknown_keys_and_garbage() {
        assert!(IoSpec::parse("bogus=1")
            .unwrap_err()
            .contains("unknown io spec key"));
        assert!(IoSpec::parse("torn=abc")
            .unwrap_err()
            .contains("not a number"));
        assert!(IoSpec::parse("retries=1.5")
            .unwrap_err()
            .contains("not an integer"));
        assert!(IoSpec::parse("kill=x")
            .unwrap_err()
            .contains("not an integer"));
        assert!(IoSpec::parse("torn").unwrap_err().contains("key=value"));
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let s = IoSpec {
            torn_rate: 1.5,
            ..IoSpec::default()
        };
        assert!(s.validate().unwrap_err().contains("must be in [0, 1]"));
        let s = IoSpec {
            read_error_rate: -0.1,
            ..IoSpec::default()
        };
        assert!(s.validate().unwrap_err().contains("must be in [0, 1]"));
        let s = IoSpec {
            max_retries: 0,
            ..IoSpec::default()
        };
        assert!(s.validate().unwrap_err().contains("at least one"));
        let s = IoSpec {
            kill_after: Some(0),
            ..IoSpec::default()
        };
        assert!(s.validate().unwrap_err().contains("at least 1"));
        IoSpec::default().validate().unwrap();
        IoSpec::none().validate().unwrap();
    }

    #[test]
    fn draws_are_deterministic_and_attempt_fresh() {
        let plan = IoPlan::new(42, IoSpec::parse("torn=0.5,rot=0.5,readerr=0.5").unwrap());
        for bin in 0..16u64 {
            for seq in 0..4u64 {
                assert_eq!(plan.torn_write(bin, seq, 0), plan.torn_write(bin, seq, 0));
                assert_eq!(plan.bit_rot(bin, seq, 0), plan.bit_rot(bin, seq, 0));
            }
            for attempt in 0..8u64 {
                assert_eq!(
                    plan.read_errors(bin, attempt),
                    plan.read_errors(bin, attempt)
                );
            }
        }
        // A fresh generation (re-derive) must draw fresh write fates,
        // and a fresh attempt fresh read verdicts.
        let differs = (0..16u64).any(|b| plan.torn_write(b, 0, 0) != plan.torn_write(b, 0, 1));
        assert!(differs, "generations should draw fresh write fates");
        let differs = (0..16u64).any(|b| plan.read_errors(b, 0) != plan.read_errors(b, 1));
        assert!(differs, "attempts should draw fresh read verdicts");
    }

    #[test]
    fn zero_rate_plan_never_faults() {
        let plan = IoPlan::new(7, IoSpec::none());
        for bin in 0..64u64 {
            assert!(!plan.torn_write(bin, 0, 0));
            assert!(!plan.bit_rot(bin, 0, 0));
            for attempt in 0..8u64 {
                assert!(!plan.read_errors(bin, attempt));
            }
        }
    }

    #[test]
    fn fault_distribution_tracks_rates() {
        let plan = IoPlan::new(
            1234,
            IoSpec::parse("torn=0.25,rot=0.25,readerr=0.25").unwrap(),
        );
        let n = 40_000u64;
        let torn = (0..n).filter(|&b| plan.torn_write(b, 0, 0)).count();
        let frac = torn as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "torn {frac}");
        let rotted = (0..n).filter(|&b| plan.bit_rot(b, 0, 0)).count();
        let frac = rotted as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "rotted {frac}");
        let errs = (0..n).filter(|&a| plan.read_errors(3, a)).count();
        let frac = errs as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "read-errored {frac}");
    }

    #[test]
    fn noop_specs_are_detected() {
        assert!(!IoSpec::default().is_noop());
        assert!(IoSpec::none().is_noop());
        assert!(IoSpec::parse("torn=0,rot=0,readerr=0").unwrap().is_noop());
        // A kill is an injected event even with clean rates.
        assert!(!IoSpec::parse("torn=0,rot=0,readerr=0,kill=2")
            .unwrap()
            .is_noop());
        assert!(!IoSpec::parse("torn=0.5,rot=0,readerr=0").unwrap().is_noop());
    }

    #[test]
    fn fault_streams_are_independent() {
        // Same coordinates, different salts: the three decision streams
        // must not mirror each other.
        let plan = IoPlan::new(99, IoSpec::parse("torn=0.5,rot=0.5,readerr=0.5").unwrap());
        let torn_rot = (0..256u64).all(|b| plan.torn_write(b, 0, 0) == plan.bit_rot(b, 0, 0));
        assert!(!torn_rot, "torn/rot salt separation failed");
        let torn_read = (0..256u64).all(|b| plan.torn_write(b, 0, 0) == plan.read_errors(b, 0));
        assert!(!torn_read, "torn/read salt separation failed");
    }
}
