//! Simulated NVMe bin store for out-of-core two-pass counting.
//!
//! Pass 1 of the two-pass pipeline partitions extracted items into
//! minimizer-keyed *bins* and lands them on this store as
//! checksum-framed blocks ([`block`]); a per-run [`Manifest`] records
//! what was written so pass 2 can stream bins back one at a time and a
//! killed second pass can resume from exactly where it stopped. The
//! store is backed by real files in a run directory — the *bytes* are
//! real and verifiable, only the *time* they take is simulated (the SSD
//! tier of the network cost model).
//!
//! Robustness is the point: an [`IoPlan`] injects torn writes, bit rot
//! and transient read errors as a pure function of a seed and the
//! operation coordinate (the same stateless
//! [`dedukt_sim::rng::unit_from_coords`] machinery the fault, memory
//! and rank plans use), so every engine derives the identical fault
//! schedule without coordination and recovery is reproducible
//! bit-for-bit. See DESIGN.md §12.

#![warn(missing_docs)]

pub mod block;
pub mod manifest;
pub mod plan;
pub mod store;

pub use block::{frame_block, parse_block, payload_checksum, BlockFrame, BLOCK_HEADER_BYTES};
pub use manifest::{read_bin_counts, write_bin_counts, BinCounts, BinMeta, Manifest};
pub use plan::{IoPlan, IoSpec};
pub use store::{BinStore, BinWrite, ReadFailure};
