//! Bloom-filter singleton suppression (extension).
//!
//! In real sequencing data most distinct k-mers are singletons caused by
//! errors; Melsted & Pritchard's classic trick (the paper's citation \[20\])
//! inserts a k-mer into the count table only on its *second* appearance:
//! the first occurrence just sets the Bloom filter. This shrinks tables by
//! the singleton fraction at the cost of losing exact singleton counts.
//! It plugs into the counting phase of any of this crate's pipelines.

use dedukt_hash::fmix64;

/// A fixed-size blocked Bloom filter for packed k-mer words.
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: Vec<u64>,
    mask: u64,
    hashes: u32,
}

impl BloomFilter {
    /// Creates a filter with capacity for roughly `expected` keys at
    /// `bits_per_key` bits each (10 bits/key ≈ 1% false-positive rate).
    pub fn new(expected: usize, bits_per_key: usize) -> BloomFilter {
        let total_bits = (expected.max(64) * bits_per_key).next_power_of_two();
        let words = total_bits / 64;
        // k ≈ 0.69 × bits-per-key, clamped to something sane.
        let hashes = ((bits_per_key as f64 * 0.69).round() as u32).clamp(1, 16);
        BloomFilter {
            bits: vec![0; words],
            mask: (total_bits - 1) as u64,
            hashes,
        }
    }

    fn bit_positions(&self, key: u64) -> impl Iterator<Item = u64> + '_ {
        // Kirsch-Mitzenmacher double hashing from two mixes of the key.
        let h1 = fmix64(key);
        let h2 = fmix64(key.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15) | 1;
        (0..self.hashes as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2))) & self.mask)
    }

    /// Inserts `key`; returns `true` if it was *possibly already present*
    /// (i.e. all bits were already set).
    pub fn insert(&mut self, key: u64) -> bool {
        let mut seen = true;
        // Collect positions first: borrow rules (bit_positions borrows
        // self immutably).
        let positions: Vec<u64> = self.bit_positions(key).collect();
        for pos in positions {
            let (w, b) = ((pos / 64) as usize, pos % 64);
            if self.bits[w] & (1 << b) == 0 {
                seen = false;
                self.bits[w] |= 1 << b;
            }
        }
        seen
    }

    /// True if `key` is possibly present (false positives possible, false
    /// negatives impossible).
    pub fn contains(&self, key: u64) -> bool {
        self.bit_positions(key).all(|pos| {
            let (w, b) = ((pos / 64) as usize, pos % 64);
            self.bits[w] & (1 << b) != 0
        })
    }

    /// Size of the filter in bytes.
    pub fn bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

/// A counting front-end that suppresses first occurrences: returns `true`
/// when the k-mer should be inserted into the real table (second and later
/// occurrences, modulo false positives).
#[derive(Clone, Debug)]
pub struct SingletonSuppressor {
    filter: BloomFilter,
}

impl SingletonSuppressor {
    /// Creates a suppressor for roughly `expected` distinct k-mers.
    pub fn new(expected: usize) -> SingletonSuppressor {
        SingletonSuppressor {
            filter: BloomFilter::new(expected, 10),
        }
    }

    /// Observes one k-mer instance; `true` means "count it".
    pub fn observe(&mut self, kmer: u64) -> bool {
        self.filter.insert(kmer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(1000, 10);
        for k in 0..1000u64 {
            f.insert(k * 7919);
        }
        for k in 0..1000u64 {
            assert!(f.contains(k * 7919));
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut f = BloomFilter::new(10_000, 10);
        for k in 0..10_000u64 {
            f.insert(fmix64(k));
        }
        let fps = (0..10_000u64)
            .filter(|&k| f.contains(fmix64(k + 1_000_000)))
            .count();
        // 10 bits/key targets ~1%; accept up to 3%.
        assert!(fps < 300, "false positives: {fps}");
    }

    #[test]
    fn insert_reports_prior_presence() {
        let mut f = BloomFilter::new(100, 12);
        assert!(!f.insert(42));
        assert!(f.insert(42));
    }

    #[test]
    fn suppressor_drops_first_occurrence_only() {
        let mut s = SingletonSuppressor::new(1000);
        // First time: suppressed. Second and third: counted.
        assert!(!s.observe(123));
        assert!(s.observe(123));
        assert!(s.observe(123));
    }

    #[test]
    fn suppressor_reduces_table_size_on_skewed_input() {
        // 1000 singletons + 10 heavy k-mers: the suppressor should admit
        // (almost) only the heavy ones.
        let mut s = SingletonSuppressor::new(2000);
        let mut admitted = std::collections::HashSet::new();
        for k in 0..1000u64 {
            if s.observe(fmix64(k)) {
                admitted.insert(fmix64(k));
            }
        }
        for _ in 0..5 {
            for k in 2000..2010u64 {
                if s.observe(fmix64(k)) {
                    admitted.insert(fmix64(k));
                }
            }
        }
        assert!(admitted.len() >= 10, "heavy k-mers must be admitted");
        assert!(
            admitted.len() < 50,
            "most singletons must be suppressed: {}",
            admitted.len()
        );
    }
}
