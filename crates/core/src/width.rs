//! The packed-key width abstraction that makes the counting stack
//! generic over k.
//!
//! [`PackedKmer`] unifies the two key widths the counters run at —
//! `u64` for the paper's narrow regime (k ≤ 31) and `u128` for the
//! wide-k extension (k ≤ 63) — by combining the hash-table key contract
//! ([`TableKey`]) with the bit-packing contract
//! ([`dedukt_dna::kmer::KmerWord`]) and adding what the staged driver
//! needs on top: exact wire-byte sizes (8 vs 16 for k-mers, 9 vs 17 for
//! supermers), the width's counting bounds, and the device-atomic slot
//! machinery backing [`crate::table::DeviceCountTable`] at either width.
//!
//! With this trait in place there is exactly one driver, one set of
//! `CounterStages`, one device table, and one CLI path; k ≤ 31 and
//! k ≤ 63 differ only in the type parameter.

use crate::table::TableKey;
use dedukt_dna::kmer::KmerWord;
use dedukt_gpu::{AtomicBuffer, AtomicBuffer128, Device, OomError};

/// A packed k-mer key the full counting stack can run on: hashable table
/// key, 2-bit packable word, and device-table slot element.
///
/// The counting bound is one below the packing bound at either width:
/// the all-ones word (k = [`KmerWord::MAX_K`], every base the symbol 3)
/// would collide with the empty-slot sentinel [`TableKey::EMPTY`], so
/// the pipelines cap k at [`PackedKmer::MAX_COUNTING_K`].
pub trait PackedKmer: TableKey + KmerWord + dedukt_net::WireHash {
    /// Bytes one packed k-mer occupies on the wire (8 or 16).
    const KMER_WIRE_BYTES: u64 = Self::WORD_BYTES as u64;

    /// Bytes one supermer occupies on the wire: the packed word plus a
    /// length byte (9 or 17, §IV-B).
    const SUPERMER_WIRE_BYTES: u64 = Self::WORD_BYTES as u64 + 1;

    /// Largest k the counting pipelines accept at this width (31 or 63).
    const MAX_COUNTING_K: usize;

    /// Largest supermer length in bases one word can pack, which bounds
    /// `window + k - 1` (32 or 64).
    const MAX_SUPERMER_BASES: usize = Self::MAX_K;

    /// Widens the packed word to `u128` losslessly — the serialization
    /// hatch the out-of-core bin store uses for on-disk records and
    /// counts files at either width (DESIGN.md §12).
    fn to_u128(self) -> u128;

    /// Inverse of [`PackedKmer::to_u128`]. Truncating — only feed it
    /// values this width produced.
    fn from_u128(v: u128) -> Self;

    /// Device-resident key-slot array of the width's device count table,
    /// supporting the CUDA-style atomic CAS claim loop.
    type DeviceSlots: Send + Sync + std::fmt::Debug;

    /// Allocates `len` key slots on `device`, initialised to
    /// [`TableKey::EMPTY`]. Charged at [`PackedKmer::KMER_WIRE_BYTES`]
    /// per slot.
    fn alloc_device_slots(device: &Device, len: usize) -> Result<Self::DeviceSlots, OomError>;

    /// Loads slot `i`.
    fn slot_load(slots: &Self::DeviceSlots, i: usize) -> Self;

    /// Atomic compare-and-swap on slot `i` (CUDA `atomicCAS` semantics):
    /// returns the value observed before the operation.
    fn slot_cas(slots: &Self::DeviceSlots, i: usize, current: Self, new: Self) -> Self;

    /// Copies all slots to the host.
    fn slots_snapshot(slots: &Self::DeviceSlots) -> Vec<Self>;
}

impl PackedKmer for u64 {
    const MAX_COUNTING_K: usize = 31;

    fn to_u128(self) -> u128 {
        self as u128
    }

    fn from_u128(v: u128) -> u64 {
        v as u64
    }

    type DeviceSlots = AtomicBuffer;

    fn alloc_device_slots(device: &Device, len: usize) -> Result<AtomicBuffer, OomError> {
        let slots = device.alloc_atomic(len)?;
        for i in 0..len {
            slots.store(i, u64::EMPTY);
        }
        Ok(slots)
    }

    #[inline]
    fn slot_load(slots: &AtomicBuffer, i: usize) -> u64 {
        slots.load(i)
    }

    #[inline]
    fn slot_cas(slots: &AtomicBuffer, i: usize, current: u64, new: u64) -> u64 {
        slots.compare_and_swap(i, current, new)
    }

    fn slots_snapshot(slots: &AtomicBuffer) -> Vec<u64> {
        slots.snapshot()
    }
}

impl PackedKmer for u128 {
    const MAX_COUNTING_K: usize = 63;

    fn to_u128(self) -> u128 {
        self
    }

    fn from_u128(v: u128) -> u128 {
        v
    }

    type DeviceSlots = AtomicBuffer128;

    fn alloc_device_slots(device: &Device, len: usize) -> Result<AtomicBuffer128, OomError> {
        let slots = device.alloc_atomic128(len)?;
        for i in 0..len {
            slots.store(i, u128::EMPTY);
        }
        Ok(slots)
    }

    #[inline]
    fn slot_load(slots: &AtomicBuffer128, i: usize) -> u128 {
        slots.load(i)
    }

    #[inline]
    fn slot_cas(slots: &AtomicBuffer128, i: usize, current: u128, new: u128) -> u128 {
        slots.compare_and_swap(i, current, new)
    }

    fn slots_snapshot(slots: &AtomicBuffer128) -> Vec<u128> {
        slots.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_match_the_paper_figures() {
        assert_eq!(<u64 as PackedKmer>::KMER_WIRE_BYTES, 8);
        assert_eq!(<u64 as PackedKmer>::SUPERMER_WIRE_BYTES, 9);
        assert_eq!(<u128 as PackedKmer>::KMER_WIRE_BYTES, 16);
        assert_eq!(<u128 as PackedKmer>::SUPERMER_WIRE_BYTES, 17);
        assert_eq!(<u64 as PackedKmer>::MAX_COUNTING_K, 31);
        assert_eq!(<u128 as PackedKmer>::MAX_COUNTING_K, 63);
        assert_eq!(<u64 as PackedKmer>::MAX_SUPERMER_BASES, 32);
        assert_eq!(<u128 as PackedKmer>::MAX_SUPERMER_BASES, 64);
    }

    #[test]
    fn device_slots_start_empty_at_both_widths() {
        let device = Device::v100();
        let narrow = <u64 as PackedKmer>::alloc_device_slots(&device, 8).unwrap();
        assert!((0..8).all(|i| <u64 as PackedKmer>::slot_load(&narrow, i) == u64::EMPTY));
        let wide = <u128 as PackedKmer>::alloc_device_slots(&device, 8).unwrap();
        assert!((0..8).all(|i| <u128 as PackedKmer>::slot_load(&wide, i) == u128::EMPTY));
    }
}
