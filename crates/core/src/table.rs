//! Open-addressing k-mer count tables with linear probing (§III-B3).
//!
//! Two variants share the layout (a power-of-two slot array of packed
//! k-mer keys plus 32-bit counts, linear probing, an all-ones empty
//! sentinel: `u64::MAX` at the narrow width, `u128::MAX` at the wide
//! width). The sentinels stay valid at both widths because a packed
//! k-mer occupies at most `2k` bits of its word — 62 of 64 for k ≤ 31,
//! 126 of 128 for wide k ≤ 63 — so a real key always has zero top bits
//! and can never be all-ones:
//!
//! * [`HostCountTable`] — single-owner, growable; used by the CPU baseline
//!   ranks.
//! * [`DeviceCountTable`] — fixed-capacity over device atomics; insertion
//!   is the CUDA-style CAS claim loop the paper describes ("Both
//!   operations are handled atomically to avoid race conditions …
//!   collisions are addressed using … linear probing"). Safe to call from
//!   concurrently executing thread blocks.

use crate::config::CountingConfig;
use crate::width::PackedKmer;
use dedukt_dna::spectrum::Spectrum;
use dedukt_gpu::{AtomicBuffer32, Device, OomError};
use dedukt_hash::Murmur3x64;

/// The narrow-width empty-slot sentinel. k ≤ 31 keeps every real packed
/// k-mer below it (wide keys use `u128::MAX`, see [`TableKey::EMPTY`]).
pub const EMPTY_KEY: u64 = u64::MAX;

/// A packed k-mer key a count table can store: `u64` for k ≤ 31 (the
/// paper's regime) or `u128` for wide k ≤ 63 (this reproduction's long-k
/// extension). Keys are `Ord` so spilled k-mers can be merged back into
/// a table snapshot by deterministic sorted-run coalescing.
pub trait TableKey: Copy + Eq + Ord + std::fmt::Debug + Send + Sync {
    /// Sentinel marking an empty slot; no real packed k-mer may equal it
    /// (guaranteed by the k-length caps above).
    const EMPTY: Self;

    /// 64-bit MurmurHash3 of the key.
    fn hash_with(&self, hasher: &Murmur3x64) -> u64;
}

impl TableKey for u64 {
    const EMPTY: u64 = u64::MAX;

    #[inline]
    fn hash_with(&self, hasher: &Murmur3x64) -> u64 {
        hasher.hash_u64(*self)
    }
}

impl TableKey for u128 {
    const EMPTY: u128 = u128::MAX;

    #[inline]
    fn hash_with(&self, hasher: &Murmur3x64) -> u64 {
        hasher.hash_u128(*self)
    }
}

/// Rounds a slot count up to a power of two able to hold `expected`
/// distinct keys at `load_factor`.
pub fn capacity_for(expected: usize, load_factor: f64) -> usize {
    assert!((0.0..1.0).contains(&load_factor) && load_factor > 0.0);
    let needed = ((expected.max(1) as f64) / load_factor).ceil() as usize;
    needed.next_power_of_two()
}

/// Sizes a table for the k-mers a rank is about to count, from its
/// received instance count (distinct ≤ instances).
pub fn table_capacity(cfg: &CountingConfig, received_kmers: usize) -> usize {
    capacity_for(received_kmers, cfg.table_load_factor)
}

/// A growable, single-owner open-addressing count table, generic over
/// the packed key width (`u64` by default; `u128` for the wide-k
/// extension).
#[derive(Clone, Debug)]
pub struct HostCountTable<K: TableKey = u64> {
    keys: Vec<K>,
    counts: Vec<u32>,
    mask: usize,
    distinct: usize,
    max_load: f64,
    hasher: Murmur3x64,
    probes: u64,
}

impl<K: TableKey> HostCountTable<K> {
    /// Creates a table sized for `expected` distinct keys.
    pub fn with_expected(expected: usize, max_load: f64, hash_seed: u64) -> HostCountTable<K> {
        let cap = capacity_for(expected, max_load).max(16);
        HostCountTable {
            keys: vec![K::EMPTY; cap],
            counts: vec![0; cap],
            mask: cap - 1,
            distinct: 0,
            max_load,
            hasher: Murmur3x64::new(hash_seed),
            probes: 0,
        }
    }

    /// Current slot capacity.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Number of distinct keys stored.
    pub fn distinct(&self) -> usize {
        self.distinct
    }

    /// Total count mass (sum of all counts).
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }

    /// Total probe steps performed by inserts (collision metric).
    pub fn probe_steps(&self) -> u64 {
        self.probes
    }

    /// Inserts one k-mer instance: increments its count, creating the
    /// entry if new (Algorithm 1, lines 11-15).
    pub fn insert(&mut self, kmer: K) {
        debug_assert_ne!(kmer, K::EMPTY, "k-mer collides with empty sentinel");
        if (self.distinct + 1) as f64 > self.capacity() as f64 * self.max_load {
            self.grow();
        }
        let mut slot = (kmer.hash_with(&self.hasher) as usize) & self.mask;
        loop {
            let k = self.keys[slot];
            if k == kmer {
                self.counts[slot] += 1;
                return;
            }
            if k == K::EMPTY {
                self.keys[slot] = kmer;
                self.counts[slot] = 1;
                self.distinct += 1;
                return;
            }
            slot = (slot + 1) & self.mask;
            self.probes += 1;
        }
    }

    /// The count of `kmer`, or `None` if absent.
    pub fn get(&self, kmer: K) -> Option<u32> {
        let mut slot = (kmer.hash_with(&self.hasher) as usize) & self.mask;
        loop {
            let k = self.keys[slot];
            if k == kmer {
                return Some(self.counts[slot]);
            }
            if k == K::EMPTY {
                return None;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Iterates `(kmer, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (K, u32)> + '_ {
        self.keys
            .iter()
            .zip(self.counts.iter())
            .filter(|(&k, _)| k != K::EMPTY)
            .map(|(&k, &c)| (k, c))
    }

    /// Builds this table's k-mer spectrum.
    pub fn spectrum(&self) -> Spectrum {
        Spectrum::from_counts(self.iter().map(|(_, c)| c))
    }

    fn grow(&mut self) {
        let new_cap = self.capacity() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![K::EMPTY; new_cap]);
        let old_counts = std::mem::replace(&mut self.counts, vec![0; new_cap]);
        self.mask = new_cap - 1;
        for (k, c) in old_keys.into_iter().zip(old_counts) {
            if k == K::EMPTY {
                continue;
            }
            let mut slot = (k.hash_with(&self.hasher) as usize) & self.mask;
            while self.keys[slot] != K::EMPTY {
                slot = (slot + 1) & self.mask;
            }
            self.keys[slot] = k;
            self.counts[slot] = c;
        }
    }
}

/// Probe accounting for one successful [`DeviceCountTable::insert`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InsertResult {
    /// Probe steps taken (1 = direct hit).
    pub steps: u32,
    /// True if the insert claimed a fresh slot (first occurrence).
    pub new: bool,
}

/// Outcome of one [`DeviceCountTable::insert`]: either the instance was
/// counted, or every slot was visited and the table is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The instance landed; probe accounting inside.
    Inserted(InsertResult),
    /// All slots were probed and none could take the key. Linear probing
    /// visits every slot before giving up, so `Full` also proves the key
    /// is *not* in the table — the caller must regrow the table or spill
    /// the instance to the host, never drop it.
    Full {
        /// Probe steps spent discovering fullness (= the capacity).
        steps: u32,
    },
}

/// A fixed-capacity count table over device atomics, safe for concurrent
/// insertion from many thread blocks — the GPU counting kernel's data
/// structure (§III-B3). Generic over the packed key width (`u64` by
/// default; `u128` for wide k).
#[derive(Debug)]
pub struct DeviceCountTable<K: PackedKmer = u64> {
    keys: K::DeviceSlots,
    counts: AtomicBuffer32,
    mask: usize,
    capacity: usize,
    hasher: Murmur3x64,
}

impl<K: PackedKmer> DeviceCountTable<K> {
    /// Allocates a table with `capacity` slots (rounded up to a power of
    /// two) on `device`, keys initialised to the empty sentinel.
    pub fn new(
        device: &Device,
        capacity: usize,
        hash_seed: u64,
    ) -> Result<DeviceCountTable<K>, OomError> {
        let cap = capacity.next_power_of_two().max(16);
        let keys = K::alloc_device_slots(device, cap)?;
        let counts = device.alloc_atomic32(cap)?;
        Ok(DeviceCountTable {
            keys,
            counts,
            mask: cap - 1,
            capacity: cap,
            hasher: Murmur3x64::new(hash_seed),
        })
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts one k-mer instance from any thread. On success returns the
    /// probe-step count (≥ 1) and whether this insert claimed a fresh
    /// slot — both feed the kernel cost accounting. When every slot is
    /// occupied by other keys the insert returns [`InsertOutcome::Full`]
    /// instead of landing; tables sized from estimates can fill up under
    /// memory pressure, so a full table is data, not a bug.
    ///
    /// This is the CUDA idiom: `atomicCAS` to claim an empty slot, then
    /// `atomicAdd` on the count; linear probing on collision.
    pub fn insert(&self, kmer: K) -> InsertOutcome {
        self.insert_counted(kmer, 1)
    }

    /// Like [`DeviceCountTable::insert`] but adds `count` occurrences at
    /// once — the rehash primitive: a regrow kernel migrates each old
    /// slot's accumulated count with a single probe sequence.
    pub fn insert_counted(&self, kmer: K, count: u32) -> InsertOutcome {
        debug_assert_ne!(kmer, K::EMPTY, "k-mer collides with empty sentinel");
        debug_assert!(count > 0, "inserting zero occurrences is meaningless");
        let mut slot = (kmer.hash_with(&self.hasher) as usize) & self.mask;
        let mut steps = 1u32;
        loop {
            let existing = K::slot_load(&self.keys, slot);
            if existing == kmer {
                self.counts.fetch_add(slot, count);
                return InsertOutcome::Inserted(InsertResult { steps, new: false });
            }
            if existing == K::EMPTY {
                let prev = K::slot_cas(&self.keys, slot, K::EMPTY, kmer);
                if prev == K::EMPTY || prev == kmer {
                    self.counts.fetch_add(slot, count);
                    return InsertOutcome::Inserted(InsertResult {
                        steps,
                        new: prev == K::EMPTY,
                    });
                }
                // Another thread claimed the slot for a different k-mer;
                // fall through to probe on.
            }
            if steps as usize >= self.capacity() {
                // Every slot visited, none claimable: the table is full
                // and (by the full probe circuit) the key is absent.
                return InsertOutcome::Full { steps };
            }
            slot = (slot + 1) & self.mask;
            steps += 1;
        }
    }

    /// The count of `kmer`, or `None` (quiescent reads only). Bounds the
    /// probe on slots visited, mirroring the insert path: after
    /// `capacity` probes every slot has been seen and the key is absent.
    pub fn get(&self, kmer: K) -> Option<u32> {
        let mut slot = (kmer.hash_with(&self.hasher) as usize) & self.mask;
        let mut steps = 1usize;
        loop {
            let k = K::slot_load(&self.keys, slot);
            if k == kmer {
                return Some(self.counts.load(slot));
            }
            if k == K::EMPTY || steps >= self.capacity() {
                return None;
            }
            slot = (slot + 1) & self.mask;
            steps += 1;
        }
    }

    /// Copies the table to the host as `(kmer, count)` pairs
    /// (quiescent reads only).
    pub fn to_host(&self) -> Vec<(K, u32)> {
        let keys = K::slots_snapshot(&self.keys);
        let counts = self.counts.snapshot();
        keys.into_iter()
            .zip(counts)
            .filter(|&(k, _)| k != K::EMPTY)
            .collect()
    }

    /// Number of distinct keys (quiescent reads only). Shares the
    /// [`DeviceCountTable::to_host`] snapshot path rather than taking a
    /// second, possibly-skewed snapshot of its own.
    pub fn distinct(&self) -> usize {
        self.to_host().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_sizing() {
        assert_eq!(capacity_for(700, 0.7), 1024);
        assert_eq!(capacity_for(1, 0.7), 2);
        assert_eq!(capacity_for(0, 0.5), 2);
    }

    #[test]
    fn host_insert_get_roundtrip() {
        let mut t: HostCountTable = HostCountTable::with_expected(100, 0.7, 1);
        for i in 0..50u64 {
            for _ in 0..=i % 5 {
                t.insert(i);
            }
        }
        for i in 0..50u64 {
            assert_eq!(t.get(i), Some((i % 5 + 1) as u32), "key {i}");
        }
        assert_eq!(t.get(999), None);
        assert_eq!(t.distinct(), 50);
    }

    #[test]
    fn host_grows_transparently() {
        let mut t: HostCountTable = HostCountTable::with_expected(4, 0.7, 2);
        let initial_cap = t.capacity();
        for i in 0..10_000u64 {
            t.insert(i * 3);
        }
        assert!(t.capacity() > initial_cap);
        assert_eq!(t.distinct(), 10_000);
        assert_eq!(t.total(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(t.get(i * 3), Some(1));
        }
    }

    #[test]
    fn host_counts_duplicates() {
        let mut t: HostCountTable = HostCountTable::with_expected(8, 0.7, 3);
        for _ in 0..1000 {
            t.insert(42);
        }
        assert_eq!(t.get(42), Some(1000));
        assert_eq!(t.distinct(), 1);
        assert_eq!(t.total(), 1000);
    }

    #[test]
    fn host_spectrum_matches_inserts() {
        let mut t: HostCountTable = HostCountTable::with_expected(16, 0.7, 4);
        t.insert(1);
        t.insert(2);
        t.insert(2);
        t.insert(3);
        t.insert(3);
        t.insert(3);
        let s = t.spectrum();
        assert_eq!(s.distinct(), 3);
        assert_eq!(s.total(), 6);
        assert_eq!(s.singletons(), 1);
    }

    #[test]
    fn host_key_zero_is_valid() {
        let mut t: HostCountTable = HostCountTable::with_expected(4, 0.7, 5);
        t.insert(0);
        t.insert(0);
        assert_eq!(t.get(0), Some(2));
    }

    #[test]
    fn device_table_counts_like_host_table() {
        let device = Device::v100();
        let t = DeviceCountTable::new(&device, 256, 7).unwrap();
        let mut h: HostCountTable = HostCountTable::with_expected(128, 0.7, 7);
        for i in 0..128u64 {
            let reps = i % 7 + 1;
            for _ in 0..reps {
                t.insert(i);
                h.insert(i);
            }
        }
        for i in 0..128u64 {
            assert_eq!(t.get(i), h.get(i), "key {i}");
        }
        assert_eq!(t.distinct(), h.distinct());
    }

    #[test]
    fn device_concurrent_inserts_are_exact() {
        let device = Device::v100();
        let t = std::sync::Arc::new(DeviceCountTable::new(&device, 4096, 9).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let t = std::sync::Arc::clone(&t);
                std::thread::spawn(move || {
                    // All threads hammer an overlapping key range.
                    for i in 0..1000u64 {
                        t.insert(i % 257);
                    }
                    let _ = tid;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = t.to_host().iter().map(|&(_, c)| c as u64).sum();
        assert_eq!(total, 4000, "no insert may be lost or duplicated");
        assert_eq!(t.distinct(), 257);
    }

    #[test]
    fn wide_device_table_counts_like_wide_host_table() {
        let device = Device::v100();
        let t: DeviceCountTable<u128> = DeviceCountTable::new(&device, 256, 7).unwrap();
        let mut h: HostCountTable<u128> = HostCountTable::with_expected(128, 0.7, 7);
        for i in 0..128u128 {
            // Keys above the u64 range so the wide hash path is exercised.
            let key = (i << 64) | (i * 3);
            let reps = i % 7 + 1;
            for _ in 0..reps {
                t.insert(key);
                h.insert(key);
            }
        }
        for i in 0..128u128 {
            let key = (i << 64) | (i * 3);
            assert_eq!(t.get(key), h.get(key), "key {i}");
        }
        assert_eq!(t.distinct(), h.distinct());
        let total: u64 = t.to_host().iter().map(|&(_, c)| c as u64).sum();
        assert_eq!(total, h.total());
    }

    #[test]
    fn device_table_full_reports_outcome() {
        let device = Device::v100();
        let t = DeviceCountTable::new(&device, 16, 11).unwrap();
        let mut full = 0usize;
        for i in 0..100u64 {
            match t.insert(i) {
                InsertOutcome::Inserted(_) => {}
                InsertOutcome::Full { steps } => {
                    // Fullness costs a complete probe circuit, no more.
                    assert_eq!(steps as usize, t.capacity());
                    full += 1;
                }
            }
        }
        // 16 slots, 100 distinct keys: the first 16 land, the rest bounce.
        assert_eq!(t.distinct(), t.capacity());
        assert_eq!(full, 100 - t.capacity());
        // Stored keys still count further instances after going full.
        let (stored, _) = t.to_host()[0];
        assert!(matches!(t.insert(stored), InsertOutcome::Inserted(_)));
        // And lookups of bounced keys terminate with None despite the
        // table having no empty slot to stop at.
        let bounced = (0..100u64).find(|&k| t.get(k).is_none()).unwrap();
        assert_eq!(t.get(bounced), None);
    }

    #[test]
    fn device_probe_steps_and_newness_reported() {
        let device = Device::v100();
        let t = DeviceCountTable::<u64>::new(&device, 64, 13).unwrap();
        let first = t.insert(5);
        assert_eq!(
            first,
            InsertOutcome::Inserted(InsertResult {
                steps: 1,
                new: true
            })
        );
        let again = t.insert(5);
        assert_eq!(
            again,
            InsertOutcome::Inserted(InsertResult {
                steps: 1,
                new: false
            })
        );
    }

    #[test]
    fn device_insert_counted_adds_in_one_probe_sequence() {
        let device = Device::v100();
        let t = DeviceCountTable::<u64>::new(&device, 64, 17).unwrap();
        assert!(matches!(
            t.insert_counted(9, 250),
            InsertOutcome::Inserted(InsertResult { new: true, .. })
        ));
        assert!(matches!(
            t.insert_counted(9, 250),
            InsertOutcome::Inserted(InsertResult { new: false, .. })
        ));
        assert_eq!(t.get(9), Some(500));
    }

    #[test]
    fn host_grow_preserves_probe_accounting() {
        // `grow()` rehashes in place and must not perturb the insert-path
        // probe counter (the collision metric) or any count.
        let mut t: HostCountTable = HostCountTable::with_expected(512, 0.7, 21);
        for i in 0..300u64 {
            for _ in 0..=i % 3 {
                t.insert(i * 7 + 1);
            }
        }
        let probes = t.probe_steps();
        let distinct = t.distinct();
        let total = t.total();
        let cap = t.capacity();
        t.grow();
        assert_eq!(t.probe_steps(), probes, "grow must not count probes");
        assert_eq!(t.distinct(), distinct);
        assert_eq!(t.total(), total);
        assert_eq!(t.capacity(), cap * 2);
        for i in 0..300u64 {
            assert_eq!(t.get(i * 7 + 1), Some((i % 3 + 1) as u32), "key {i}");
        }
    }
}
