//! Supermers (§IV): maximal runs of consecutive k-mers sharing a minimizer.
//!
//! Two builders are provided:
//!
//! * [`build_supermers_reference`] — the unbounded sequential scan: extend
//!   the window while the minimizer is unchanged. This is the textbook
//!   definition and the oracle the windowed builder is tested against.
//! * [`supermers_of_window`] / [`build_supermers_windowed`] — Algorithm 2:
//!   reads are cut into windows of `window` k-mer *positions*, one GPU
//!   thread per window, so supermers never span window boundaries and
//!   their length is bounded by `window + k - 1` bases — 31 bases for the
//!   paper's `k = 17, window = 15`, so every supermer packs into one
//!   64-bit word (§IV-C).
//!
//! Both builders preserve the defining invariant, enforced by property
//! tests: *the multiset of k-mers extracted from the supermers equals the
//! multiset of k-mers of the read*, and every k-mer inside a supermer has
//! the supermer's minimizer.

use crate::minimizer::MinimizerScheme;
use dedukt_dna::kmer::KmerWord;
use dedukt_dna::Encoding;

/// A packed supermer, generic over its word width: at most
/// [`KmerWord::MAX_K`] bases in one word (MSB-first, like
/// [`dedukt_dna::kmer::Kmer`]) plus its base length and the shared
/// minimizer.
///
/// On the wire a supermer costs `WORD_BYTES + 1` bytes — 9 for the
/// narrow `u64` width, 17 for wide `u128` — the packed word and one
/// length byte ("this approach requires an extra byte of communication to
/// identify the length of each supermer", §V-D). The minimizer is *not*
/// transmitted — the receiver only needs the bases. Under
/// `--wire-compress` a whole destination bucket is instead serialized
/// through [`crate::wire`], which delta-codes the lengths and drops the
/// per-base padding; this flat per-record cost is then the *logical*
/// volume the codec's ratio is measured against.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SupermerW<W: KmerWord> {
    /// Packed bases, MSB-first, right-aligned.
    pub word: W,
    /// Number of bases (k ..= window + k − 1 ≤ `W::MAX_K`).
    pub len: u8,
    /// The packed m-mer word every constituent k-mer minimizes to
    /// (always a `u64`: m ≤ 31 at either width).
    pub minimizer: u64,
}

/// The narrow (k ≤ 31) supermer the paper's pipelines exchange.
pub type Supermer = SupermerW<u64>;

impl<W: KmerWord> SupermerW<W> {
    /// Bytes this supermer occupies on the wire (packed word + length
    /// byte): 9 narrow, 17 wide.
    pub const WIRE_BYTES: u64 = W::WORD_BYTES as u64 + 1;

    /// Number of k-mers packed inside, for k-mer length `k`.
    #[inline]
    pub fn num_kmers(&self, k: usize) -> usize {
        (self.len as usize).saturating_sub(k - 1)
    }

    /// Extracts the `i`-th constituent k-mer word (0-based from the left).
    #[inline]
    pub fn kmer_at(&self, i: usize, k: usize) -> W {
        debug_assert!(i + k <= self.len as usize);
        self.word.subword(self.len as usize, i, k)
    }

    /// Iterates all constituent k-mer words.
    pub fn kmers(&self, k: usize) -> impl Iterator<Item = W> + '_ {
        (0..self.num_kmers(k)).map(move |i| self.kmer_at(i, k))
    }

    /// Decodes the bases back to codes under `encoding`.
    pub fn codes(&self, encoding: Encoding) -> Vec<u8> {
        self.word.word_codes(self.len as usize, encoding)
    }
}

/// An unbounded supermer from the reference builder (may exceed 32 bases,
/// so it carries its codes).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RefSupermer {
    /// Base codes of the supermer.
    pub codes: Vec<u8>,
    /// The shared minimizer word.
    pub minimizer: u64,
}

impl RefSupermer {
    /// Number of k-mers packed inside.
    pub fn num_kmers(&self, k: usize) -> usize {
        self.codes.len().saturating_sub(k - 1)
    }
}

/// Packs `codes[start..start+len]` into a word under `encoding`
/// (MSB-first). `len` must be ≤ `W::MAX_K`.
#[inline]
fn pack_span<W: KmerWord>(codes: &[u8], start: usize, len: usize, encoding: Encoding) -> W {
    W::pack_codes(&codes[start..start + len], encoding)
}

/// Reference builder: one sequential scan, unbounded supermer length.
///
/// Returns the supermers in read order. Yields nothing for reads shorter
/// than k. Narrow (k ≤ 32) shorthand for [`build_supermers_reference_w`].
pub fn build_supermers_reference(
    codes: &[u8],
    k: usize,
    scheme: &MinimizerScheme,
) -> Vec<RefSupermer> {
    build_supermers_reference_w::<u64>(codes, k, scheme)
}

/// Width-generic reference builder: the same sequential scan with
/// minimizers computed over `W`-packed k-mer words, so it serves k up to
/// `W::MAX_K`. [`RefSupermer`] itself is width-independent (it carries
/// codes, not a packed word).
pub fn build_supermers_reference_w<W: KmerWord>(
    codes: &[u8],
    k: usize,
    scheme: &MinimizerScheme,
) -> Vec<RefSupermer> {
    assert!(scheme.m < k && k <= W::MAX_K);
    if codes.len() < k {
        return Vec::new();
    }
    let enc = scheme.encoding;
    let nkmers = codes.len() - k + 1;
    let mut out = Vec::new();
    let mut smer_start = 0usize;
    let mut prev_min = scheme
        .minimizer_of_w(pack_span::<W>(codes, 0, k, enc), k)
        .word;
    for pos in 1..nkmers {
        let kw = pack_span::<W>(codes, pos, k, enc);
        let mz = scheme.minimizer_of_w(kw, k).word;
        if mz != prev_min {
            out.push(RefSupermer {
                codes: codes[smer_start..pos + k - 1].to_vec(),
                minimizer: prev_min,
            });
            smer_start = pos;
            prev_min = mz;
        }
    }
    out.push(RefSupermer {
        codes: codes[smer_start..].to_vec(),
        minimizer: prev_min,
    });
    out
}

/// Number of windows Algorithm 2 uses for a read of `len` bases.
pub fn num_windows(len: usize, k: usize, window: usize) -> usize {
    if len < k {
        0
    } else {
        (len - k + 1).div_ceil(window)
    }
}

/// Algorithm 2, one window: builds the supermers of k-mer positions
/// `[wstart, min(wstart + window, nkmers))` of the read. This is exactly
/// the work of one GPU thread in the windowed kernel (§IV-B). Narrow
/// shorthand for [`supermers_of_window_w`].
pub fn supermers_of_window(
    codes: &[u8],
    wstart: usize,
    k: usize,
    window: usize,
    scheme: &MinimizerScheme,
    out: &mut Vec<Supermer>,
) {
    supermers_of_window_w::<u64>(codes, wstart, k, window, scheme, out)
}

/// Width-generic Algorithm 2 window builder: identical control flow at
/// either word width; supermers are bounded by `window + k - 1 ≤
/// W::MAX_K` bases so each packs into one `W` word.
pub fn supermers_of_window_w<W: KmerWord>(
    codes: &[u8],
    wstart: usize,
    k: usize,
    window: usize,
    scheme: &MinimizerScheme,
    out: &mut Vec<SupermerW<W>>,
) {
    debug_assert!(scheme.m < k && k <= W::MAX_K);
    debug_assert!(window + k - 1 <= W::MAX_K, "supermer must fit one word");
    let enc = scheme.encoding;
    let kmask = W::kmer_mask(k);
    let full = W::kmer_mask(W::MAX_K);
    let nkmers = codes.len().saturating_sub(k - 1);
    debug_assert!(wstart < nkmers);
    let wend = (wstart + window).min(nkmers);

    // First k-mer of the window starts a fresh supermer (Line 4-10).
    let mut kw = pack_span::<W>(codes, wstart, k, enc);
    let mut prev = scheme.minimizer_of_w(kw, k).word;
    let mut smer_word = kw;
    let mut smer_len = k;
    let mut smer_min = prev;

    // Remaining k-mers extend or flush (Line 11-22).
    for pos in wstart + 1..wend {
        // Roll the k-mer window by one base.
        let next_sym = enc.encode(codes[pos + k - 1]);
        kw = kw.roll_sym(next_sym, kmask);
        let mz = scheme.minimizer_of_w(kw, k).word;
        if mz != prev {
            out.push(SupermerW {
                word: smer_word,
                len: smer_len as u8,
                minimizer: smer_min,
            });
            smer_word = kw;
            smer_len = k;
            smer_min = mz;
        } else {
            // ADDCHAR: append the new base to the supermer (Line 20-21).
            // The full-width mask never clips: len ≤ window + k - 1.
            smer_word = smer_word.roll_sym(next_sym, full);
            smer_len += 1;
        }
        prev = mz;
    }
    out.push(SupermerW {
        word: smer_word,
        len: smer_len as u8,
        minimizer: smer_min,
    });
}

/// Algorithm 2 over a whole read: all windows in order. Narrow shorthand
/// for [`build_supermers_windowed_w`].
pub fn build_supermers_windowed(
    codes: &[u8],
    k: usize,
    window: usize,
    scheme: &MinimizerScheme,
) -> Vec<Supermer> {
    build_supermers_windowed_w::<u64>(codes, k, window, scheme)
}

/// Width-generic Algorithm 2 over a whole read.
pub fn build_supermers_windowed_w<W: KmerWord>(
    codes: &[u8],
    k: usize,
    window: usize,
    scheme: &MinimizerScheme,
) -> Vec<SupermerW<W>> {
    let mut out = Vec::new();
    let nkmers = codes.len().saturating_sub(k - 1);
    let mut w = 0;
    while w < nkmers {
        supermers_of_window_w(codes, w, k, window, scheme, &mut out);
        w += window;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimizer::OrderingKind;
    use dedukt_dna::base::Base;

    fn codes(s: &[u8]) -> Vec<u8> {
        s.iter()
            .map(|&c| Base::from_ascii(c).unwrap().code())
            .collect()
    }

    fn lex_scheme(m: usize) -> MinimizerScheme {
        MinimizerScheme {
            encoding: Encoding::Alphabetical,
            ordering: OrderingKind::EncodedLexicographic,
            m,
        }
    }

    fn direct_kmers(cs: &[u8], k: usize, enc: Encoding) -> Vec<u64> {
        let mut v: Vec<u64> = dedukt_dna::kmer::kmer_words(cs, k, enc).collect();
        v.sort_unstable();
        v
    }

    /// §IV-A / Fig. 4: read GTCATCGCACTTACTGATG, k = 8, m = 4,
    /// lexicographic ordering, no canonicalization → exactly 3 supermers of
    /// total length 33 (average 11), vs 12 k-mers × 8 = 96 bases, a 2.9×
    /// reduction.
    #[test]
    fn paper_worked_example() {
        let read = codes(b"GTCATCGCACTTACTGATG");
        assert_eq!(read.len(), 19);
        let s = lex_scheme(4);
        let smers = build_supermers_reference(&read, 8, &s);
        assert_eq!(smers.len(), 3, "paper: three supermers");
        let total: usize = smers.iter().map(|s| s.codes.len()).sum();
        assert_eq!(total, 33, "paper: total length 33");
        for sm in &smers {
            assert_eq!(sm.codes.len(), 11, "paper: average length 11");
        }
        // Fig. 4's reduction arithmetic: (19-8+1)*8 / 33 ≈ 2.9×.
        let kmer_bases = (19 - 8 + 1) * 8;
        let reduction = kmer_bases as f64 / total as f64;
        assert!((reduction - 2.909).abs() < 0.01, "reduction {reduction}");
    }

    #[test]
    fn reference_kmers_roundtrip() {
        let read = codes(b"GTCATCGCACTTACTGATGCCAGTTGCAACGGTA");
        let k = 8;
        let s = lex_scheme(4);
        let smers = build_supermers_reference(&read, k, &s);
        let mut got: Vec<u64> = Vec::new();
        for sm in &smers {
            got.extend(dedukt_dna::kmer::kmer_words(&sm.codes, k, s.encoding));
        }
        got.sort_unstable();
        assert_eq!(got, direct_kmers(&read, k, s.encoding));
    }

    #[test]
    fn windowed_kmers_roundtrip_multiple_windows() {
        let read = codes(b"GTCATCGCACTTACTGATGCCAGTTGCAACGGTAGGATCCA");
        let k = 8;
        let window = 5;
        let s = lex_scheme(4);
        let smers = build_supermers_windowed(&read, k, window, &s);
        let mut got: Vec<u64> = Vec::new();
        for sm in &smers {
            assert!((sm.len as usize) < window + k);
            got.extend(sm.kmers(k));
        }
        got.sort_unstable();
        assert_eq!(got, direct_kmers(&read, k, s.encoding));
    }

    #[test]
    fn windowed_supermers_never_exceed_word_capacity() {
        // Paper defaults: k=17, window=15 → max 31 bases.
        let read: Vec<u8> = (0..200).map(|i| (i % 4) as u8).collect();
        let s = MinimizerScheme {
            encoding: Encoding::PaperRandom,
            ordering: OrderingKind::EncodedLexicographic,
            m: 7,
        };
        let smers = build_supermers_windowed(&read, 17, 15, &s);
        for sm in &smers {
            assert!((17..=31).contains(&(sm.len as usize)));
        }
    }

    #[test]
    fn every_kmer_shares_its_supermers_minimizer() {
        let read = codes(b"GTCATCGCACTTACTGATGCCAGTTGCAACGGTA");
        let k = 10;
        let s = lex_scheme(5);
        for sm in build_supermers_windowed(&read, k, 6, &s) {
            for kw in sm.kmers(k) {
                assert_eq!(
                    s.minimizer_of(kw, k).word,
                    sm.minimizer,
                    "k-mer in supermer must share the minimizer"
                );
            }
        }
        for sm in build_supermers_reference(&read, k, &s) {
            for kw in dedukt_dna::kmer::kmer_words(&sm.codes, k, s.encoding) {
                assert_eq!(s.minimizer_of(kw, k).word, sm.minimizer);
            }
        }
    }

    #[test]
    fn short_reads_produce_nothing() {
        let read = codes(b"ACGT");
        assert!(build_supermers_reference(&read, 8, &lex_scheme(4)).is_empty());
        assert!(build_supermers_windowed(&read, 8, 5, &lex_scheme(4)).is_empty());
        assert_eq!(num_windows(4, 8, 5), 0);
    }

    #[test]
    fn window_count_formula() {
        // 19 bases, k=8 → 12 k-mer positions; window 5 → 3 windows.
        assert_eq!(num_windows(19, 8, 5), 3);
        assert_eq!(num_windows(19, 8, 12), 1);
        assert_eq!(num_windows(8, 8, 5), 1);
    }

    #[test]
    fn windowed_equals_reference_when_window_is_huge() {
        // With a window ≥ nkmers and total bases ≤ 32, the windowed builder
        // must produce exactly the reference segmentation.
        let read = codes(b"GTCATCGCACTTACTGATGCCAGTTGCAACGG"); // 32 bases
        let k = 8;
        let s = lex_scheme(4);
        let refr = build_supermers_reference(&read, k, &s);
        let win = build_supermers_windowed(&read, k, 25, &s);
        assert_eq!(refr.len(), win.len());
        for (r, w) in refr.iter().zip(&win) {
            assert_eq!(r.codes, w.codes(s.encoding));
            assert_eq!(r.minimizer, w.minimizer);
        }
    }

    #[test]
    fn supermer_accessors() {
        let read = codes(b"ACGTACGTACG");
        let s = lex_scheme(3);
        let smers = build_supermers_windowed(&read, 5, 4, &s);
        let total_kmers: usize = smers.iter().map(|sm| sm.num_kmers(5)).sum();
        assert_eq!(total_kmers, 11 - 5 + 1);
        // codes() roundtrip: concatenating supermer codes with overlaps
        // removed is not the read, but each supermer's codes must be a
        // substring of the read.
        for sm in &smers {
            let sc = sm.codes(s.encoding);
            assert!(read.windows(sc.len()).any(|w| w == &sc[..]));
        }
    }

    #[test]
    fn wire_bytes_constant_matches_paper() {
        // 8-byte packed word + 1 length byte (§V-D); 16 + 1 wide.
        assert_eq!(Supermer::WIRE_BYTES, 9);
        assert_eq!(SupermerW::<u128>::WIRE_BYTES, 17);
    }

    #[test]
    fn wide_windowed_kmers_roundtrip() {
        // k = 41 > 32 forces the u128 path end to end.
        let read: Vec<u8> = (0..170).map(|i| ((i * 7 + i / 5) % 4) as u8).collect();
        let k = 41;
        let window = 24; // window + k - 1 = 64 bases, exactly one u128
        let s = MinimizerScheme {
            encoding: Encoding::PaperRandom,
            ordering: OrderingKind::EncodedLexicographic,
            m: 11,
        };
        let smers = build_supermers_windowed_w::<u128>(&read, k, window, &s);
        let mut got: Vec<u128> = Vec::new();
        for sm in &smers {
            assert!((k..=window + k - 1).contains(&(sm.len as usize)));
            got.extend(sm.kmers(k));
            // Every constituent k-mer shares the supermer's minimizer.
            for kw in sm.kmers(k) {
                assert_eq!(s.minimizer_of_w(kw, k).word, sm.minimizer);
            }
        }
        got.sort_unstable();
        let mut expect: Vec<u128> = dedukt_dna::kmer::kmer_words128(&read, k, s.encoding).collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn wide_reference_builder_matches_narrow_at_small_k() {
        // At k ≤ 32 the width parameter must be invisible.
        let read = codes(b"GTCATCGCACTTACTGATGCCAGTTGCAACGGTA");
        let s = lex_scheme(4);
        let narrow = build_supermers_reference(&read, 8, &s);
        let wide = build_supermers_reference_w::<u128>(&read, 8, &s);
        assert_eq!(narrow, wide);
    }
}
