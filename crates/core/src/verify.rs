//! Reference counting oracle.
//!
//! A deliberately simple single-threaded counter: extract every k-mer of
//! every read, count in a `HashMap`. Every distributed pipeline is tested
//! against this — identical distinct counts, identical total mass,
//! identical per-k-mer counts — which is what makes the simulators'
//! functional half trustworthy.

use crate::config::CountingConfig;
use crate::width::PackedKmer;
use dedukt_dna::kmer::kmer_words_w;
use dedukt_dna::{Read, ReadSet};
use std::collections::HashMap;

/// Counts all k-mers of `reads` under `cfg` in one map (narrow, k ≤ 31).
pub fn reference_counts(reads: &ReadSet, cfg: &CountingConfig) -> HashMap<u64, u64> {
    reference_counts_w::<u64>(reads, cfg)
}

/// Width-generic oracle: counts all k-mers at the `K` key width, serving
/// k up to `K::MAX_COUNTING_K`.
pub fn reference_counts_w<K: PackedKmer>(reads: &ReadSet, cfg: &CountingConfig) -> HashMap<K, u64> {
    let mut map: HashMap<K, u64> = HashMap::new();
    for read in &reads.reads {
        count_read(read, cfg, &mut map);
    }
    map
}

fn count_read<K: PackedKmer>(read: &Read, cfg: &CountingConfig, map: &mut HashMap<K, u64>) {
    for w in kmer_words_w::<K>(&read.codes, cfg.k, cfg.encoding) {
        let key = if cfg.canonical {
            w.canonical_word(cfg.k)
        } else {
            w
        };
        *map.entry(key).or_insert(0) += 1;
    }
}

/// Total k-mer instances the oracle expects.
pub fn reference_total(reads: &ReadSet, k: usize) -> u64 {
    reads.total_kmers(k) as u64
}

/// Compares a distributed result (per-rank `(kmer, count)` lists over
/// disjoint key spaces) against the oracle, at either key width. Returns
/// `Ok(())` or a description of the first mismatch.
pub fn check_against_reference<K: PackedKmer>(
    reads: &ReadSet,
    cfg: &CountingConfig,
    per_rank: &[Vec<(K, u32)>],
) -> Result<(), String> {
    let oracle = reference_counts_w::<K>(reads, cfg);
    let mut seen: HashMap<K, u64> = HashMap::new();
    for (rank, entries) in per_rank.iter().enumerate() {
        for &(kmer, count) in entries {
            if let Some(prev) = seen.insert(kmer, count as u64) {
                return Err(format!(
                    "k-mer {kmer:?} counted on two ranks (rank {rank}; prev count {prev})"
                ));
            }
        }
    }
    if seen.len() != oracle.len() {
        return Err(format!(
            "distinct mismatch: got {}, oracle {}",
            seen.len(),
            oracle.len()
        ));
    }
    for (kmer, &expect) in &oracle {
        match seen.get(kmer) {
            Some(&got) if got == expect => {}
            Some(&got) => {
                return Err(format!(
                    "count mismatch for {kmer:?}: got {got}, oracle {expect}"
                ))
            }
            None => return Err(format!("k-mer {kmer:?} missing from distributed result")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reads(seqs: &[&[u8]]) -> ReadSet {
        seqs.iter()
            .enumerate()
            .map(|(i, s)| Read::from_ascii(format!("r{i}"), s).unwrap())
            .collect()
    }

    fn cfg(k: usize) -> CountingConfig {
        CountingConfig {
            k,
            m: (k - 1).min(4),
            ..CountingConfig::default()
        }
    }

    #[test]
    fn counts_simple_read() {
        // ACACAC with k=2: AC×3, CA×2.
        let rs = reads(&[b"ACACAC"]);
        let map = reference_counts(&rs, &cfg(2));
        assert_eq!(map.len(), 2);
        assert_eq!(map.values().sum::<u64>(), 5);
        assert_eq!(reference_total(&rs, 2), 5);
    }

    #[test]
    fn canonical_mode_merges_strands() {
        let mut c = cfg(3);
        // GAT and ATC are reverse complements.
        let rs = reads(&[b"GAT", b"ATC"]);
        let plain = reference_counts(&rs, &c);
        assert_eq!(plain.len(), 2);
        c.canonical = true;
        let canon = reference_counts(&rs, &c);
        assert_eq!(canon.len(), 1);
        assert_eq!(canon.values().sum::<u64>(), 2);
    }

    #[test]
    fn checker_accepts_correct_result() {
        let rs = reads(&[b"ACGTACGT", b"GGGG"]);
        let c = cfg(3);
        let oracle = reference_counts(&rs, &c);
        // Split the oracle across two fake ranks by parity.
        let mut ranks = vec![Vec::new(), Vec::new()];
        for (&k, &v) in &oracle {
            ranks[(k % 2) as usize].push((k, v as u32));
        }
        assert!(check_against_reference(&rs, &c, &ranks).is_ok());
    }

    #[test]
    fn checker_catches_wrong_count() {
        let rs = reads(&[b"ACGTACGT"]);
        let c = cfg(3);
        let oracle = reference_counts(&rs, &c);
        let mut ranks = vec![oracle
            .iter()
            .map(|(&k, &v)| (k, v as u32))
            .collect::<Vec<_>>()];
        ranks[0][0].1 += 1;
        assert!(check_against_reference(&rs, &c, &ranks).is_err());
    }

    #[test]
    fn checker_catches_duplicate_ownership() {
        let rs = reads(&[b"ACGTACGT"]);
        let c = cfg(3);
        let all: Vec<(u64, u32)> = reference_counts(&rs, &c)
            .iter()
            .map(|(&k, &v)| (k, v as u32))
            .collect();
        let ranks = vec![all.clone(), vec![all[0]]];
        let err = check_against_reference(&rs, &c, &ranks).unwrap_err();
        assert!(err.contains("two ranks"), "{err}");
    }

    #[test]
    fn checker_catches_missing_kmer() {
        let rs = reads(&[b"ACGTACGT"]);
        let c = cfg(3);
        let mut all: Vec<(u64, u32)> = reference_counts(&rs, &c)
            .iter()
            .map(|(&k, &v)| (k, v as u32))
            .collect();
        all.pop();
        let err = check_against_reference(&rs, &c, &[all]).unwrap_err();
        assert!(err.contains("distinct mismatch"), "{err}");
    }
}
