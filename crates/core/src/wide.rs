//! The wide-k oracle: k up to 63 (extension).
//!
//! The paper fixes k = 17, but third-generation workflows routinely use
//! larger k. Wide counting itself is no longer special-cased: all three
//! pipelines run at the `u128` key width through
//! [`crate::pipeline::run_typed`], with the packing bounds enforced by
//! [`crate::config::RunConfig::validate_for_width`]. What remains here is
//! a deliberately independent single-threaded reference counter over
//! `u128`-packed k-mers, used to cross-check the generic pipelines (and
//! the generic oracle in [`crate::verify`]) at the wide width.

use crate::config::CountingConfig;
use dedukt_dna::kmer::{kmer_words128, Kmer128};
use dedukt_dna::ReadSet;
use std::collections::HashMap;

/// Single-threaded wide oracle: counts all k-mers of `reads` at the
/// `u128` key width (k in 32..=63; also valid for smaller k). Built
/// directly on [`Kmer128`] packing, independent of the width-generic
/// counting stack it verifies.
pub fn wide_reference_counts(reads: &ReadSet, cfg: &CountingConfig) -> HashMap<u128, u64> {
    let mut map = HashMap::new();
    for read in &reads.reads {
        for w in kmer_words128(&read.codes, cfg.k, cfg.encoding) {
            let key = if cfg.canonical {
                Kmer128::from_word(w, cfg.k).canonical().word()
            } else {
                w
            };
            *map.entry(key).or_insert(0) += 1;
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::reference_counts_w;
    use dedukt_dna::{Dataset, DatasetId, ScalePreset};

    fn reads() -> ReadSet {
        Dataset::new(DatasetId::VVulnificus30x, ScalePreset::Tiny).generate()
    }

    fn wide_cfg(k: usize) -> CountingConfig {
        CountingConfig {
            k,
            m: 11,
            window: 65 - k,
            ..CountingConfig::default()
        }
    }

    #[test]
    fn wide_oracle_agrees_with_generic_oracle() {
        let rs = reads();
        for k in [33usize, 41, 63] {
            let cfg = wide_cfg(k);
            let independent = wide_reference_counts(&rs, &cfg);
            let generic = reference_counts_w::<u128>(&rs, &cfg);
            assert_eq!(independent, generic, "k = {k}");
            assert_eq!(
                independent.values().sum::<u64>(),
                rs.total_kmers(k) as u64,
                "k = {k}"
            );
        }
    }

    #[test]
    fn wide_oracle_matches_narrow_oracle_at_small_k() {
        // At k ≤ 31 the wide packing must reproduce the narrow word in
        // the low bits, so the two oracles agree key-for-key.
        let rs = reads();
        let cfg = CountingConfig::default();
        let wide = wide_reference_counts(&rs, &cfg);
        let narrow = crate::verify::reference_counts(&rs, &cfg);
        assert_eq!(wide.len(), narrow.len());
        for (&k, &c) in &narrow {
            assert_eq!(wide.get(&(k as u128)), Some(&c));
        }
    }
}
