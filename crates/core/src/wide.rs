//! Wide k-mers: k up to 63 (extension).
//!
//! The paper fixes k = 17, but third-generation workflows routinely use
//! larger k; and §IV-A notes that supermer partitioning "is independent of
//! the GPU implementation and can be used in other distributed-memory
//! k-mer counters". This module demonstrates both: `u128`-packed k-mers
//! (k ≤ 63, keeping the all-ones empty sentinel free), a wide windowed
//! supermer builder (supermers pack into one `u128`, so
//! `window + k − 1 ≤ 64`), and two CPU distributed pipelines — plain
//! k-mer exchange and supermer exchange — built on the same BSP engine
//! and verified against a wide oracle.

use crate::config::{CountingConfig, CpuCoreModel};
use crate::minimizer::MinimizerScheme;
use crate::stats::{ExchangeSummary, LoadSummary, PhaseBreakdown};
use crate::table::HostCountTable;
use dedukt_dna::kmer::{kmer_words128, Kmer128};
use dedukt_dna::{Encoding, ReadSet};
use dedukt_hash::{owner_rank_mult_shift, Murmur3x64};
use dedukt_net::cost::Network;
use dedukt_net::BspWorld;
use std::collections::HashMap;

/// Parameters for wide counting. Mirrors [`CountingConfig`] with the wide
/// packing constraints.
#[derive(Clone, Copy, Debug)]
pub struct WideConfig {
    /// k-mer length, 32..=63.
    pub k: usize,
    /// Minimizer length, < 32 (minimizer words stay `u64`).
    pub m: usize,
    /// Supermer window in k-mer positions; `window + k − 1 ≤ 64`.
    pub window: usize,
    /// Base encoding.
    pub encoding: Encoding,
    /// Routing hash seed.
    pub hash_seed: u64,
    /// Table load factor.
    pub table_load_factor: f64,
}

impl Default for WideConfig {
    /// k = 41 (a common long-read choice), m = 11, window = 24
    /// (24 + 40 = 64 bases: exactly one `u128` per supermer).
    fn default() -> Self {
        WideConfig {
            k: 41,
            m: 11,
            window: 24,
            encoding: Encoding::PaperRandom,
            hash_seed: 0x7769_6465, // "wide"
            table_load_factor: 0.7,
        }
    }
}

impl WideConfig {
    /// Validates the wide packing constraints.
    pub fn validate(&self) -> Result<(), String> {
        if !(32..=63).contains(&self.k) {
            return Err(format!("wide k = {} outside 32..=63", self.k));
        }
        if self.m == 0 || self.m >= 32 || self.m >= self.k {
            return Err(format!(
                "wide m = {} must satisfy 0 < m < min(k, 32)",
                self.m
            ));
        }
        if self.window == 0 || self.window + self.k - 1 > 64 {
            return Err(format!(
                "window {} + k {} - 1 exceeds one u128 (64 bases)",
                self.window, self.k
            ));
        }
        if !(0.1..=0.95).contains(&self.table_load_factor) {
            return Err("load factor unreasonable".into());
        }
        Ok(())
    }

    fn scheme(&self) -> MinimizerScheme {
        MinimizerScheme {
            encoding: self.encoding,
            ordering: crate::minimizer::OrderingKind::EncodedLexicographic,
            m: self.m,
        }
    }
}

/// The minimizer word of a wide packed k-mer: minimum rank key over all
/// `k − m + 1` windows (leftmost tie-break), exactly as in the narrow
/// scan.
pub fn minimizer_of_wide(scheme: &MinimizerScheme, kmer_word: u128, k: usize) -> u64 {
    debug_assert!(scheme.m < k && k <= 64);
    let kmer = Kmer128::from_word(kmer_word, k);
    let mut best = kmer.submer(0, scheme.m);
    let mut best_key = scheme.rank_key(best);
    for pos in 1..=(k - scheme.m) {
        let w = kmer.submer(pos, scheme.m);
        let key = scheme.rank_key(w);
        if key < best_key {
            best_key = key;
            best = w;
        }
    }
    best
}

/// A wide supermer: up to 64 bases in one `u128`, plus length and
/// minimizer. Wire cost: 16 bytes + 1 length byte.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Supermer128 {
    /// Packed bases, MSB-first, right-aligned.
    pub word: u128,
    /// Number of bases.
    pub len: u8,
    /// The shared minimizer word.
    pub minimizer: u64,
}

impl Supermer128 {
    /// Bytes on the wire (packed word + length byte).
    pub const WIRE_BYTES: u64 = 17;

    /// Number of constituent k-mers.
    pub fn num_kmers(&self, k: usize) -> usize {
        (self.len as usize).saturating_sub(k - 1)
    }

    /// Iterates the constituent wide k-mer words.
    pub fn kmers(&self, k: usize) -> impl Iterator<Item = u128> + '_ {
        let len = self.len as usize;
        let mask = Kmer128::mask(k);
        (0..self.num_kmers(k)).map(move |i| (self.word >> (2 * (len - k - i))) & mask)
    }
}

/// Algorithm 2, one window, wide: the same register-resident extension
/// loop over `u128` words.
pub fn wide_supermers_of_window(
    codes: &[u8],
    wstart: usize,
    cfg: &WideConfig,
    out: &mut Vec<Supermer128>,
) {
    let scheme = cfg.scheme();
    let (k, window, enc) = (cfg.k, cfg.window, cfg.encoding);
    let nkmers = codes.len().saturating_sub(k - 1);
    debug_assert!(wstart < nkmers);
    let wend = (wstart + window).min(nkmers);
    let mask = Kmer128::mask(k);

    let mut kw = {
        let mut w = 0u128;
        for &c in &codes[wstart..wstart + k] {
            w = (w << 2) | enc.encode(c) as u128;
        }
        w
    };
    let mut prev = minimizer_of_wide(&scheme, kw, k);
    let mut smer_word = kw;
    let mut smer_len = k;
    let mut smer_min = prev;
    for pos in wstart + 1..wend {
        let next = enc.encode(codes[pos + k - 1]) as u128;
        kw = ((kw << 2) | next) & mask;
        let mz = minimizer_of_wide(&scheme, kw, k);
        if mz != prev {
            out.push(Supermer128 {
                word: smer_word,
                len: smer_len as u8,
                minimizer: smer_min,
            });
            smer_word = kw;
            smer_len = k;
            smer_min = mz;
        } else {
            smer_word = (smer_word << 2) | next;
            smer_len += 1;
        }
        prev = mz;
    }
    out.push(Supermer128 {
        word: smer_word,
        len: smer_len as u8,
        minimizer: smer_min,
    });
}

/// Wide windowed supermers over a whole read.
pub fn wide_supermers(codes: &[u8], cfg: &WideConfig) -> Vec<Supermer128> {
    let mut out = Vec::new();
    let nkmers = codes.len().saturating_sub(cfg.k - 1);
    let mut w = 0;
    while w < nkmers {
        wide_supermers_of_window(codes, w, cfg, &mut out);
        w += cfg.window;
    }
    out
}

/// Single-threaded wide oracle.
pub fn wide_reference_counts(reads: &ReadSet, cfg: &WideConfig) -> HashMap<u128, u64> {
    let mut map = HashMap::new();
    for read in &reads.reads {
        for w in kmer_words128(&read.codes, cfg.k, cfg.encoding) {
            *map.entry(w).or_insert(0) += 1;
        }
    }
    map
}

/// Report from a wide run.
#[derive(Clone, Debug)]
pub struct WideRunReport {
    /// Module times (simulated, per-rank means).
    pub phases: PhaseBreakdown,
    /// Exchange accounting (units are k-mers or supermers).
    pub exchange: ExchangeSummary,
    /// Per-rank counted loads.
    pub load: LoadSummary,
    /// Total instances counted.
    pub total_kmers: u64,
    /// Distinct wide k-mers.
    pub distinct_kmers: u64,
    /// Per-rank tables.
    pub tables: Vec<Vec<(u128, u32)>>,
}

/// Which wide pipeline to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WideMode {
    /// Exchange individual wide k-mers (16 B each).
    Kmer,
    /// Exchange wide supermers (17 B each) routed by minimizer — the
    /// paper's §IV claim of implementation independence, demonstrated on
    /// a CPU counter.
    Supermer,
}

/// Runs a wide CPU counter on `nodes` Summit nodes (42 ranks each).
pub fn run_cpu_wide(
    reads: &ReadSet,
    cfg: &WideConfig,
    mode: WideMode,
    nodes: usize,
    cpu: &CpuCoreModel,
) -> WideRunReport {
    cfg.validate().expect("invalid wide config");
    let net = Network::summit_cpu(nodes);
    let mut world = BspWorld::new(net);
    let nranks = world.nranks();
    let parts = reads.partition_by_bases(nranks);
    let hasher = Murmur3x64::new(cfg.hash_seed);
    let _scheme = cfg.scheme();

    // Parse: bucket wide k-mers or supermers by owner.
    let (buckets, parse_time) = world.compute_step_named("parse", |rank| {
        let mut out: Vec<Vec<u128>> = vec![Vec::new(); nranks];
        let mut lens: Vec<Vec<u8>> = vec![Vec::new(); nranks];
        let mut bases = 0u64;
        for read in &parts[rank].reads {
            bases += read.codes.len() as u64;
            match mode {
                WideMode::Kmer => {
                    for w in kmer_words128(&read.codes, cfg.k, cfg.encoding) {
                        let h = hasher.hash_u128(w);
                        out[owner_rank_mult_shift(h, nranks)].push(w);
                    }
                }
                WideMode::Supermer => {
                    for sm in wide_supermers(&read.codes, cfg) {
                        let dst = owner_rank_mult_shift(hasher.hash_u64(sm.minimizer), nranks);
                        out[dst].push(sm.word);
                        lens[dst].push(sm.len);
                    }
                }
            }
        }
        // Wide parsing costs ~2x the narrow path per base (two words to
        // roll, wider hash).
        let dt = cpu.parse_rate.scaled(0.5).time_for(bases as f64);
        ((out, lens), dt)
    });

    let mut word_buckets = Vec::with_capacity(nranks);
    let mut len_buckets = Vec::with_capacity(nranks);
    for (w, l) in buckets {
        word_buckets.push(w);
        len_buckets.push(l);
    }
    let units_sent: u64 = word_buckets
        .iter()
        .flat_map(|row| row.iter().map(|v| v.len() as u64))
        .sum();

    // Exchange: words (16 B) and, for supermers, lengths (1 B).
    let words_out = world.alltoallv(word_buckets);
    let mut exchange_time = words_out.times.mean;
    let lens_recv = if mode == WideMode::Supermer {
        let lens_out = world.alltoallv(len_buckets);
        exchange_time += lens_out.times.mean;
        Some(lens_out.recv)
    } else {
        None
    };

    // Count into wide host tables.
    let recv = words_out.recv;
    let (rank_results, count_time) = world.compute_step_named("count", |rank| {
        let mut kmers: Vec<u128> = Vec::new();
        match (&lens_recv, mode) {
            (Some(lens), WideMode::Supermer) => {
                for (w_src, l_src) in recv[rank].iter().zip(&lens[rank]) {
                    for (&word, &len) in w_src.iter().zip(l_src) {
                        let sm = Supermer128 {
                            word,
                            len,
                            minimizer: 0,
                        };
                        kmers.extend(sm.kmers(cfg.k));
                    }
                }
            }
            _ => {
                for v in &recv[rank] {
                    kmers.extend_from_slice(v);
                }
            }
        }
        let mut table: HostCountTable<u128> =
            HostCountTable::with_expected(kmers.len(), cfg.table_load_factor, cfg.hash_seed ^ 1);
        for &w in &kmers {
            table.insert(w);
        }
        let dt = cpu.count_rate.scaled(0.5).time_for(kmers.len() as f64);
        (
            (
                table.iter().collect::<Vec<(u128, u32)>>(),
                kmers.len() as u64,
            ),
            dt,
        )
    });

    let stats = world.stats();
    let mut tables = Vec::with_capacity(nranks);
    let mut loads = Vec::with_capacity(nranks);
    let mut total = 0u64;
    let mut distinct = 0u64;
    for (entries, instances) in rank_results {
        total += instances;
        distinct += entries.len() as u64;
        loads.push(instances);
        tables.push(entries);
    }
    WideRunReport {
        phases: PhaseBreakdown {
            parse: parse_time.mean,
            exchange: exchange_time,
            count: count_time.mean,
        },
        exchange: ExchangeSummary {
            units: units_sent,
            bytes: stats.total_bytes,
            off_node_bytes: stats.off_node_bytes,
            alltoallv_time: exchange_time,
            rounds: 1,
        },
        load: LoadSummary {
            kmers_per_rank: loads,
        },
        total_kmers: total,
        distinct_kmers: distinct,
        tables,
    }
}

/// Derives a [`WideConfig`] from a narrow [`CountingConfig`]'s seed and
/// load factor (convenience for callers already holding one).
pub fn wide_from(cfg: &CountingConfig, k: usize, m: usize) -> WideConfig {
    WideConfig {
        k,
        m,
        window: 65 - k,
        encoding: cfg.encoding,
        hash_seed: cfg.hash_seed,
        table_load_factor: cfg.table_load_factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedukt_dna::{Dataset, DatasetId, ScalePreset};

    fn reads() -> ReadSet {
        Dataset::new(DatasetId::VVulnificus30x, ScalePreset::Tiny).generate()
    }

    #[test]
    fn config_validation() {
        assert!(WideConfig::default().validate().is_ok());
        let bad = [
            WideConfig {
                k: 31,
                ..Default::default()
            },
            WideConfig {
                k: 64,
                ..Default::default()
            },
            WideConfig {
                window: 30, // 30 + 40 = 70 > 64
                ..Default::default()
            },
            WideConfig {
                m: 32,
                ..Default::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err());
        }
    }

    #[test]
    fn wide_supermers_preserve_kmer_multiset() {
        let cfg = WideConfig::default();
        for read in reads().reads.iter().take(30) {
            let mut extracted: Vec<u128> = wide_supermers(&read.codes, &cfg)
                .iter()
                .flat_map(|s| s.kmers(cfg.k).collect::<Vec<_>>())
                .collect();
            extracted.sort_unstable();
            let mut direct: Vec<u128> = kmer_words128(&read.codes, cfg.k, cfg.encoding).collect();
            direct.sort_unstable();
            assert_eq!(extracted, direct);
        }
    }

    #[test]
    fn wide_supermer_minimizer_invariant() {
        let cfg = WideConfig::default();
        let scheme = cfg.scheme();
        for read in reads().reads.iter().take(10) {
            for sm in wide_supermers(&read.codes, &cfg) {
                assert!((cfg.k..=cfg.window + cfg.k - 1).contains(&(sm.len as usize)));
                for kw in sm.kmers(cfg.k) {
                    assert_eq!(minimizer_of_wide(&scheme, kw, cfg.k), sm.minimizer);
                }
            }
        }
    }

    #[test]
    fn wide_pipelines_match_oracle_and_each_other() {
        let rs = reads();
        let cfg = WideConfig::default();
        let cpu = CpuCoreModel::default();
        let oracle = wide_reference_counts(&rs, &cfg);

        for mode in [WideMode::Kmer, WideMode::Supermer] {
            let report = run_cpu_wide(&rs, &cfg, mode, 1, &cpu);
            assert_eq!(report.distinct_kmers as usize, oracle.len(), "{mode:?}");
            assert_eq!(report.total_kmers, oracle.values().sum::<u64>(), "{mode:?}");
            let mut seen = HashMap::new();
            for t in &report.tables {
                for &(kmer, count) in t {
                    assert!(seen.insert(kmer, count).is_none(), "{mode:?}: dup owner");
                }
            }
            for (kmer, &count) in &oracle {
                assert_eq!(seen.get(kmer).copied(), Some(count as u32), "{mode:?}");
            }
        }
    }

    #[test]
    fn wide_supermers_cut_exchange_bytes() {
        let rs = reads();
        let cfg = WideConfig::default();
        let cpu = CpuCoreModel::default();
        let km = run_cpu_wide(&rs, &cfg, WideMode::Kmer, 1, &cpu);
        let sm = run_cpu_wide(&rs, &cfg, WideMode::Supermer, 1, &cpu);
        // 16 B per k-mer vs 17 B per (longer) supermer.
        assert_eq!(km.exchange.bytes, km.exchange.units * 16);
        assert_eq!(sm.exchange.bytes, sm.exchange.units * 17);
        assert!(
            sm.exchange.bytes * 2 < km.exchange.bytes,
            "wide supermers should cut bytes >2x: {} vs {}",
            sm.exchange.bytes,
            km.exchange.bytes
        );
    }

    #[test]
    fn wide_from_respects_packing() {
        let cfg = CountingConfig::default();
        let w = wide_from(&cfg, 49, 13);
        assert!(w.validate().is_ok());
        assert_eq!(w.window + w.k - 1, 64);
    }
}
