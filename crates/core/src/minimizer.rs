//! Minimizers (§II-B, §IV-A).
//!
//! The minimizer of a k-mer is its smallest length-m substring under some
//! ordering. Three orderings from the paper's discussion are provided, all
//! expressed as a *rank key* over packed m-mer words:
//!
//! * **Lexicographic** (Roberts et al.): alphabetical encoding, numeric
//!   word order. Known to produce badly skewed partitions (poly-A m-mers
//!   win everywhere).
//! * **KMC2**: lexicographic, but m-mers starting with `AAA` or `ACA` are
//!   demoted (given lower priority), spreading out the bins. Used by KMC2
//!   and Gerbil.
//! * **Encoded-lexicographic over the randomized encoding** (the paper's
//!   choice, §IV-A): pack with A=1, C=0, T=2, G=3 and compare numerically —
//!   an implicit custom ordering with zero extra compute.
//!
//! Because packed words compare lexicographically over their *encoded
//! symbols*, the ordering is selected by the `(encoding, ordering)` pair in
//! [`MinimizerScheme`].

use dedukt_dna::kmer::KmerWord;
use dedukt_dna::Encoding;

/// How m-mer rank keys are derived from packed words.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OrderingKind {
    /// Numeric order of the packed word under the scheme's encoding.
    /// With [`Encoding::Alphabetical`] this is Roberts' lexicographic
    /// ordering; with [`Encoding::PaperRandom`] it is the paper's
    /// randomized ordering.
    EncodedLexicographic,
    /// KMC2's variant: lexicographic, except m-mers whose bases start with
    /// `AAA` or `ACA` are demoted below all others.
    Kmc2,
}

/// A complete minimizer scheme: encoding, ordering, and m.
#[derive(Clone, Copy, Debug)]
pub struct MinimizerScheme {
    /// Base encoding the packed words use.
    pub encoding: Encoding,
    /// Rank-key derivation.
    pub ordering: OrderingKind,
    /// Minimizer length (m < k).
    pub m: usize,
}

/// A minimizer found within a k-mer: its window position and packed word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MinimizerAt {
    /// Offset of the m-mer within the k-mer (0 = leftmost window).
    pub pos: usize,
    /// The packed m-mer word (under the scheme's encoding).
    pub word: u64,
}

impl MinimizerScheme {
    /// The rank key of a packed m-mer word; smaller key = higher priority.
    #[inline]
    pub fn rank_key(&self, mmer_word: u64) -> u64 {
        match self.ordering {
            OrderingKind::EncodedLexicographic => mmer_word,
            OrderingKind::Kmc2 => {
                if self.m >= 3 && self.has_demoted_prefix(mmer_word) {
                    // Demote below every normal m-mer but keep relative
                    // order among demoted ones. 2m < 64 keeps this safe.
                    mmer_word | (1u64 << 63)
                } else {
                    mmer_word
                }
            }
        }
    }

    /// True if the m-mer's first three bases are `AAA` or `ACA`.
    fn has_demoted_prefix(&self, mmer_word: u64) -> bool {
        let shift = 2 * (self.m - 3);
        let prefix = (mmer_word >> shift) & 0b11_11_11;
        // Decode the three symbols back to base codes.
        let b0 = self.encoding.decode(((prefix >> 4) & 3) as u8);
        let b1 = self.encoding.decode(((prefix >> 2) & 3) as u8);
        let b2 = self.encoding.decode((prefix & 3) as u8);
        b0 == 0 && b2 == 0 && (b1 == 0 || b1 == 1) // A?A with ? ∈ {A, C}
    }

    /// Scans all `k - m + 1` windows of a packed k-mer and returns the
    /// minimizer (leftmost on ties — the conventional tie-break).
    pub fn minimizer_of(&self, kmer_word: u64, k: usize) -> MinimizerAt {
        self.minimizer_of_w(kmer_word, k)
    }

    /// Width-generic minimizer scan: same algorithm as
    /// [`MinimizerScheme::minimizer_of`] over a `u64` or `u128` packed
    /// k-mer word. The minimizer word itself is always a `u64` (m ≤ 31 at
    /// either width), so routing is width-independent.
    pub fn minimizer_of_w<W: KmerWord>(&self, kmer_word: W, k: usize) -> MinimizerAt {
        debug_assert!(self.m < k && k <= W::MAX_K);
        let mut best = MinimizerAt {
            pos: 0,
            word: kmer_word.submer_of(k, 0, self.m),
        };
        let mut best_key = self.rank_key(best.word);
        for pos in 1..=(k - self.m) {
            let w = kmer_word.submer_of(k, pos, self.m);
            let key = self.rank_key(w);
            if key < best_key {
                best_key = key;
                best = MinimizerAt { pos, word: w };
            }
        }
        best
    }
}

/// Convenience: the minimizer word of `kmer_word` under `scheme`.
pub fn minimizer_of_kmer(scheme: &MinimizerScheme, kmer_word: u64, k: usize) -> u64 {
    scheme.minimizer_of(kmer_word, k).word
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedukt_dna::kmer::Kmer;

    fn kmer_word(s: &[u8], enc: Encoding) -> u64 {
        Kmer::from_ascii(s, enc).unwrap().word()
    }

    fn scheme(enc: Encoding, ord: OrderingKind, m: usize) -> MinimizerScheme {
        MinimizerScheme {
            encoding: enc,
            ordering: ord,
            m,
        }
    }

    #[test]
    fn lexicographic_picks_alphabetical_min() {
        // GATTACA, m=3 windows: GAT ATT TTA TAC ACA → min is ACA at pos 4.
        let s = scheme(
            Encoding::Alphabetical,
            OrderingKind::EncodedLexicographic,
            3,
        );
        let mz = s.minimizer_of(kmer_word(b"GATTACA", Encoding::Alphabetical), 7);
        assert_eq!(mz.pos, 4);
        assert_eq!(mz.word, kmer_word(b"ACA", Encoding::Alphabetical));
    }

    #[test]
    fn paper_fig4_worked_example() {
        // Fig. 4 parses read GTCATCGCACTTACTGATG with k=8, m=4 under plain
        // lexicographic ordering. First k-mer GTCATCGC: windows GTCA TCAT
        // CATC ATCG TCGC → min ATCG.
        let s = scheme(
            Encoding::Alphabetical,
            OrderingKind::EncodedLexicographic,
            4,
        );
        let mz = s.minimizer_of(kmer_word(b"GTCATCGC", Encoding::Alphabetical), 8);
        assert_eq!(mz.word, kmer_word(b"ATCG", Encoding::Alphabetical));
        assert_eq!(mz.pos, 3);
    }

    #[test]
    fn random_encoding_changes_the_winner() {
        // Under the paper's encoding C(0) < A(1): minimizers starting with
        // C beat minimizers starting with A.
        let s = scheme(Encoding::PaperRandom, OrderingKind::EncodedLexicographic, 3);
        // Windows of ACACCC (m=3): ACA CAC ACC CCC. Under PaperRandom,
        // CCC encodes to 000 — the smallest possible word.
        let mz = s.minimizer_of(kmer_word(b"ACACCC", Encoding::PaperRandom), 6);
        assert_eq!(mz.word, kmer_word(b"CCC", Encoding::PaperRandom));
        assert_eq!(mz.word, 0);
    }

    #[test]
    fn kmc2_demotes_aaa_and_aca() {
        let s = scheme(Encoding::Alphabetical, OrderingKind::Kmc2, 4);
        // AAAT would win lexicographically; KMC2 demotes AAA* so the next
        // smallest clean window must win. K-mer AAATGG, m=4: windows AAAT
        // AATG ATGG. AAAT demoted → AATG wins.
        let mz = s.minimizer_of(kmer_word(b"AAATGG", Encoding::Alphabetical), 6);
        assert_eq!(mz.word, kmer_word(b"AATG", Encoding::Alphabetical));
        // ACAT also demoted: ACATGG → windows ACAT CATG ATGG → ATGG wins
        // (CATG > ATGG lexicographically).
        let mz = s.minimizer_of(kmer_word(b"ACATGG", Encoding::Alphabetical), 6);
        assert_eq!(mz.word, kmer_word(b"ATGG", Encoding::Alphabetical));
    }

    #[test]
    fn kmc2_demoted_mmers_still_usable_when_unavoidable() {
        // All windows demoted: AAAAAA, m=4 → AAAA everywhere; must still
        // return a minimizer.
        let s = scheme(Encoding::Alphabetical, OrderingKind::Kmc2, 4);
        let mz = s.minimizer_of(kmer_word(b"AAAAAA", Encoding::Alphabetical), 6);
        assert_eq!(mz.word, kmer_word(b"AAAA", Encoding::Alphabetical));
        assert_eq!(mz.pos, 0); // leftmost tie-break
    }

    #[test]
    fn ties_break_leftmost() {
        let s = scheme(
            Encoding::Alphabetical,
            OrderingKind::EncodedLexicographic,
            2,
        );
        // ACACAC: windows AC CA AC CA AC → AC wins at pos 0.
        let mz = s.minimizer_of(kmer_word(b"ACACAC", Encoding::Alphabetical), 6);
        assert_eq!(mz.pos, 0);
    }

    #[test]
    fn consecutive_kmers_often_share_minimizers() {
        // The property supermers rely on (§II-B): sliding one base usually
        // keeps the same minimizer. Count shares on a fixed sequence.
        let seq = b"GTCATCGCACTTACTGATGCCAGTTGCAACGGTA";
        let enc = Encoding::Alphabetical;
        let s = scheme(enc, OrderingKind::EncodedLexicographic, 4);
        let k = 8;
        let mut shares = 0;
        let mut total = 0;
        let mut prev: Option<u64> = None;
        for i in 0..=seq.len() - k {
            let w = kmer_word(&seq[i..i + k], enc);
            let mz = s.minimizer_of(w, k).word;
            if prev == Some(mz) {
                shares += 1;
            }
            prev = Some(mz);
            total += 1;
        }
        assert!(
            shares * 2 > total,
            "expected most consecutive k-mers to share minimizers: {shares}/{total}"
        );
    }

    #[test]
    fn minimizer_is_a_real_substring() {
        // The minimizer word must equal one of the k-mer's m-windows.
        let enc = Encoding::PaperRandom;
        let s = scheme(enc, OrderingKind::EncodedLexicographic, 5);
        let seq = b"TTGACCGTAAGCTAGCA";
        let k = 17;
        let w = kmer_word(seq, enc);
        let mz = s.minimizer_of(w, k);
        let expect = kmer_word(&seq[mz.pos..mz.pos + 5], enc);
        assert_eq!(mz.word, expect);
    }

    #[test]
    fn rank_key_is_monotone_for_plain_ordering() {
        let s = scheme(
            Encoding::Alphabetical,
            OrderingKind::EncodedLexicographic,
            4,
        );
        assert!(s.rank_key(3) < s.rank_key(4));
        assert_eq!(s.rank_key(100), 100);
    }
}
