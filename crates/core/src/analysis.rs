//! Downstream spectrum analysis.
//!
//! The paper motivates k-mer counting by what the histograms enable
//! (§II-A): genome profiling, abundance estimation, assembly sizing. This
//! module implements the textbook analyses over a [`Spectrum`]:
//! error-peak / coverage-peak separation and genome-size estimation
//! (`G ≈ total solid k-mer mass / coverage peak`).

use dedukt_dna::spectrum::Spectrum;

/// The multiplicity separating the error peak (low-multiplicity k-mers
/// from sequencing errors) from genuine genomic coverage: the first local
/// minimum of the histogram. `None` if the spectrum is empty or
/// monotonically decreasing (no coverage peak to separate).
pub fn error_valley(spectrum: &Spectrum) -> Option<u32> {
    let hist: Vec<(u32, u64)> = spectrum.iter().collect();
    if hist.len() < 3 {
        return None;
    }
    for w in hist.windows(2) {
        let ((m0, c0), (_m1, c1)) = (w[0], w[1]);
        if c1 > c0 {
            return Some(m0 + 1);
        }
    }
    None
}

/// The coverage peak: the multiplicity with the most distinct k-mers at or
/// above the error valley. This estimates the sequencing depth of
/// single-copy sequence.
pub fn coverage_peak(spectrum: &Spectrum) -> Option<u32> {
    let valley = error_valley(spectrum)?;
    spectrum
        .iter()
        .filter(|&(m, _)| m >= valley)
        .max_by_key(|&(m, c)| (c, std::cmp::Reverse(m)))
        .map(|(m, _)| m)
}

/// Classic k-mer genome-size estimate: solid k-mer mass (instances at or
/// above the error valley) divided by the coverage peak.
pub fn estimate_genome_size(spectrum: &Spectrum) -> Option<u64> {
    let valley = error_valley(spectrum)?;
    let peak = coverage_peak(spectrum)?;
    let solid_mass: u64 = spectrum
        .iter()
        .filter(|&(m, _)| m >= valley)
        .map(|(m, c)| m as u64 * c)
        .sum();
    Some(solid_mass / peak as u64)
}

/// Fraction of k-mer *instances* below the error valley — an estimate of
/// the sequencing error load (the mass a Bloom pre-pass would suppress).
pub fn error_mass_fraction(spectrum: &Spectrum) -> Option<f64> {
    let valley = error_valley(spectrum)?;
    let total = spectrum.total();
    if total == 0 {
        return None;
    }
    let err: u64 = spectrum
        .iter()
        .filter(|&(m, _)| m < valley)
        .map(|(m, c)| m as u64 * c)
        .sum();
    Some(err as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::reference_counts;
    use crate::CountingConfig;
    use dedukt_dna::sim::{simulate_genome, simulate_reads, GenomeParams, ReadSimParams};
    use dedukt_dna::ReadSet;

    fn spectrum_of(reads: &ReadSet, canonical: bool) -> Spectrum {
        let cfg = CountingConfig {
            canonical,
            ..CountingConfig::default()
        };
        Spectrum::from_counts(reference_counts(reads, &cfg).values().map(|&v| v as u32))
    }

    fn simulated_spectrum(genome_len: usize, coverage: f64, err: f64) -> Spectrum {
        let genome = simulate_genome(
            &GenomeParams {
                length: genome_len,
                repeat_fraction: 0.0,
                low_complexity_fraction: 0.0,
                ..Default::default()
            },
            42,
        );
        let reads = simulate_reads(
            &genome,
            &ReadSimParams {
                coverage,
                mean_read_len: 2_000,
                sub_rate: err,
                ..Default::default()
            },
            7,
        );
        spectrum_of(&reads, true)
    }

    #[test]
    fn valley_and_peak_on_textbook_histogram() {
        // Error peak at 1, valley at 3, coverage peak at 20.
        let mut s = Spectrum::new();
        for (m, n) in [
            (1, 1000),
            (2, 200),
            (3, 40),
            (10, 60),
            (19, 300),
            (20, 400),
            (21, 290),
        ] {
            for _ in 0..n {
                s.record(m);
            }
        }
        // The last decreasing step is 2→3, so the valley boundary sits
        // just above the minimum bin.
        assert_eq!(error_valley(&s), Some(4));
        assert_eq!(coverage_peak(&s), Some(20));
    }

    #[test]
    fn genome_size_recovered_from_simulated_reads() {
        let genome_len = 30_000;
        let cov = 25.0;
        let s = simulated_spectrum(genome_len, cov, 0.005);
        let peak = coverage_peak(&s).expect("coverage peak");
        assert!(
            (cov * 0.75..cov * 1.25).contains(&(peak as f64)),
            "peak {peak} vs coverage {cov}"
        );
        let est = estimate_genome_size(&s).expect("estimate") as f64;
        let err = (est - genome_len as f64).abs() / genome_len as f64;
        assert!(
            err < 0.25,
            "genome size {est} vs {genome_len} ({err:.2} rel err)"
        );
    }

    #[test]
    fn error_mass_grows_with_error_rate() {
        let clean = simulated_spectrum(20_000, 30.0, 0.0005);
        let noisy = simulated_spectrum(20_000, 30.0, 0.02);
        let fc = error_mass_fraction(&clean).unwrap();
        let fe = error_mass_fraction(&noisy).unwrap();
        assert!(fe > fc, "noisy {fe} vs clean {fc}");
    }

    #[test]
    fn degenerate_spectra_yield_none() {
        assert_eq!(error_valley(&Spectrum::new()), None);
        // Monotone decreasing: all singletons and doubles.
        let s = Spectrum::from_counts([1, 1, 1, 2]);
        assert_eq!(error_valley(&s), None);
        assert_eq!(coverage_peak(&s), None);
        assert_eq!(estimate_genome_size(&s), None);
    }
}
