//! Phase breakdowns and run statistics — the quantities behind the
//! paper's Figs. 3/7, Table II and Table III.

use dedukt_sim::{DataVolume, DistStats, Rate, SimTime};

/// Simulated time spent in each of the pipeline's three modules
/// (Fig. 1 / Fig. 3): parse & process, exchange (incl. staging and the
/// `MPI_Alltoallv`), and building the k-mer counter.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseBreakdown {
    /// Parse & process k-mers (or build supermers).
    pub parse: SimTime,
    /// Exchange, including host staging when GPUDirect is off.
    pub exchange: SimTime,
    /// Count k-mers into the per-rank tables.
    pub count: SimTime,
}

impl PhaseBreakdown {
    /// End-to-end pipeline time (excl. I/O, like the paper's figures).
    pub fn total(&self) -> SimTime {
        self.parse + self.exchange + self.count
    }

    /// Fraction of the total spent exchanging — the paper observes up to
    /// 80% for the GPU k-mer counter at 64 nodes (§V-C).
    pub fn exchange_fraction(&self) -> f64 {
        let t = self.total();
        if t.is_zero() {
            0.0
        } else {
            self.exchange / t
        }
    }
}

/// Real host wall-clock seconds per driver stage — `std::time::Instant`
/// deltas, *not* simulated time. Unlike everything else in the report
/// these are nondeterministic (they measure this process on this
/// machine); they feed the journal's `wall` events, the
/// `wall_seconds:*` metrics gauges, and the bench harness's wall-clock
/// lane.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WallClock {
    /// Pre-pass plus bucketing compute (host side of the parse phase).
    pub parse: f64,
    /// The exchange + count round loop (wire and kernels interleave, so
    /// the loop is one stage).
    pub rounds: f64,
    /// Staging in, the count drain, and table finalization.
    pub finish: f64,
    /// The whole staged run, entry to report assembly.
    pub total: f64,
}

/// Exchange-volume accounting for one run (Table II's columns).
#[derive(Clone, Debug, Default)]
pub struct ExchangeSummary {
    /// Units exchanged: k-mers for the k-mer pipelines, supermers for the
    /// supermer pipeline.
    pub units: u64,
    /// Exact payload bytes moved through the Alltoallv(s).
    pub bytes: u64,
    /// Bytes that crossed node boundaries.
    pub off_node_bytes: u64,
    /// Bytes of [`ExchangeSummary::bytes`] whose source and destination
    /// shared a node (`bytes - off_node_bytes`, kept explicit so the two
    /// tiers always reconcile).
    pub intra_node_bytes: u64,
    /// Hierarchical routing only: extra bytes moved over the intra-node
    /// tier by the gather-to-leader and scatter-from-leader hops
    /// (DESIGN.md §10). Zero under direct routing.
    pub intra_tier_bytes: u64,
    /// Hierarchical routing only: coalesced inter-node frames sent over
    /// the injection tier (one per communicating (node, node) pair per
    /// collective). Zero under direct routing.
    pub coalesced_messages: u64,
    /// Simulated time of the Alltoallv itself (excl. staging) — Fig. 8's
    /// quantity. Always the pure wire time, even when compute was
    /// overlapped behind it.
    pub alltoallv_time: SimTime,
    /// How many memory-bounded rounds the exchange was split into
    /// (§III-A); 1 when `round_limit_bytes` is unset.
    pub rounds: u64,
    /// Fault recovery: buckets re-sent after a failed or corrupt
    /// delivery (zero without a fault plan).
    pub retries: u64,
    /// Fault recovery: buckets that arrived with a checksum mismatch and
    /// were discarded (a subset of [`ExchangeSummary::retries`]).
    pub corrupt_buckets: u64,
    /// Bytes of [`ExchangeSummary::bytes`] re-sent on retry attempts;
    /// first-attempt traffic is `bytes - retry_bytes`.
    pub retry_bytes: u64,
    /// Simulated time spent recovering: retry collectives plus backoff,
    /// charged separately from [`ExchangeSummary::alltoallv_time`]
    /// (which stays pure first-attempt wire time).
    pub recovery_time: SimTime,
    /// Rank-failure recovery: ranks that died and were recovered from
    /// (zero without a rank plan).
    pub rank_deaths: u64,
    /// Rank-failure recovery: payload bytes replayed to the survivors
    /// that inherited dead ranks' key ranges (zero without deaths).
    pub replayed_bytes: u64,
}

impl ExchangeSummary {
    /// Payload volume.
    pub fn volume(&self) -> DataVolume {
        DataVolume::from_bytes(self.bytes)
    }
}

/// Per-rank counting load (Table III): k-mer instances counted by each
/// rank.
#[derive(Clone, Debug)]
pub struct LoadSummary {
    /// k-mer instances counted per rank.
    pub kmers_per_rank: Vec<u64>,
}

impl LoadSummary {
    /// Table III's statistics over the per-rank loads.
    pub fn stats(&self) -> DistStats {
        DistStats::from_loads(&self.kmers_per_rank).expect("at least one rank")
    }

    /// Table III's imbalance metric: max load / average load.
    pub fn imbalance(&self) -> f64 {
        self.stats().imbalance()
    }
}

/// Aggregate insertion rate (Fig. 9's y-axis): k-mers counted per second
/// of *compute* time (parse + count, exchange excluded — the figure's
/// caption says "excl. exchange module").
pub fn insertion_rate(total_kmers: u64, parse: SimTime, count: SimTime) -> Option<Rate> {
    Rate::observed(total_kmers as f64, parse + count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_and_fraction() {
        let b = PhaseBreakdown {
            parse: SimTime::from_secs(1.0),
            exchange: SimTime::from_secs(8.0),
            count: SimTime::from_secs(1.0),
        };
        assert_eq!(b.total().as_secs(), 10.0);
        assert!((b.exchange_fraction() - 0.8).abs() < 1e-12);
        assert_eq!(PhaseBreakdown::default().exchange_fraction(), 0.0);
    }

    #[test]
    fn load_summary_matches_table3_metric() {
        let l = LoadSummary {
            kmers_per_rank: vec![100, 100, 100, 174],
        };
        // mean = 118.5, max = 174 → 1.468…
        assert!((l.imbalance() - 174.0 / 118.5).abs() < 1e-9);
    }

    #[test]
    fn insertion_rate_excludes_exchange() {
        let r =
            insertion_rate(1_000_000, SimTime::from_secs(0.5), SimTime::from_secs(0.5)).unwrap();
        assert!((r.units_per_sec() - 1e6).abs() < 1e-6);
        assert!(insertion_rate(0, SimTime::from_secs(1.0), SimTime::ZERO).is_none());
    }

    #[test]
    fn exchange_summary_volume() {
        let e = ExchangeSummary {
            units: 10,
            bytes: 1 << 20,
            off_node_bytes: 1 << 19,
            alltoallv_time: SimTime::from_millis(3.0),
            rounds: 1,
            ..Default::default()
        };
        assert_eq!(format!("{}", e.volume()), "1.00 MiB");
    }
}
