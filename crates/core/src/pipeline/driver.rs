//! The staged superstep driver shared by all three counters.
//!
//! Every pipeline in the paper has the same skeleton: a bucketing compute
//! phase, an `MPI_Alltoallv` (optionally split into memory-bounded rounds,
//! §III-A), and a counting phase. The driver owns that skeleton once —
//! world setup, the balanced-minimizer pre-pass, round slicing, the round
//! loop with optional compute/exchange overlap, phase accounting, and
//! report assembly — while a [`CounterStages`] implementation supplies the
//! counter-specific hooks (what to bucket, how items move on the wire,
//! how received items are counted).
//!
//! ## Rounds and overlap
//!
//! With `round_limit_bytes` set, the outgoing buckets are sliced into
//! rounds so no rank sends more than the cap per round
//! ([`split_rounds_weighted`]); received rounds are counted into a table
//! sized for the *total* expected load, so results are bit-identical to a
//! single-round run regardless of the cap.
//!
//! With `overlap_rounds` additionally set, round `r`'s exchange is issued
//! non-blocking while round `r-1`'s count kernel runs on the rank's
//! device stream: the rank is charged `max(wire, count)` per round
//! instead of their sum ([`BspWorld::alltoallv_overlapped`]), and only the
//! final round's count remains exposed as the count phase. Payloads,
//! counts, and volumes are unaffected — overlap changes *when* simulated
//! work happens, never *what* is computed.

use crate::config::{CountingConfig, RunConfig};
use crate::partition::surviving_owner;
use crate::pipeline::gpu_common::split_rounds_weighted;
use crate::pipeline::{assemble_counts, RankCountResult, RunError, RunReport};
use crate::stats::{ExchangeSummary, PhaseBreakdown, WallClock};
use crate::width::PackedKmer;
use dedukt_dna::ReadSet;
use dedukt_hash::Murmur3x64;
use dedukt_net::cost::Network;
use dedukt_net::BspWorld;
use dedukt_sim::{Journal, JournalEvent, MetricsRegistry, SimTime};
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// A counter table lifted out of the live world — for checkpoints the
/// first field is the rounds covered, for salvage it is the result slot
/// the entries are credited to; either way it awaits the merge-by-key
/// fold at assembly ([`fold_salvaged`]).
type SalvagedTable<K> = (usize, Vec<(K, u32)>, u64);

/// Run-wide context handed to every [`CounterStages`] hook.
pub(crate) struct DriverCtx<'a> {
    /// The full run configuration.
    pub rc: &'a RunConfig,
    /// Shorthand for `rc.counting`.
    pub cfg: CountingConfig,
    /// Total ranks.
    pub nranks: usize,
    /// Per-rank read partitions.
    pub parts: Vec<ReadSet>,
    /// The run's routing hasher (seeded with `cfg.hash_seed`).
    pub hasher: Murmur3x64,
    /// Telemetry registry, when `rc.collect_metrics` is set.
    pub metrics: Option<Arc<MetricsRegistry>>,
}

/// What one rank's bucketing phase produced.
pub(crate) struct BucketOut<I> {
    /// `buckets[dst]` — items routed to each destination rank.
    pub buckets: Vec<Vec<I>>,
    /// Simulated duration of the bucketing compute itself.
    pub compute: SimTime,
    /// Device→host staging time for the outgoing buffers (zero on the
    /// CPU pipeline and under GPUDirect).
    pub stage_out: SimTime,
}

/// What one exchange round delivered.
pub(crate) struct RoundRecv<I> {
    /// `items[dst]` — everything rank `dst` received this round,
    /// concatenated in source-rank order.
    pub items: Vec<Vec<I>>,
    /// `undelivered[src][dst]` — buckets lost to an injected fault this
    /// attempt, in send-matrix shape so the driver can feed them straight
    /// back into the next attempt. All empty on a fault-free fabric.
    pub undelivered: Vec<Vec<Vec<I>>>,
    /// Buckets that failed to send this attempt.
    pub failed_sends: u64,
    /// Buckets that arrived corrupt (checksum mismatch) this attempt.
    pub corrupt_buckets: u64,
    /// Mean per-rank pure wire time of the round's collective(s).
    pub wire_mean: SimTime,
    /// Mean per-rank *charged* time: equals `wire_mean` for a blocking
    /// round, `max(wire, hidden compute)` for an overlapped one.
    pub charged_mean: SimTime,
}

/// A counting stage ran out of device memory and could not recover —
/// the grow path was denied *and* the host spill budget is exhausted
/// (or even the initial table allocation failed). The driver converts
/// this into [`RunError::DeviceOom`], gathering every rank's high-water
/// mark for the message.
pub(crate) struct CounterOom {
    /// What failed, from the counting stage (allocation request sizes,
    /// spill budget).
    pub detail: String,
    /// The failing rank's device-allocation high-water mark in bytes.
    pub high_water_bytes: u64,
}

/// Memory-pressure telemetry one rank's counter accumulated; all zero
/// on an unconstrained run (and always zero on the CPU pipeline, which
/// has no device budget — its tables grow transparently on the host).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct PressureStats {
    /// k-mer instances parked on the host spill list (feeds the
    /// "spill k-mers" trace lane).
    pub spilled: u64,
    /// Successful grow-and-rehash events.
    pub regrows: u64,
    /// Denied grow allocations the counter recovered from by spilling.
    pub oom_events: u64,
    /// Device-allocation high-water mark in bytes. Nonzero even on an
    /// unpressured run — gate pressure-only telemetry on the event
    /// counts above, never on this.
    pub high_water_bytes: u64,
}

impl PressureStats {
    /// Did any pressure event actually fire on this rank? The gate for
    /// the pressure-only trace lanes and journal events, keeping
    /// unconstrained runs' output schemas untouched.
    pub fn fired(&self) -> bool {
        self.spilled + self.regrows + self.oom_events > 0
    }
}

/// The counter-specific hooks of one pipeline; everything else —
/// world setup, round slicing, the superstep loop, phase accounting,
/// report assembly — lives in [`run_staged`].
pub(crate) trait CounterStages: Sync {
    /// The packed key width this counter runs at: `u64` for the paper's
    /// narrow regime (k ≤ 31), `u128` for wide k (≤ 63). Everything
    /// width-dependent — wire bytes, table slots, packing bounds — is
    /// derived from this one type.
    type Key: PackedKmer;
    /// What moves on the wire (a packed k-mer, a supermer word+length).
    /// `Clone` because rank-failure recovery retains sent rounds and
    /// replays a dead rank's slice of them into the survivors.
    type Item: Send + Clone;
    /// Per-rank counting state threaded through the rounds.
    type Counter: Send;

    /// Serialized size of one item on the wire, in bytes. Used for the
    /// round cap; may differ from the item's in-memory size.
    const ITEM_WIRE_BYTES: u64;
    /// Trace/phase name of the bucketing compute step.
    const BUCKET_PHASE: &'static str;

    /// The machine this counter runs on.
    fn network(&self, rc: &RunConfig) -> Network;

    /// Optional pre-pass before bucketing (the §VII balanced-minimizer
    /// sampling). Returns its simulated duration, folded into the parse
    /// phase.
    fn prepass(&mut self, _ctx: &DriverCtx, _world: &mut BspWorld) -> SimTime {
        SimTime::ZERO
    }

    /// Bucket rank `rank`'s partition by destination.
    fn bucket(&self, ctx: &DriverCtx, rank: usize) -> BucketOut<Self::Item>;

    /// How many k-mer instances counting `item` will insert (1 for a
    /// k-mer, `len - k + 1` for a supermer). Sizes the count tables for
    /// the *total* load so round splitting cannot change results.
    fn item_instances(&self, ctx: &DriverCtx, item: &Self::Item) -> u64;

    /// Move one round through the wire. `hidden`, when present, carries
    /// per-rank compute times to overlap behind the collective (the
    /// previous round's count kernels).
    fn exchange_round(
        &self,
        world: &mut BspWorld,
        round: Vec<Vec<Vec<Self::Item>>>,
        hidden: Option<&[SimTime]>,
    ) -> RoundRecv<Self::Item>;

    /// Host→device staging time for everything a rank received (zero on
    /// the CPU pipeline and under GPUDirect).
    fn stage_in(&self, _ctx: &DriverCtx, _received_items: u64) -> SimTime {
        SimTime::ZERO
    }

    /// Create rank `rank`'s counter, sized for `expected_instances`
    /// k-mer inserts across *all* rounds (scaled by the run's safety
    /// factor and any injected underestimate). Errs only when even the
    /// initial table cannot be allocated on the device.
    fn make_counter(
        &self,
        ctx: &DriverCtx,
        rank: usize,
        expected_instances: u64,
    ) -> Result<Self::Counter, CounterOom>;

    /// Count one round's received items; returns the simulated kernel
    /// time (charged either as hidden compute or in the count phase).
    /// Errs only when the rank exhausted both the device budget and its
    /// host spill budget.
    fn count_round(
        &self,
        ctx: &DriverCtx,
        counter: &mut Self::Counter,
        items: Vec<Self::Item>,
    ) -> Result<SimTime, CounterOom>;

    /// This counter's memory-pressure telemetry so far. The default is
    /// the all-zero report, right for counters with no device budget
    /// (the CPU pipeline).
    fn pressure(&self, _counter: &Self::Counter) -> PressureStats {
        PressureStats::default()
    }

    /// Non-consuming snapshot of the counter's current `(kmer, count)`
    /// entries and counted instances — the checkpoint and rescale
    /// salvage hook (DESIGN.md §11). Must reflect everything
    /// [`CounterStages::finish`] would report at this point, spill
    /// lists included.
    fn snapshot_counts(&self, counter: &Self::Counter) -> (Vec<(Self::Key, u32)>, u64);

    /// Drain the counter into the rank's result (and record its
    /// counting telemetry).
    fn finish(
        &self,
        ctx: &DriverCtx,
        rank: usize,
        counter: Self::Counter,
    ) -> RankCountResult<Self::Key>;
}

/// Runs one counter through the shared staged superstep skeleton.
///
/// Errs when a fault plan's retry budget is exhausted mid-exchange
/// ([`RunError::ExchangeFailed`]) or when a rank exhausts both the
/// device budget and its host spill budget while counting
/// ([`RunError::DeviceOom`]); unconstrained fault-free runs always
/// succeed.
pub(crate) fn run_staged<S: CounterStages>(
    stages: &mut S,
    reads: &ReadSet,
    rc: &RunConfig,
) -> Result<RunReport<S::Key>, RunError> {
    let wall_run = Instant::now();
    let nranks = rc.nranks();
    let mut net = stages.network(rc);
    net.params.algo = rc.exchange_algo;
    let mut world = BspWorld::new(net);
    assert_eq!(world.nranks(), nranks);
    let metrics = rc.collect_metrics.then(|| Arc::new(MetricsRegistry::new()));
    if let Some(m) = &metrics {
        world.enable_metrics(Arc::clone(m));
    }
    if let Some(plan) = rc.fault {
        world.enable_faults(plan);
    }
    let journal = rc.collect_journal.then(|| Arc::new(Journal::new()));
    if let Some(j) = &journal {
        world.enable_journal(Arc::clone(j));
        j.push(JournalEvent::Meta {
            mode: rc.mode.label().to_string(),
            nodes: rc.nodes,
            nranks,
            detail: run_detail(rc),
        });
    }
    let ctx = DriverCtx {
        rc,
        cfg: rc.counting,
        nranks,
        parts: reads.partition_by_bases(nranks),
        hasher: Murmur3x64::new(rc.counting.hash_seed),
        metrics: metrics.clone(),
    };

    // ── Pre-pass + bucketing (parse phase) ─────────────────────────────
    let prepass_time = stages.prepass(&ctx, &mut world);
    let stages = &*stages; // shared from here on; compute steps capture it
    let (bucket_out, bucket_step) = world.compute_step_named(S::BUCKET_PHASE, |rank| {
        let b = stages.bucket(&ctx, rank);
        ((b.buckets, b.stage_out), b.compute)
    });
    let mut buckets = Vec::with_capacity(nranks);
    let mut stage_out_times = Vec::with_capacity(nranks);
    for (b, t) in bucket_out {
        buckets.push(b);
        stage_out_times.push(t);
    }
    let units: u64 = buckets
        .iter()
        .flat_map(|row| row.iter().map(|v| v.len() as u64))
        .sum();
    // Expected inserts per destination, over ALL rounds — count tables
    // are sized for the full load up front, so slicing the exchange into
    // rounds cannot change probe sequences or results.
    let mut expected = vec![0u64; nranks];
    for row in &buckets {
        for (dst, payload) in row.iter().enumerate() {
            for item in payload {
                expected[dst] += stages.item_instances(&ctx, item);
            }
        }
    }

    let wall_parse = wall_run.elapsed().as_secs_f64();
    let wall_rounds_start = Instant::now();

    // ── Exchange + count rounds ────────────────────────────────────────
    let (_, stage_out_step) =
        world.compute_step_named("stage-out", |rank| ((), stage_out_times[rank]));
    let rounds = split_rounds_weighted(buckets, rc.round_limit_bytes, S::ITEM_WIRE_BYTES);
    let nrounds = rounds.len();
    let made: Vec<Result<S::Counter, CounterOom>> = (0..nranks)
        .into_par_iter()
        .map(|rank| stages.make_counter(&ctx, rank, expected[rank]))
        .collect();
    if made.iter().any(|r| r.is_err()) {
        return Err(device_oom_error(stages, made));
    }
    let mut counters: Vec<S::Counter> = made.into_iter().map(|r| r.ok().unwrap()).collect();
    let mut received_items = vec![0u64; nranks];
    let mut count_totals = vec![SimTime::ZERO; nranks];
    let mut last_round_times = vec![SimTime::ZERO; nranks];
    let mut prev_round_times: Option<Vec<SimTime>> = None;
    let mut wire_total = SimTime::ZERO;
    let mut charged_total = SimTime::ZERO;
    // Fault-recovery accounting, all zero on a perfect fabric: retry
    // attempts and their backoffs are charged to `recovery_total`,
    // keeping `wire_total`/`charged_total` pure first-attempt time.
    let fault_spec = rc.fault.map(|p| *p.spec());
    let mut recovery_total = SimTime::ZERO;
    let mut retries_total = 0u64;
    let mut corrupt_total = 0u64;
    // ── Rank-failure and elastic-rescale state (DESIGN.md §11) ─────────
    // `range_owner[d]` maps base minimizer range `d` (the rank that owns
    // it at full strength) to the rank currently counting it — identity
    // until a death or rescale, so plan-free runs take today's exact
    // code path, byte for byte.
    let rank_plan = rc.rank.clone();
    let recovery_active = rank_plan.is_some() || !rc.rescale.is_empty();
    let rank_seed = rank_plan
        .as_ref()
        .map_or(rc.counting.hash_seed, |p| p.seed());
    let mut alive = vec![true; nranks];
    let mut range_owner: Vec<usize> = (0..nranks).collect();
    // First round whose range-`d` traffic the current owner's *live*
    // counter holds; everything earlier sits in `salvaged` or was
    // replayed into it. The invariant the whole recovery path keeps:
    // counter(range_owner[d]) holds range-`d` rounds [range_from[d]..now)
    // and nothing else of range `d`.
    let mut range_from = vec![0usize; nranks];
    // `history[round][d]`: range-`d` payload of `round` in source-rank
    // order — exactly what the owner received, and the replay source
    // when an owner dies. Retained only while a plan is active.
    let mut history: Vec<Vec<Vec<S::Item>>> = Vec::new();
    // Per-rank checkpoint: (rounds covered, entries, instances).
    let mut snaps: Vec<Option<SalvagedTable<S::Key>>> = (0..nranks).map(|_| None).collect();
    // Salvaged (slot, entries, instances) tables awaiting the
    // merge-by-key fold at assembly ([`fold_salvaged`]).
    let mut salvaged: Vec<SalvagedTable<S::Key>> = Vec::new();
    let mut rescale_sched = rc.rescale.iter().copied().peekable();
    let mut dead_total: usize = 0;
    let mut replayed_bytes_total = 0u64;
    for (round_idx, round) in rounds.into_iter().enumerate() {
        // ── Round boundary: graceful rescale, then drawn deaths ────────
        while rescale_sched
            .peek()
            .is_some_and(|&(ro, _)| ro == round_idx as u64)
        {
            let (_, target) = rescale_sched.next().expect("peeked");
            let from = alive.iter().filter(|&&a| a).count();
            if let Some(j) = &journal {
                j.push(JournalEvent::Rescale {
                    round: round_idx as u64,
                    from,
                    to: target,
                });
            }
            // Shrink: ranks at index >= target depart gracefully. Their
            // whole table is salvaged (merged by key at assembly) and
            // their ranges pass to survivors for future rounds only —
            // a departure needs no replay, unlike a death.
            for r in target..nranks {
                if !alive[r] {
                    continue;
                }
                let (entries, instances) = stages.snapshot_counts(&counters[r]);
                salvaged.push((r, entries, instances));
                snaps[r] = None;
                alive[r] = false;
                let fresh = fresh_counter_or_oom(stages, &ctx, &counters, r, expected[r])?;
                counters[r] = fresh;
            }
            if !alive.iter().any(|&a| a) {
                return Err(RunError::RanksLost {
                    dead: nranks,
                    round: round_idx as u64,
                });
            }
            for d in 0..nranks {
                if !alive[range_owner[d]] {
                    range_owner[d] = surviving_owner(rank_seed, d, &alive);
                    range_from[d] = round_idx;
                }
            }
            // Grow: departed ranks below the new world size rejoin and
            // take back their own base range, future rounds only. The
            // range's interim holder is fully salvaged and restarted so
            // its live counter never splits a key's count with the
            // rejoiner's — the invariant the fold depends on.
            for r in 0..target.min(nranks) {
                if alive[r] {
                    continue;
                }
                alive[r] = true;
                let holder = range_owner[r];
                if holder != r {
                    let (entries, instances) = stages.snapshot_counts(&counters[holder]);
                    salvaged.push((holder, entries, instances));
                    snaps[holder] = None;
                    let fresh =
                        fresh_counter_or_oom(stages, &ctx, &counters, holder, expected[holder])?;
                    counters[holder] = fresh;
                    for d in 0..nranks {
                        if range_owner[d] == holder {
                            range_from[d] = round_idx;
                        }
                    }
                    range_owner[r] = r;
                    range_from[r] = round_idx;
                }
            }
        }
        if let Some(plan) = &rank_plan {
            // Deaths drawn at this boundary (coordinate-hashed, so both
            // engines agree without coordination). The dead rank's live
            // table is unrecoverable; its checkpoint (if any) is
            // salvaged and the gap since is replayed from `history`
            // into each range's next owner.
            let mut replay_to = vec![0u64; nranks];
            let mut replay_kernels = SimTime::ZERO;
            for r in 0..nranks {
                if !alive[r] || !plan.dies_at(round_idx as u64, r) {
                    continue;
                }
                alive[r] = false;
                dead_total += 1;
                if let Some(j) = &journal {
                    j.push(JournalEvent::RankDead {
                        rank: r,
                        round: round_idx as u64,
                    });
                }
                if dead_total > plan.spec().max_dead || !alive.iter().any(|&a| a) {
                    return Err(RunError::RanksLost {
                        dead: dead_total,
                        round: round_idx as u64,
                    });
                }
                let ckpt = snaps[r].take();
                let floor = ckpt.as_ref().map_or(0, |&(c, _, _)| c);
                if let Some((_, entries, instances)) = ckpt {
                    salvaged.push((r, entries, instances));
                }
                for d in 0..nranks {
                    if range_owner[d] != r {
                        continue;
                    }
                    let new_owner = surviving_owner(rank_seed, d, &alive);
                    let start = range_from[d].max(floor);
                    let mut items: Vec<S::Item> = Vec::new();
                    for col in &history[start..round_idx] {
                        items.extend(col[d].iter().cloned());
                    }
                    if !items.is_empty() {
                        replay_to[new_owner] += items.len() as u64 * S::ITEM_WIRE_BYTES;
                        match stages.count_round(&ctx, &mut counters[new_owner], items) {
                            Ok(t) => replay_kernels += t,
                            Err(e) => {
                                let mut high_water: Vec<u64> = counters
                                    .iter()
                                    .map(|c| stages.pressure(c).high_water_bytes)
                                    .collect();
                                high_water[new_owner] =
                                    high_water[new_owner].max(e.high_water_bytes);
                                return Err(RunError::DeviceOom {
                                    rank: new_owner,
                                    detail: e.detail,
                                    high_water_bytes: high_water,
                                });
                            }
                        }
                    }
                    range_owner[d] = new_owner;
                    range_from[d] = start;
                    // The new owner's checkpoint predates the replayed
                    // content — using it after a later death would lose
                    // the replay. Re-validated at the next tick.
                    snaps[new_owner] = None;
                }
                let fresh = fresh_counter_or_oom(stages, &ctx, &counters, r, expected[r])?;
                counters[r] = fresh;
            }
            // Charge the replay traffic: survivors re-parse the dead
            // rank's deterministic input slice, so the bytes enter the
            // fabric spread across the live sources and land on each
            // range's new owner — priced by the same Alltoallv model as
            // the real exchange, charged as recovery time.
            let replay_bytes: u64 = replay_to.iter().sum();
            if replay_bytes > 0 {
                let alive_srcs: Vec<usize> = (0..nranks).filter(|&r| alive[r]).collect();
                let mut matrix = vec![vec![0u64; nranks]; nranks];
                for (dst, &bytes) in replay_to.iter().enumerate() {
                    if bytes == 0 {
                        continue;
                    }
                    let share = bytes / alive_srcs.len() as u64;
                    let mut rem = bytes % alive_srcs.len() as u64;
                    for &src in &alive_srcs {
                        matrix[src][dst] = share
                            + if rem > 0 {
                                rem -= 1;
                                1
                            } else {
                                0
                            };
                    }
                }
                let net = *world.network();
                let times = net.alltoallv_times(&matrix);
                let wire = SimTime::from_secs(
                    times.iter().map(|t| t.as_secs()).sum::<f64>() / nranks as f64,
                );
                let kernels = SimTime::from_secs(replay_kernels.as_secs() / nranks as f64);
                world.advance_all("replay", wire + kernels);
                recovery_total += wire + kernels;
                replayed_bytes_total += replay_bytes;
            }
        }
        // Retain this round's per-range payload for future replay, then
        // steer each base range's column to its current owner. With the
        // identity mapping the remap is skipped and the send matrix is
        // untouched. Dead ranks keep sending (the survivors re-parse
        // their input slice) but own no range, so they receive nothing.
        let round = if recovery_active {
            let mut cols: Vec<Vec<S::Item>> = (0..nranks).map(|_| Vec::new()).collect();
            for row in &round {
                for (d, payload) in row.iter().enumerate() {
                    cols[d].extend(payload.iter().cloned());
                }
            }
            history.push(cols);
            if range_owner.iter().enumerate().any(|(d, &o)| o != d) {
                round
                    .into_iter()
                    .map(|row| {
                        let mut remapped: Vec<Vec<S::Item>> =
                            (0..nranks).map(|_| Vec::new()).collect();
                        for (d, mut payload) in row.into_iter().enumerate() {
                            remapped[range_owner[d]].append(&mut payload);
                        }
                        remapped
                    })
                    .collect()
            } else {
                round
            }
        } else {
            round
        };
        // Double-buffered overlap: while this round is on the wire, the
        // previous round's count kernel runs on each rank's stream.
        let hidden = if rc.overlap_rounds {
            prev_round_times.take()
        } else {
            None
        };
        world.fault_context(round_idx as u64, 0);
        let mut rr = stages.exchange_round(&mut world, round, hidden.as_deref());
        wire_total += rr.wire_mean;
        charged_total += rr.charged_mean;
        let mut delivered = rr.items;
        // Bounded retry-with-backoff: re-offer only the failed/corrupt
        // buckets, with the backoff and the retry collective charged to
        // the sim clock as recovery time. Exhausting the budget is a
        // clean run failure, never a panic.
        let mut attempt: u32 = 1;
        while rr.failed_sends + rr.corrupt_buckets > 0 {
            let spec = fault_spec.expect("faults cannot fire without a plan");
            retries_total += rr.failed_sends + rr.corrupt_buckets;
            corrupt_total += rr.corrupt_buckets;
            if attempt > spec.max_retries {
                return Err(RunError::ExchangeFailed {
                    round: round_idx as u64,
                    attempts: attempt,
                });
            }
            let backoff =
                SimTime::from_secs(spec.backoff_secs * (1u64 << (attempt - 1).min(20)) as f64);
            if let Some(j) = &journal {
                j.push(JournalEvent::Retry {
                    round: round_idx as u64,
                    attempt,
                    failed: rr.failed_sends,
                    corrupt: rr.corrupt_buckets,
                    backoff: backoff.as_secs(),
                });
            }
            world.advance_all("retry-backoff", backoff);
            world.fault_context(round_idx as u64, attempt);
            rr = stages.exchange_round(&mut world, rr.undelivered, None);
            recovery_total += backoff + rr.charged_mean;
            for (dst, items) in rr.items.iter_mut().enumerate() {
                delivered[dst].append(items);
            }
            attempt += 1;
        }
        world.clear_fault_context();
        for (rank, items) in delivered.iter().enumerate() {
            received_items[rank] += items.len() as u64;
        }
        // Count this round (functionally now; its simulated time is
        // charged either as the next round's hidden compute or in the
        // final count step).
        let paired: Vec<(S::Counter, Vec<S::Item>)> = counters.into_iter().zip(delivered).collect();
        let counted: Vec<(S::Counter, Result<SimTime, CounterOom>)> = paired
            .into_par_iter()
            .map(|(mut c, items)| {
                let dt = stages.count_round(&ctx, &mut c, items);
                (c, dt)
            })
            .collect();
        let mut times = Vec::with_capacity(nranks);
        counters = Vec::with_capacity(nranks);
        let mut oom: Option<(usize, CounterOom)> = None;
        for (rank, (c, r)) in counted.into_iter().enumerate() {
            match r {
                Ok(t) => times.push(t),
                Err(e) => {
                    // Keep the first failing rank's story; the counters
                    // themselves survive so every rank's high-water mark
                    // makes it into the error.
                    if oom.is_none() {
                        oom = Some((rank, e));
                    }
                    times.push(SimTime::ZERO);
                }
            }
            counters.push(c);
        }
        if let Some((rank, e)) = oom {
            let mut high_water: Vec<u64> = counters
                .iter()
                .map(|c| stages.pressure(c).high_water_bytes)
                .collect();
            high_water[rank] = high_water[rank].max(e.high_water_bytes);
            return Err(RunError::DeviceOom {
                rank,
                detail: e.detail,
                high_water_bytes: high_water,
            });
        }
        // Cumulative spill samples feed a dedicated trace counter lane —
        // emitted only when pressure actually spilled something, so an
        // unconstrained run's trace schema is untouched.
        if rc.collect_trace {
            for (rank, c) in counters.iter().enumerate() {
                let p = stages.pressure(c);
                if p.spilled > 0 {
                    world.push_counter_sample("spill k-mers", rank, p.spilled as f64);
                }
                // The HBM lane exists only for ranks where pressure
                // actually fired — high-water marks are nonzero on every
                // run, so gating on them would change clean-run traces.
                if p.fired() {
                    world.push_counter_sample("hbm bytes", rank, p.high_water_bytes as f64);
                }
            }
        }
        for (rank, t) in times.iter().enumerate() {
            count_totals[rank] += *t;
        }
        last_round_times.clone_from(&times);
        prev_round_times = Some(times);
        // Checkpoint tick: every `--checkpoint-rounds N` counted rounds,
        // snapshot each live counter so a later death replays only the
        // gap since the snapshot instead of the whole run.
        if recovery_active {
            if let Some(n) = rc.checkpoint_rounds {
                if (round_idx as u64 + 1).is_multiple_of(n) {
                    for (r, c) in counters.iter().enumerate() {
                        if alive[r] {
                            let (entries, instances) = stages.snapshot_counts(c);
                            snaps[r] = Some((round_idx + 1, entries, instances));
                        }
                    }
                }
            }
        }
    }
    let wall_rounds = wall_rounds_start.elapsed().as_secs_f64();
    let wall_finish_start = Instant::now();
    let (_, stage_in_step) = world.compute_step_named("stage-in", |rank| {
        ((), stages.stage_in(&ctx, received_items[rank]))
    });

    // ── Count phase drain ──────────────────────────────────────────────
    // Under overlap every round but the last was hidden behind a wire;
    // only the final round's kernel remains exposed. (With one round the
    // two are identical — there was nothing to hide behind.)
    let drain = if rc.overlap_rounds {
        last_round_times
    } else {
        count_totals
    };
    let (_, count_step) = world.compute_step_named("count", |rank| ((), drain[rank]));
    // Recovery accounting: one journal event per rank-and-kind of memory
    // pressure that actually fired (unpressured runs journal nothing
    // here, mirroring the pressure metrics' existence discipline).
    if let Some(j) = &journal {
        for (rank, c) in counters.iter().enumerate() {
            let p = stages.pressure(c);
            if p.regrows > 0 {
                j.push(JournalEvent::Regrow {
                    rank,
                    count: p.regrows,
                });
            }
            if p.spilled > 0 {
                j.push(JournalEvent::Spill {
                    rank,
                    kmers: p.spilled,
                });
            }
            if p.oom_events > 0 {
                j.push(JournalEvent::Oom {
                    rank,
                    detail: format!(
                        "{} grow allocation(s) denied; recovered by spilling to host",
                        p.oom_events
                    ),
                });
            }
        }
    }
    let indexed: Vec<(usize, S::Counter)> = counters.into_iter().enumerate().collect();
    let mut rank_results: Vec<RankCountResult<S::Key>> = indexed
        .into_par_iter()
        .map(|(rank, c)| stages.finish(&ctx, rank, c))
        .collect();
    if !salvaged.is_empty() {
        fold_salvaged(&mut rank_results, salvaged);
    }

    // ── Report assembly ────────────────────────────────────────────────
    let phases = PhaseBreakdown {
        parse: prepass_time + bucket_step.mean,
        exchange: stage_out_step.mean + charged_total + recovery_total + stage_in_step.mean,
        count: count_step.mean,
    };
    let makespan = world.elapsed();
    let wall_finish = wall_finish_start.elapsed().as_secs_f64();
    let wall = WallClock {
        parse: wall_parse,
        rounds: wall_rounds,
        finish: wall_finish,
        total: wall_run.elapsed().as_secs_f64(),
    };
    if let Some(m) = &metrics {
        // Fault-recovery series exist only when recovery happened, so a
        // zero-fault plan leaves the metrics schema untouched.
        if retries_total > 0 {
            m.counter_add("retries_total", None, retries_total);
            m.counter_add("corrupt_buckets_total", None, corrupt_total);
        }
        if dead_total > 0 {
            m.counter_add("rank_deaths_total", None, dead_total as u64);
            m.counter_add("exchange_replay_bytes_total", None, replayed_bytes_total);
        }
        if retries_total > 0 || dead_total > 0 {
            m.gauge_add("recovery_seconds_total", None, recovery_total.as_secs());
        }
        // Always-on phase and makespan gauges — what `dedukt analyze`
        // reconciles the journal against — plus the wall-clock lane
        // (real host seconds; the one nondeterministic series family).
        m.gauge_set("phase_seconds:parse", None, phases.parse.as_secs());
        m.gauge_set("phase_seconds:exchange", None, phases.exchange.as_secs());
        m.gauge_set("phase_seconds:count", None, phases.count.as_secs());
        m.gauge_set("makespan_seconds", None, makespan.as_secs());
        m.gauge_set("wall_seconds:parse", None, wall.parse);
        m.gauge_set("wall_seconds:rounds", None, wall.rounds);
        m.gauge_set("wall_seconds:finish", None, wall.finish);
        m.gauge_set("wall_seconds:total", None, wall.total);
    }
    if let Some(j) = &journal {
        // Phase totals from the same accumulators as the report, so the
        // analyzer's reconciliation is exact (not epsilon-close).
        j.push(JournalEvent::Phase {
            phase: "parse".to_string(),
            secs: phases.parse.as_secs(),
        });
        j.push(JournalEvent::Phase {
            phase: "exchange".to_string(),
            secs: phases.exchange.as_secs(),
        });
        j.push(JournalEvent::Phase {
            phase: "count".to_string(),
            secs: phases.count.as_secs(),
        });
        for (stage, secs) in [
            ("parse", wall.parse),
            ("rounds", wall.rounds),
            ("finish", wall.finish),
            ("total", wall.total),
        ] {
            j.push(JournalEvent::Wall {
                stage: stage.to_string(),
                secs,
            });
        }
        j.push(JournalEvent::Run {
            makespan: makespan.as_secs(),
        });
    }
    let trace = rc.collect_trace.then(|| world.take_trace());
    let trace_counters = rc.collect_trace.then(|| world.take_trace_counters());
    let stats = world.stats();
    let (load, total, distinct, spectrum, tables) =
        assemble_counts(rank_results, rc.collect_spectrum, rc.collect_tables);
    Ok(RunReport {
        mode: rc.mode,
        nodes: rc.nodes,
        nranks,
        phases,
        makespan,
        exchange: ExchangeSummary {
            units,
            bytes: stats.total_bytes,
            off_node_bytes: stats.off_node_bytes,
            intra_node_bytes: stats.intra_node_bytes,
            intra_tier_bytes: stats.intra_tier_bytes,
            coalesced_messages: stats.coalesced_messages,
            alltoallv_time: wire_total,
            rounds: nrounds as u64,
            retries: retries_total,
            corrupt_buckets: corrupt_total,
            retry_bytes: stats.retry_bytes,
            recovery_time: recovery_total,
            rank_deaths: dead_total as u64,
            replayed_bytes: replayed_bytes_total,
        },
        load,
        total_kmers: total,
        distinct_kmers: distinct,
        spectrum,
        tables,
        trace,
        trace_counters,
        metrics: metrics.map(|m| m.snapshot()),
        wall,
        journal: journal.map(|j| j.snapshot()),
    })
}

/// One-line run description for the journal's meta event: the knobs that
/// shape timing, plus any fault or memory-pressure plans. Shared with
/// the out-of-core two-pass driver, which appends no labels of its own —
/// everything two-pass-specific is a [`RunConfig`] knob listed here.
pub(crate) fn run_detail(rc: &RunConfig) -> String {
    let mut parts = vec![format!("k={}", rc.counting.k)];
    if rc.gpu_direct {
        parts.push("gpu-direct".to_string());
    }
    if let Some(cap) = rc.round_limit_bytes {
        parts.push(format!("round-limit={cap}"));
    }
    if rc.overlap_rounds {
        parts.push("overlap".to_string());
    }
    if rc.exchange_algo != dedukt_net::cost::ExchangeAlgo::Direct {
        parts.push(format!(
            "exchange-algo={}",
            dedukt_net::ExchangeRoute::from_algo(rc.exchange_algo).label()
        ));
    }
    if rc.wire_compress {
        parts.push("wire-compress".to_string());
    }
    if rc.balanced_minimizers {
        parts.push("balanced-minimizers".to_string());
    }
    if let Some(plan) = &rc.fault {
        let s = plan.spec();
        parts.push(format!(
            "fault[seed={} fail={} corrupt={} straggle={}x{} retries={} backoff={}]",
            plan.seed(),
            s.fail_rate,
            s.corrupt_rate,
            s.straggle_rate,
            s.straggle_factor,
            s.max_retries,
            s.backoff_secs
        ));
    }
    if let Some(plan) = &rc.mem {
        parts.push(format!("mem[{}]", plan.journal_label()));
    }
    if let Some(plan) = &rc.rank {
        let s = plan.spec();
        parts.push(format!(
            "rank[seed={} rate={} max-dead={} kills={}]",
            plan.seed(),
            s.rate,
            s.max_dead,
            s.kill.len()
        ));
    }
    if let Some(n) = rc.checkpoint_rounds {
        parts.push(format!("checkpoint-rounds={n}"));
    }
    if !rc.rescale.is_empty() {
        let sched: Vec<String> = rc
            .rescale
            .iter()
            .map(|(round, world)| format!("{round}:{world}"))
            .collect();
        parts.push(format!("rescale={}", sched.join(",")));
    }
    if rc.two_pass_dir.is_some() {
        parts.push("two-pass".to_string());
        if rc.two_pass_resume {
            parts.push("resume".to_string());
        }
        if rc.min_count > 1 {
            parts.push(format!("min-count={}", rc.min_count));
        }
    }
    if let Some(plan) = &rc.io {
        parts.push(format!("io[{}]", plan.journal_label()));
    }
    parts.join(" ")
}

/// Replaces a dead or departing rank's counter with a fresh one,
/// converting an allocation failure into the run-level OOM error (with
/// every rank's high-water mark, like the startup path).
fn fresh_counter_or_oom<S: CounterStages>(
    stages: &S,
    ctx: &DriverCtx,
    counters: &[S::Counter],
    rank: usize,
    expected: u64,
) -> Result<S::Counter, RunError> {
    stages.make_counter(ctx, rank, expected).map_err(|e| {
        let mut high_water: Vec<u64> = counters
            .iter()
            .map(|c| stages.pressure(c).high_water_bytes)
            .collect();
        high_water[rank] = high_water[rank].max(e.high_water_bytes);
        RunError::DeviceOom {
            rank,
            detail: e.detail,
            high_water_bytes: high_water,
        }
    })
}

/// Folds salvaged tables (checkpoints of dead ranks, full tables of
/// rescale departures and restarts) back into the per-rank results,
/// merging by key so no k-mer's count is split across two tables —
/// splitting would land the key in the wrong spectrum bins even though
/// the total is right. Salvaged instances are credited to the slot that
/// earned them, keeping the per-rank load sum conserved.
fn fold_salvaged<K: crate::table::TableKey>(
    rank_results: &mut [RankCountResult<K>],
    salvaged: Vec<SalvagedTable<K>>,
) {
    for (slot, entries, instances) in salvaged {
        rank_results[slot].entries.extend(entries);
        rank_results[slot].instances += instances;
    }
    // Global merge-by-key: the first table a key appears in keeps it;
    // later occurrences add their count there and vanish. Keys never
    // split across *live* tables on the replay path, so this pass only
    // reunites salvaged fragments with their live remainder.
    let mut seen: std::collections::BTreeMap<K, (usize, usize)> = std::collections::BTreeMap::new();
    for slot in 0..rank_results.len() {
        let mut i = 0;
        while i < rank_results[slot].entries.len() {
            let (key, count) = rank_results[slot].entries[i];
            match seen.get(&key) {
                Some(&(first_slot, first_idx)) => {
                    rank_results[first_slot].entries[first_idx].1 += count;
                    rank_results[slot].entries.swap_remove(i);
                }
                None => {
                    seen.insert(key, (slot, i));
                    i += 1;
                }
            }
        }
    }
}

/// Builds [`RunError::DeviceOom`] from a counter-creation pass where at
/// least one rank failed: the first failing rank names the error, and
/// every rank contributes its allocation high-water mark (failed ranks
/// report the mark they reached before the refused allocation).
fn device_oom_error<S: CounterStages>(
    stages: &S,
    made: Vec<Result<S::Counter, CounterOom>>,
) -> RunError {
    let mut first: Option<(usize, String)> = None;
    let mut high_water = Vec::with_capacity(made.len());
    for (rank, r) in made.into_iter().enumerate() {
        match r {
            Ok(c) => high_water.push(stages.pressure(&c).high_water_bytes),
            Err(e) => {
                high_water.push(e.high_water_bytes);
                if first.is_none() {
                    first = Some((rank, e.detail));
                }
            }
        }
    }
    let (rank, detail) = first.expect("device_oom_error called with no failures");
    RunError::DeviceOom {
        rank,
        detail,
        high_water_bytes: high_water,
    }
}

/// Shared exchange hook for the pipelines whose wire items are bare
/// packed k-mers (at either width): one Alltoallv per round, overlapped
/// when `hidden` is present.
pub(crate) fn exchange_items_round<I: Send + dedukt_net::fault::WireHash>(
    world: &mut BspWorld,
    round: Vec<Vec<Vec<I>>>,
    hidden: Option<&[SimTime]>,
) -> RoundRecv<I> {
    let outcome = match hidden {
        Some(h) => world.alltoallv_overlapped(round, h),
        None => world.alltoallv(round),
    };
    RoundRecv {
        items: flatten_recv(outcome.recv),
        undelivered: outcome.undelivered,
        failed_sends: outcome.failed_sends,
        corrupt_buckets: outcome.corrupt_buckets,
        wire_mean: outcome.wire.mean,
        charged_mean: outcome.times.mean,
    }
}

/// Concatenates `recv[dst][src]` payloads into one list per destination,
/// preserving source-rank order.
pub(crate) fn flatten_recv<I>(recv: Vec<Vec<Vec<I>>>) -> Vec<Vec<I>> {
    recv.into_iter()
        .map(|per_src| per_src.into_iter().flatten().collect())
        .collect()
}
