//! The three distributed counting pipelines and their shared reporting.
//!
//! All pipelines are bulk-synchronous (compute → Alltoallv → compute) and
//! run on [`dedukt_net::BspWorld`]; the GPU pipelines additionally drive
//! one simulated V100 per rank. Functional results (counts, buckets,
//! volumes, loads) are exact; *times* are simulated (see DESIGN.md §4).

pub mod cpu;
pub(crate) mod driver;
pub mod gpu_common;
pub mod gpu_kmer;
pub mod gpu_supermer;
pub mod two_pass;

use crate::config::{ConfigError, Mode, RunConfig};
use crate::stats::{ExchangeSummary, LoadSummary, PhaseBreakdown};
use crate::table::TableKey;
use crate::width::PackedKmer;
use dedukt_dna::spectrum::Spectrum;
use dedukt_dna::ReadSet;
use dedukt_sim::{Rate, SimTime};

/// Everything a pipeline run reports, generic over the packed key width
/// (`u64` for the paper's k ≤ 31 regime, `u128` for wide k ≤ 63 — only
/// the optional per-rank tables carry the key type).
#[derive(Clone, Debug)]
pub struct RunReport<K: TableKey = u64> {
    /// Which counter ran.
    pub mode: Mode,
    /// Nodes simulated.
    pub nodes: usize,
    /// Total ranks.
    pub nranks: usize,
    /// Simulated time per module (Fig. 3 / Fig. 7). Bars are per-rank
    /// *means*, like the paper's breakdowns; straggler waits appear in
    /// [`RunReport::makespan`].
    pub phases: PhaseBreakdown,
    /// End-to-end simulated makespan: when the slowest rank finished,
    /// including all straggler waits at the bulk-synchronous boundaries.
    pub makespan: dedukt_sim::SimTime,
    /// Exchange volume accounting (Table II / Fig. 8).
    pub exchange: ExchangeSummary,
    /// Per-rank counting loads (Table III).
    pub load: LoadSummary,
    /// Total k-mer instances counted (must equal the oracle's).
    pub total_kmers: u64,
    /// Distinct k-mers across all rank tables.
    pub distinct_kmers: u64,
    /// Merged k-mer spectrum, if requested.
    pub spectrum: Option<Spectrum>,
    /// Per-rank `(kmer, count)` tables, if requested (verification).
    pub tables: Option<Vec<Vec<(K, u32)>>>,
    /// Per-rank phase timeline, if requested (Chrome trace-event ready).
    pub trace: Option<Vec<dedukt_sim::TraceEvent>>,
    /// Cumulative per-rank exchange-byte samples, if a trace was
    /// requested — embedded as `"ph": "C"` counter tracks by
    /// [`dedukt_sim::trace::write_chrome_trace_with`].
    pub trace_counters: Option<Vec<dedukt_sim::TraceCounter>>,
    /// Run-wide telemetry snapshot, if requested
    /// ([`crate::config::RunConfig::collect_metrics`]).
    pub metrics: Option<dedukt_sim::MetricsSnapshot>,
    /// Real host wall-clock seconds per driver stage — always measured,
    /// and the report's only nondeterministic numbers (they time this
    /// process, not the simulated machine).
    pub wall: crate::stats::WallClock,
    /// Structured run journal for `dedukt analyze`, if requested
    /// ([`crate::config::RunConfig::collect_journal`]).
    pub journal: Option<Vec<dedukt_sim::JournalEvent>>,
}

impl<K: TableKey> RunReport<K> {
    /// End-to-end simulated time (excl. I/O): the sum of the phase bars,
    /// matching how the paper's stacked breakdowns read.
    pub fn total_time(&self) -> SimTime {
        self.phases.total()
    }

    /// Overall speedup of this run relative to `baseline` (which may have
    /// run at a different key width).
    pub fn speedup_over<K2: TableKey>(&self, baseline: &RunReport<K2>) -> f64 {
        baseline.total_time() / self.total_time()
    }

    /// Fig. 9's metric: k-mers per second through the compute kernels
    /// (exchange excluded).
    pub fn insertion_rate(&self) -> Option<Rate> {
        crate::stats::insertion_rate(self.total_kmers, self.phases.parse, self.phases.count)
    }
}

/// A failed pipeline run: either the configuration was rejected up
/// front, or the run itself died in a way the driver reports cleanly
/// (today: an exchange round exhausting its fault-retry budget, or a
/// rank exhausting device memory *and* its host spill budget).
#[derive(Clone, Debug, PartialEq)]
pub enum RunError {
    /// The run configuration was rejected before any work was done.
    Config(ConfigError),
    /// An exchange round still had undelivered buckets after the fault
    /// plan's full retry budget (`1 + max_retries` attempts).
    ExchangeFailed {
        /// Zero-based exchange round that could not complete.
        round: u64,
        /// Delivery attempts made (first attempt + retries).
        attempts: u32,
    },
    /// A rank ran out of device memory for its count table and could not
    /// recover: the grow-and-rehash path was denied and the host spill
    /// list hit its budget (DESIGN.md §8). The run unwinds cleanly —
    /// never a panic — carrying every rank's allocation high-water mark
    /// for post-mortem sizing.
    DeviceOom {
        /// Rank that exhausted both the device budget and the spill list.
        rank: usize,
        /// What failed (allocation request, spill budget), from the
        /// counting stage.
        detail: String,
        /// Per-rank device-allocation high-water marks in bytes, indexed
        /// by rank.
        high_water_bytes: Vec<u64>,
    },
    /// The rank-failure plan killed more ranks than the recovery budget
    /// tolerates — either `RankSpec::max_dead` was exceeded or no rank
    /// survived to inherit the dead ranges (DESIGN.md §11). The run
    /// unwinds cleanly — never a panic, never a partial spectrum.
    RanksLost {
        /// Ranks dead when the budget check failed.
        dead: usize,
        /// Zero-based exchange round whose boundary detected the loss.
        round: u64,
    },
    /// The out-of-core bin store failed beyond its recovery budget: a
    /// bin stayed unreadable after every retry and re-derive the
    /// [`dedukt_store::IoSpec`] allows, the run hit the plan's injected
    /// kill, or the store/manifest itself could not be used
    /// (DESIGN.md §12). The run unwinds cleanly — never a panic, never
    /// a partial spectrum — and an injected kill leaves the manifest
    /// and every finished bin behind for `--resume`.
    StorageFailed {
        /// Bin the failure is attributed to.
        bin: u64,
        /// What happened (attempts made, generations tried, or the kill
        /// notice with resume instructions).
        detail: String,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Config(e) => e.fmt(f),
            RunError::ExchangeFailed { round, attempts } => write!(
                f,
                "exchange round {round} failed: buckets still undelivered after \
                 {attempts} attempts (fault retry budget exhausted)"
            ),
            RunError::DeviceOom {
                rank,
                detail,
                high_water_bytes,
            } => write!(
                f,
                "device out of memory on rank {rank}: {detail}; per-rank HBM \
                 high-water marks {high_water_bytes:?} bytes"
            ),
            RunError::RanksLost { dead, round } => write!(
                f,
                "{dead} ranks dead at round {round}: rank-failure recovery budget \
                 exhausted"
            ),
            RunError::StorageFailed { bin, detail } => {
                write!(f, "storage failed at bin {bin}: {detail}")
            }
        }
    }
}

impl std::error::Error for RunError {}

impl From<ConfigError> for RunError {
    fn from(e: ConfigError) -> RunError {
        RunError::Config(e)
    }
}

/// Runs the pipeline selected by `rc.mode`.
///
/// Validates the whole run configuration first and returns a
/// [`RunError`] instead of panicking on a bad configuration or an
/// unsurvivable fault plan — CLI and library callers can surface the
/// message cleanly. The per-mode `run_*` functions remain panicking
/// entry points for callers that have already validated.
pub fn run(reads: &ReadSet, rc: &RunConfig) -> Result<RunReport, RunError> {
    run_typed::<u64>(reads, rc)
}

/// [`run`] at an explicit packed key width: `u64` serves k ≤ 31 (and is
/// exactly [`run`]), `u128` serves wide k ≤ 63. All three modes, round
/// splitting, overlap, metrics, and tracing behave identically at either
/// width; only the wire bytes per item (and hence exchange volumes and
/// simulated times) differ.
pub fn run_typed<K: PackedKmer>(reads: &ReadSet, rc: &RunConfig) -> Result<RunReport<K>, RunError> {
    rc.validate_for_width(K::MAX_COUNTING_K, K::MAX_SUPERMER_BASES)
        .map_err(RunError::Config)?;
    // Normalize semantically empty injection plans to absent ones, so a
    // spec like `fail=0,corrupt=0,straggle=0` runs byte-identically to an
    // unset flag on every engine (same journal meta, same report fields).
    // The mem normalization additionally requires exact table sizing:
    // with `table_safety < 1` a plan-free run and a noop-plan run differ
    // in spill budget, so the plan must be kept.
    let mut rc = rc.clone();
    if rc.fault.is_some_and(|p| p.spec().is_noop()) {
        rc.fault = None;
    }
    if rc.mem.is_some_and(|p| p.spec().is_noop()) && rc.table_safety == 1.0 {
        rc.mem = None;
    }
    if rc.rank.as_ref().is_some_and(|p| p.spec().is_noop()) {
        rc.rank = None;
    }
    if rc.io.as_ref().is_some_and(|p| p.spec().is_noop()) {
        rc.io = None;
    }
    let rc = &rc;
    if rc.two_pass_dir.is_some() {
        return two_pass::run_two_pass_typed::<K>(reads, rc);
    }
    match rc.mode {
        Mode::CpuBaseline => cpu::run_cpu_typed::<K>(reads, rc),
        Mode::GpuKmer => gpu_kmer::run_gpu_kmer_typed::<K>(reads, rc),
        Mode::GpuSupermer => gpu_supermer::run_gpu_supermer_typed::<K>(reads, rc),
    }
}

/// Shared post-processing: assemble the report pieces every pipeline
/// produces the same way.
pub(crate) struct RankCountResult<K: TableKey = u64> {
    /// `(kmer, count)` pairs of this rank's table.
    pub entries: Vec<(K, u32)>,
    /// k-mer instances this rank counted.
    pub instances: u64,
}

/// `(load, total, distinct, spectrum, tables)` — the report pieces in
/// the order [`RunReport`] consumes them.
pub(crate) type AssembledCounts<K> = (
    LoadSummary,
    u64,
    u64,
    Option<Spectrum>,
    Option<Vec<Vec<(K, u32)>>>,
);

pub(crate) fn assemble_counts<K: TableKey>(
    rank_results: Vec<RankCountResult<K>>,
    collect_spectrum: bool,
    collect_tables: bool,
) -> AssembledCounts<K> {
    let kmers_per_rank: Vec<u64> = rank_results.iter().map(|r| r.instances).collect();
    let total: u64 = kmers_per_rank.iter().sum();
    let distinct: u64 = rank_results.iter().map(|r| r.entries.len() as u64).sum();
    let spectrum = collect_spectrum.then(|| {
        let mut s = Spectrum::new();
        for r in &rank_results {
            for &(_, c) in &r.entries {
                s.record(c);
            }
        }
        s
    });
    let tables = collect_tables.then(|| rank_results.into_iter().map(|r| r.entries).collect());
    (
        LoadSummary { kmers_per_rank },
        total,
        distinct,
        spectrum,
        tables,
    )
}
