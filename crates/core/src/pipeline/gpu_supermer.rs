//! The GPU supermer counter (§IV): communicate supermers, not k-mers.
//!
//! Differences from the k-mer pipeline:
//!
//! * **Parse** — one thread per *window* of `window` k-mer positions
//!   (§IV-B, Fig. 5): the thread scans its window's k-mers, tracks the
//!   minimizer, extends the supermer in a register while the minimizer is
//!   unchanged, and writes each finished supermer (packed word + length
//!   byte) to the outgoing buffer of `HASH(minimizer) % P`. All k-mers of
//!   a supermer share its minimizer, so they all land on the same rank.
//! * **Exchange** — two `MPI_Alltoallv`s (Algorithm 2): the supermer
//!   words and their lengths. 9 bytes per supermer instead of 8 bytes per
//!   k-mer — the up-to-4× volume reduction of Table II.
//! * **Count** — received supermers are first re-parsed into k-mers
//!   (charged as the paper's measured +23-27% counting overhead), then
//!   counted by the same device table kernel.

use crate::config::RunConfig;
use crate::partition::{minimizer_owner, BalancedAssignment};
use crate::pipeline::gpu_common::{block_range, chunked_launch, count_kmers_on_device, staging};
use crate::pipeline::{assemble_counts, RankCountResult, RunReport};
use crate::stats::{ExchangeSummary, PhaseBreakdown};
use crate::supermer::build_supermers_reference;
use crate::supermer::{num_windows, supermers_of_window, Supermer};
use dedukt_dna::kmer::Kmer;
use dedukt_dna::ReadSet;
use dedukt_hash::Murmur3x64;
use dedukt_net::cost::Network;
use dedukt_net::BspWorld;
use dedukt_sim::{DataVolume, Histogram, MetricsRegistry};
use std::collections::HashMap;
use std::sync::Arc;

/// Runs the GPU supermer counter.
pub fn run_gpu_supermer(reads: &ReadSet, rc: &RunConfig) -> RunReport {
    let cfg = rc.counting;
    assert!(
        !cfg.canonical,
        "canonical counting is incompatible with minimizer routing of raw supermers; \
         use the k-mer pipelines for canonical mode"
    );
    let nranks = rc.nranks();
    let mut net = Network::summit_gpu(rc.nodes);
    net.params.algo = rc.exchange_algo;
    let mut world = BspWorld::new(net);
    let metrics = rc.collect_metrics.then(|| Arc::new(MetricsRegistry::new()));
    if let Some(m) = &metrics {
        world.enable_metrics(Arc::clone(m));
    }
    let parts = reads.partition_by_bases(nranks);
    let hasher = Murmur3x64::new(cfg.hash_seed);
    let tuning = rc.gpu_tuning;
    let scheme = cfg.minimizer_scheme();

    // ── Optional pre-pass: frequency-aware balanced assignment (§VII) ──
    // Each rank samples a deterministic stride of its reads, weights are
    // merged (an Allgather in real MPI), and every rank derives the same
    // minimizer→rank map. Sampling time joins the parse phase.
    let mut prepass_time = dedukt_sim::SimTime::ZERO;
    let assignment: Option<BalancedAssignment> = if rc.balanced_minimizers {
        let stride = (1.0 / rc.balance_sample_fraction.clamp(0.001, 1.0)).round() as usize;
        let (rank_weights, sample_times) = world.compute_step_named("sample-minimizers", |rank| {
            let mut weights: HashMap<u64, u64> = HashMap::new();
            let mut sampled_kmers = 0u64;
            for read in parts[rank].reads.iter().step_by(stride.max(1)) {
                for sm in build_supermers_reference(&read.codes, cfg.k, &scheme) {
                    let nk = sm.num_kmers(cfg.k) as u64;
                    *weights.entry(sm.minimizer).or_insert(0) += nk;
                    sampled_kmers += nk;
                }
            }
            let device = dedukt_gpu::Device::new(rc.gpu_device.clone());
            let dt = dedukt_sim::SimTime::from_secs(
                sampled_kmers as f64 * tuning.supermer_parse_cycles_per_kmer
                    / device.config().peak_instr_rate().units_per_sec(),
            );
            (weights, dt)
        });
        let mut merged: HashMap<u64, u64> = HashMap::new();
        let mut weight_bytes = 0u64;
        for w in rank_weights {
            weight_bytes += w.len() as u64 * 16;
            for (mz, n) in w {
                *merged.entry(mz).or_insert(0) += n;
            }
        }
        prepass_time = sample_times.mean
            + world
                .network()
                .allreduce_time(weight_bytes / nranks.max(1) as u64);
        Some(BalancedAssignment::build(&merged, nranks, cfg.hash_seed))
    } else {
        None
    };
    let owner = |mz: u64| match &assignment {
        Some(a) => a.owner(mz),
        None => minimizer_owner(&hasher, mz, nranks),
    };

    // ── Phase 1: build supermers on the device (§IV-B) ────────────────
    let (parse_out, parse_time) = world.compute_step_named("build-supermers", |rank| {
        let device = dedukt_gpu::Device::new(rc.gpu_device.clone());
        let part = &parts[rank];

        // Window index: prefix sums of per-read window counts. The real
        // kernel computes this on the host while batching reads.
        let mut win_offsets = Vec::with_capacity(part.reads.len() + 1);
        win_offsets.push(0usize);
        for r in &part.reads {
            win_offsets.push(win_offsets.last().unwrap() + num_windows(r.len(), cfg.k, cfg.window));
        }
        let total_windows = *win_offsets.last().unwrap();
        let h2d = staging(
            &device,
            rc,
            DataVolume::from_bytes((part.total_bases() / 4 + part.reads.len() * 8) as u64),
        );

        let launch = chunked_launch(total_windows.max(1));
        let (report, block_buckets) = device.launch_map("build_supermers", launch, |b| {
            let (lo, hi) = block_range(total_windows, b.cfg.grid_blocks, b.block);
            let mut local: Vec<(Vec<u64>, Vec<u8>)> = vec![(Vec::new(), Vec::new()); nranks];
            let mut smers: Vec<Supermer> = Vec::new();
            let mut kmers_scanned = 0u64;
            let mut smers_built = 0u64;
            for wi in lo..hi {
                // Which read owns window `wi`?
                let ri = win_offsets.partition_point(|&o| o <= wi) - 1;
                let wstart = (wi - win_offsets[ri]) * cfg.window;
                let codes = &part.reads[ri].codes;
                smers.clear();
                supermers_of_window(codes, wstart, cfg.k, cfg.window, &scheme, &mut smers);
                for sm in &smers {
                    let dst = owner(sm.minimizer);
                    local[dst].0.push(sm.word);
                    local[dst].1.push(sm.len);
                    kmers_scanned += sm.num_kmers(cfg.k) as u64;
                }
                smers_built += smers.len() as u64;
            }
            // Calibrated compute per k-mer scanned (includes the rolling
            // minimizer search — the paper's +27-33% parse overhead), plus
            // real traffic: packed reads in, 9 B per supermer out, one
            // warp-aggregated append per supermer.
            b.instr((kmers_scanned as f64 * tuning.supermer_parse_cycles_per_kmer) as u64);
            b.gmem_coalesced(kmers_scanned / 4 + cfg.k as u64);
            b.gmem_random(smers_built * Supermer::WIRE_BYTES);
            let atomics = smers_built / 32 + 1;
            b.atomic(atomics, atomics / (nranks as u64).max(32));
            local
        });

        let mut words: Vec<Vec<u64>> = vec![Vec::new(); nranks];
        let mut lens: Vec<Vec<u8>> = vec![Vec::new(); nranks];
        for blocks in block_buckets {
            for (dst, (w, l)) in blocks.into_iter().enumerate() {
                words[dst].extend(w);
                lens[dst].extend(l);
            }
        }
        let out_bytes: u64 = words
            .iter()
            .map(|v| v.len() as u64 * Supermer::WIRE_BYTES)
            .sum();
        let d2h = staging(&device, rc, DataVolume::from_bytes(out_bytes));
        if let Some(m) = &metrics {
            // Supermer-length distribution and the wire-compression ratio
            // this rank achieved: 8 B per k-mer had they been sent raw vs
            // 9 B per supermer actually sent (Table II's saving).
            let mut length_hist = Histogram::new();
            let mut kmer_count = 0u64;
            for l in lens.iter().flatten() {
                length_hist.observe(*l as u64);
                kmer_count += (*l as u64).saturating_sub(cfg.k as u64 - 1);
            }
            let supermer_count = length_hist.count();
            m.merge_histogram("supermer_length_bases", Some(rank), &length_hist);
            m.counter_add("supermers_built_total", Some(rank), supermer_count);
            if supermer_count > 0 {
                m.gauge_set(
                    "supermer_compression_ratio",
                    Some(rank),
                    (kmer_count * 8) as f64 / (supermer_count * Supermer::WIRE_BYTES) as f64,
                );
            }
            m.gauge_set(
                "kernel_occupancy:build_supermers",
                Some(rank),
                report.occupancy,
            );
            m.gauge_max("device_peak_bytes", Some(rank), device.peak_bytes() as f64);
        }
        (((words, lens), d2h), h2d + report.time)
    });

    let mut word_buckets = Vec::with_capacity(nranks);
    let mut len_buckets = Vec::with_capacity(nranks);
    let mut d2h_times = Vec::with_capacity(nranks);
    for (((w, l), t), _) in parse_out.into_iter().zip(0..) {
        word_buckets.push(w);
        len_buckets.push(l);
        d2h_times.push(t);
    }
    let supermers_sent: u64 = word_buckets
        .iter()
        .flat_map(|row| row.iter().map(|v| v.len() as u64))
        .sum();

    // ── Phase 2: exchange supermers + lengths (Algorithm 2) ────────────
    let (_, d2h_step) = world.compute_step_named("stage-out", |rank| ((), d2h_times[rank]));
    let words_out = world.alltoallv(word_buckets);
    let lens_out = world.alltoallv(len_buckets);
    let wire_time = words_out.times.mean + lens_out.times.mean;

    // Re-assemble per-rank received supermers.
    let received: Vec<Vec<(u64, u8)>> = words_out
        .recv
        .into_iter()
        .zip(lens_out.recv)
        .map(|(ws, ls)| {
            let mut flat = Vec::new();
            for (w_src, l_src) in ws.into_iter().zip(ls) {
                assert_eq!(w_src.len(), l_src.len(), "word/length streams must align");
                flat.extend(w_src.into_iter().zip(l_src));
            }
            flat
        })
        .collect();
    let (_, h2d_step) = world.compute_step_named("stage-in", |rank| {
        let device = dedukt_gpu::Device::new(rc.gpu_device.clone());
        let bytes = received[rank].len() as u64 * Supermer::WIRE_BYTES;
        ((), staging(&device, rc, DataVolume::from_bytes(bytes)))
    });
    let exchange_time = d2h_step.mean + wire_time + h2d_step.mean;

    // ── Phase 3: extract k-mers from supermers and count (§IV-C) ──────
    let (rank_results, count_time) = world.compute_step_named("count", |rank| {
        let device = dedukt_gpu::Device::new(rc.gpu_device.clone());
        let mask = Kmer::mask(cfg.k);
        // Device-side extraction, represented functionally by this flatten;
        // its cost is the extract surcharge added to the count kernel.
        let mut kmers = Vec::new();
        for &(word, len) in &received[rank] {
            let n = (len as usize).saturating_sub(cfg.k - 1);
            for i in 0..n {
                let shift = 2 * (len as usize - cfg.k - i);
                kmers.push((word >> shift) & mask);
            }
        }
        let out = count_kmers_on_device(
            &device,
            &cfg,
            &kmers,
            tuning.count_cycles_per_kmer + tuning.extract_cycles_per_kmer,
        );
        if let Some(m) = &metrics {
            m.counter_add("kmers_counted_total", Some(rank), kmers.len() as u64);
            m.merge_histogram("count_probe_steps", Some(rank), &out.probe_hist);
            m.gauge_set("count_table_load_factor", Some(rank), out.load_factor);
            m.gauge_set(
                "kernel_occupancy:count_kmers",
                Some(rank),
                out.report.occupancy,
            );
            m.gauge_max("device_peak_bytes", Some(rank), device.peak_bytes() as f64);
        }
        (
            RankCountResult {
                entries: out.entries,
                instances: kmers.len() as u64,
            },
            out.report.time,
        )
    });

    let makespan = world.elapsed();
    let trace = rc.collect_trace.then(|| world.take_trace());
    let trace_counters = rc.collect_trace.then(|| world.take_trace_counters());
    let stats = world.stats();
    let (load, total, distinct, spectrum, tables) =
        assemble_counts(rank_results, rc.collect_spectrum, rc.collect_tables);
    RunReport {
        mode: rc.mode,
        nodes: rc.nodes,
        nranks,
        phases: PhaseBreakdown {
            parse: prepass_time + parse_time.mean,
            exchange: exchange_time,
            count: count_time.mean,
        },
        makespan,
        exchange: ExchangeSummary {
            units: supermers_sent,
            bytes: stats.total_bytes,
            off_node_bytes: stats.off_node_bytes,
            alltoallv_time: wire_time,
        },
        load,
        total_kmers: total,
        distinct_kmers: distinct,
        spectrum,
        tables,
        trace,
        trace_counters,
        metrics: metrics.map(|m| m.snapshot()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;
    use crate::verify::{check_against_reference, reference_total};
    use dedukt_dna::{Dataset, DatasetId, ScalePreset};

    fn tiny(nodes: usize) -> (ReadSet, RunConfig) {
        let reads = Dataset::new(DatasetId::ABaumannii30x, ScalePreset::Tiny).generate();
        let mut rc = RunConfig::new(Mode::GpuSupermer, nodes);
        rc.collect_tables = true;
        (reads, rc)
    }

    #[test]
    fn counts_match_oracle() {
        let (reads, rc) = tiny(1);
        let report = run_gpu_supermer(&reads, &rc);
        assert_eq!(report.total_kmers, reference_total(&reads, rc.counting.k));
        check_against_reference(&reads, &rc.counting, report.tables.as_ref().unwrap()).unwrap();
    }

    #[test]
    fn counts_match_oracle_multi_node() {
        let (reads, rc) = tiny(2);
        let report = run_gpu_supermer(&reads, &rc);
        check_against_reference(&reads, &rc.counting, report.tables.as_ref().unwrap()).unwrap();
    }

    #[test]
    fn agrees_with_kmer_pipeline() {
        let (reads, rc) = tiny(1);
        let sm = run_gpu_supermer(&reads, &rc);
        let mut rck = rc.clone();
        rck.mode = Mode::GpuKmer;
        let km = crate::pipeline::gpu_kmer::run_gpu_kmer(&reads, &rck);
        assert_eq!(sm.total_kmers, km.total_kmers);
        assert_eq!(sm.distinct_kmers, km.distinct_kmers);
    }

    #[test]
    fn fewer_units_and_bytes_than_kmer_pipeline() {
        // Table II's claim: supermers cut exchanged units ~3-4× and bytes
        // accordingly (9 B per supermer vs 8 B per k-mer).
        let (reads, rc) = tiny(1);
        let sm = run_gpu_supermer(&reads, &rc);
        let mut rck = rc.clone();
        rck.mode = Mode::GpuKmer;
        let km = crate::pipeline::gpu_kmer::run_gpu_kmer(&reads, &rck);
        assert!(
            sm.exchange.units * 2 < km.exchange.units,
            "supermers {} vs k-mers {}",
            sm.exchange.units,
            km.exchange.units
        );
        assert!(sm.exchange.bytes * 2 < km.exchange.bytes);
        assert_eq!(sm.exchange.bytes, sm.exchange.units * 9);
    }

    #[test]
    fn supermer_compute_is_slower_but_exchange_faster() {
        // §V-C's trade-off, at matched node count.
        let (reads, rc) = tiny(1);
        let sm = run_gpu_supermer(&reads, &rc);
        let mut rck = rc.clone();
        rck.mode = Mode::GpuKmer;
        let km = crate::pipeline::gpu_kmer::run_gpu_kmer(&reads, &rck);
        assert!(
            sm.phases.parse > km.phases.parse,
            "supermer parse must cost more"
        );
        assert!(
            sm.phases.count > km.phases.count,
            "supermer count must cost more"
        );
        assert!(
            sm.exchange.alltoallv_time < km.exchange.alltoallv_time,
            "supermer Alltoallv must be faster: {} vs {}",
            sm.exchange.alltoallv_time,
            km.exchange.alltoallv_time
        );
    }

    #[test]
    fn supermer_load_is_more_imbalanced_than_kmer_load() {
        // Table III: minimizer-based routing skews per-rank loads.
        let (reads, rc) = tiny(2); // 12 ranks
        let sm = run_gpu_supermer(&reads, &rc);
        let mut rck = rc.clone();
        rck.mode = Mode::GpuKmer;
        let km = crate::pipeline::gpu_kmer::run_gpu_kmer(&reads, &rck);
        assert!(
            sm.load.imbalance() > km.load.imbalance(),
            "supermer imbalance {} must exceed k-mer imbalance {}",
            sm.load.imbalance(),
            km.load.imbalance()
        );
    }

    #[test]
    #[should_panic(expected = "canonical")]
    fn canonical_mode_is_rejected() {
        let (reads, mut rc) = tiny(1);
        rc.counting.canonical = true;
        run_gpu_supermer(&reads, &rc);
    }

    #[test]
    fn balanced_assignment_preserves_counts_and_reduces_imbalance() {
        // §VII future-work extension: frequency-aware routing must change
        // *where* k-mers are counted, never *what* is counted.
        let reads = Dataset::new(DatasetId::CElegans40x, ScalePreset::Tiny).generate();
        let mut rc = RunConfig::new(Mode::GpuSupermer, 4);
        rc.collect_tables = true;
        let hashed = run_gpu_supermer(&reads, &rc);
        rc.balanced_minimizers = true;
        rc.balance_sample_fraction = 0.25;
        let balanced = run_gpu_supermer(&reads, &rc);
        assert_eq!(balanced.total_kmers, hashed.total_kmers);
        assert_eq!(balanced.distinct_kmers, hashed.distinct_kmers);
        crate::verify::check_against_reference(
            &reads,
            &rc.counting,
            balanced.tables.as_ref().unwrap(),
        )
        .unwrap();
        assert!(
            balanced.load.imbalance() < hashed.load.imbalance(),
            "balanced {} should beat hashed {}",
            balanced.load.imbalance(),
            hashed.load.imbalance()
        );
        // The pre-pass costs parse time.
        assert!(balanced.phases.parse > hashed.phases.parse);
    }
}
