//! The GPU supermer counter (§IV): communicate supermers, not k-mers.
//!
//! Differences from the k-mer pipeline:
//!
//! * **Parse** — one thread per *window* of `window` k-mer positions
//!   (§IV-B, Fig. 5): the thread scans its window's k-mers, tracks the
//!   minimizer, extends the supermer in a register while the minimizer is
//!   unchanged, and writes each finished supermer (packed word + length
//!   byte) to the outgoing buffer of `HASH(minimizer) % P`. All k-mers of
//!   a supermer share its minimizer, so they all land on the same rank.
//! * **Exchange** — two `MPI_Alltoallv`s (Algorithm 2): the supermer
//!   words and their lengths. 9 bytes per supermer instead of 8 bytes per
//!   k-mer — the up-to-4× volume reduction of Table II.
//! * **Count** — received supermers are first re-parsed into k-mers
//!   (charged as the paper's measured +23-27% counting overhead), then
//!   counted by the same device table kernel.
//!
//! The phase skeleton (bucket → exchange rounds → count) lives in the
//! shared [`driver`](crate::pipeline::driver); this module supplies the
//! supermer-specific stages, including the two-collective exchange and
//! the §VII balanced-minimizer pre-pass.

use crate::config::RunConfig;
use crate::partition::{minimizer_owner, BalancedAssignment};
use crate::pipeline::driver::{
    run_staged, BucketOut, CounterOom, CounterStages, DriverCtx, PressureStats, RoundRecv,
};
use crate::pipeline::gpu_common::{block_range, chunked_launch, staging, DeviceRoundCounter};
use crate::pipeline::{RankCountResult, RunError, RunReport};
use crate::supermer::build_supermers_reference_w;
use crate::supermer::{num_windows, supermers_of_window_w, SupermerW};
use crate::width::PackedKmer;
use dedukt_dna::ReadSet;
use dedukt_net::cost::Network;
use dedukt_net::BspWorld;
use dedukt_sim::{DataVolume, Histogram, SimTime};
use std::collections::HashMap;
use std::marker::PhantomData;

struct SupermerStages<K: PackedKmer> {
    assignment: Option<BalancedAssignment>,
    /// Ship buckets through the [`crate::wire`] codec (`--wire-compress`)
    /// instead of the flat word + length-byte records.
    compress: bool,
    _key: PhantomData<K>,
}

impl<K: PackedKmer> SupermerStages<K> {
    fn owner(&self, ctx: &DriverCtx, mz: u64) -> usize {
        match &self.assignment {
            Some(a) => a.owner(mz),
            None => minimizer_owner(&ctx.hasher, mz, ctx.nranks),
        }
    }

    /// `--wire-compress` variant of the exchange: each minimizer bucket
    /// rides the [`crate::wire`] codec as a single byte stream (lengths
    /// varint/delta-coded, bases packed 2 bits each), so words and
    /// lengths collapse into *one* collective. The journal/metrics keep
    /// reporting the *logical* flat volume (`units × (WORD_BYTES + 1)`)
    /// while the simulated wire is charged for the encoded physical
    /// bytes; buckets are decoded on receipt, so counts are
    /// bit-identical to the uncompressed path. Fault fates key on the
    /// (src, dst) pair exactly as before, and a retried bucket
    /// re-encodes to the identical byte string (the codec is
    /// deterministic), so checksums and retry accounting compose
    /// unchanged.
    fn exchange_round_compressed(
        &self,
        world: &mut BspWorld,
        round: Vec<Vec<Vec<(K, u8)>>>,
        hidden: Option<&[SimTime]>,
    ) -> RoundRecv<(K, u8)> {
        let mut logical: Vec<Vec<u64>> = Vec::with_capacity(round.len());
        let mut byte_round: Vec<Vec<Vec<u8>>> = Vec::with_capacity(round.len());
        for row in round {
            let mut lrow = Vec::with_capacity(row.len());
            let mut brow = Vec::with_capacity(row.len());
            for payload in row {
                lrow.push(payload.len() as u64 * crate::wire::flat_wire_bytes::<K>());
                brow.push(crate::wire::encode_bucket(&payload));
            }
            logical.push(lrow);
            byte_round.push(brow);
        }
        let out = world.alltoallv_compressed(byte_round, hidden, &logical);
        let items = out
            .recv
            .into_iter()
            .map(|srcs| {
                let mut flat = Vec::new();
                for buf in srcs {
                    flat.extend(crate::wire::decode_bucket::<K>(&buf));
                }
                flat
            })
            .collect();
        // Undelivered buckets decode back to plain items so the driver
        // can re-offer them on the retry attempt (they re-encode to the
        // same bytes there).
        let undelivered = out
            .undelivered
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|buf| crate::wire::decode_bucket::<K>(&buf))
                    .collect()
            })
            .collect();
        RoundRecv {
            items,
            undelivered,
            failed_sends: out.failed_sends,
            corrupt_buckets: out.corrupt_buckets,
            wire_mean: out.wire.mean,
            charged_mean: out.times.mean,
        }
    }
}

impl<K: PackedKmer> CounterStages for SupermerStages<K> {
    type Key = K;
    type Item = (K, u8);
    type Counter = DeviceRoundCounter<K>;

    const ITEM_WIRE_BYTES: u64 = K::SUPERMER_WIRE_BYTES;
    const BUCKET_PHASE: &'static str = "build-supermers";

    fn network(&self, rc: &RunConfig) -> Network {
        Network::summit_gpu(rc.nodes)
    }

    // ── Optional pre-pass: frequency-aware balanced assignment (§VII) ─
    // Each rank samples a deterministic stride of its reads, weights are
    // merged (an Allgather in real MPI), and every rank derives the same
    // minimizer→rank map. Sampling time joins the parse phase.
    fn prepass(&mut self, ctx: &DriverCtx, world: &mut BspWorld) -> SimTime {
        let rc = ctx.rc;
        if !rc.balanced_minimizers {
            return SimTime::ZERO;
        }
        let cfg = &ctx.cfg;
        let nranks = ctx.nranks;
        let scheme = cfg.minimizer_scheme();
        let tuning = rc.gpu_tuning;
        let stride = (1.0 / rc.balance_sample_fraction.clamp(0.001, 1.0)).round() as usize;
        let (rank_weights, sample_times) = world.compute_step_named("sample-minimizers", |rank| {
            let mut weights: HashMap<u64, u64> = HashMap::new();
            let mut sampled_kmers = 0u64;
            for read in ctx.parts[rank].reads.iter().step_by(stride.max(1)) {
                for sm in build_supermers_reference_w::<K>(&read.codes, cfg.k, &scheme) {
                    let nk = sm.num_kmers(cfg.k) as u64;
                    *weights.entry(sm.minimizer).or_insert(0) += nk;
                    sampled_kmers += nk;
                }
            }
            let device = dedukt_gpu::Device::new(rc.gpu_device.clone());
            let dt = SimTime::from_secs(
                sampled_kmers as f64 * tuning.supermer_parse_cycles_per_kmer
                    / device.config().peak_instr_rate().units_per_sec(),
            );
            (weights, dt)
        });
        let mut merged: HashMap<u64, u64> = HashMap::new();
        let mut weight_bytes = 0u64;
        for w in rank_weights {
            weight_bytes += w.len() as u64 * 16;
            for (mz, n) in w {
                *merged.entry(mz).or_insert(0) += n;
            }
        }
        self.assignment = Some(BalancedAssignment::build(&merged, nranks, cfg.hash_seed));
        sample_times.mean
            + world
                .network()
                .allreduce_time(weight_bytes / nranks.max(1) as u64)
    }

    // ── Phase 1: build supermers on the device (§IV-B) ────────────────
    fn bucket(&self, ctx: &DriverCtx, rank: usize) -> BucketOut<(K, u8)> {
        let rc = ctx.rc;
        let cfg = &ctx.cfg;
        let nranks = ctx.nranks;
        let tuning = rc.gpu_tuning;
        let scheme = cfg.minimizer_scheme();
        let device = dedukt_gpu::Device::new(rc.gpu_device.clone());
        let part = &ctx.parts[rank];

        // Window index: prefix sums of per-read window counts. The real
        // kernel computes this on the host while batching reads.
        let mut win_offsets = Vec::with_capacity(part.reads.len() + 1);
        win_offsets.push(0usize);
        for r in &part.reads {
            win_offsets.push(win_offsets.last().unwrap() + num_windows(r.len(), cfg.k, cfg.window));
        }
        let total_windows = *win_offsets.last().unwrap();
        let h2d = staging(
            &device,
            rc,
            DataVolume::from_bytes((part.total_bases() / 4 + part.reads.len() * 8) as u64),
        );

        let launch = chunked_launch(total_windows.max(1));
        let (report, block_buckets) = device.launch_map("build_supermers", launch, |b| {
            let (lo, hi) = block_range(total_windows, b.cfg.grid_blocks, b.block);
            let mut local: Vec<(Vec<K>, Vec<u8>)> = vec![(Vec::new(), Vec::new()); nranks];
            let mut smers: Vec<SupermerW<K>> = Vec::new();
            let mut kmers_scanned = 0u64;
            let mut smers_built = 0u64;
            for wi in lo..hi {
                // Which read owns window `wi`?
                let ri = win_offsets.partition_point(|&o| o <= wi) - 1;
                let wstart = (wi - win_offsets[ri]) * cfg.window;
                let codes = &part.reads[ri].codes;
                smers.clear();
                supermers_of_window_w(codes, wstart, cfg.k, cfg.window, &scheme, &mut smers);
                for sm in &smers {
                    let dst = self.owner(ctx, sm.minimizer);
                    local[dst].0.push(sm.word);
                    local[dst].1.push(sm.len);
                    kmers_scanned += sm.num_kmers(cfg.k) as u64;
                }
                smers_built += smers.len() as u64;
            }
            // Calibrated compute per k-mer scanned (includes the rolling
            // minimizer search — the paper's +27-33% parse overhead), plus
            // real traffic: packed reads in, word + length byte per
            // supermer out (9 B narrow, 17 B wide), one warp-aggregated
            // append per supermer.
            b.instr((kmers_scanned as f64 * tuning.supermer_parse_cycles_per_kmer) as u64);
            b.gmem_coalesced(kmers_scanned / 4 + cfg.k as u64);
            b.gmem_random(smers_built * K::SUPERMER_WIRE_BYTES);
            let atomics = smers_built / 32 + 1;
            b.atomic(atomics, atomics / (nranks as u64).max(32));
            local
        });

        let mut words: Vec<Vec<K>> = vec![Vec::new(); nranks];
        let mut lens: Vec<Vec<u8>> = vec![Vec::new(); nranks];
        for blocks in block_buckets {
            for (dst, (w, l)) in blocks.into_iter().enumerate() {
                words[dst].extend(w);
                lens[dst].extend(l);
            }
        }
        let out_bytes: u64 = words
            .iter()
            .map(|v| v.len() as u64 * K::SUPERMER_WIRE_BYTES)
            .sum();
        let d2h = staging(&device, rc, DataVolume::from_bytes(out_bytes));
        if let Some(m) = &ctx.metrics {
            // Supermer-length distribution and the wire-compression ratio
            // this rank achieved: one k-mer word each (8/16 B) had they
            // been sent raw vs one word + length byte (9/17 B) per
            // supermer actually sent (Table II's saving).
            let mut length_hist = Histogram::new();
            let mut kmer_count = 0u64;
            for l in lens.iter().flatten() {
                length_hist.observe(*l as u64);
                kmer_count += (*l as u64).saturating_sub(cfg.k as u64 - 1);
            }
            let supermer_count = length_hist.count();
            m.merge_histogram("supermer_length_bases", Some(rank), &length_hist);
            m.counter_add("supermers_built_total", Some(rank), supermer_count);
            if supermer_count > 0 {
                m.gauge_set(
                    "supermer_compression_ratio",
                    Some(rank),
                    (kmer_count * K::KMER_WIRE_BYTES) as f64
                        / (supermer_count * K::SUPERMER_WIRE_BYTES) as f64,
                );
            }
            m.gauge_set(
                "kernel_occupancy:build_supermers",
                Some(rank),
                report.occupancy,
            );
            m.gauge_max("device_peak_bytes", Some(rank), device.peak_bytes() as f64);
        }
        let buckets = words
            .into_iter()
            .zip(lens)
            .map(|(w, l)| w.into_iter().zip(l).collect())
            .collect();
        BucketOut {
            buckets,
            compute: h2d + report.time,
            stage_out: d2h,
        }
    }

    fn item_instances(&self, ctx: &DriverCtx, item: &(K, u8)) -> u64 {
        // Exactly the extraction formula below: a supermer of `len` bases
        // yields `len - k + 1` k-mers (zero if shorter than k).
        (item.1 as u64).saturating_sub(ctx.cfg.k as u64 - 1)
    }

    // ── Phase 2: exchange supermers + lengths (Algorithm 2) ───────────
    // Two collectives per round: the packed words, then the length bytes
    // (word + 1 B = the 9 or 17 wire bytes per supermer). Hidden compute,
    // when present, overlaps the words collective — the bulk of the
    // volume.
    fn exchange_round(
        &self,
        world: &mut BspWorld,
        round: Vec<Vec<Vec<(K, u8)>>>,
        hidden: Option<&[SimTime]>,
    ) -> RoundRecv<(K, u8)> {
        if self.compress {
            return self.exchange_round_compressed(world, round, hidden);
        }
        let mut word_round: Vec<Vec<Vec<K>>> = Vec::with_capacity(round.len());
        let mut len_round: Vec<Vec<Vec<u8>>> = Vec::with_capacity(round.len());
        for row in round {
            let mut wrow = Vec::with_capacity(row.len());
            let mut lrow = Vec::with_capacity(row.len());
            for payload in row {
                let (w, l): (Vec<K>, Vec<u8>) = payload.into_iter().unzip();
                wrow.push(w);
                lrow.push(l);
            }
            word_round.push(wrow);
            len_round.push(lrow);
        }
        // Both collectives run in the driver's current fault context, so
        // an injected fault hits a bucket's words and lengths *together*
        // (the BSP world caches the first collective's fate matrix) —
        // the zip alignment below survives any fault schedule.
        let words_out = match hidden {
            Some(h) => world.alltoallv_overlapped(word_round, h),
            None => world.alltoallv(word_round),
        };
        let lens_out = world.alltoallv(len_round);
        // Re-assemble per-rank received supermers.
        let items = words_out
            .recv
            .into_iter()
            .zip(lens_out.recv)
            .map(|(ws, ls)| {
                let mut flat = Vec::new();
                for (w_src, l_src) in ws.into_iter().zip(ls) {
                    assert_eq!(w_src.len(), l_src.len(), "word/length streams must align");
                    flat.extend(w_src.into_iter().zip(l_src));
                }
                flat
            })
            .collect();
        // Undelivered buckets re-zip the same way (shared fates keep the
        // two streams bucket-aligned) so the driver can re-offer them as
        // ordinary items on the retry attempt.
        let undelivered = words_out
            .undelivered
            .into_iter()
            .zip(lens_out.undelivered)
            .map(|(wrow, lrow)| {
                wrow.into_iter()
                    .zip(lrow)
                    .map(|(w_dst, l_dst)| {
                        assert_eq!(
                            w_dst.len(),
                            l_dst.len(),
                            "undelivered word/length streams must align"
                        );
                        w_dst.into_iter().zip(l_dst).collect()
                    })
                    .collect()
            })
            .collect();
        RoundRecv {
            items,
            undelivered,
            // One logical supermer bucket rides two wire buckets; report
            // it once so retry counts match the k-mer pipelines'.
            failed_sends: words_out.failed_sends,
            corrupt_buckets: words_out.corrupt_buckets,
            wire_mean: words_out.wire.mean + lens_out.wire.mean,
            charged_mean: words_out.times.mean + lens_out.times.mean,
        }
    }

    fn stage_in(&self, ctx: &DriverCtx, received_items: u64) -> SimTime {
        let device = dedukt_gpu::Device::new(ctx.rc.gpu_device.clone());
        staging(
            &device,
            ctx.rc,
            DataVolume::from_bytes(received_items * K::SUPERMER_WIRE_BYTES),
        )
    }

    // ── Phase 3: extract k-mers from supermers and count (§IV-C) ──────
    fn make_counter(
        &self,
        ctx: &DriverCtx,
        rank: usize,
        expected_instances: u64,
    ) -> Result<DeviceRoundCounter<K>, CounterOom> {
        DeviceRoundCounter::new(ctx.rc, &ctx.cfg, rank, expected_instances)
    }

    fn count_round(
        &self,
        ctx: &DriverCtx,
        counter: &mut DeviceRoundCounter<K>,
        items: Vec<(K, u8)>,
    ) -> Result<SimTime, CounterOom> {
        let cfg = &ctx.cfg;
        // Device-side extraction, represented functionally by this flatten;
        // its cost is the extract surcharge added to the count kernel.
        let mut kmers = Vec::new();
        for &(word, len) in &items {
            let n = (len as usize).saturating_sub(cfg.k - 1);
            for i in 0..n {
                kmers.push(word.subword(len as usize, i, cfg.k));
            }
        }
        let tuning = ctx.rc.gpu_tuning;
        counter.count(
            &kmers,
            tuning.count_cycles_per_kmer + tuning.extract_cycles_per_kmer,
        )
    }

    fn pressure(&self, counter: &DeviceRoundCounter<K>) -> PressureStats {
        counter.pressure()
    }

    fn snapshot_counts(&self, counter: &DeviceRoundCounter<K>) -> (Vec<(K, u32)>, u64) {
        counter.snapshot()
    }

    fn finish(
        &self,
        ctx: &DriverCtx,
        rank: usize,
        counter: DeviceRoundCounter<K>,
    ) -> RankCountResult<K> {
        counter.finish(&ctx.metrics, rank)
    }
}

/// Runs the GPU supermer counter at the narrow (`u64`) key width.
/// Panics on an invalid configuration or an unsurvivable fault plan;
/// use [`crate::pipeline::run`] for the fallible entry point.
pub fn run_gpu_supermer(reads: &ReadSet, rc: &RunConfig) -> RunReport {
    run_gpu_supermer_typed::<u64>(reads, rc).expect("run failed")
}

/// Runs the GPU supermer counter at an explicit key width.
pub fn run_gpu_supermer_typed<K: PackedKmer>(
    reads: &ReadSet,
    rc: &RunConfig,
) -> Result<RunReport<K>, RunError> {
    assert!(
        !rc.counting.canonical,
        "canonical counting is incompatible with minimizer routing of raw supermers; \
         use the k-mer pipelines for canonical mode"
    );
    run_staged(
        &mut SupermerStages::<K> {
            assignment: None,
            compress: rc.wire_compress,
            _key: PhantomData,
        },
        reads,
        rc,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;
    use crate::verify::{check_against_reference, reference_total};
    use dedukt_dna::{Dataset, DatasetId, ScalePreset};

    fn tiny(nodes: usize) -> (ReadSet, RunConfig) {
        let reads = Dataset::new(DatasetId::ABaumannii30x, ScalePreset::Tiny).generate();
        let mut rc = RunConfig::new(Mode::GpuSupermer, nodes);
        rc.collect_tables = true;
        (reads, rc)
    }

    #[test]
    fn counts_match_oracle() {
        let (reads, rc) = tiny(1);
        let report = run_gpu_supermer(&reads, &rc);
        assert_eq!(report.total_kmers, reference_total(&reads, rc.counting.k));
        check_against_reference(&reads, &rc.counting, report.tables.as_ref().unwrap()).unwrap();
    }

    #[test]
    fn counts_match_oracle_multi_node() {
        let (reads, rc) = tiny(2);
        let report = run_gpu_supermer(&reads, &rc);
        check_against_reference(&reads, &rc.counting, report.tables.as_ref().unwrap()).unwrap();
    }

    #[test]
    fn agrees_with_kmer_pipeline() {
        let (reads, rc) = tiny(1);
        let sm = run_gpu_supermer(&reads, &rc);
        let mut rck = rc.clone();
        rck.mode = Mode::GpuKmer;
        let km = crate::pipeline::gpu_kmer::run_gpu_kmer(&reads, &rck);
        assert_eq!(sm.total_kmers, km.total_kmers);
        assert_eq!(sm.distinct_kmers, km.distinct_kmers);
    }

    #[test]
    fn fewer_units_and_bytes_than_kmer_pipeline() {
        // Table II's claim: supermers cut exchanged units ~3-4× and bytes
        // accordingly (9 B per supermer vs 8 B per k-mer).
        let (reads, rc) = tiny(1);
        let sm = run_gpu_supermer(&reads, &rc);
        let mut rck = rc.clone();
        rck.mode = Mode::GpuKmer;
        let km = crate::pipeline::gpu_kmer::run_gpu_kmer(&reads, &rck);
        assert!(
            sm.exchange.units * 2 < km.exchange.units,
            "supermers {} vs k-mers {}",
            sm.exchange.units,
            km.exchange.units
        );
        assert!(sm.exchange.bytes * 2 < km.exchange.bytes);
        assert_eq!(sm.exchange.bytes, sm.exchange.units * 9);
    }

    #[test]
    fn supermer_compute_is_slower_but_exchange_faster() {
        // §V-C's trade-off, at matched node count.
        let (reads, rc) = tiny(1);
        let sm = run_gpu_supermer(&reads, &rc);
        let mut rck = rc.clone();
        rck.mode = Mode::GpuKmer;
        let km = crate::pipeline::gpu_kmer::run_gpu_kmer(&reads, &rck);
        assert!(
            sm.phases.parse > km.phases.parse,
            "supermer parse must cost more"
        );
        assert!(
            sm.phases.count > km.phases.count,
            "supermer count must cost more"
        );
        assert!(
            sm.exchange.alltoallv_time < km.exchange.alltoallv_time,
            "supermer Alltoallv must be faster: {} vs {}",
            sm.exchange.alltoallv_time,
            km.exchange.alltoallv_time
        );
    }

    #[test]
    fn supermer_load_is_more_imbalanced_than_kmer_load() {
        // Table III: minimizer-based routing skews per-rank loads.
        let (reads, rc) = tiny(2); // 12 ranks
        let sm = run_gpu_supermer(&reads, &rc);
        let mut rck = rc.clone();
        rck.mode = Mode::GpuKmer;
        let km = crate::pipeline::gpu_kmer::run_gpu_kmer(&reads, &rck);
        assert!(
            sm.load.imbalance() > km.load.imbalance(),
            "supermer imbalance {} must exceed k-mer imbalance {}",
            sm.load.imbalance(),
            km.load.imbalance()
        );
    }

    #[test]
    fn wire_compression_preserves_counts_and_shrinks_the_wire() {
        let (reads, rc) = tiny(2);
        let flat = run_gpu_supermer(&reads, &rc);
        let mut rcc = rc.clone();
        rcc.wire_compress = true;
        let packed = run_gpu_supermer(&reads, &rcc);
        // Bit-identical functional results: the codec only changes what
        // the wire carries, never what arrives.
        assert_eq!(packed.total_kmers, flat.total_kmers);
        assert_eq!(packed.distinct_kmers, flat.distinct_kmers);
        assert_eq!(packed.tables, flat.tables);
        // Logical volume (units × 9 B) is unchanged; the *physical*
        // exchange gets cheaper, so the simulated collective is faster.
        assert_eq!(packed.exchange.units, flat.exchange.units);
        assert!(
            packed.exchange.bytes < flat.exchange.bytes,
            "encoded wire {} B must undercut flat {} B",
            packed.exchange.bytes,
            flat.exchange.bytes
        );
        assert!(
            packed.exchange.alltoallv_time < flat.exchange.alltoallv_time,
            "compressed wire {} must beat flat {}",
            packed.exchange.alltoallv_time,
            flat.exchange.alltoallv_time
        );
    }

    #[test]
    #[should_panic(expected = "canonical")]
    fn canonical_mode_is_rejected() {
        let (reads, mut rc) = tiny(1);
        rc.counting.canonical = true;
        run_gpu_supermer(&reads, &rc);
    }

    #[test]
    fn balanced_assignment_preserves_counts_and_reduces_imbalance() {
        // §VII future-work extension: frequency-aware routing must change
        // *where* k-mers are counted, never *what* is counted.
        let reads = Dataset::new(DatasetId::CElegans40x, ScalePreset::Tiny).generate();
        let mut rc = RunConfig::new(Mode::GpuSupermer, 4);
        rc.collect_tables = true;
        let hashed = run_gpu_supermer(&reads, &rc);
        rc.balanced_minimizers = true;
        rc.balance_sample_fraction = 0.25;
        let balanced = run_gpu_supermer(&reads, &rc);
        assert_eq!(balanced.total_kmers, hashed.total_kmers);
        assert_eq!(balanced.distinct_kmers, hashed.distinct_kmers);
        crate::verify::check_against_reference(
            &reads,
            &rc.counting,
            balanced.tables.as_ref().unwrap(),
        )
        .unwrap();
        assert!(
            balanced.load.imbalance() < hashed.load.imbalance(),
            "balanced {} should beat hashed {}",
            balanced.load.imbalance(),
            hashed.load.imbalance()
        );
        // The pre-pass costs parse time.
        assert!(balanced.phases.parse > hashed.phases.parse);
    }
}
