//! Out-of-core two-pass counting over the checksummed bin store
//! (DESIGN.md §12).
//!
//! Pass 1 partitions every rank's items (packed k-mers on the k-mer
//! pipelines, supermers on the supermer pipeline) into minimizer-keyed
//! bins on a simulated NVMe tier ([`dedukt_store::BinStore`]), one
//! checksum-framed block per contributing rank, and records a per-run
//! manifest. Pass 2 streams the bins back **one at a time**: each bin's
//! count table is sized from the manifest by the same safety ×
//! [`dedukt_gpu::MemPlan`] estimate the in-memory pipelines use, and the
//! bin count chosen by [`plan_bins`] guarantees every planned bin fits
//! the `--device-hbm` table budget.
//!
//! Robustness is the headline. A deterministic [`dedukt_store::IoPlan`]
//! (`--io-seed/--io-spec`) injects torn writes, bit rot, and transient
//! read errors via the shared coordinate-hash draws, so every engine
//! agrees on the fate of every block without coordination. Recovery
//! escalates in order: bounded re-reads for transient errors, then
//! quarantine of the damaged bin and re-derivation of its content by
//! replaying only that bin's slice of the (deterministic) input at a
//! fresh generation, bounded by the plan's re-derive budget. Exhausting
//! the budget is a clean [`RunError::StorageFailed`] — never a panic —
//! and spectra stay bit-identical to the in-memory pipelines under any
//! plan that lets the run finish.
//!
//! Pass 2 is resumable: every finished bin's counts land on disk
//! immediately (atomic write), so `--resume` re-counts only unfinished
//! bins after a mid-run kill (injected via `kill=N`, or real).

use crate::config::{ConfigError, Mode, RunConfig};
use crate::partition::{key_owner, minimizer_owner};
use crate::pipeline::driver::run_detail;
use crate::pipeline::{assemble_counts, RankCountResult, RunError, RunReport};
use crate::stats::{ExchangeSummary, PhaseBreakdown, WallClock};
use crate::supermer::build_supermers_windowed_w;
use crate::table::{capacity_for, HostCountTable};
use crate::width::PackedKmer;
use dedukt_dna::kmer::kmer_words_w;
use dedukt_dna::ReadSet;
use dedukt_hash::Murmur3x64;
use dedukt_net::cost::{Network, SsdParams};
use dedukt_net::BspWorld;
use dedukt_sim::rng::mix_coords;
use dedukt_sim::{Journal, JournalEvent, MetricsRegistry, SimTime};
use dedukt_store::{read_bin_counts, write_bin_counts, BinCounts, BinMeta, BinStore, Manifest};
use std::sync::Arc;
use std::time::Instant;

/// Headroom multiplier on the mean per-bin load when sizing bins:
/// minimizer-keyed bins are skewed, so a bin is only *guaranteed* to fit
/// its table budget with slack for the heavy tail.
pub const BIN_SKEW_MARGIN: f64 = 2.0;

/// Number of bins for pass 1: the smallest power-of-two multiple of
/// `nranks` whose per-bin count table — sized exactly like the live
/// pipelines size theirs ([`capacity_for`] over the expected load scaled
/// by `BIN_SKEW_MARGIN` × `table_safety`) — fits `device_budget_bytes`.
///
/// Public so the property tests can check the guarantee directly: for
/// any instance total, every planned bin's worst-case table allocation
/// stays within the budget (or bin splitting has hit the point of
/// diminishing returns — one expected instance per bin).
pub fn plan_bins(
    total_instances: u64,
    nranks: usize,
    table_safety: f64,
    load_factor: f64,
    device_budget_bytes: u64,
    slot_bytes: u64,
) -> usize {
    let nranks = nranks.max(1);
    let mut nbins = nranks;
    loop {
        let per_bin = (total_instances as f64 / nbins as f64) * BIN_SKEW_MARGIN;
        let expected = (per_bin * table_safety.max(1.0)).ceil().max(1.0) as usize;
        let table_bytes = capacity_for(expected, load_factor) as u64 * slot_bytes;
        if table_bytes <= device_budget_bytes || per_bin <= 1.0 {
            return nbins;
        }
        nbins *= 2;
    }
}

/// Bytes of one on-disk record: the packed word, plus a length byte on
/// the supermer pipeline (mirroring the wire format, §V-D).
fn record_bytes<K: PackedKmer>(mode: Mode) -> usize {
    match mode {
        Mode::GpuSupermer => K::WORD_BYTES + 1,
        _ => K::WORD_BYTES,
    }
}

/// One rank's pass-1 extraction: per-bin record payloads and k-mer
/// instance counts. Re-derivation calls the same function, so a
/// re-derived bin is byte-identical to what pass 1 wrote.
struct RankExtract {
    /// `payloads[bin]` — this rank's records routed to each bin.
    payloads: Vec<Vec<u8>>,
    /// `instances[bin]` — k-mer instances those records will insert.
    instances: Vec<u64>,
    /// Bases parsed (prices the extraction at the CPU parse rate).
    bases: u64,
}

/// Extracts one rank's partition into per-bin record payloads. Bin
/// assignment reuses the owner-rank machinery over `nbins`: the k-mer
/// pipelines hash the (canonicalized) key, the supermer pipeline hashes
/// the minimizer — either way every instance of a distinct k-mer lands
/// in the same bin, so per-bin tables are disjoint and the merged
/// spectrum is exact.
fn extract_rank<K: PackedKmer>(rc: &RunConfig, part: &ReadSet, nbins: usize) -> RankExtract {
    let cfg = &rc.counting;
    let hasher = Murmur3x64::new(cfg.hash_seed);
    let mut payloads: Vec<Vec<u8>> = vec![Vec::new(); nbins];
    let mut instances = vec![0u64; nbins];
    let mut bases = 0u64;
    match rc.mode {
        Mode::CpuBaseline | Mode::GpuKmer => {
            for read in &part.reads {
                bases += read.codes.len() as u64;
                for w in kmer_words_w::<K>(&read.codes, cfg.k, cfg.encoding) {
                    let key = if cfg.canonical {
                        w.canonical_word(cfg.k)
                    } else {
                        w
                    };
                    let bin = key_owner(&hasher, key, nbins);
                    payloads[bin].extend_from_slice(&key.to_u128().to_le_bytes()[..K::WORD_BYTES]);
                    instances[bin] += 1;
                }
            }
        }
        Mode::GpuSupermer => {
            let scheme = cfg.minimizer_scheme();
            for read in &part.reads {
                bases += read.codes.len() as u64;
                for s in build_supermers_windowed_w::<K>(&read.codes, cfg.k, cfg.window, &scheme) {
                    let bin = minimizer_owner(&hasher, s.minimizer, nbins);
                    payloads[bin]
                        .extend_from_slice(&s.word.to_u128().to_le_bytes()[..K::WORD_BYTES]);
                    payloads[bin].push(s.len);
                    instances[bin] += s.num_kmers(cfg.k) as u64;
                }
            }
        }
    }
    RankExtract {
        payloads,
        instances,
        bases,
    }
}

/// Counts one bin's record payloads into `table`, returning the
/// instances inserted. The inverse of [`extract_rank`]'s serialization.
fn count_payloads<K: PackedKmer>(
    rc: &RunConfig,
    payloads: &[Vec<u8>],
    table: &mut HostCountTable<K>,
) -> u64 {
    let cfg = &rc.counting;
    let rec = record_bytes::<K>(rc.mode);
    let mut inserted = 0u64;
    for payload in payloads {
        debug_assert!(payload.len().is_multiple_of(rec));
        for chunk in payload.chunks_exact(rec) {
            let mut word_bytes = [0u8; 16];
            word_bytes[..K::WORD_BYTES].copy_from_slice(&chunk[..K::WORD_BYTES]);
            let word = K::from_u128(u128::from_le_bytes(word_bytes));
            match rc.mode {
                Mode::GpuSupermer => {
                    let len = chunk[K::WORD_BYTES] as usize;
                    for i in 0..len - cfg.k + 1 {
                        table.insert(word.subword(len, i, cfg.k));
                        inserted += 1;
                    }
                }
                _ => {
                    table.insert(word);
                    inserted += 1;
                }
            }
        }
    }
    inserted
}

/// Run fingerprint stored in the manifest: everything that shapes what
/// the bins contain — counting parameters, bin layout, the pre-filter,
/// and a digest of the input reads. The io plan is deliberately
/// *excluded* so a killed run resumes under a different (or absent)
/// fault plan; the fates of already-finished bins are history.
fn run_fingerprint(rc: &RunConfig, nranks: usize, nbins: usize, reads: &ReadSet) -> String {
    let mut h = 0x0F1E_2D3C_4B5A_6978u64;
    for label_byte in rc.mode.label().bytes() {
        h = mix_coords(h, &[label_byte as u64]);
    }
    let cfg = &rc.counting;
    h = mix_coords(
        h,
        &[
            cfg.k as u64,
            cfg.m as u64,
            cfg.window as u64,
            cfg.canonical as u64,
            cfg.hash_seed,
            nranks as u64,
            nbins as u64,
            rc.min_count as u64,
        ],
    );
    h = mix_coords(h, &[reads.reads.len() as u64]);
    for read in &reads.reads {
        h = mix_coords(h, &[read.codes.len() as u64]);
        for chunk in read.codes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            h = mix_coords(h, &[u64::from_le_bytes(w)]);
        }
    }
    format!("{h:016x}")
}

/// Shorthand: a store-level failure (mkdir, manifest, file write) that
/// is not attributable to one bin's recovery budget.
fn store_failed(bin: u64, detail: String) -> RunError {
    RunError::StorageFailed { bin, detail }
}

/// Runs the out-of-core two-pass counter for whatever mode `rc` names.
///
/// Dispatched by [`crate::pipeline::run_typed`] whenever
/// `rc.two_pass_dir` is set; callers never invoke it directly.
pub(crate) fn run_two_pass_typed<K: PackedKmer>(
    reads: &ReadSet,
    rc: &RunConfig,
) -> Result<RunReport<K>, RunError> {
    let wall_run = Instant::now();
    let nranks = rc.nranks();
    let dir = rc.two_pass_dir.as_ref().expect("two-pass dispatch");
    let store = BinStore::create(dir).map_err(|e| store_failed(0, e))?;
    let ssd = SsdParams::nvme();
    let mut net = match rc.mode {
        Mode::CpuBaseline => Network::summit_cpu(rc.nodes),
        _ => Network::summit_gpu(rc.nodes),
    };
    net.params.algo = rc.exchange_algo;
    let mut world = BspWorld::new(net);
    assert_eq!(world.nranks(), nranks);
    let metrics = rc.collect_metrics.then(|| Arc::new(MetricsRegistry::new()));
    if let Some(m) = &metrics {
        world.enable_metrics(Arc::clone(m));
    }
    let journal = rc.collect_journal.then(|| Arc::new(Journal::new()));
    if let Some(j) = &journal {
        world.enable_journal(Arc::clone(j));
        j.push(JournalEvent::Meta {
            mode: rc.mode.label().to_string(),
            nodes: rc.nodes,
            nranks,
            detail: run_detail(rc),
        });
    }
    let parts = reads.partition_by_bases(nranks);
    let total_bases: u64 = parts
        .iter()
        .map(|p| p.reads.iter().map(|r| r.codes.len() as u64).sum::<u64>())
        .sum();
    let rec = record_bytes::<K>(rc.mode) as u64;
    let slot_bytes = std::mem::size_of::<K>() as u64 + 4;

    // ── Pass 1: extract, bin, and spill to the NVMe tier ───────────────
    // (Skipped wholesale under a valid `--resume`: the manifest *is*
    // pass 1's output, and the bin files are already on disk.)
    let manifest: Manifest;
    let mut write_bytes_total = 0u64;
    let mut parse_step_mean = SimTime::ZERO;
    let mut write_step_mean = SimTime::ZERO;
    if rc.two_pass_resume {
        let found = store
            .read_manifest()
            .map_err(|e| ConfigError::Io(format!("--resume: {e}")))?;
        let m = found.ok_or_else(|| {
            ConfigError::Io(format!(
                "--resume: no manifest in {} (nothing to resume; run without --resume first)",
                dir.display()
            ))
        })?;
        let expect = run_fingerprint(rc, nranks, m.bins.len(), reads);
        if m.fingerprint != expect {
            return Err(ConfigError::Io(format!(
                "--resume: manifest fingerprint {} does not match this run ({expect}); \
                 the store in {} was written by a different configuration or input",
                m.fingerprint,
                dir.display()
            ))
            .into());
        }
        manifest = m;
        write_bytes_total = manifest.bins.iter().map(|b| b.bytes).sum();
    } else {
        // Derive the bin count from the *exact* instance total, which
        // pass 1 knows before writing anything (a prepass in spirit —
        // charged with the extraction it shares its scan with).
        let probe: u64 = parts
            .iter()
            .map(|p| extract_rank::<K>(rc, p, 1).instances[0])
            .sum();
        let nbins = plan_bins(
            probe,
            nranks,
            rc.table_safety,
            rc.counting.table_load_factor,
            rc.gpu_device.memory_bytes,
            slot_bytes,
        );
        let (extracts, parse_step) = world.compute_step_named("parse", |rank| {
            let e = extract_rank::<K>(rc, &parts[rank], nbins);
            let dt = rc.cpu_model.parse_rate.time_for(e.bases as f64);
            (e, dt)
        });
        parse_step_mean = parse_step.mean;
        // Assemble each bin's blocks in rank order (one block per
        // contributing rank, empty contributions skipped) and write them
        // through the fault plan. SSD time is charged to the bin's owner
        // rank; the journal's `io` events are annotations on top.
        let mut write_secs = vec![SimTime::ZERO; nranks];
        let mut bins = Vec::with_capacity(nbins);
        for bin in 0..nbins {
            let mut blocks: Vec<Vec<u8>> = Vec::new();
            let mut instances = 0u64;
            for e in &extracts {
                if !e.payloads[bin].is_empty() {
                    blocks.push(e.payloads[bin].clone());
                }
                instances += e.instances[bin];
            }
            let w = store
                .write_bin(bin as u32, 0, &blocks, rc.io.as_ref())
                .map_err(|e| store_failed(bin as u64, e))?;
            let dt = ssd.write_time(w.physical_bytes);
            write_secs[bin % nranks] += dt;
            write_bytes_total += w.logical_bytes;
            if let Some(j) = &journal {
                j.push(JournalEvent::Io {
                    op: "write".to_string(),
                    bin: bin as u64,
                    bytes: w.logical_bytes,
                    secs: dt.as_secs(),
                });
            }
            bins.push(BinMeta {
                bin: bin as u32,
                blocks: w.blocks,
                bytes: w.logical_bytes,
                instances,
            });
        }
        manifest = Manifest {
            fingerprint: run_fingerprint(rc, nranks, nbins, reads),
            bins,
        };
        store
            .write_manifest(&manifest)
            .map_err(|e| store_failed(0, e))?;
        let (_, write_step) = world.compute_step_named("bin-write", |rank| ((), write_secs[rank]));
        write_step_mean = write_step.mean;
    }
    let nbins = manifest.bins.len();
    let wall_parse = wall_run.elapsed().as_secs_f64();
    let wall_rounds_start = Instant::now();

    // ── Pass 2: stream bins back one at a time ─────────────────────────
    let mut rank_results: Vec<RankCountResult<K>> = (0..nranks)
        .map(|_| RankCountResult {
            entries: Vec::new(),
            instances: 0,
        })
        .collect();
    let mut read_secs = vec![SimTime::ZERO; nranks];
    let mut count_secs = vec![SimTime::ZERO; nranks];
    let mut read_bytes_total = 0u64;
    let mut retries_total = 0u64;
    let mut quarantined_total = 0u64;
    let mut rederives_total = 0u64;
    let mut rederived_bytes_total = 0u64;
    let mut filtered_total = 0u64;
    let mut filtered_instances_total = 0u64;
    let mut recovery_total = SimTime::ZERO;
    let mut completed_this_run = 0u64;
    let kill_after = rc.io.as_ref().and_then(|p| p.spec().kill_after);
    for meta in &manifest.bins {
        let bin = meta.bin as u64;
        let owner = meta.bin as usize % nranks;
        // A finished bin's counts are already on disk — under `--resume`
        // they are loaded, not recounted. (A fresh run ignores and
        // overwrites any counts a killed predecessor left behind.)
        if rc.two_pass_resume {
            if let Some(c) = read_bin_counts(&store.counts_path(meta.bin)) {
                for &(key, count) in &c.entries {
                    rank_results[owner].entries.push((K::from_u128(key), count));
                }
                rank_results[owner].instances += c.instances;
                filtered_total += c.filtered;
                filtered_instances_total += c.filtered_instances;
                continue;
            }
        }
        if kill_after.is_some_and(|n| completed_this_run >= n) {
            return Err(store_failed(
                bin,
                format!(
                    "injected kill after {completed_this_run} completed bins; \
                     re-run with --resume to count the remaining bins"
                ),
            ));
        }
        // Bounded recovery ladder: transient read errors retry (fresh
        // draw per attempt), real damage quarantines the generation and
        // re-derives the bin from its deterministic input slice.
        let mut generation = 0u32;
        let mut attempts = 0u64;
        let mut rederives_used = 0u32;
        let spec = rc.io.as_ref().map(|p| *p.spec());
        let payloads = 'bin: loop {
            let budget = spec.map_or(1, |s| s.max_retries);
            let mut damage: Option<String> = None;
            for _ in 0..budget {
                let transient = rc.io.as_ref().is_some_and(|p| p.read_errors(bin, attempts));
                attempts += 1;
                if transient {
                    retries_total += 1;
                    let dt = SimTime::from_secs(ssd.seek_secs);
                    read_secs[owner] += dt;
                    recovery_total += dt;
                    if let Some(j) = &journal {
                        j.push(JournalEvent::Io {
                            op: "retry".to_string(),
                            bin,
                            bytes: 0,
                            secs: dt.as_secs(),
                        });
                    }
                    continue;
                }
                match store.read_bin(meta.bin, generation, meta.blocks) {
                    Ok(p) => {
                        let dt = ssd.read_time(meta.bytes);
                        read_secs[owner] += dt;
                        read_bytes_total += meta.bytes;
                        if let Some(j) = &journal {
                            j.push(JournalEvent::Io {
                                op: "read".to_string(),
                                bin,
                                bytes: meta.bytes,
                                secs: dt.as_secs(),
                            });
                        }
                        break 'bin p;
                    }
                    Err(e) => {
                        // Persistent damage: retrying the same bytes
                        // cannot help — escalate to re-derivation.
                        damage = Some(e.to_string());
                        break;
                    }
                }
            }
            if rederives_used >= spec.map_or(0, |s| s.max_rederives) {
                return Err(store_failed(
                    bin,
                    format!(
                        "bin unreadable after {attempts} read attempt(s) and \
                         {rederives_used} re-derive(s): {}",
                        damage.unwrap_or_else(|| "transient read errors exhausted \
                             the retry budget"
                            .to_string())
                    ),
                ));
            }
            quarantined_total += 1;
            if let Some(j) = &journal {
                j.push(JournalEvent::Io {
                    op: "quarantine".to_string(),
                    bin,
                    bytes: meta.bytes,
                    secs: 0.0,
                });
            }
            // Re-derive: replay every partition's deterministic input,
            // keep only this bin's records, and write a fresh generation
            // (fresh write-fate draws). Byte-identical to pass 1's
            // content by construction — same extraction function.
            rederives_used += 1;
            rederives_total += 1;
            generation += 1;
            let mut blocks: Vec<Vec<u8>> = Vec::new();
            for part in &parts {
                let e = extract_rank::<K>(rc, part, nbins);
                let payload = e.payloads[meta.bin as usize].clone();
                if !payload.is_empty() {
                    blocks.push(payload);
                }
            }
            let w = store
                .write_bin(meta.bin, generation, &blocks, rc.io.as_ref())
                .map_err(|e| store_failed(bin, e))?;
            let dt = rc.cpu_model.parse_rate.time_for(total_bases as f64)
                + ssd.write_time(w.physical_bytes);
            read_secs[owner] += dt;
            recovery_total += dt;
            rederived_bytes_total += w.logical_bytes;
            if let Some(j) = &journal {
                j.push(JournalEvent::Io {
                    op: "rederive".to_string(),
                    bin,
                    bytes: w.logical_bytes,
                    secs: dt.as_secs(),
                });
            }
        };
        // Count the bin into a table sized from the manifest by the same
        // safety × MemPlan estimate the in-memory pipelines apply — the
        // fit `plan_bins` guaranteed against the device budget.
        let factor = rc.table_safety * rc.mem.map_or(1.0, |p| p.estimate_factor(owner));
        let expected = ((meta.instances as f64) * factor).ceil().max(1.0) as usize;
        let mut table = HostCountTable::<K>::with_expected(
            expected,
            rc.counting.table_load_factor,
            rc.counting.hash_seed ^ 0xC0C0,
        );
        let inserted = count_payloads::<K>(rc, &payloads, &mut table);
        debug_assert_eq!(inserted, meta.instances);
        count_secs[owner] += rc.cpu_model.count_rate.time_for(inserted as f64);
        // Gerbil-style pre-filter: counts below `--min-count` never
        // leave the bin; the dump and spectrum see only survivors.
        let mut counts = BinCounts::default();
        for (key, count) in table.iter() {
            if count >= rc.min_count {
                counts.entries.push((key.to_u128(), count));
                counts.instances += count as u64;
            } else {
                counts.filtered += 1;
                counts.filtered_instances += count as u64;
            }
        }
        write_bin_counts(&store.counts_path(meta.bin), &counts)
            .map_err(|e| store_failed(bin, e))?;
        for &(key, count) in &counts.entries {
            rank_results[owner].entries.push((K::from_u128(key), count));
        }
        rank_results[owner].instances += counts.instances;
        filtered_total += counts.filtered;
        filtered_instances_total += counts.filtered_instances;
        completed_this_run += 1;
    }
    let (_, read_step) = world.compute_step_named("bin-read", |rank| ((), read_secs[rank]));
    let (_, count_step) = world.compute_step_named("count", |rank| ((), count_secs[rank]));
    let wall_rounds = wall_rounds_start.elapsed().as_secs_f64();
    let wall_finish_start = Instant::now();

    // ── Report assembly ────────────────────────────────────────────────
    let phases = PhaseBreakdown {
        parse: parse_step_mean,
        exchange: write_step_mean + read_step.mean,
        count: count_step.mean,
    };
    let makespan = world.elapsed();
    let wall = WallClock {
        parse: wall_parse,
        rounds: wall_rounds,
        finish: wall_finish_start.elapsed().as_secs_f64(),
        total: wall_run.elapsed().as_secs_f64(),
    };
    let units = manifest.bins.iter().map(|b| b.bytes).sum::<u64>() / rec;
    if let Some(m) = &metrics {
        m.counter_add("storage_write_bytes_total", None, write_bytes_total);
        m.counter_add("storage_read_bytes_total", None, read_bytes_total);
        if retries_total > 0 {
            m.counter_add("io_retries_total", None, retries_total);
        }
        if quarantined_total > 0 {
            m.counter_add("quarantined_bins_total", None, quarantined_total);
            m.counter_add("rederived_bins_total", None, rederives_total);
            m.counter_add("rederive_bytes_total", None, rederived_bytes_total);
        }
        if retries_total > 0 || quarantined_total > 0 {
            m.gauge_add("recovery_seconds_total", None, recovery_total.as_secs());
        }
        if rc.min_count > 1 {
            m.counter_add("filtered_kmers_total", None, filtered_total);
            m.counter_add(
                "filtered_kmer_instances_total",
                None,
                filtered_instances_total,
            );
        }
        m.gauge_set("phase_seconds:parse", None, phases.parse.as_secs());
        m.gauge_set("phase_seconds:exchange", None, phases.exchange.as_secs());
        m.gauge_set("phase_seconds:count", None, phases.count.as_secs());
        m.gauge_set("makespan_seconds", None, makespan.as_secs());
        m.gauge_set("wall_seconds:parse", None, wall.parse);
        m.gauge_set("wall_seconds:rounds", None, wall.rounds);
        m.gauge_set("wall_seconds:finish", None, wall.finish);
        m.gauge_set("wall_seconds:total", None, wall.total);
    }
    if let Some(j) = &journal {
        j.push(JournalEvent::Phase {
            phase: "parse".to_string(),
            secs: phases.parse.as_secs(),
        });
        j.push(JournalEvent::Phase {
            phase: "exchange".to_string(),
            secs: phases.exchange.as_secs(),
        });
        j.push(JournalEvent::Phase {
            phase: "count".to_string(),
            secs: phases.count.as_secs(),
        });
        for (stage, secs) in [
            ("parse", wall.parse),
            ("rounds", wall.rounds),
            ("finish", wall.finish),
            ("total", wall.total),
        ] {
            j.push(JournalEvent::Wall {
                stage: stage.to_string(),
                secs,
            });
        }
        j.push(JournalEvent::Run {
            makespan: makespan.as_secs(),
        });
    }
    let trace = rc.collect_trace.then(|| world.take_trace());
    let trace_counters = rc.collect_trace.then(|| world.take_trace_counters());
    let (load, total, distinct, spectrum, tables) =
        assemble_counts(rank_results, rc.collect_spectrum, rc.collect_tables);
    Ok(RunReport {
        mode: rc.mode,
        nodes: rc.nodes,
        nranks,
        phases,
        makespan,
        exchange: ExchangeSummary {
            units,
            bytes: write_bytes_total + read_bytes_total,
            rounds: nbins as u64,
            retries: retries_total,
            corrupt_buckets: quarantined_total,
            recovery_time: recovery_total,
            replayed_bytes: rederived_bytes_total,
            ..Default::default()
        },
        load,
        total_kmers: total,
        distinct_kmers: distinct,
        spectrum,
        tables,
        trace,
        trace_counters,
        metrics: metrics.map(|m| m.snapshot()),
        wall,
        journal: journal.map(|j| j.snapshot()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_typed;
    use dedukt_dna::{Dataset, DatasetId, ScalePreset};
    use dedukt_store::{IoPlan, IoSpec};
    use std::path::PathBuf;

    fn tiny_reads() -> ReadSet {
        Dataset::new(DatasetId::EColi30x, ScalePreset::Tiny).generate()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dedukt-two-pass-test-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn base_rc(mode: Mode) -> RunConfig {
        let mut rc = RunConfig::new(mode, 1);
        rc.collect_spectrum = true;
        rc
    }

    #[test]
    fn clean_two_pass_matches_in_memory_on_every_mode() {
        let reads = tiny_reads();
        for mode in [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer] {
            let rc = base_rc(mode);
            let mem = run_typed::<u64>(&reads, &rc).unwrap();
            let mut rc2 = rc.clone();
            rc2.two_pass_dir = Some(tmp_dir(&format!("clean-{}", mode.label())));
            let oo = run_typed::<u64>(&reads, &rc2).unwrap();
            assert_eq!(oo.total_kmers, mem.total_kmers, "{mode:?}");
            assert_eq!(oo.distinct_kmers, mem.distinct_kmers, "{mode:?}");
            assert_eq!(oo.spectrum, mem.spectrum, "{mode:?}");
            std::fs::remove_dir_all(rc2.two_pass_dir.unwrap()).ok();
        }
    }

    #[test]
    fn hostile_plan_recovers_and_matches_in_memory() {
        let reads = tiny_reads();
        let rc = base_rc(Mode::GpuSupermer);
        let mem = run_typed::<u64>(&reads, &rc).unwrap();
        let mut rc2 = rc.clone();
        rc2.two_pass_dir = Some(tmp_dir("hostile"));
        rc2.collect_journal = true;
        rc2.io = Some(IoPlan::new(7, IoSpec::default()));
        let oo = run_typed::<u64>(&reads, &rc2).unwrap();
        assert_eq!(oo.spectrum, mem.spectrum);
        assert_eq!(oo.total_kmers, mem.total_kmers);
        std::fs::remove_dir_all(rc2.two_pass_dir.unwrap()).ok();
    }

    #[test]
    fn kill_then_resume_reproduces_the_clean_spectrum() {
        let reads = tiny_reads();
        let rc = base_rc(Mode::CpuBaseline);
        let mem = run_typed::<u64>(&reads, &rc).unwrap();
        let mut rc2 = rc.clone();
        let dir = tmp_dir("kill-resume");
        rc2.two_pass_dir = Some(dir.clone());
        let mut spec = IoSpec::none();
        spec.kill_after = Some(2);
        rc2.io = Some(IoPlan::new(1, spec));
        let err = run_typed::<u64>(&reads, &rc2).unwrap_err();
        assert!(
            matches!(err, RunError::StorageFailed { .. }),
            "kill must be a clean storage failure, got {err:?}"
        );
        assert!(err.to_string().contains("--resume"));
        let mut rc3 = rc.clone();
        rc3.two_pass_dir = Some(dir.clone());
        rc3.two_pass_resume = true;
        let resumed = run_typed::<u64>(&reads, &rc3).unwrap();
        assert_eq!(resumed.spectrum, mem.spectrum);
        assert_eq!(resumed.total_kmers, mem.total_kmers);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn resume_rejects_a_mismatched_manifest() {
        let reads = tiny_reads();
        let dir = tmp_dir("mismatch");
        let mut rc = base_rc(Mode::CpuBaseline);
        rc.two_pass_dir = Some(dir.clone());
        run_typed::<u64>(&reads, &rc).unwrap();
        rc.counting.hash_seed ^= 0xBEEF; // different run shape, same store
        rc.two_pass_resume = true;
        let err = run_typed::<u64>(&reads, &rc).unwrap_err();
        assert!(err.to_string().contains("--resume"), "{err}");
        // And resuming an empty store names the flag too.
        let empty = tmp_dir("mismatch-empty");
        rc.two_pass_dir = Some(empty.clone());
        let err = run_typed::<u64>(&reads, &rc).unwrap_err();
        assert!(err.to_string().contains("--resume"), "{err}");
        std::fs::remove_dir_all(dir).ok();
        std::fs::remove_dir_all(empty).ok();
    }

    #[test]
    fn min_count_filters_singletons_and_reports_them() {
        let reads = tiny_reads();
        let mut rc = base_rc(Mode::CpuBaseline);
        rc.collect_metrics = true;
        rc.two_pass_dir = Some(tmp_dir("min-count"));
        rc.min_count = 2;
        let filtered = run_typed::<u64>(&reads, &rc).unwrap();
        let mut rc1 = rc.clone();
        rc1.two_pass_dir = Some(tmp_dir("min-count-1"));
        rc1.min_count = 1;
        let full = run_typed::<u64>(&reads, &rc1).unwrap();
        assert!(filtered.distinct_kmers < full.distinct_kmers);
        let snap = filtered.metrics.unwrap();
        let dropped = full.distinct_kmers - filtered.distinct_kmers;
        assert_eq!(snap.counter_total("filtered_kmers_total"), dropped);
        // Every surviving spectrum entry sits at count >= 2.
        assert_eq!(filtered.spectrum.unwrap().singletons(), 0);
        std::fs::remove_dir_all(rc.two_pass_dir.unwrap()).ok();
        std::fs::remove_dir_all(rc1.two_pass_dir.unwrap()).ok();
    }

    #[test]
    fn exhausted_rederive_budget_is_a_clean_storage_failure() {
        let reads = tiny_reads();
        let mut rc = base_rc(Mode::CpuBaseline);
        rc.two_pass_dir = Some(tmp_dir("exhausted"));
        // Every read attempt fails; retries and re-derives cannot save it.
        let mut spec = IoSpec::none();
        spec.read_error_rate = 1.0;
        spec.max_retries = 2;
        spec.max_rederives = 1;
        rc.io = Some(IoPlan::new(3, spec));
        let err = run_typed::<u64>(&reads, &rc).unwrap_err();
        match err {
            RunError::StorageFailed { detail, .. } => {
                assert!(detail.contains("re-derive"), "{detail}");
            }
            other => panic!("expected StorageFailed, got {other:?}"),
        }
        std::fs::remove_dir_all(rc.two_pass_dir.unwrap()).ok();
    }

    #[test]
    fn planned_bins_fit_the_device_budget() {
        let slot = 12u64;
        for total in [0u64, 100, 10_000, 5_000_000] {
            for budget in [1u64 << 16, 1 << 20, 1 << 30] {
                let nbins = plan_bins(total, 6, 1.0, 0.7, budget, slot);
                assert!(nbins >= 6);
                let per_bin = (total as f64 / nbins as f64) * BIN_SKEW_MARGIN;
                let cap = capacity_for(per_bin.ceil().max(1.0) as usize, 0.7) as u64;
                assert!(
                    cap * slot <= budget || per_bin <= 1.0,
                    "total={total} budget={budget} nbins={nbins}"
                );
            }
        }
    }
}
