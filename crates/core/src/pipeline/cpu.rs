//! The CPU baseline: Algorithm 1, diBELLA's k-mer analysis (§III-A).
//!
//! 42 ranks per node (one per Power9 core, §V-A). Each rank parses its
//! read partition into k-mers, routes every k-mer to its owner by
//! MurmurHash3, exchanges with `MPI_Alltoallv`, and counts the received
//! k-mers in a host open-addressing table. Compute phases are charged with
//! the calibrated per-core rates of [`crate::config::CpuCoreModel`]
//! (functional results are exact regardless).
//!
//! The phase skeleton (bucket → exchange rounds → count) lives in the
//! shared [`driver`](crate::pipeline::driver); this module only supplies
//! the CPU-specific stages.

use crate::config::RunConfig;
use crate::partition::key_owner;
use crate::pipeline::driver::{
    exchange_items_round, run_staged, BucketOut, CounterOom, CounterStages, DriverCtx, RoundRecv,
};
use crate::pipeline::{RankCountResult, RunError, RunReport};
use crate::table::HostCountTable;
use crate::width::PackedKmer;
use dedukt_dna::kmer::kmer_words_w;
use dedukt_dna::ReadSet;
use dedukt_net::cost::Network;
use dedukt_net::BspWorld;
use dedukt_sim::SimTime;
use std::marker::PhantomData;

/// Host counting state threaded through the exchange rounds.
pub(crate) struct CpuCounter<K: PackedKmer> {
    table: HostCountTable<K>,
    received: u64,
}

struct CpuStages<K: PackedKmer>(PhantomData<K>);

impl<K: PackedKmer> CounterStages for CpuStages<K> {
    type Key = K;
    type Item = K;
    type Counter = CpuCounter<K>;

    const ITEM_WIRE_BYTES: u64 = K::KMER_WIRE_BYTES;
    const BUCKET_PHASE: &'static str = "parse";

    fn network(&self, rc: &RunConfig) -> Network {
        Network::summit_cpu(rc.nodes)
    }

    // ── Phase 1: parse & process k-mers (Algorithm 1, PARSEKMER) ──────
    fn bucket(&self, ctx: &DriverCtx, rank: usize) -> BucketOut<K> {
        let cfg = &ctx.cfg;
        let part = &ctx.parts[rank];
        let mut out: Vec<Vec<K>> = vec![Vec::new(); ctx.nranks];
        let mut bases = 0u64;
        for read in &part.reads {
            bases += read.codes.len() as u64;
            for w in kmer_words_w::<K>(&read.codes, cfg.k, cfg.encoding) {
                let key = if cfg.canonical {
                    w.canonical_word(cfg.k)
                } else {
                    w
                };
                out[key_owner(&ctx.hasher, key, ctx.nranks)].push(key);
            }
        }
        BucketOut {
            buckets: out,
            compute: ctx.rc.cpu_model.parse_rate.time_for(bases as f64),
            stage_out: SimTime::ZERO,
        }
    }

    fn item_instances(&self, _ctx: &DriverCtx, _item: &K) -> u64 {
        1
    }

    // ── Phase 2: exchange (Algorithm 1, EXCHANGEKMER) ─────────────────
    fn exchange_round(
        &self,
        world: &mut BspWorld,
        round: Vec<Vec<Vec<K>>>,
        hidden: Option<&[SimTime]>,
    ) -> RoundRecv<K> {
        exchange_items_round(world, round, hidden)
    }

    // ── Phase 3: count (Algorithm 1, COUNTKMER) ───────────────────────
    fn make_counter(
        &self,
        ctx: &DriverCtx,
        rank: usize,
        expected_instances: u64,
    ) -> Result<CpuCounter<K>, CounterOom> {
        // The same safety × underestimate scaling the GPU pipelines
        // apply, so the sizing story is engine-uniform; the host table
        // grows transparently under load, so an undersized estimate
        // never changes CPU results and never OOMs (no device budget) —
        // memory pressure on this engine only re-sizes the initial
        // allocation. `pressure` keeps its all-zero default.
        let factor = ctx.rc.table_safety * ctx.rc.mem.map_or(1.0, |p| p.estimate_factor(rank));
        let expected = if factor == 1.0 {
            expected_instances as usize
        } else {
            ((expected_instances as f64) * factor).ceil().max(1.0) as usize
        };
        Ok(CpuCounter {
            table: HostCountTable::with_expected(
                expected,
                ctx.cfg.table_load_factor,
                ctx.cfg.hash_seed ^ 0xC0C0,
            ),
            received: 0,
        })
    }

    fn count_round(
        &self,
        ctx: &DriverCtx,
        counter: &mut CpuCounter<K>,
        items: Vec<K>,
    ) -> Result<SimTime, CounterOom> {
        counter.received += items.len() as u64;
        for k in &items {
            counter.table.insert(*k);
        }
        Ok(ctx.rc.cpu_model.count_rate.time_for(items.len() as f64))
    }

    fn snapshot_counts(&self, counter: &CpuCounter<K>) -> (Vec<(K, u32)>, u64) {
        (counter.table.iter().collect(), counter.received)
    }

    fn finish(&self, ctx: &DriverCtx, rank: usize, counter: CpuCounter<K>) -> RankCountResult<K> {
        if let Some(m) = &ctx.metrics {
            m.counter_add("kmers_counted_total", Some(rank), counter.received);
            m.counter_add(
                "count_probe_steps_total",
                Some(rank),
                counter.table.probe_steps(),
            );
            m.gauge_set(
                "count_table_load_factor",
                Some(rank),
                counter.table.distinct() as f64 / counter.table.capacity() as f64,
            );
        }
        RankCountResult {
            entries: counter.table.iter().collect(),
            instances: counter.received,
        }
    }
}

/// Runs the CPU baseline counter at the narrow (`u64`) key width.
///
/// Panics on an invalid configuration or an unsurvivable fault plan; use
/// [`crate::pipeline::run`] for the fallible entry point.
pub fn run_cpu(reads: &ReadSet, rc: &RunConfig) -> RunReport {
    run_cpu_typed::<u64>(reads, rc).expect("run failed")
}

/// Runs the CPU baseline counter at an explicit key width.
pub fn run_cpu_typed<K: PackedKmer>(
    reads: &ReadSet,
    rc: &RunConfig,
) -> Result<RunReport<K>, RunError> {
    run_staged(&mut CpuStages::<K>(PhantomData), reads, rc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;
    use crate::verify::{check_against_reference, reference_total};
    use dedukt_dna::{Dataset, DatasetId, ScalePreset};
    use dedukt_sim::SimTime;

    fn tiny_run(nodes: usize) -> (ReadSet, RunConfig) {
        let reads = Dataset::new(DatasetId::EColi30x, ScalePreset::Tiny).generate();
        let mut rc = RunConfig::new(Mode::CpuBaseline, nodes);
        rc.collect_tables = true;
        (reads, rc)
    }

    #[test]
    fn counts_match_oracle_exactly() {
        let (reads, rc) = tiny_run(1);
        let report = run_cpu(&reads, &rc);
        assert_eq!(report.total_kmers, reference_total(&reads, rc.counting.k));
        check_against_reference(&reads, &rc.counting, report.tables.as_ref().unwrap())
            .expect("distributed result must equal the oracle");
    }

    #[test]
    fn counts_match_oracle_across_node_counts() {
        let (reads, mut rc) = tiny_run(1);
        let one = run_cpu(&reads, &rc);
        rc.nodes = 2;
        let two = run_cpu(&reads, &rc);
        assert_eq!(one.total_kmers, two.total_kmers);
        assert_eq!(one.distinct_kmers, two.distinct_kmers);
        check_against_reference(&reads, &rc.counting, two.tables.as_ref().unwrap()).unwrap();
    }

    #[test]
    fn canonical_mode_counts_canonical_kmers() {
        let (reads, mut rc) = tiny_run(1);
        rc.counting.canonical = true;
        let report = run_cpu(&reads, &rc);
        check_against_reference(&reads, &rc.counting, report.tables.as_ref().unwrap()).unwrap();
        let plain = {
            rc.counting.canonical = false;
            run_cpu(&reads, &rc)
        };
        // Canonicalization can only merge keys.
        assert!(report.distinct_kmers <= plain.distinct_kmers);
        assert_eq!(report.total_kmers, plain.total_kmers);
    }

    #[test]
    fn phases_have_positive_simulated_times() {
        let (reads, rc) = tiny_run(1);
        let report = run_cpu(&reads, &rc);
        assert!(report.phases.parse > SimTime::ZERO);
        assert!(report.phases.exchange > SimTime::ZERO);
        assert!(report.phases.count > SimTime::ZERO);
        assert_eq!(
            report.total_time(),
            report.phases.parse + report.phases.exchange + report.phases.count
        );
    }

    #[test]
    fn kmer_load_is_roughly_balanced() {
        // Algorithm 1's uniform hash should give low imbalance (the paper's
        // Table III measures 1.16 at 384 ranks; at tiny scale allow more).
        let (reads, rc) = tiny_run(1); // 42 ranks
        let report = run_cpu(&reads, &rc);
        let imb = report.load.imbalance();
        assert!(imb < 1.6, "k-mer imbalance too high: {imb}");
    }

    #[test]
    fn exchange_units_equal_total_kmers() {
        let (reads, rc) = tiny_run(1);
        let report = run_cpu(&reads, &rc);
        assert_eq!(report.exchange.units, report.total_kmers);
        // Packed k-mers are 8 bytes each on the wire.
        assert_eq!(report.exchange.bytes, report.total_kmers * 8);
        // Unlimited memory → a single exchange round.
        assert_eq!(report.exchange.rounds, 1);
    }
}
