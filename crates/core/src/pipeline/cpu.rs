//! The CPU baseline: Algorithm 1, diBELLA's k-mer analysis (§III-A).
//!
//! 42 ranks per node (one per Power9 core, §V-A). Each rank parses its
//! read partition into k-mers, routes every k-mer to its owner by
//! MurmurHash3, exchanges with `MPI_Alltoallv`, and counts the received
//! k-mers in a host open-addressing table. Compute phases are charged with
//! the calibrated per-core rates of [`crate::config::CpuCoreModel`]
//! (functional results are exact regardless).

use crate::config::RunConfig;
use crate::partition::kmer_owner;
use crate::pipeline::{assemble_counts, RankCountResult, RunReport};
use crate::stats::{ExchangeSummary, PhaseBreakdown};
use crate::table::HostCountTable;
use dedukt_dna::kmer::{kmer_words, Kmer};
use dedukt_dna::ReadSet;
use dedukt_hash::Murmur3x64;
use dedukt_net::cost::Network;
use dedukt_net::BspWorld;
use dedukt_sim::{MetricsRegistry, SimTime};
use std::sync::Arc;

/// Runs the CPU baseline counter.
pub fn run_cpu(reads: &ReadSet, rc: &RunConfig) -> RunReport {
    let cfg = rc.counting;
    let nranks = rc.nranks();
    let mut net = Network::summit_cpu(rc.nodes);
    net.params.algo = rc.exchange_algo;
    let mut world = BspWorld::new(net);
    assert_eq!(world.nranks(), nranks);
    let metrics = rc.collect_metrics.then(|| Arc::new(MetricsRegistry::new()));
    if let Some(m) = &metrics {
        world.enable_metrics(Arc::clone(m));
    }
    let parts = reads.partition_by_bases(nranks);
    let hasher = Murmur3x64::new(cfg.hash_seed);

    // ── Phase 1: parse & process k-mers (Algorithm 1, PARSEKMER) ──────
    let (buckets, parse_time) = world.compute_step_named("parse", |rank| {
        let part = &parts[rank];
        let mut out: Vec<Vec<u64>> = vec![Vec::new(); nranks];
        let mut bases = 0u64;
        for read in &part.reads {
            bases += read.codes.len() as u64;
            for w in kmer_words(&read.codes, cfg.k, cfg.encoding) {
                let key = if cfg.canonical {
                    Kmer::from_word(w, cfg.k).canonical().word()
                } else {
                    w
                };
                out[kmer_owner(&hasher, key, nranks)].push(key);
            }
        }
        let dt = rc.cpu_model.parse_rate.time_for(bases as f64);
        (out, dt)
    });
    let kmers_sent: u64 = buckets
        .iter()
        .flat_map(|row| row.iter().map(|v| v.len() as u64))
        .sum();

    // ── Phase 2: exchange (Algorithm 1, EXCHANGEKMER) ──────────────────
    // Optionally in memory-bounded rounds (§III-A), like the GPU path.
    let mut recv: Vec<Vec<u64>> = (0..nranks).map(|_| Vec::new()).collect();
    let mut exchange_time = SimTime::ZERO;
    for round in crate::pipeline::gpu_common::split_rounds(buckets, rc.round_limit_bytes) {
        let outcome = world.alltoallv(round);
        exchange_time += outcome.times.mean;
        for (dst, per_src) in outcome.recv.into_iter().enumerate() {
            for v in per_src {
                recv[dst].extend(v);
            }
        }
    }

    // ── Phase 3: count (Algorithm 1, COUNTKMER) ────────────────────────
    let (rank_results, count_time) = world.compute_step_named("count", |rank| {
        let received = recv[rank].len() as u64;
        let mut table: HostCountTable = HostCountTable::with_expected(
            received as usize,
            cfg.table_load_factor,
            cfg.hash_seed ^ 0xC0C0,
        );
        for &k in &recv[rank] {
            table.insert(k);
        }
        if let Some(m) = &metrics {
            m.counter_add("kmers_counted_total", Some(rank), received);
            m.counter_add("count_probe_steps_total", Some(rank), table.probe_steps());
            m.gauge_set(
                "count_table_load_factor",
                Some(rank),
                table.distinct() as f64 / table.capacity() as f64,
            );
        }
        let dt = rc.cpu_model.count_rate.time_for(received as f64);
        (
            RankCountResult {
                entries: table.iter().collect(),
                instances: received,
            },
            dt,
        )
    });

    let makespan = world.elapsed();
    let trace = rc.collect_trace.then(|| world.take_trace());
    let trace_counters = rc.collect_trace.then(|| world.take_trace_counters());
    let stats = world.stats();
    let (load, total, distinct, spectrum, tables) =
        assemble_counts(rank_results, rc.collect_spectrum, rc.collect_tables);
    RunReport {
        mode: rc.mode,
        nodes: rc.nodes,
        nranks,
        phases: PhaseBreakdown {
            parse: parse_time.mean,
            exchange: exchange_time,
            count: count_time.mean,
        },
        makespan,
        exchange: ExchangeSummary {
            units: kmers_sent,
            bytes: stats.total_bytes,
            off_node_bytes: stats.off_node_bytes,
            alltoallv_time: exchange_time,
        },
        load,
        total_kmers: total,
        distinct_kmers: distinct,
        spectrum,
        tables,
        trace,
        trace_counters,
        metrics: metrics.map(|m| m.snapshot()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;
    use crate::verify::{check_against_reference, reference_total};
    use dedukt_dna::{Dataset, DatasetId, ScalePreset};
    use dedukt_sim::SimTime;

    fn tiny_run(nodes: usize) -> (ReadSet, RunConfig) {
        let reads = Dataset::new(DatasetId::EColi30x, ScalePreset::Tiny).generate();
        let mut rc = RunConfig::new(Mode::CpuBaseline, nodes);
        rc.collect_tables = true;
        (reads, rc)
    }

    #[test]
    fn counts_match_oracle_exactly() {
        let (reads, rc) = tiny_run(1);
        let report = run_cpu(&reads, &rc);
        assert_eq!(report.total_kmers, reference_total(&reads, rc.counting.k));
        check_against_reference(&reads, &rc.counting, report.tables.as_ref().unwrap())
            .expect("distributed result must equal the oracle");
    }

    #[test]
    fn counts_match_oracle_across_node_counts() {
        let (reads, mut rc) = tiny_run(1);
        let one = run_cpu(&reads, &rc);
        rc.nodes = 2;
        let two = run_cpu(&reads, &rc);
        assert_eq!(one.total_kmers, two.total_kmers);
        assert_eq!(one.distinct_kmers, two.distinct_kmers);
        check_against_reference(&reads, &rc.counting, two.tables.as_ref().unwrap()).unwrap();
    }

    #[test]
    fn canonical_mode_counts_canonical_kmers() {
        let (reads, mut rc) = tiny_run(1);
        rc.counting.canonical = true;
        let report = run_cpu(&reads, &rc);
        check_against_reference(&reads, &rc.counting, report.tables.as_ref().unwrap()).unwrap();
        let plain = {
            rc.counting.canonical = false;
            run_cpu(&reads, &rc)
        };
        // Canonicalization can only merge keys.
        assert!(report.distinct_kmers <= plain.distinct_kmers);
        assert_eq!(report.total_kmers, plain.total_kmers);
    }

    #[test]
    fn phases_have_positive_simulated_times() {
        let (reads, rc) = tiny_run(1);
        let report = run_cpu(&reads, &rc);
        assert!(report.phases.parse > SimTime::ZERO);
        assert!(report.phases.exchange > SimTime::ZERO);
        assert!(report.phases.count > SimTime::ZERO);
        assert_eq!(
            report.total_time(),
            report.phases.parse + report.phases.exchange + report.phases.count
        );
    }

    #[test]
    fn kmer_load_is_roughly_balanced() {
        // Algorithm 1's uniform hash should give low imbalance (the paper's
        // Table III measures 1.16 at 384 ranks; at tiny scale allow more).
        let (reads, rc) = tiny_run(1); // 42 ranks
        let report = run_cpu(&reads, &rc);
        let imb = report.load.imbalance();
        assert!(imb < 1.6, "k-mer imbalance too high: {imb}");
    }

    #[test]
    fn exchange_units_equal_total_kmers() {
        let (reads, rc) = tiny_run(1);
        let report = run_cpu(&reads, &rc);
        assert_eq!(report.exchange.units, report.total_kmers);
        // Packed k-mers are 8 bytes each on the wire.
        assert_eq!(report.exchange.bytes, report.total_kmers * 8);
    }
}
