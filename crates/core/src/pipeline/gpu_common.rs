//! Shared machinery of the two GPU pipelines (§III-B / §IV-B).

use crate::config::{CountingConfig, RunConfig};
use crate::table::{table_capacity, DeviceCountTable};
use crate::width::PackedKmer;
use dedukt_dna::packed::ConcatReads;
use dedukt_dna::ReadSet;
use dedukt_gpu::transfer::staging_time;
use dedukt_gpu::{Device, KernelReport, LaunchConfig};
use dedukt_sim::{DataVolume, Histogram, SimTime};

/// Thread-block size used by all pipeline kernels.
pub const BLOCK_THREADS: u32 = 256;

/// Upper bound on grid size: blocks process chunks grid-stride style, as
/// the paper's kernels do ("the copied array is evenly partitioned into
/// smaller chunks of bases and is assigned to different thread blocks").
pub const MAX_GRID_BLOCKS: u32 = 640; // 80 SMs × 8 resident blocks

/// A launch covering `work_items` with chunked blocks.
///
/// Prefers 256-thread blocks; for small batches it steps the block size
/// down (to a floor of 32) so the grid still spreads across the SMs —
/// the same tuning a production kernel applies to avoid running a tiny
/// grid on a mostly idle device.
pub fn chunked_launch(work_items: usize) -> LaunchConfig {
    let work = work_items.max(1);
    let mut block_threads = BLOCK_THREADS;
    while block_threads > 32 && work.div_ceil(block_threads as usize) < 80 {
        block_threads /= 2;
    }
    let blocks = work
        .div_ceil(block_threads as usize)
        .clamp(1, MAX_GRID_BLOCKS as usize) as u32;
    LaunchConfig {
        grid_blocks: blocks,
        block_threads,
    }
}

/// The contiguous sub-range of `total` items assigned to block `b` of
/// `nblocks` (balanced to within one item).
pub fn block_range(total: usize, nblocks: u32, b: u32) -> (usize, usize) {
    let nb = nblocks as usize;
    let bi = b as usize;
    let base = total / nb;
    let rem = total % nb;
    let lo = bi * base + bi.min(rem);
    let hi = lo + base + usize::from(bi < rem);
    (lo, hi)
}

/// Concatenates a rank's reads into the packed device layout (§III-B1).
pub fn concat_rank_reads(part: &ReadSet, cfg: &CountingConfig) -> ConcatReads {
    ConcatReads::from_reads(part.reads.iter().map(|r| &r.codes[..]), cfg.encoding)
}

/// Host→device volume of the concatenated read batch: packed bases plus
/// the read-boundary offsets.
pub fn reads_h2d_volume(concat: &ConcatReads) -> DataVolume {
    DataVolume::from_bytes((concat.bases.packed_bytes() + concat.ends.len() * 8) as u64)
}

/// Staging cost for moving `volume` between host and device, zero when
/// GPUDirect is enabled (§III-B2).
pub fn staging(device: &Device, rc: &RunConfig, volume: DataVolume) -> SimTime {
    if rc.gpu_direct {
        SimTime::ZERO
    } else {
        staging_time(device.config(), volume)
    }
}

/// Outcome of the shared counting kernel, at either key width.
pub struct CountOutcome<K: PackedKmer = u64> {
    /// Kernel launch report (simulated time, tallies).
    pub report: KernelReport,
    /// `(kmer, count)` entries of the rank's table.
    pub entries: Vec<(K, u32)>,
    /// Total probe steps across all inserts.
    pub probe_steps: u64,
    /// Per-insert probe-step distribution (1 = direct hit), accumulated
    /// block-locally and merged once per block.
    pub probe_hist: Histogram,
    /// Fraction of table slots occupied after counting
    /// (distinct / capacity).
    pub load_factor: f64,
}

/// The GPU counting kernel (§III-B3): one thread per received k-mer,
/// inserting into the device open-addressing table with CAS + atomicAdd.
///
/// `cycles_per_kmer` carries the calibrated effective cost (plus the
/// supermer pipelines' extraction surcharge).
pub fn count_kmers_on_device<K: PackedKmer>(
    device: &Device,
    cfg: &CountingConfig,
    kmers: &[K],
    cycles_per_kmer: f64,
) -> CountOutcome<K> {
    let capacity = table_capacity(cfg, kmers.len());
    let table = DeviceCountTable::<K>::new(device, capacity, cfg.hash_seed ^ 0xC0C0)
        .expect("count table exceeds device memory");
    let (report, probe_steps, probe_hist) =
        count_round_on_device(device, &table, kmers, cycles_per_kmer);
    let entries = table.to_host();
    let load_factor = entries.len() as f64 / table.capacity() as f64;
    CountOutcome {
        report,
        entries,
        probe_steps,
        probe_hist,
        load_factor,
    }
}

/// One launch of the counting kernel inserting `kmers` into an existing
/// device `table` — the round-granular form [`count_kmers_on_device`] and
/// the staged driver's per-round counting are built on. Returns the
/// launch report, total probe steps, and the per-insert probe histogram.
pub fn count_round_on_device<K: PackedKmer>(
    device: &Device,
    table: &DeviceCountTable<K>,
    kmers: &[K],
    cycles_per_kmer: f64,
) -> (KernelReport, u64, Histogram) {
    let launch = chunked_launch(kmers.len().max(1));
    let (report, block_stats) = device.launch_map("count_kmers", launch, |b| {
        let (lo, hi) = block_range(kmers.len(), b.cfg.grid_blocks, b.block);
        let mut probes = 0u64;
        let mut fresh = 0u64;
        let mut hist = Histogram::new();
        for &k in &kmers[lo..hi] {
            let r = table.insert(k);
            probes += r.steps as u64;
            fresh += u64::from(r.new);
            hist.observe(r.steps as u64);
        }
        let n = (hi - lo) as u64;
        // Effective compute (calibrated) + real memory/atomic traffic:
        // each probe touches a key-width-sized key (8 B narrow, 16 B
        // wide) + the hit updates a 4B count, all effectively random;
        // CAS + atomicAdd per insert, where repeat occurrences of hot
        // k-mers collide on their slot.
        b.instr((n as f64 * cycles_per_kmer) as u64);
        b.gmem_coalesced(n * K::KMER_WIRE_BYTES); // streaming the received k-mers
        b.gmem_random(probes * K::KMER_WIRE_BYTES + n * 4);
        b.atomic(2 * n, n - fresh);
        (probes, hist)
    });
    let mut probe_hist = Histogram::new();
    let mut probe_steps = 0u64;
    for (p, h) in &block_stats {
        probe_steps += p;
        probe_hist.merge(h);
    }
    (report, probe_steps, probe_hist)
}

/// Per-rank device-side counting state threaded through the staged
/// driver's exchange rounds: one device, one count table sized for the
/// whole run, and one stream recording the round-by-round count kernels
/// (the kernels the overlapped exchange hides behind the wire).
pub(crate) struct DeviceRoundCounter<K: PackedKmer = u64> {
    device: Device,
    table: DeviceCountTable<K>,
    stream: dedukt_gpu::Stream,
    probe_hist: Histogram,
    probe_steps: u64,
    instances: u64,
    last_occupancy: f64,
}

impl<K: PackedKmer> DeviceRoundCounter<K> {
    /// A counter for a rank expecting `expected_instances` inserts in
    /// total — the table is sized once for the full load so splitting
    /// the exchange into rounds cannot change probe sequences.
    pub(crate) fn new(rc: &RunConfig, cfg: &CountingConfig, expected_instances: u64) -> Self {
        let device = dedukt_gpu::Device::new(rc.gpu_device.clone());
        let capacity = table_capacity(cfg, expected_instances as usize);
        let table = DeviceCountTable::<K>::new(&device, capacity, cfg.hash_seed ^ 0xC0C0)
            .expect("count table exceeds device memory");
        DeviceRoundCounter {
            device,
            table,
            stream: dedukt_gpu::Stream::new(),
            probe_hist: Histogram::new(),
            probe_steps: 0,
            instances: 0,
            last_occupancy: 0.0,
        }
    }

    /// Inserts one round's k-mers; returns the kernel's simulated time.
    pub(crate) fn count(&mut self, kmers: &[K], cycles_per_kmer: f64) -> SimTime {
        let (report, probes, hist) =
            count_round_on_device(&self.device, &self.table, kmers, cycles_per_kmer);
        self.probe_steps += probes;
        self.probe_hist.merge(&hist);
        self.instances += kmers.len() as u64;
        self.last_occupancy = report.occupancy;
        let dt = report.time;
        self.stream.record_kernel(report);
        dt
    }

    /// Drains the table into the rank's result and records the counting
    /// telemetry (same series as the single-launch pipelines).
    pub(crate) fn finish(
        self,
        metrics: &Option<std::sync::Arc<dedukt_sim::MetricsRegistry>>,
        rank: usize,
    ) -> crate::pipeline::RankCountResult<K> {
        let entries = self.table.to_host();
        if let Some(m) = metrics {
            m.counter_add("kmers_counted_total", Some(rank), self.instances);
            m.merge_histogram("count_probe_steps", Some(rank), &self.probe_hist);
            m.gauge_set(
                "count_table_load_factor",
                Some(rank),
                entries.len() as f64 / self.table.capacity() as f64,
            );
            m.gauge_set(
                "kernel_occupancy:count_kmers",
                Some(rank),
                self.last_occupancy,
            );
            m.gauge_max(
                "device_peak_bytes",
                Some(rank),
                self.device.peak_bytes() as f64,
            );
        }
        crate::pipeline::RankCountResult {
            entries,
            instances: self.instances,
        }
    }
}

/// Splits per-rank outgoing buckets into exchange rounds so that no rank
/// sends more than `limit_bytes` per round (§III-A's memory-bounded
/// operation). Returns one bucket matrix per round; concatenating the
/// rounds restores the input exactly (order preserved per destination).
pub fn split_rounds<T>(
    buckets: Vec<Vec<Vec<T>>>,
    limit_bytes: Option<u64>,
) -> Vec<Vec<Vec<Vec<T>>>> {
    let elem = (std::mem::size_of::<T>() as u64).max(1);
    split_rounds_weighted(buckets, limit_bytes, elem)
}

/// [`split_rounds`] with an explicit per-item wire size in bytes, for
/// items whose in-memory size differs from their serialized form (a
/// supermer moves as 8 payload bytes + 1 length byte, not
/// `size_of::<(u64, u8)>()`). The round count is clamped to the largest
/// per-destination payload so caps smaller than one item still make
/// progress (each round then carries at least one item per payload).
pub fn split_rounds_weighted<T>(
    buckets: Vec<Vec<Vec<T>>>,
    limit_bytes: Option<u64>,
    item_bytes: u64,
) -> Vec<Vec<Vec<Vec<T>>>> {
    assert!(item_bytes > 0, "item wire size must be positive");
    let nrounds = match limit_bytes {
        None => 1,
        Some(cap) => {
            assert!(cap > 0, "round limit must be positive");
            let max_out = buckets
                .iter()
                .map(|row| row.iter().map(|v| v.len() as u64 * item_bytes).sum::<u64>())
                .max()
                .unwrap_or(0);
            let max_items = buckets
                .iter()
                .flat_map(|row| row.iter().map(|v| v.len() as u64))
                .max()
                .unwrap_or(0);
            max_out.div_ceil(cap).clamp(1, max_items.max(1)) as usize
        }
    };
    if nrounds == 1 {
        return vec![buckets];
    }
    let nranks = buckets.len();
    let mut rounds: Vec<Vec<Vec<Vec<T>>>> = (0..nrounds)
        .map(|_| (0..nranks).map(|_| Vec::with_capacity(nranks)).collect())
        .collect();
    for (src, row) in buckets.into_iter().enumerate() {
        for payload in row {
            // Cut this payload into `nrounds` near-equal chunks.
            let len = payload.len();
            let mut iter = payload.into_iter();
            for (r, round) in rounds.iter_mut().enumerate() {
                let lo = r * len / nrounds;
                let hi = (r + 1) * len / nrounds;
                round[src].push(iter.by_ref().take(hi - lo).collect());
            }
        }
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_rounds_roundtrip_and_cap() {
        let nranks = 3;
        let buckets: Vec<Vec<Vec<u64>>> = (0..nranks)
            .map(|s| {
                (0..nranks)
                    .map(|d| (0..(s * 10 + d * 3)).map(|i| i as u64).collect())
                    .collect()
            })
            .collect();
        let original = buckets.clone();
        // Cap at 64 bytes per rank per round (8 u64s).
        let rounds = split_rounds(buckets, Some(64));
        assert!(rounds.len() > 1);
        // Per-round cap holds for every source rank.
        for round in &rounds {
            for row in round {
                let bytes: u64 = row.iter().map(|v| v.len() as u64 * 8).sum();
                assert!(bytes <= 64 + 8 * nranks as u64, "round bytes {bytes}");
            }
        }
        // Concatenating rounds restores the original, in order.
        for src in 0..nranks {
            for dst in 0..nranks {
                let rebuilt: Vec<u64> = rounds
                    .iter()
                    .flat_map(|round| round[src][dst].iter().copied())
                    .collect();
                assert_eq!(rebuilt, original[src][dst]);
            }
        }
    }

    #[test]
    fn split_rounds_single_round_when_unlimited() {
        let buckets: Vec<Vec<Vec<u64>>> = vec![vec![vec![1, 2, 3]; 2]; 2];
        let rounds = split_rounds(buckets.clone(), None);
        assert_eq!(rounds.len(), 1);
        assert_eq!(rounds[0], buckets);
        // Large cap also yields one round.
        let rounds = split_rounds(buckets.clone(), Some(1 << 20));
        assert_eq!(rounds.len(), 1);
    }

    #[test]
    fn block_ranges_partition_exactly() {
        for total in [0usize, 1, 7, 100, 1000, 12345] {
            for nblocks in [1u32, 2, 3, 7, 640] {
                let mut covered = 0;
                let mut prev_hi = 0;
                for b in 0..nblocks {
                    let (lo, hi) = block_range(total, nblocks, b);
                    assert_eq!(lo, prev_hi, "ranges must be contiguous");
                    assert!(hi >= lo);
                    covered += hi - lo;
                    prev_hi = hi;
                }
                assert_eq!(covered, total, "total {total} nblocks {nblocks}");
                assert_eq!(prev_hi, total);
            }
        }
    }

    #[test]
    fn block_ranges_are_balanced() {
        let nblocks = 7u32;
        let total = 100;
        let sizes: Vec<usize> = (0..nblocks)
            .map(|b| {
                let (lo, hi) = block_range(total, nblocks, b);
                hi - lo
            })
            .collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max - min <= 1, "sizes {sizes:?}");
    }

    #[test]
    fn chunked_launch_caps_grid() {
        assert_eq!(chunked_launch(10_000_000).grid_blocks, MAX_GRID_BLOCKS);
        assert_eq!(chunked_launch(10_000_000).block_threads, BLOCK_THREADS);
        assert_eq!(chunked_launch(0).grid_blocks, 1);
    }

    #[test]
    fn chunked_launch_shrinks_blocks_for_small_batches() {
        // 2,000 items: 256-thread blocks would yield only 8 blocks; the
        // adaptive sizing drops to 32 threads to spread across SMs.
        let c = chunked_launch(2_000);
        assert_eq!(c.block_threads, 32);
        assert_eq!(c.grid_blocks, 63);
        // Large batches keep full blocks.
        assert_eq!(chunked_launch(100_000).block_threads, 256);
        // The grid is always non-empty and within device limits.
        for n in [1usize, 31, 32, 1000, 20479, 20480, 1_000_000] {
            let c = chunked_launch(n);
            assert!(c.grid_blocks >= 1 && c.grid_blocks <= MAX_GRID_BLOCKS);
            assert!(c.block_threads >= 32 && c.block_threads <= BLOCK_THREADS);
        }
    }

    #[test]
    fn device_count_kernel_counts_exactly() {
        let device = Device::v100();
        let cfg = CountingConfig::default();
        // 100 distinct keys with multiplicities 1..=100.
        let mut kmers = Vec::new();
        for key in 0..100u64 {
            for _ in 0..=key {
                kmers.push(key);
            }
        }
        let out = count_kmers_on_device(&device, &cfg, &kmers, 1000.0);
        assert_eq!(out.entries.len(), 100);
        let total: u64 = out.entries.iter().map(|&(_, c)| c as u64).sum();
        assert_eq!(total, kmers.len() as u64);
        for &(k, c) in &out.entries {
            assert_eq!(c as u64, k + 1, "key {k}");
        }
        assert!(out.probe_steps >= kmers.len() as u64);
        assert!(out.report.time > SimTime::ZERO);
        // The probe histogram covers every insert and sums to the probe
        // total; the load factor reflects 100 distinct keys in the table.
        assert_eq!(out.probe_hist.count(), kmers.len() as u64);
        assert_eq!(out.probe_hist.sum(), out.probe_steps);
        assert!(out.probe_hist.min() >= 1);
        assert!(out.load_factor > 0.0 && out.load_factor <= 1.0);
    }

    #[test]
    fn empty_input_yields_empty_table() {
        let device = Device::v100();
        let cfg = CountingConfig::default();
        let out = count_kmers_on_device::<u64>(&device, &cfg, &[], 1000.0);
        assert!(out.entries.is_empty());
    }

    #[test]
    fn wide_device_kernel_counts_exactly() {
        let device = Device::v100();
        let cfg = CountingConfig::default();
        // Keys above the u64 range so the wide table path is exercised.
        let mut kmers: Vec<u128> = Vec::new();
        for key in 0..50u128 {
            for _ in 0..=key % 5 {
                kmers.push((key << 64) | key);
            }
        }
        let out = count_kmers_on_device(&device, &cfg, &kmers, 1000.0);
        assert_eq!(out.entries.len(), 50);
        let total: u64 = out.entries.iter().map(|&(_, c)| c as u64).sum();
        assert_eq!(total, kmers.len() as u64);
        assert!(out.report.time > SimTime::ZERO);
        assert_eq!(out.probe_hist.count(), kmers.len() as u64);
    }
}
