//! Shared machinery of the two GPU pipelines (§III-B / §IV-B).

use crate::config::{CountingConfig, RunConfig};
use crate::pipeline::driver::{CounterOom, PressureStats};
use crate::table::{table_capacity, DeviceCountTable, InsertOutcome};
use crate::width::PackedKmer;
use dedukt_dna::packed::ConcatReads;
use dedukt_dna::ReadSet;
use dedukt_gpu::transfer::staging_time;
use dedukt_gpu::{Device, KernelReport, LaunchConfig, MemPlan, OomError};
use dedukt_sim::{DataVolume, Histogram, SimTime};

/// Thread-block size used by all pipeline kernels.
pub const BLOCK_THREADS: u32 = 256;

/// Upper bound on grid size: blocks process chunks grid-stride style, as
/// the paper's kernels do ("the copied array is evenly partitioned into
/// smaller chunks of bases and is assigned to different thread blocks").
pub const MAX_GRID_BLOCKS: u32 = 640; // 80 SMs × 8 resident blocks

/// A launch covering `work_items` with chunked blocks.
///
/// Prefers 256-thread blocks; for small batches it steps the block size
/// down (to a floor of 32) so the grid still spreads across the SMs —
/// the same tuning a production kernel applies to avoid running a tiny
/// grid on a mostly idle device.
pub fn chunked_launch(work_items: usize) -> LaunchConfig {
    let work = work_items.max(1);
    let mut block_threads = BLOCK_THREADS;
    while block_threads > 32 && work.div_ceil(block_threads as usize) < 80 {
        block_threads /= 2;
    }
    let blocks = work
        .div_ceil(block_threads as usize)
        .clamp(1, MAX_GRID_BLOCKS as usize) as u32;
    LaunchConfig {
        grid_blocks: blocks,
        block_threads,
    }
}

/// The contiguous sub-range of `total` items assigned to block `b` of
/// `nblocks` (balanced to within one item).
pub fn block_range(total: usize, nblocks: u32, b: u32) -> (usize, usize) {
    let nb = nblocks as usize;
    let bi = b as usize;
    let base = total / nb;
    let rem = total % nb;
    let lo = bi * base + bi.min(rem);
    let hi = lo + base + usize::from(bi < rem);
    (lo, hi)
}

/// Concatenates a rank's reads into the packed device layout (§III-B1).
pub fn concat_rank_reads(part: &ReadSet, cfg: &CountingConfig) -> ConcatReads {
    ConcatReads::from_reads(part.reads.iter().map(|r| &r.codes[..]), cfg.encoding)
}

/// Host→device volume of the concatenated read batch: packed bases plus
/// the read-boundary offsets.
pub fn reads_h2d_volume(concat: &ConcatReads) -> DataVolume {
    DataVolume::from_bytes((concat.bases.packed_bytes() + concat.ends.len() * 8) as u64)
}

/// Staging cost for moving `volume` between host and device, zero when
/// GPUDirect is enabled (§III-B2).
pub fn staging(device: &Device, rc: &RunConfig, volume: DataVolume) -> SimTime {
    if rc.gpu_direct {
        SimTime::ZERO
    } else {
        staging_time(device.config(), volume)
    }
}

/// Outcome of the shared counting kernel, at either key width.
pub struct CountOutcome<K: PackedKmer = u64> {
    /// Kernel launch report (simulated time, tallies).
    pub report: KernelReport,
    /// `(kmer, count)` entries of the rank's table.
    pub entries: Vec<(K, u32)>,
    /// Total probe steps across all inserts.
    pub probe_steps: u64,
    /// Per-insert probe-step distribution (1 = direct hit), accumulated
    /// block-locally and merged once per block.
    pub probe_hist: Histogram,
    /// Fraction of table slots occupied after counting
    /// (distinct / capacity).
    pub load_factor: f64,
}

/// The GPU counting kernel (§III-B3): one thread per received k-mer,
/// inserting into the device open-addressing table with CAS + atomicAdd.
///
/// `cycles_per_kmer` carries the calibrated effective cost (plus the
/// supermer pipelines' extraction surcharge). Errs when the device
/// cannot hold the table at all; the table is sized exactly for the
/// batch, so a successful allocation never overflows.
pub fn count_kmers_on_device<K: PackedKmer>(
    device: &Device,
    cfg: &CountingConfig,
    kmers: &[K],
    cycles_per_kmer: f64,
) -> Result<CountOutcome<K>, OomError> {
    let capacity = table_capacity(cfg, kmers.len());
    let table = DeviceCountTable::<K>::new(device, capacity, cfg.hash_seed ^ 0xC0C0)?;
    let (report, probe_steps, probe_hist, overflow) =
        count_round_on_device(device, &table, kmers, cycles_per_kmer);
    assert!(
        overflow.is_empty(),
        "a table sized for the exact batch cannot overflow"
    );
    let entries = table.to_host();
    let load_factor = entries.len() as f64 / table.capacity() as f64;
    Ok(CountOutcome {
        report,
        entries,
        probe_steps,
        probe_hist,
        load_factor,
    })
}

/// One launch of the counting kernel inserting `kmers` into an existing
/// device `table` — the round-granular form [`count_kmers_on_device`] and
/// the staged driver's per-round counting are built on. Returns the
/// launch report, total probe steps, the per-insert probe histogram, and
/// the k-mers the table could not take because every slot was occupied
/// (always empty for a table sized for its full load; non-empty only
/// under memory pressure, when the caller must regrow or spill).
///
/// Bounced k-mers still pay their full probe circuit in the cost tally,
/// but are *not* observed in the histogram — exactly one observation per
/// successfully counted instance, whenever it finally lands.
pub fn count_round_on_device<K: PackedKmer>(
    device: &Device,
    table: &DeviceCountTable<K>,
    kmers: &[K],
    cycles_per_kmer: f64,
) -> (KernelReport, u64, Histogram, Vec<K>) {
    let launch = chunked_launch(kmers.len().max(1));
    let (report, block_stats) = device.launch_map("count_kmers", launch, |b| {
        let (lo, hi) = block_range(kmers.len(), b.cfg.grid_blocks, b.block);
        let mut probes = 0u64;
        let mut fresh = 0u64;
        let mut hist = Histogram::new();
        let mut overflow = Vec::new();
        for &k in &kmers[lo..hi] {
            match table.insert(k) {
                InsertOutcome::Inserted(r) => {
                    probes += r.steps as u64;
                    fresh += u64::from(r.new);
                    hist.observe(r.steps as u64);
                }
                InsertOutcome::Full { steps } => {
                    probes += steps as u64;
                    overflow.push(k);
                }
            }
        }
        let n = (hi - lo) as u64;
        // Effective compute (calibrated) + real memory/atomic traffic:
        // each probe touches a key-width-sized key (8 B narrow, 16 B
        // wide) + the hit updates a 4B count, all effectively random;
        // CAS + atomicAdd per insert, where repeat occurrences of hot
        // k-mers collide on their slot.
        b.instr((n as f64 * cycles_per_kmer) as u64);
        b.gmem_coalesced(n * K::KMER_WIRE_BYTES); // streaming the received k-mers
        b.gmem_random(probes * K::KMER_WIRE_BYTES + n * 4);
        b.atomic(2 * n, n - fresh);
        (probes, hist, overflow)
    });
    let mut probe_hist = Histogram::new();
    let mut probe_steps = 0u64;
    let mut overflow = Vec::new();
    for (p, h, o) in block_stats {
        probe_steps += p;
        probe_hist.merge(&h);
        overflow.extend(o);
    }
    (report, probe_steps, probe_hist, overflow)
}

/// Scales a rank's expected-instance estimate by the combined safety ×
/// underestimate factor. A factor of exactly 1.0 skips the float round
/// trip entirely so default runs size tables byte-identically to
/// earlier releases.
fn scaled_estimate(expected: u64, factor: f64) -> usize {
    if factor == 1.0 {
        expected as usize
    } else {
        ((expected as f64) * factor).ceil().max(1.0) as usize
    }
}

/// Per-rank device-side counting state threaded through the staged
/// driver's exchange rounds: one device, one count table sized from the
/// rank's (possibly scaled-down) load estimate, and one stream recording
/// the round-by-round count kernels (the kernels the overlapped exchange
/// hides behind the wire).
///
/// Under memory pressure — an undersized estimate, a shrunk safety
/// factor, or a tight `--device-hbm` budget — the table can fill. The
/// counter then recovers in two tiers (DESIGN.md §8): grow-and-rehash on
/// the device when the allocation is granted, else park the bounced
/// k-mers on a bounded host spill list merged back at [`finish`]. Both
/// paths preserve exact counts; only when even the spill budget is
/// exhausted does counting fail, cleanly, with a [`CounterOom`].
///
/// [`finish`]: DeviceRoundCounter::finish
pub(crate) struct DeviceRoundCounter<K: PackedKmer = u64> {
    device: Device,
    table: DeviceCountTable<K>,
    stream: dedukt_gpu::Stream,
    probe_hist: Histogram,
    probe_steps: u64,
    instances: u64,
    last_occupancy: f64,
    rank: usize,
    hash_seed: u64,
    mem: Option<MemPlan>,
    spill_limit: u64,
    spill: Vec<K>,
    spilled: u64,
    regrows: u64,
    oom_events: u64,
    grow_attempts: u64,
}

impl<K: PackedKmer> DeviceRoundCounter<K> {
    /// A counter for rank `rank` expecting `expected_instances` inserts
    /// in total — the table is sized once for the full (scaled) load so
    /// splitting the exchange into rounds cannot change probe sequences.
    /// Errs only when even the initial table allocation exceeds the
    /// device budget.
    pub(crate) fn new(
        rc: &RunConfig,
        cfg: &CountingConfig,
        rank: usize,
        expected_instances: u64,
    ) -> Result<Self, CounterOom> {
        let device = dedukt_gpu::Device::new(rc.gpu_device.clone());
        let factor = rc.table_safety * rc.mem.map_or(1.0, |p| p.estimate_factor(rank));
        let capacity = table_capacity(cfg, scaled_estimate(expected_instances, factor));
        let hash_seed = cfg.hash_seed ^ 0xC0C0;
        let table =
            DeviceCountTable::<K>::new(&device, capacity, hash_seed).map_err(|e| CounterOom {
                detail: format!("initial count table allocation failed: {e}"),
                high_water_bytes: device.peak_bytes(),
            })?;
        Ok(DeviceRoundCounter {
            device,
            table,
            stream: dedukt_gpu::Stream::new(),
            probe_hist: Histogram::new(),
            probe_steps: 0,
            instances: 0,
            last_occupancy: 0.0,
            rank,
            hash_seed,
            mem: rc.mem,
            spill_limit: rc.mem.map_or(u64::MAX, |p| p.spec().spill_limit),
            spill: Vec::new(),
            spilled: 0,
            regrows: 0,
            oom_events: 0,
            grow_attempts: 0,
        })
    }

    /// Inserts one round's k-mers; returns the round's simulated device
    /// time (count kernel plus any regrow kernels and spill staging).
    /// Errs only when the table filled, no grow allocation was granted,
    /// and the host spill budget is exhausted.
    pub(crate) fn count(
        &mut self,
        kmers: &[K],
        cycles_per_kmer: f64,
    ) -> Result<SimTime, CounterOom> {
        self.instances += kmers.len() as u64;
        let mut dt = SimTime::ZERO;
        let mut pending = self.launch_count(kmers, cycles_per_kmer, &mut dt);
        // Two-tier recovery: regrow on device while allocations are
        // granted, then spill to the host. Each regrow doubles capacity,
        // so the loop strictly shrinks `pending` or exits via spill.
        while !pending.is_empty() {
            if self.try_regrow(cycles_per_kmer, &mut dt) {
                pending = self.launch_count(&pending, cycles_per_kmer, &mut dt);
            } else {
                self.spill_pending(pending, &mut dt)?;
                pending = Vec::new();
            }
        }
        Ok(dt)
    }

    /// One counting launch into the current table; merges the probe
    /// telemetry and returns the bounced k-mers.
    fn launch_count(&mut self, kmers: &[K], cycles_per_kmer: f64, dt: &mut SimTime) -> Vec<K> {
        let (report, probes, hist, overflow) =
            count_round_on_device(&self.device, &self.table, kmers, cycles_per_kmer);
        self.probe_steps += probes;
        self.probe_hist.merge(&hist);
        self.last_occupancy = report.occupancy;
        *dt += report.time;
        self.stream.record_kernel(report);
        overflow
    }

    /// Attempts a grow-and-rehash to a 2×-capacity table. Returns false
    /// — after recording the OOM event — when the allocation is denied,
    /// either by the injected plan or by the real device budget; the
    /// caller then falls back to spilling.
    fn try_regrow(&mut self, cycles_per_kmer: f64, dt: &mut SimTime) -> bool {
        let attempt = self.grow_attempts;
        self.grow_attempts += 1;
        if self.mem.is_some_and(|p| p.alloc_fails(self.rank, attempt)) {
            self.oom_events += 1;
            return false;
        }
        // The new table is allocated while the old one is still resident
        // — exactly the transient doubling a real CUDA rehash pays.
        let new_table = match DeviceCountTable::<K>::new(
            &self.device,
            self.table.capacity() * 2,
            self.hash_seed,
        ) {
            Ok(t) => t,
            Err(_) => {
                self.oom_events += 1;
                return false;
            }
        };
        // Rehash kernel: migrate every resident (key, accumulated count)
        // with a single probe sequence each. A 2× table always fits the
        // old resident set (distinct ≤ old capacity = new capacity / 2),
        // so `Full` is unreachable here.
        let old = self.table.to_host();
        let launch = chunked_launch(old.len().max(1));
        let (report, _) = self.device.launch_map("regrow_table", launch, |b| {
            let (lo, hi) = block_range(old.len(), b.cfg.grid_blocks, b.block);
            let mut probes = 0u64;
            for &(k, c) in &old[lo..hi] {
                match new_table.insert_counted(k, c) {
                    InsertOutcome::Inserted(r) => probes += r.steps as u64,
                    InsertOutcome::Full { .. } => {
                        unreachable!("a 2x regrow table cannot fill during migration")
                    }
                }
            }
            let n = (hi - lo) as u64;
            // Migration is insert-shaped work: stream the old entries in,
            // probe the new table randomly, CAS + add per entry.
            b.instr((n as f64 * cycles_per_kmer) as u64);
            b.gmem_coalesced(n * (K::KMER_WIRE_BYTES + 4));
            b.gmem_random(probes * K::KMER_WIRE_BYTES + n * 4);
            b.atomic(2 * n, 0);
        });
        *dt += report.time;
        self.stream.record_kernel(report);
        self.table = new_table; // the old table drops, freeing its slots
        self.regrows += 1;
        true
    }

    /// Parks bounced k-mers on the host spill list, charging the
    /// device→host staging of the bounced batch. Errs when the batch
    /// would blow the spill budget — the rank is genuinely out of
    /// memory everywhere.
    fn spill_pending(&mut self, pending: Vec<K>, dt: &mut SimTime) -> Result<(), CounterOom> {
        let n = pending.len() as u64;
        if self.spilled.saturating_add(n) > self.spill_limit {
            return Err(CounterOom {
                detail: format!(
                    "host spill budget exhausted: {} k-mers spilled, {} more bounced, \
                     limit {}",
                    self.spilled, n, self.spill_limit
                ),
                high_water_bytes: self.device.peak_bytes(),
            });
        }
        *dt += staging_time(
            self.device.config(),
            DataVolume::from_bytes(n * K::KMER_WIRE_BYTES),
        );
        self.spilled += n;
        self.spill.extend(pending);
        Ok(())
    }

    /// A non-destructive `(entries, instances)` snapshot of the counts
    /// accumulated so far — the device table merged with any host-spilled
    /// k-mers, exactly the state [`DeviceRoundCounter::finish`] would
    /// report if the run ended now. Powers the driver's
    /// `--checkpoint-rounds` snapshots and graceful rescale departures.
    pub(crate) fn snapshot(&self) -> (Vec<(K, u32)>, u64) {
        let mut entries = self.table.to_host();
        merge_spill(&mut entries, self.spill.clone());
        (entries, self.instances)
    }

    /// This counter's memory-pressure telemetry so far (all zero on an
    /// unconstrained run).
    pub(crate) fn pressure(&self) -> PressureStats {
        PressureStats {
            spilled: self.spilled,
            regrows: self.regrows,
            oom_events: self.oom_events,
            high_water_bytes: self.device.peak_bytes(),
        }
    }

    /// Drains the table into the rank's result — merging any host-spilled
    /// k-mers back in by key, so pressured runs report exactly the counts
    /// an unconstrained run would — and records the counting telemetry
    /// (same series as the single-launch pipelines, plus the pressure
    /// series, which exist only when pressure actually fired).
    pub(crate) fn finish(
        mut self,
        metrics: &Option<std::sync::Arc<dedukt_sim::MetricsRegistry>>,
        rank: usize,
    ) -> crate::pipeline::RankCountResult<K> {
        let mut entries = self.table.to_host();
        // Device residency metrics reflect the table alone, before the
        // spill merge changes the entry list.
        let device_load = entries.len() as f64 / self.table.capacity() as f64;
        merge_spill(&mut entries, std::mem::take(&mut self.spill));
        if let Some(m) = metrics {
            m.counter_add("kmers_counted_total", Some(rank), self.instances);
            m.merge_histogram("count_probe_steps", Some(rank), &self.probe_hist);
            m.gauge_set("count_table_load_factor", Some(rank), device_load);
            m.gauge_set(
                "kernel_occupancy:count_kmers",
                Some(rank),
                self.last_occupancy,
            );
            m.gauge_max(
                "device_peak_bytes",
                Some(rank),
                self.device.peak_bytes() as f64,
            );
            // Pressure series are emitted only when the event happened, so
            // an unconstrained run's metrics schema is byte-identical to
            // earlier releases.
            if self.regrows > 0 {
                m.counter_add("table_regrows_total", Some(rank), self.regrows);
            }
            if self.spilled > 0 {
                m.counter_add("spill_kmers_total", Some(rank), self.spilled);
            }
            if self.oom_events > 0 {
                m.counter_add("device_oom_events_total", Some(rank), self.oom_events);
            }
            if self.regrows + self.spilled + self.oom_events > 0 {
                m.gauge_max(
                    "hbm_high_water_bytes",
                    Some(rank),
                    self.device.peak_bytes() as f64,
                );
            }
        }
        crate::pipeline::RankCountResult {
            entries,
            instances: self.instances,
        }
    }
}

/// Merges host-spilled k-mers back into a device-table snapshot by key:
/// spilled keys that later re-entered the (regrown) table add onto their
/// resident count, unseen keys append in key order.
fn merge_spill<K: PackedKmer>(entries: &mut Vec<(K, u32)>, mut spill: Vec<K>) {
    if spill.is_empty() {
        return;
    }
    spill.sort_unstable();
    // Sorted key → entry-position index over the device snapshot.
    let mut index: Vec<(K, usize)> = entries
        .iter()
        .enumerate()
        .map(|(i, &(k, _))| (k, i))
        .collect();
    index.sort_unstable_by_key(|&(k, _)| k);
    let mut i = 0;
    while i < spill.len() {
        let key = spill[i];
        let mut j = i + 1;
        while j < spill.len() && spill[j] == key {
            j += 1;
        }
        let count = (j - i) as u32;
        match index.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(pos) => entries[index[pos].1].1 += count,
            Err(_) => entries.push((key, count)),
        }
        i = j;
    }
}

/// Splits per-rank outgoing buckets into exchange rounds so that no rank
/// sends more than `limit_bytes` per round (§III-A's memory-bounded
/// operation). Returns one bucket matrix per round; concatenating the
/// rounds restores the input exactly (order preserved per destination).
pub fn split_rounds<T>(
    buckets: Vec<Vec<Vec<T>>>,
    limit_bytes: Option<u64>,
) -> Vec<Vec<Vec<Vec<T>>>> {
    let elem = (std::mem::size_of::<T>() as u64).max(1);
    split_rounds_weighted(buckets, limit_bytes, elem)
}

/// [`split_rounds`] with an explicit per-item wire size in bytes, for
/// items whose in-memory size differs from their serialized form (a
/// supermer moves as 8 payload bytes + 1 length byte, not
/// `size_of::<(u64, u8)>()`). The round count is clamped to the largest
/// per-destination payload so caps smaller than one item still make
/// progress (each round then carries at least one item per payload).
pub fn split_rounds_weighted<T>(
    buckets: Vec<Vec<Vec<T>>>,
    limit_bytes: Option<u64>,
    item_bytes: u64,
) -> Vec<Vec<Vec<Vec<T>>>> {
    assert!(item_bytes > 0, "item wire size must be positive");
    let nrounds = match limit_bytes {
        None => 1,
        Some(cap) => {
            assert!(cap > 0, "round limit must be positive");
            let max_out = buckets
                .iter()
                .map(|row| row.iter().map(|v| v.len() as u64 * item_bytes).sum::<u64>())
                .max()
                .unwrap_or(0);
            let max_items = buckets
                .iter()
                .flat_map(|row| row.iter().map(|v| v.len() as u64))
                .max()
                .unwrap_or(0);
            max_out.div_ceil(cap).clamp(1, max_items.max(1)) as usize
        }
    };
    if nrounds == 1 {
        return vec![buckets];
    }
    let nranks = buckets.len();
    let mut rounds: Vec<Vec<Vec<Vec<T>>>> = (0..nrounds)
        .map(|_| (0..nranks).map(|_| Vec::with_capacity(nranks)).collect())
        .collect();
    for (src, row) in buckets.into_iter().enumerate() {
        for payload in row {
            // Cut this payload into `nrounds` near-equal chunks.
            let len = payload.len();
            let mut iter = payload.into_iter();
            for (r, round) in rounds.iter_mut().enumerate() {
                let lo = r * len / nrounds;
                let hi = (r + 1) * len / nrounds;
                round[src].push(iter.by_ref().take(hi - lo).collect());
            }
        }
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_rounds_roundtrip_and_cap() {
        let nranks = 3;
        let buckets: Vec<Vec<Vec<u64>>> = (0..nranks)
            .map(|s| {
                (0..nranks)
                    .map(|d| (0..(s * 10 + d * 3)).map(|i| i as u64).collect())
                    .collect()
            })
            .collect();
        let original = buckets.clone();
        // Cap at 64 bytes per rank per round (8 u64s).
        let rounds = split_rounds(buckets, Some(64));
        assert!(rounds.len() > 1);
        // Per-round cap holds for every source rank.
        for round in &rounds {
            for row in round {
                let bytes: u64 = row.iter().map(|v| v.len() as u64 * 8).sum();
                assert!(bytes <= 64 + 8 * nranks as u64, "round bytes {bytes}");
            }
        }
        // Concatenating rounds restores the original, in order.
        for src in 0..nranks {
            for dst in 0..nranks {
                let rebuilt: Vec<u64> = rounds
                    .iter()
                    .flat_map(|round| round[src][dst].iter().copied())
                    .collect();
                assert_eq!(rebuilt, original[src][dst]);
            }
        }
    }

    #[test]
    fn split_rounds_single_round_when_unlimited() {
        let buckets: Vec<Vec<Vec<u64>>> = vec![vec![vec![1, 2, 3]; 2]; 2];
        let rounds = split_rounds(buckets.clone(), None);
        assert_eq!(rounds.len(), 1);
        assert_eq!(rounds[0], buckets);
        // Large cap also yields one round.
        let rounds = split_rounds(buckets.clone(), Some(1 << 20));
        assert_eq!(rounds.len(), 1);
    }

    #[test]
    fn block_ranges_partition_exactly() {
        for total in [0usize, 1, 7, 100, 1000, 12345] {
            for nblocks in [1u32, 2, 3, 7, 640] {
                let mut covered = 0;
                let mut prev_hi = 0;
                for b in 0..nblocks {
                    let (lo, hi) = block_range(total, nblocks, b);
                    assert_eq!(lo, prev_hi, "ranges must be contiguous");
                    assert!(hi >= lo);
                    covered += hi - lo;
                    prev_hi = hi;
                }
                assert_eq!(covered, total, "total {total} nblocks {nblocks}");
                assert_eq!(prev_hi, total);
            }
        }
    }

    #[test]
    fn block_ranges_are_balanced() {
        let nblocks = 7u32;
        let total = 100;
        let sizes: Vec<usize> = (0..nblocks)
            .map(|b| {
                let (lo, hi) = block_range(total, nblocks, b);
                hi - lo
            })
            .collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max - min <= 1, "sizes {sizes:?}");
    }

    #[test]
    fn chunked_launch_caps_grid() {
        assert_eq!(chunked_launch(10_000_000).grid_blocks, MAX_GRID_BLOCKS);
        assert_eq!(chunked_launch(10_000_000).block_threads, BLOCK_THREADS);
        assert_eq!(chunked_launch(0).grid_blocks, 1);
    }

    #[test]
    fn chunked_launch_shrinks_blocks_for_small_batches() {
        // 2,000 items: 256-thread blocks would yield only 8 blocks; the
        // adaptive sizing drops to 32 threads to spread across SMs.
        let c = chunked_launch(2_000);
        assert_eq!(c.block_threads, 32);
        assert_eq!(c.grid_blocks, 63);
        // Large batches keep full blocks.
        assert_eq!(chunked_launch(100_000).block_threads, 256);
        // The grid is always non-empty and within device limits.
        for n in [1usize, 31, 32, 1000, 20479, 20480, 1_000_000] {
            let c = chunked_launch(n);
            assert!(c.grid_blocks >= 1 && c.grid_blocks <= MAX_GRID_BLOCKS);
            assert!(c.block_threads >= 32 && c.block_threads <= BLOCK_THREADS);
        }
    }

    #[test]
    fn device_count_kernel_counts_exactly() {
        let device = Device::v100();
        let cfg = CountingConfig::default();
        // 100 distinct keys with multiplicities 1..=100.
        let mut kmers = Vec::new();
        for key in 0..100u64 {
            for _ in 0..=key {
                kmers.push(key);
            }
        }
        let out = count_kmers_on_device(&device, &cfg, &kmers, 1000.0).unwrap();
        assert_eq!(out.entries.len(), 100);
        let total: u64 = out.entries.iter().map(|&(_, c)| c as u64).sum();
        assert_eq!(total, kmers.len() as u64);
        for &(k, c) in &out.entries {
            assert_eq!(c as u64, k + 1, "key {k}");
        }
        assert!(out.probe_steps >= kmers.len() as u64);
        assert!(out.report.time > SimTime::ZERO);
        // The probe histogram covers every insert and sums to the probe
        // total; the load factor reflects 100 distinct keys in the table.
        assert_eq!(out.probe_hist.count(), kmers.len() as u64);
        assert_eq!(out.probe_hist.sum(), out.probe_steps);
        assert!(out.probe_hist.min() >= 1);
        assert!(out.load_factor > 0.0 && out.load_factor <= 1.0);
    }

    #[test]
    fn empty_input_yields_empty_table() {
        let device = Device::v100();
        let cfg = CountingConfig::default();
        let out = count_kmers_on_device::<u64>(&device, &cfg, &[], 1000.0).unwrap();
        assert!(out.entries.is_empty());
    }

    #[test]
    fn wide_device_kernel_counts_exactly() {
        let device = Device::v100();
        let cfg = CountingConfig::default();
        // Keys above the u64 range so the wide table path is exercised.
        let mut kmers: Vec<u128> = Vec::new();
        for key in 0..50u128 {
            for _ in 0..=key % 5 {
                kmers.push((key << 64) | key);
            }
        }
        let out = count_kmers_on_device(&device, &cfg, &kmers, 1000.0).unwrap();
        assert_eq!(out.entries.len(), 50);
        let total: u64 = out.entries.iter().map(|&(_, c)| c as u64).sum();
        assert_eq!(total, kmers.len() as u64);
        assert!(out.report.time > SimTime::ZERO);
        assert_eq!(out.probe_hist.count(), kmers.len() as u64);
    }
}
