//! The GPU k-mer counter (§III-B): parse and count on the device,
//! exchange unchanged.
//!
//! Per rank (6 per node, one V100 each):
//!
//! 1. **Parse & process** — concatenate the rank's reads into one packed
//!    base array, copy to the device, and launch the parse kernel: thread
//!    blocks take contiguous base chunks, threads build k-mers with a
//!    rolling window (coalesced reads, §III-B1), hash each k-mer with
//!    MurmurHash3 and append it to the outgoing buffer of its owner rank
//!    (atomic appends in the real kernel, tallied as such).
//! 2. **Exchange** — stage outgoing buffers to the host (unless
//!    GPUDirect), `MPI_Alltoallv`, stage received k-mers back in.
//! 3. **Count** — the device CAS/linear-probing table kernel (§III-B3).
//!
//! The phase skeleton (bucket → exchange rounds → count) lives in the
//! shared [`driver`](crate::pipeline::driver); this module only supplies
//! the device-side stages.

use crate::config::RunConfig;
use crate::partition::key_owner;
use crate::pipeline::driver::{
    exchange_items_round, run_staged, BucketOut, CounterOom, CounterStages, DriverCtx,
    PressureStats, RoundRecv,
};
use crate::pipeline::gpu_common::{
    block_range, chunked_launch, concat_rank_reads, reads_h2d_volume, staging, DeviceRoundCounter,
};
use crate::pipeline::{RankCountResult, RunError, RunReport};
use crate::width::PackedKmer;
use dedukt_dna::kmer::KmerWord;
use dedukt_dna::packed::ConcatReads;
use dedukt_dna::ReadSet;
use dedukt_net::cost::Network;
use dedukt_net::BspWorld;
use dedukt_sim::{DataVolume, SimTime};
use std::marker::PhantomData;

/// Calls `f` with every packed k-mer whose start position lies in
/// `[lo, hi)` of the concatenated base array, honouring read boundaries.
/// Returns the number of k-mers visited and the number of bases read.
/// Width-generic: the rolling window packs into any [`KmerWord`].
pub(crate) fn for_kmers_in_range<W: KmerWord>(
    concat: &ConcatReads,
    lo: usize,
    hi: usize,
    k: usize,
    mut f: impl FnMut(W),
) -> (u64, u64) {
    let mask = W::kmer_mask(k);
    let mut kmers = 0u64;
    let mut bases = 0u64;
    let mut ri = concat.ends.partition_point(|&e| e <= lo);
    while ri < concat.num_reads() {
        let (rs, re) = concat.read_span(ri);
        if rs >= hi {
            break;
        }
        let first = rs.max(lo);
        // A k-mer starting at p stays within its read iff p + k <= re.
        let last_excl = (re + 1).saturating_sub(k).min(hi);
        if first < last_excl {
            let mut w = W::ZERO;
            for p in first..first + k {
                w = w.roll_sym(concat.bases.symbol(p), mask);
            }
            f(w);
            kmers += 1;
            bases += k as u64;
            for p in first + 1..last_excl {
                w = w.roll_sym(concat.bases.symbol(p + k - 1), mask);
                f(w);
                kmers += 1;
                bases += 1;
            }
        }
        ri += 1;
    }
    (kmers, bases)
}

struct GpuKmerStages<K: PackedKmer>(PhantomData<K>);

impl<K: PackedKmer> CounterStages for GpuKmerStages<K> {
    type Key = K;
    type Item = K;
    type Counter = DeviceRoundCounter<K>;

    const ITEM_WIRE_BYTES: u64 = K::KMER_WIRE_BYTES;
    const BUCKET_PHASE: &'static str = "parse";

    fn network(&self, rc: &RunConfig) -> Network {
        Network::summit_gpu(rc.nodes)
    }

    // ── Phase 1: parse & process on the device ────────────────────────
    fn bucket(&self, ctx: &DriverCtx, rank: usize) -> BucketOut<K> {
        let rc = ctx.rc;
        let cfg = &ctx.cfg;
        let nranks = ctx.nranks;
        let tuning = rc.gpu_tuning;
        let device = dedukt_gpu::Device::new(rc.gpu_device.clone());
        let part = &ctx.parts[rank];
        let concat = concat_rank_reads(part, cfg);
        let h2d = staging(&device, rc, reads_h2d_volume(&concat));

        let nbases = concat.num_bases().max(1);
        let launch = chunked_launch(nbases);
        let (report, block_buckets) = device.launch_map("parse_kmers", launch, |b| {
            let (lo, hi) = block_range(nbases.min(concat.num_bases()), b.cfg.grid_blocks, b.block);
            let mut local: Vec<Vec<K>> = vec![Vec::new(); nranks];
            let (nk, nb) = for_kmers_in_range::<K>(&concat, lo, hi, cfg.k, |w| {
                let key = if cfg.canonical {
                    w.canonical_word(cfg.k)
                } else {
                    w
                };
                local[key_owner(&ctx.hasher, key, nranks)].push(key);
            });
            // Calibrated compute plus real traffic: packed reads stream
            // in coalesced; bucket appends scatter key-width words and
            // bump per-destination offsets atomically (warp-aggregated).
            b.instr((nk as f64 * tuning.parse_cycles_per_kmer) as u64);
            b.gmem_coalesced(nb / 4);
            b.gmem_random(nk * K::KMER_WIRE_BYTES);
            let atomics = nk / 32 + 1;
            b.atomic(atomics, atomics / (nranks as u64).max(32));
            local
        });

        // Merge per-block buckets (device-side compaction; charged above).
        let mut out: Vec<Vec<K>> = vec![Vec::new(); nranks];
        for blocks in block_buckets {
            for (dst, v) in blocks.into_iter().enumerate() {
                out[dst].extend(v);
            }
        }
        let out_bytes: u64 = out
            .iter()
            .map(|v| v.len() as u64 * K::KMER_WIRE_BYTES)
            .sum();
        let d2h = staging(&device, rc, DataVolume::from_bytes(out_bytes));
        if let Some(m) = &ctx.metrics {
            m.gauge_set("kernel_occupancy:parse_kmers", Some(rank), report.occupancy);
            m.gauge_max("device_peak_bytes", Some(rank), device.peak_bytes() as f64);
        }
        BucketOut {
            buckets: out,
            compute: h2d + report.time,
            stage_out: d2h,
        }
    }

    fn item_instances(&self, _ctx: &DriverCtx, _item: &K) -> u64 {
        1
    }

    // ── Phase 2: exchange (stage out, Alltoallv rounds, stage in) ─────
    fn exchange_round(
        &self,
        world: &mut BspWorld,
        round: Vec<Vec<Vec<K>>>,
        hidden: Option<&[SimTime]>,
    ) -> RoundRecv<K> {
        exchange_items_round(world, round, hidden)
    }

    fn stage_in(&self, ctx: &DriverCtx, received_items: u64) -> SimTime {
        let device = dedukt_gpu::Device::new(ctx.rc.gpu_device.clone());
        staging(
            &device,
            ctx.rc,
            DataVolume::from_bytes(received_items * K::KMER_WIRE_BYTES),
        )
    }

    // ── Phase 3: count on the device ──────────────────────────────────
    fn make_counter(
        &self,
        ctx: &DriverCtx,
        rank: usize,
        expected_instances: u64,
    ) -> Result<DeviceRoundCounter<K>, CounterOom> {
        DeviceRoundCounter::new(ctx.rc, &ctx.cfg, rank, expected_instances)
    }

    fn count_round(
        &self,
        ctx: &DriverCtx,
        counter: &mut DeviceRoundCounter<K>,
        items: Vec<K>,
    ) -> Result<SimTime, CounterOom> {
        counter.count(&items, ctx.rc.gpu_tuning.count_cycles_per_kmer)
    }

    fn pressure(&self, counter: &DeviceRoundCounter<K>) -> PressureStats {
        counter.pressure()
    }

    fn snapshot_counts(&self, counter: &DeviceRoundCounter<K>) -> (Vec<(K, u32)>, u64) {
        counter.snapshot()
    }

    fn finish(
        &self,
        ctx: &DriverCtx,
        rank: usize,
        counter: DeviceRoundCounter<K>,
    ) -> RankCountResult<K> {
        counter.finish(&ctx.metrics, rank)
    }
}

/// Runs the GPU k-mer counter at the narrow (`u64`) key width.
///
/// Panics on an invalid configuration or an unsurvivable fault plan; use
/// [`crate::pipeline::run`] for the fallible entry point.
pub fn run_gpu_kmer(reads: &ReadSet, rc: &RunConfig) -> RunReport {
    run_gpu_kmer_typed::<u64>(reads, rc).expect("run failed")
}

/// Runs the GPU k-mer counter at an explicit key width.
pub fn run_gpu_kmer_typed<K: PackedKmer>(
    reads: &ReadSet,
    rc: &RunConfig,
) -> Result<RunReport<K>, RunError> {
    run_staged(&mut GpuKmerStages::<K>(PhantomData), reads, rc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;
    use crate::verify::{check_against_reference, reference_total};
    use dedukt_dna::{Dataset, DatasetId, ScalePreset};

    fn tiny(nodes: usize) -> (ReadSet, RunConfig) {
        let reads = Dataset::new(DatasetId::VVulnificus30x, ScalePreset::Tiny).generate();
        let mut rc = RunConfig::new(Mode::GpuKmer, nodes);
        rc.collect_tables = true;
        (reads, rc)
    }

    #[test]
    fn kmer_iteration_respects_read_boundaries() {
        use dedukt_dna::base::Base;
        use dedukt_dna::Encoding;
        let r1: Vec<u8> = b"ACGTACG"
            .iter()
            .map(|&c| Base::from_ascii(c).unwrap().code())
            .collect();
        let r2: Vec<u8> = b"GGTT"
            .iter()
            .map(|&c| Base::from_ascii(c).unwrap().code())
            .collect();
        let concat = ConcatReads::from_reads([&r1[..], &r2[..]], Encoding::Alphabetical);
        let k = 3;
        let mut seen: Vec<u64> = Vec::new();
        let (nk, _) = for_kmers_in_range(&concat, 0, concat.num_bases(), k, |w| seen.push(w));
        // r1 has 5 k-mers, r2 has 2; none spanning the boundary.
        assert_eq!(nk, 7);
        assert_eq!(seen.len(), 7);
        // Splitting the range must visit exactly the same k-mers.
        for split in 1..concat.num_bases() {
            let mut split_seen: Vec<u64> = Vec::new();
            for_kmers_in_range(&concat, 0, split, k, |w| split_seen.push(w));
            for_kmers_in_range(&concat, split, concat.num_bases(), k, |w| {
                split_seen.push(w)
            });
            assert_eq!(split_seen, seen, "split at {split}");
        }
        // The wide instantiation visits the identical k-mers (values fit
        // narrow words at k=3, so the two widths must agree bit-for-bit).
        let mut wide: Vec<u128> = Vec::new();
        for_kmers_in_range(&concat, 0, concat.num_bases(), k, |w| wide.push(w));
        assert_eq!(wide, seen.iter().map(|&w| w as u128).collect::<Vec<_>>());
    }

    #[test]
    fn counts_match_oracle() {
        let (reads, rc) = tiny(1);
        let report = run_gpu_kmer(&reads, &rc);
        assert_eq!(report.total_kmers, reference_total(&reads, rc.counting.k));
        check_against_reference(&reads, &rc.counting, report.tables.as_ref().unwrap()).unwrap();
    }

    #[test]
    fn gpu_and_cpu_agree_on_counts() {
        let (reads, rc) = tiny(2);
        let gpu = run_gpu_kmer(&reads, &rc);
        let mut rc_cpu = rc.clone();
        rc_cpu.mode = Mode::CpuBaseline;
        let cpu = crate::pipeline::cpu::run_cpu(&reads, &rc_cpu);
        assert_eq!(gpu.total_kmers, cpu.total_kmers);
        assert_eq!(gpu.distinct_kmers, cpu.distinct_kmers);
    }

    #[test]
    fn gpu_compute_is_much_faster_than_cpu_compute() {
        // The paper's headline (Fig. 3): GPU parse+count is orders of
        // magnitude faster than the CPU baseline on the same node count.
        let (reads, rc) = tiny(1);
        let gpu = run_gpu_kmer(&reads, &rc);
        let mut rc_cpu = rc.clone();
        rc_cpu.mode = Mode::CpuBaseline;
        let cpu = crate::pipeline::cpu::run_cpu(&reads, &rc_cpu);
        let cpu_compute = cpu.phases.parse + cpu.phases.count;
        let gpu_compute = gpu.phases.parse + gpu.phases.count;
        let ratio = cpu_compute / gpu_compute;
        assert!(ratio > 20.0, "GPU compute speedup too small: {ratio}");
    }

    #[test]
    fn gpu_direct_reduces_exchange_time() {
        let (reads, mut rc) = tiny(1);
        let staged = run_gpu_kmer(&reads, &rc);
        rc.gpu_direct = true;
        let direct = run_gpu_kmer(&reads, &rc);
        assert!(direct.phases.exchange < staged.phases.exchange);
        // Functional results identical.
        assert_eq!(direct.total_kmers, staged.total_kmers);
        assert_eq!(direct.distinct_kmers, staged.distinct_kmers);
    }

    #[test]
    fn wire_bytes_are_eight_per_kmer() {
        let (reads, rc) = tiny(1);
        let report = run_gpu_kmer(&reads, &rc);
        assert_eq!(report.exchange.bytes, report.exchange.units * 8);
        assert_eq!(report.exchange.units, report.total_kmers);
    }
}
