//! The GPU k-mer counter (§III-B): parse and count on the device,
//! exchange unchanged.
//!
//! Per rank (6 per node, one V100 each):
//!
//! 1. **Parse & process** — concatenate the rank's reads into one packed
//!    base array, copy to the device, and launch the parse kernel: thread
//!    blocks take contiguous base chunks, threads build k-mers with a
//!    rolling window (coalesced reads, §III-B1), hash each k-mer with
//!    MurmurHash3 and append it to the outgoing buffer of its owner rank
//!    (atomic appends in the real kernel, tallied as such).
//! 2. **Exchange** — stage outgoing buffers to the host (unless
//!    GPUDirect), `MPI_Alltoallv`, stage received k-mers back in.
//! 3. **Count** — the device CAS/linear-probing table kernel (§III-B3).

use crate::config::RunConfig;
use crate::partition::kmer_owner;
use crate::pipeline::gpu_common::{
    block_range, chunked_launch, concat_rank_reads, count_kmers_on_device, reads_h2d_volume,
    split_rounds, staging,
};
use crate::pipeline::{assemble_counts, RankCountResult, RunReport};
use crate::stats::{ExchangeSummary, PhaseBreakdown};
use dedukt_dna::kmer::Kmer;
use dedukt_dna::packed::ConcatReads;
use dedukt_dna::ReadSet;
use dedukt_hash::Murmur3x64;
use dedukt_net::cost::Network;
use dedukt_net::BspWorld;
use dedukt_sim::{DataVolume, MetricsRegistry, SimTime};
use std::sync::Arc;

/// Calls `f` with every packed k-mer whose start position lies in
/// `[lo, hi)` of the concatenated base array, honouring read boundaries.
/// Returns the number of k-mers visited and the number of bases read.
pub(crate) fn for_kmers_in_range(
    concat: &ConcatReads,
    lo: usize,
    hi: usize,
    k: usize,
    mut f: impl FnMut(u64),
) -> (u64, u64) {
    let mask = Kmer::mask(k);
    let mut kmers = 0u64;
    let mut bases = 0u64;
    let mut ri = concat.ends.partition_point(|&e| e <= lo);
    while ri < concat.num_reads() {
        let (rs, re) = concat.read_span(ri);
        if rs >= hi {
            break;
        }
        let first = rs.max(lo);
        // A k-mer starting at p stays within its read iff p + k <= re.
        let last_excl = (re + 1).saturating_sub(k).min(hi);
        if first < last_excl {
            let mut w = concat.bases.kmer_word(first, k);
            f(w);
            kmers += 1;
            bases += k as u64;
            for p in first + 1..last_excl {
                let sym = concat.bases.symbol(p + k - 1) as u64;
                w = ((w << 2) | sym) & mask;
                f(w);
                kmers += 1;
                bases += 1;
            }
        }
        ri += 1;
    }
    (kmers, bases)
}

/// Runs the GPU k-mer counter.
pub fn run_gpu_kmer(reads: &ReadSet, rc: &RunConfig) -> RunReport {
    let cfg = rc.counting;
    let nranks = rc.nranks();
    let mut net = Network::summit_gpu(rc.nodes);
    net.params.algo = rc.exchange_algo;
    let mut world = BspWorld::new(net);
    assert_eq!(world.nranks(), nranks);
    let metrics = rc.collect_metrics.then(|| Arc::new(MetricsRegistry::new()));
    if let Some(m) = &metrics {
        world.enable_metrics(Arc::clone(m));
    }
    let parts = reads.partition_by_bases(nranks);
    let hasher = Murmur3x64::new(cfg.hash_seed);
    let tuning = rc.gpu_tuning;

    // ── Phase 1: parse & process on the device ─────────────────────────
    let (parse_out, parse_time) = world.compute_step_named("parse", |rank| {
        let device = dedukt_gpu::Device::new(rc.gpu_device.clone());
        let part = &parts[rank];
        let concat = concat_rank_reads(part, &cfg);
        let h2d = staging(&device, rc, reads_h2d_volume(&concat));

        let nbases = concat.num_bases().max(1);
        let launch = chunked_launch(nbases);
        let (report, block_buckets) = device.launch_map("parse_kmers", launch, |b| {
            let (lo, hi) = block_range(nbases.min(concat.num_bases()), b.cfg.grid_blocks, b.block);
            let mut local: Vec<Vec<u64>> = vec![Vec::new(); nranks];
            let (nk, nb) = for_kmers_in_range(&concat, lo, hi, cfg.k, |w| {
                let key = if cfg.canonical {
                    Kmer::from_word(w, cfg.k).canonical().word()
                } else {
                    w
                };
                local[kmer_owner(&hasher, key, nranks)].push(key);
            });
            // Calibrated compute plus real traffic: packed reads stream
            // in coalesced; bucket appends scatter 8-byte words and bump
            // per-destination offsets atomically (warp-aggregated).
            b.instr((nk as f64 * tuning.parse_cycles_per_kmer) as u64);
            b.gmem_coalesced(nb / 4);
            b.gmem_random(nk * 8);
            let atomics = nk / 32 + 1;
            b.atomic(atomics, atomics / (nranks as u64).max(32));
            local
        });

        // Merge per-block buckets (device-side compaction; charged above).
        let mut out: Vec<Vec<u64>> = vec![Vec::new(); nranks];
        for blocks in block_buckets {
            for (dst, v) in blocks.into_iter().enumerate() {
                out[dst].extend(v);
            }
        }
        let out_bytes: u64 = out.iter().map(|v| v.len() as u64 * 8).sum();
        let d2h = staging(&device, rc, DataVolume::from_bytes(out_bytes));
        if let Some(m) = &metrics {
            m.gauge_set("kernel_occupancy:parse_kmers", Some(rank), report.occupancy);
            m.gauge_max("device_peak_bytes", Some(rank), device.peak_bytes() as f64);
        }
        ((out, d2h), h2d + report.time)
    });

    let mut buckets = Vec::with_capacity(nranks);
    let mut d2h_times = Vec::with_capacity(nranks);
    for (b, t) in parse_out {
        buckets.push(b);
        d2h_times.push(t);
    }
    let kmers_sent: u64 = buckets
        .iter()
        .flat_map(|row| row.iter().map(|v| v.len() as u64))
        .sum();

    // ── Phase 2: exchange (stage out, Alltoallv, stage in) ─────────────
    // Memory-bounded runs split the exchange into rounds (§III-A): the
    // per-round payload obeys `round_limit_bytes` and the received rounds
    // are concatenated (order preserved, so results are identical).
    let (_, d2h_step) = world.compute_step_named("stage-out", |rank| ((), d2h_times[rank]));
    let mut recv_flat: Vec<Vec<u64>> = (0..nranks).map(|_| Vec::new()).collect();
    let mut wire_time = SimTime::ZERO;
    for round in split_rounds(buckets, rc.round_limit_bytes) {
        let outcome = world.alltoallv(round);
        wire_time += outcome.times.mean;
        for (dst, per_src) in outcome.recv.into_iter().enumerate() {
            for v in per_src {
                recv_flat[dst].extend(v);
            }
        }
    }
    let (_, h2d_step) = world.compute_step_named("stage-in", |rank| {
        let device = dedukt_gpu::Device::new(rc.gpu_device.clone());
        let bytes = recv_flat[rank].len() as u64 * 8;
        ((), staging(&device, rc, DataVolume::from_bytes(bytes)))
    });
    let exchange_time = d2h_step.mean + wire_time + h2d_step.mean;

    // ── Phase 3: count on the device ───────────────────────────────────
    let (rank_results, count_time) = world.compute_step_named("count", |rank| {
        let device = dedukt_gpu::Device::new(rc.gpu_device.clone());
        let kmers = &recv_flat[rank];
        let out = count_kmers_on_device(&device, &cfg, kmers, tuning.count_cycles_per_kmer);
        if let Some(m) = &metrics {
            m.counter_add("kmers_counted_total", Some(rank), kmers.len() as u64);
            m.merge_histogram("count_probe_steps", Some(rank), &out.probe_hist);
            m.gauge_set("count_table_load_factor", Some(rank), out.load_factor);
            m.gauge_set(
                "kernel_occupancy:count_kmers",
                Some(rank),
                out.report.occupancy,
            );
            m.gauge_max("device_peak_bytes", Some(rank), device.peak_bytes() as f64);
        }
        (
            RankCountResult {
                entries: out.entries,
                instances: kmers.len() as u64,
            },
            out.report.time,
        )
    });

    let makespan = world.elapsed();
    let trace = rc.collect_trace.then(|| world.take_trace());
    let trace_counters = rc.collect_trace.then(|| world.take_trace_counters());
    let stats = world.stats();
    let (load, total, distinct, spectrum, tables) =
        assemble_counts(rank_results, rc.collect_spectrum, rc.collect_tables);
    RunReport {
        mode: rc.mode,
        nodes: rc.nodes,
        nranks,
        phases: PhaseBreakdown {
            parse: parse_time.mean,
            exchange: exchange_time,
            count: count_time.mean,
        },
        makespan,
        exchange: ExchangeSummary {
            units: kmers_sent,
            bytes: stats.total_bytes,
            off_node_bytes: stats.off_node_bytes,
            alltoallv_time: wire_time,
        },
        load,
        total_kmers: total,
        distinct_kmers: distinct,
        spectrum,
        tables,
        trace,
        trace_counters,
        metrics: metrics.map(|m| m.snapshot()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;
    use crate::verify::{check_against_reference, reference_total};
    use dedukt_dna::{Dataset, DatasetId, ScalePreset};

    fn tiny(nodes: usize) -> (ReadSet, RunConfig) {
        let reads = Dataset::new(DatasetId::VVulnificus30x, ScalePreset::Tiny).generate();
        let mut rc = RunConfig::new(Mode::GpuKmer, nodes);
        rc.collect_tables = true;
        (reads, rc)
    }

    #[test]
    fn kmer_iteration_respects_read_boundaries() {
        use dedukt_dna::base::Base;
        use dedukt_dna::Encoding;
        let r1: Vec<u8> = b"ACGTACG"
            .iter()
            .map(|&c| Base::from_ascii(c).unwrap().code())
            .collect();
        let r2: Vec<u8> = b"GGTT"
            .iter()
            .map(|&c| Base::from_ascii(c).unwrap().code())
            .collect();
        let concat = ConcatReads::from_reads([&r1[..], &r2[..]], Encoding::Alphabetical);
        let k = 3;
        let mut seen = Vec::new();
        let (nk, _) = for_kmers_in_range(&concat, 0, concat.num_bases(), k, |w| seen.push(w));
        // r1 has 5 k-mers, r2 has 2; none spanning the boundary.
        assert_eq!(nk, 7);
        assert_eq!(seen.len(), 7);
        // Splitting the range must visit exactly the same k-mers.
        for split in 1..concat.num_bases() {
            let mut split_seen = Vec::new();
            for_kmers_in_range(&concat, 0, split, k, |w| split_seen.push(w));
            for_kmers_in_range(&concat, split, concat.num_bases(), k, |w| {
                split_seen.push(w)
            });
            assert_eq!(split_seen, seen, "split at {split}");
        }
    }

    #[test]
    fn counts_match_oracle() {
        let (reads, rc) = tiny(1);
        let report = run_gpu_kmer(&reads, &rc);
        assert_eq!(report.total_kmers, reference_total(&reads, rc.counting.k));
        check_against_reference(&reads, &rc.counting, report.tables.as_ref().unwrap()).unwrap();
    }

    #[test]
    fn gpu_and_cpu_agree_on_counts() {
        let (reads, rc) = tiny(2);
        let gpu = run_gpu_kmer(&reads, &rc);
        let mut rc_cpu = rc.clone();
        rc_cpu.mode = Mode::CpuBaseline;
        let cpu = crate::pipeline::cpu::run_cpu(&reads, &rc_cpu);
        assert_eq!(gpu.total_kmers, cpu.total_kmers);
        assert_eq!(gpu.distinct_kmers, cpu.distinct_kmers);
    }

    #[test]
    fn gpu_compute_is_much_faster_than_cpu_compute() {
        // The paper's headline (Fig. 3): GPU parse+count is orders of
        // magnitude faster than the CPU baseline on the same node count.
        let (reads, rc) = tiny(1);
        let gpu = run_gpu_kmer(&reads, &rc);
        let mut rc_cpu = rc.clone();
        rc_cpu.mode = Mode::CpuBaseline;
        let cpu = crate::pipeline::cpu::run_cpu(&reads, &rc_cpu);
        let cpu_compute = cpu.phases.parse + cpu.phases.count;
        let gpu_compute = gpu.phases.parse + gpu.phases.count;
        let ratio = cpu_compute / gpu_compute;
        assert!(ratio > 20.0, "GPU compute speedup too small: {ratio}");
    }

    #[test]
    fn gpu_direct_reduces_exchange_time() {
        let (reads, mut rc) = tiny(1);
        let staged = run_gpu_kmer(&reads, &rc);
        rc.gpu_direct = true;
        let direct = run_gpu_kmer(&reads, &rc);
        assert!(direct.phases.exchange < staged.phases.exchange);
        // Functional results identical.
        assert_eq!(direct.total_kmers, staged.total_kmers);
        assert_eq!(direct.distinct_kmers, staged.distinct_kmers);
    }

    #[test]
    fn wire_bytes_are_eight_per_kmer() {
        let (reads, rc) = tiny(1);
        let report = run_gpu_kmer(&reads, &rc);
        assert_eq!(report.exchange.bytes, report.exchange.units * 8);
        assert_eq!(report.exchange.units, report.total_kmers);
    }
}
