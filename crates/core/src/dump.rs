//! Exporting count results.
//!
//! The paper's tool is "a general purpose k-mer counter" (§VII); in
//! practice that means producing artifacts downstream tools ingest:
//! per-k-mer count dumps (KMC's `transform dump` format: `SEQUENCE\tCOUNT`),
//! spectra, and heavy-hitter lists. This module implements those over the
//! pipelines' per-rank tables.

use dedukt_dna::base::Base;
use dedukt_dna::kmer::KmerWord;
use dedukt_dna::spectrum::Spectrum;
use dedukt_dna::Encoding;
use std::io::{self, BufRead, Write};

/// Merges per-rank `(kmer, count)` tables (disjoint key spaces) into one
/// sorted list, at either key width.
pub fn merge_tables<K: Ord + Copy>(per_rank: &[Vec<(K, u32)>]) -> Vec<(K, u32)> {
    let total: usize = per_rank.iter().map(Vec::len).sum();
    let mut all = Vec::with_capacity(total);
    for t in per_rank {
        all.extend_from_slice(t);
    }
    all.sort_unstable_by_key(|&(k, _)| k);
    all
}

/// Renders a packed k-mer word (either width) as an ASCII sequence.
pub fn kmer_ascii<K: KmerWord>(kmer: K, k: usize, encoding: Encoding) -> String {
    kmer.word_codes(k, encoding)
        .into_iter()
        .map(|c| Base::from_code(c).to_ascii() as char)
        .collect()
}

/// Writes a KMC-style dump: one `SEQUENCE\tCOUNT` line per distinct
/// k-mer, sorted by packed word. Width-generic: k up to `K::MAX_K`.
pub fn write_dump<W: Write, K: KmerWord>(
    w: &mut W,
    entries: &[(K, u32)],
    k: usize,
    encoding: Encoding,
) -> io::Result<()> {
    for &(kmer, count) in entries {
        writeln!(w, "{}\t{}", kmer_ascii(kmer, k, encoding), count)?;
    }
    Ok(())
}

/// Parses a KMC-style dump back into `(kmer, count)` pairs (narrow,
/// k ≤ 32).
pub fn read_dump<R: BufRead>(r: R, encoding: Encoding) -> io::Result<Vec<(u64, u32)>> {
    read_dump_w::<R, u64>(r, encoding)
}

/// Width-generic dump parser: sequences up to `K::MAX_K` bases.
pub fn read_dump_w<R: BufRead, K: KmerWord>(r: R, encoding: Encoding) -> io::Result<Vec<(K, u32)>> {
    let mut out = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let bad = || {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed dump line {}", lineno + 1),
            )
        };
        let (seq, count) = line.split_once('\t').ok_or_else(bad)?;
        if seq.is_empty() || seq.len() > K::MAX_K {
            return Err(bad());
        }
        let codes = seq
            .bytes()
            .map(|b| Base::from_ascii(b).map(|base| base.code()))
            .collect::<Option<Vec<u8>>>()
            .ok_or_else(bad)?;
        let count: u32 = count.parse().map_err(|_| bad())?;
        out.push((K::pack_codes(&codes, encoding), count));
    }
    Ok(out)
}

/// The `n` most frequent k-mers, descending by count (ties by word).
pub fn heavy_hitters<K: Ord + Copy>(entries: &[(K, u32)], n: usize) -> Vec<(K, u32)> {
    let mut v = entries.to_vec();
    v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v.truncate(n);
    v
}

/// Builds the spectrum of a merged table.
pub fn spectrum_of<K>(entries: &[(K, u32)]) -> Spectrum {
    Spectrum::from_counts(entries.iter().map(|&(_, c)| c))
}

/// Writes a spectrum as `MULTIPLICITY\tDISTINCT` lines.
pub fn write_spectrum<W: Write>(w: &mut W, spectrum: &Spectrum) -> io::Result<()> {
    for (mult, distinct) in spectrum.iter() {
        writeln!(w, "{mult}\t{distinct}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn sample() -> Vec<(u64, u32)> {
        vec![(3, 5), (0, 1), (9, 2)]
    }

    #[test]
    fn merge_sorts_and_concatenates() {
        let merged = merge_tables(&[vec![(9, 2), (0, 1)], vec![(3, 5)]]);
        assert_eq!(merged, vec![(0, 1), (3, 5), (9, 2)]);
    }

    #[test]
    fn dump_roundtrip() {
        let entries = {
            let mut e = sample();
            e.sort_unstable_by_key(|&(k, _)| k);
            e
        };
        let k = 4;
        let enc = Encoding::PaperRandom;
        let mut buf = Vec::new();
        write_dump(&mut buf, &entries, k, enc).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.lines().all(|l| l.contains('\t')));
        let back = read_dump(BufReader::new(&buf[..]), enc).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn read_dump_rejects_garbage() {
        let enc = Encoding::Alphabetical;
        assert!(read_dump(BufReader::new(&b"ACGT notanumber\n"[..]), enc).is_err());
        assert!(read_dump(BufReader::new(&b"ACGN\t3\n"[..]), enc).is_err());
        assert!(read_dump(BufReader::new(&b"no-tab-here\n"[..]), enc).is_err());
    }

    #[test]
    fn heavy_hitters_order_and_truncate() {
        let hh = heavy_hitters(&sample(), 2);
        assert_eq!(hh, vec![(3, 5), (9, 2)]);
        let all = heavy_hitters(&sample(), 10);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn heavy_hitters_tie_break_deterministic() {
        let hh = heavy_hitters(&[(7, 2), (1, 2), (4, 2)], 3);
        assert_eq!(hh, vec![(1, 2), (4, 2), (7, 2)]);
    }

    #[test]
    fn spectrum_export() {
        let s = spectrum_of(&sample());
        let mut buf = Vec::new();
        write_spectrum(&mut buf, &s).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "1\t1\n2\t1\n5\t1\n");
    }
}
