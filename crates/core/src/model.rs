//! The paper's analytic communication model (§IV-D).
//!
//! Notation (paper's table): `D` total input bases, `L` average read
//! length, `k` k-mer length, `s` average supermer length, `P` processors.
//!
//! * Total k-mers:      `K ≈ D/L × (L − k + 1)`
//! * Total supermers:   `S ≈ K / (s − k + 1)` (each supermer of length `s`
//!   holds `s − k + 1` k-mers)
//! * Per-processor k-mer exchange volume: `(P−1)/P × K/P × bytes(k)`
//! * Communication reduction of supermers over k-mers, in bases:
//!   `k (s − k + 1) / s` — the exact form of the paper's worked example
//!   (k = 8, s = 11 → 2.9×). The paper's §IV-D prose abbreviates this as
//!   "≈ (s − k)×", which reads as a typo; the worked example and Fig. 4
//!   arithmetic match the exact form implemented here.

/// Inputs to the §IV-D model.
#[derive(Clone, Copy, Debug)]
pub struct CommModel {
    /// Total input size in bases (the paper's `D`).
    pub total_bases: f64,
    /// Average read length (`L`).
    pub avg_read_len: f64,
    /// k-mer length (`k`).
    pub k: f64,
    /// Number of processors (`P`).
    pub p: f64,
}

impl CommModel {
    /// Total k-mer multiset size `K ≈ D/L (L − k + 1)`.
    pub fn total_kmers(&self) -> f64 {
        (self.total_bases / self.avg_read_len) * (self.avg_read_len - self.k + 1.0)
    }

    /// Total supermer count for average supermer length `s`:
    /// `K / (s − k + 1)`.
    pub fn total_supermers(&self, s: f64) -> f64 {
        assert!(s >= self.k);
        self.total_kmers() / (s - self.k + 1.0)
    }

    /// Per-processor k-mer exchange volume in *bases*:
    /// `(P−1)/P × K/P × k`.
    pub fn per_proc_kmer_bases(&self) -> f64 {
        let k_total = self.total_kmers();
        (self.p - 1.0) / self.p * (k_total / self.p) * self.k
    }

    /// Per-processor supermer exchange volume in *bases* for average
    /// supermer length `s`: `(P−1)/P × S/P × s`.
    pub fn per_proc_supermer_bases(&self, s: f64) -> f64 {
        let s_total = self.total_supermers(s);
        (self.p - 1.0) / self.p * (s_total / self.p) * s
    }

    /// Exact communication reduction factor of supermers over k-mers in
    /// bases: `k (s − k + 1) / s`.
    pub fn reduction_factor(&self, s: f64) -> f64 {
        self.k * (s - self.k + 1.0) / s
    }
}

/// Observed average supermer length from totals: `s` such that
/// `S = K / (s − k + 1)`.
pub fn avg_supermer_len(total_kmers: f64, total_supermers: f64, k: f64) -> f64 {
    assert!(total_supermers > 0.0);
    total_kmers / total_supermers + k - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_example() -> CommModel {
        // §IV-A worked example: one 19-base read, k = 8.
        CommModel {
            total_bases: 19.0,
            avg_read_len: 19.0,
            k: 8.0,
            p: 2.0,
        }
    }

    #[test]
    fn worked_example_kmer_count() {
        // 19 − 8 + 1 = 12 k-mers.
        assert!((paper_example().total_kmers() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn worked_example_reduction() {
        // s = 11 → reduction k(s−k+1)/s = 8×4/11 ≈ 2.909 — the paper's
        // "2.9×" (§IV-A) and "2.90×" (§IV-D).
        let r = paper_example().reduction_factor(11.0);
        assert!((r - 2.909).abs() < 0.001, "reduction {r}");
    }

    #[test]
    fn worked_example_supermer_count() {
        // 12 k-mers at s = 11 → 12/4 = 3 supermers, matching Fig. 4.
        let s = paper_example().total_supermers(11.0);
        assert!((s - 3.0).abs() < 1e-9);
    }

    #[test]
    fn volume_ratio_equals_reduction_factor() {
        let m = CommModel {
            total_bases: 1e9,
            avg_read_len: 8000.0,
            k: 17.0,
            p: 384.0,
        };
        let s = 28.0;
        let ratio = m.per_proc_kmer_bases() / m.per_proc_supermer_bases(s);
        assert!((ratio - m.reduction_factor(s)).abs() / ratio < 1e-9);
    }

    #[test]
    fn table2_scale_supermer_ratios() {
        // Table II: E. coli has 412M k-mers and 108M supermers at m = 7 →
        // average supermer length ≈ 412/108 + 16 ≈ 19.8 bases.
        let s = avg_supermer_len(412e6, 108e6, 17.0);
        assert!((19.0..21.0).contains(&s), "avg supermer len {s}");
        // And H. sapiens: 167B k-mers, 50B supermers → s ≈ 19.3.
        let s = avg_supermer_len(167e9, 50e9, 17.0);
        assert!((19.0..20.0).contains(&s), "avg supermer len {s}");
    }

    #[test]
    fn more_processors_less_per_proc_volume() {
        let mut m = paper_example();
        m.total_bases = 1e8;
        m.avg_read_len = 1000.0;
        let v96 = {
            m.p = 96.0;
            m.per_proc_kmer_bases()
        };
        let v384 = {
            m.p = 384.0;
            m.per_proc_kmer_bases()
        };
        assert!(v384 < v96 / 3.0);
    }
}
