//! Owner-rank assignment: which rank counts a given k-mer.
//!
//! Correctness requires exactly one property: *every instance of a k-mer
//! maps to the same rank, wherever it is parsed* (§III-A). The k-mer
//! pipelines hash the packed k-mer; the supermer pipelines hash the
//! minimizer, which additionally keeps all k-mers of a supermer together
//! (§IV-A). The balanced assignment is this reproduction's implementation
//! of the paper's future-work item ("devise a better partitioning
//! algorithm that maintains the locality and at the same time partitions
//! data evenly", §VII).

use crate::table::TableKey;
use dedukt_hash::{owner_rank_mult_shift, Murmur3x64};
use std::collections::HashMap;

/// Owner rank of a packed k-mer (Algorithm 1, line 5).
#[inline]
pub fn kmer_owner(hasher: &Murmur3x64, kmer_word: u64, nranks: usize) -> usize {
    owner_rank_mult_shift(hasher.hash_u64(kmer_word), nranks)
}

/// Owner rank of a packed k-mer key at either width — identical to
/// [`kmer_owner`] for `u64` keys, MurmurHash3-128-derived for `u128`.
#[inline]
pub fn key_owner<K: TableKey>(hasher: &Murmur3x64, key: K, nranks: usize) -> usize {
    owner_rank_mult_shift(key.hash_with(hasher), nranks)
}

/// Owner rank of a minimizer word (Algorithm 2, lines 7/15).
#[inline]
pub fn minimizer_owner(hasher: &Murmur3x64, mmer_word: u64, nranks: usize) -> usize {
    owner_rank_mult_shift(hasher.hash_u64(mmer_word), nranks)
}

/// Survivor rank that inherits a dead rank's key range (rendezvous
/// hashing).
///
/// Highest-random-weight over the alive set: every rank mixes
/// `(seed, range, candidate)` and the largest weight wins, so each engine
/// re-derives the same owner for a dead rank's range without any
/// coordination, and a later death only moves the ranges the newly dead
/// rank owned (minimal movement — surviving assignments are unaffected
/// because their argmax is unchanged).
///
/// Panics if no rank is alive; the driver converts that case into a
/// clean `RunError::RanksLost` before re-partitioning.
pub fn surviving_owner(seed: u64, range: usize, alive: &[bool]) -> usize {
    alive
        .iter()
        .enumerate()
        .filter(|(_, &a)| a)
        .max_by_key(|&(r, _)| dedukt_sim::rng::mix_coords(seed, &[range as u64, r as u64]))
        .map(|(r, _)| r)
        .expect("at least one alive rank")
}

/// Frequency-aware minimizer→rank assignment (extension).
///
/// Greedy longest-processing-time: sort minimizer buckets by observed
/// weight (k-mer instances) and assign each to the currently lightest
/// rank. Minimizers outside the sampled set fall back to hashing, so the
/// assignment never loses the determinism that correctness requires —
/// every rank must build the identical table, which is why construction
/// is a pure function of the (sorted) weight map.
#[derive(Clone, Debug)]
pub struct BalancedAssignment {
    map: HashMap<u64, u32>,
    nranks: usize,
    hasher: Murmur3x64,
}

impl BalancedAssignment {
    /// Builds from observed `minimizer → k-mer instance count` weights.
    pub fn build(weights: &HashMap<u64, u64>, nranks: usize, hash_seed: u64) -> BalancedAssignment {
        assert!(nranks > 0);
        // Deterministic order: by weight descending, minimizer ascending.
        let mut buckets: Vec<(u64, u64)> = weights.iter().map(|(&m, &w)| (m, w)).collect();
        buckets.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        let mut rank_load = vec![0u64; nranks];
        let mut map = HashMap::with_capacity(buckets.len());
        for (mmer, w) in buckets {
            // Lightest rank; ties broken by lowest rank id.
            let r = (0..nranks)
                .min_by_key(|&r| (rank_load[r], r))
                .expect("nranks > 0");
            rank_load[r] += w;
            map.insert(mmer, r as u32);
        }
        BalancedAssignment {
            map,
            nranks,
            hasher: Murmur3x64::new(hash_seed),
        }
    }

    /// Owner rank of `mmer` (falls back to hashing for unseen minimizers).
    #[inline]
    pub fn owner(&self, mmer: u64) -> usize {
        match self.map.get(&mmer) {
            Some(&r) => r as usize,
            None => minimizer_owner(&self.hasher, mmer, self.nranks),
        }
    }

    /// Number of explicitly assigned minimizer buckets.
    pub fn assigned_buckets(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owners_in_range_and_deterministic() {
        let h = Murmur3x64::new(42);
        for n in [1usize, 6, 96, 384] {
            for w in [0u64, 1, 12345, u64::MAX / 2] {
                let a = kmer_owner(&h, w, n);
                assert!(a < n);
                assert_eq!(a, kmer_owner(&h, w, n));
                let b = minimizer_owner(&h, w, n);
                assert!(b < n);
            }
        }
    }

    #[test]
    fn balanced_assignment_beats_hashing_on_skew() {
        // One huge bucket plus many small ones; hashing may collide the
        // huge bucket with others, LPT never does.
        let mut weights = HashMap::new();
        weights.insert(0u64, 1_000u64);
        for m in 1..40u64 {
            weights.insert(m, 10);
        }
        let nranks = 4;
        let a = BalancedAssignment::build(&weights, nranks, 1);
        let mut loads = vec![0u64; nranks];
        for (&m, &w) in &weights {
            loads[a.owner(m)] += w;
        }
        let max = *loads.iter().max().unwrap();
        // LPT puts the 1000-bucket alone until others catch up: max load
        // stays 1000 (can't split a bucket), and nothing else joins it
        // until remaining ranks hold more.
        assert_eq!(max, 1_000);
        let second = {
            let mut l = loads.clone();
            l.sort_unstable();
            l[nranks - 2]
        };
        assert!(second <= 390 / 3 + 10, "rest spread evenly: {loads:?}");
    }

    #[test]
    fn balanced_is_deterministic() {
        let mut weights = HashMap::new();
        for m in 0..100u64 {
            weights.insert(m, m % 13 + 1);
        }
        let a = BalancedAssignment::build(&weights, 7, 9);
        let b = BalancedAssignment::build(&weights, 7, 9);
        for m in 0..100u64 {
            assert_eq!(a.owner(m), b.owner(m));
        }
        assert_eq!(a.assigned_buckets(), 100);
    }

    #[test]
    fn surviving_owner_is_deterministic_and_alive() {
        let mut alive = vec![true; 12];
        alive[3] = false;
        alive[7] = false;
        for range in 0..64 {
            let o = surviving_owner(42, range, &alive);
            assert!(alive[o], "owner must be alive");
            assert_eq!(o, surviving_owner(42, range, &alive));
        }
    }

    #[test]
    fn surviving_owner_moves_only_the_dead_ranks_ranges() {
        // Rendezvous hashing: killing one more rank must not move any
        // range whose owner is still alive.
        let mut alive = vec![true; 16];
        alive[2] = false;
        let before: Vec<usize> = (0..128).map(|d| surviving_owner(7, d, &alive)).collect();
        alive[9] = false;
        for (d, &was) in before.iter().enumerate() {
            let now = surviving_owner(7, d, &alive);
            if was != 9 {
                assert_eq!(now, was, "range {d} moved though its owner survived");
            } else {
                assert!(alive[now]);
            }
        }
    }

    #[test]
    fn surviving_owner_spreads_ranges() {
        // HRW should spread a dead rank's ranges roughly evenly; just pin
        // that more than one survivor inherits something.
        let mut alive = vec![true; 8];
        alive[0] = false;
        let owners: std::collections::HashSet<usize> =
            (0..256).map(|d| surviving_owner(1, d, &alive)).collect();
        assert!(owners.len() > 4, "HRW collapsed onto {owners:?}");
    }

    #[test]
    #[should_panic(expected = "at least one alive rank")]
    fn surviving_owner_panics_with_no_survivors() {
        surviving_owner(1, 0, &[false, false]);
    }

    #[test]
    fn unseen_minimizers_fall_back_to_hash() {
        let a = BalancedAssignment::build(&HashMap::new(), 5, 3);
        let h = Murmur3x64::new(3);
        for m in 0..50u64 {
            assert_eq!(a.owner(m), minimizer_owner(&h, m, 5));
        }
    }
}
