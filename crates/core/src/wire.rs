//! Wire codec for supermer buckets — KMC 2-style base packing.
//!
//! The supermer exchange normally ships every supermer as a fixed
//! `WORD_BYTES + 1` record (packed word + length byte): 9 B at the u64
//! width, 17 B at u128, regardless of how many bases the supermer
//! actually holds. KMC 2 (PAPERS.md) shows (k,x)-mer payloads compress
//! substantially with a cheap, branch-light codec; this module is our
//! version of that idea, applied per minimizer bucket behind
//! `--wire-compress`:
//!
//! ```text
//! bucket := varint(n)                      number of supermers
//!           varint(min_len)                shortest supermer, bases   (n > 0)
//!           flag: u8                       1 = nibble-packed deltas
//!           deltas                         len_i − min_len, one per supermer
//!           bases                          ceil(len_i / 4) bytes per supermer
//! ```
//!
//! Lengths are delta-coded against the bucket minimum (supermers of one
//! minimizer bucket cluster tightly around `window + k − 1`); when every
//! delta fits a nibble the deltas pack two per byte (low nibble first).
//! Bases are the raw 2-bit codes of the packed word, MSB-first within
//! each byte, byte-aligned per supermer, trailing bits zero. A typical
//! paper-shape bucket (k = 17, window = 15, ~31-base supermers) costs
//! ~8–9 B of bases + ~0.5 B of length instead of the flat 9 B — and the
//! win grows at the u128 width, where the flat record is 17 B but the
//! bases still cost only `ceil(len/4)` bytes.
//!
//! The codec is exactly invertible ([`decode_bucket`]` ∘ `[`encode_bucket`]
//! ` = id`), has no dependence on `k` or the encoding (it moves raw 2-bit
//! codes), and is deterministic — a corrupted-then-retried bucket
//! re-encodes to the identical byte string, so checksum frames and fault
//! fates compose with it unchanged.

use dedukt_dna::kmer::KmerWord;

/// Appends `v` as a LEB128 varint.
fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint at `*pos`, advancing it; `Err` on a buffer that
/// ends mid-varint or a value overrunning 64 bits.
fn try_read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = buf.get(*pos) else {
            return Err(format!("varint truncated at byte {}", *pos));
        };
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err("varint overran 64 bits".to_string());
        }
    }
}

/// Encodes one minimizer bucket of `(packed word, length)` supermers into
/// its wire form. The empty bucket encodes to the empty byte string, so
/// "nothing to send" stays nothing on the wire (and keeps its
/// always-deliver fault semantics).
pub fn encode_bucket<K: KmerWord>(items: &[(K, u8)]) -> Vec<u8> {
    if items.is_empty() {
        return Vec::new();
    }
    let min_len = items.iter().map(|&(_, l)| l).min().expect("non-empty");
    let deltas: Vec<u8> = items.iter().map(|&(_, l)| l - min_len).collect();
    let nibble = deltas.iter().all(|&d| d < 16);
    let mut out = Vec::with_capacity(2 + items.len() * (K::MAX_K.div_ceil(4) + 1));
    push_varint(&mut out, items.len() as u64);
    push_varint(&mut out, u64::from(min_len));
    out.push(u8::from(nibble));
    if nibble {
        for pair in deltas.chunks(2) {
            // Low nibble first; a trailing odd delta leaves the high
            // nibble zero.
            out.push(pair[0] | (pair.get(1).copied().unwrap_or(0) << 4));
        }
    } else {
        out.extend_from_slice(&deltas);
    }
    for &(word, len) in items {
        let len = len as usize;
        debug_assert!(len >= 1, "zero-length supermer");
        // 2-bit codes, MSB-first within each byte, byte-aligned per
        // supermer so decode never has to carry bits across items.
        let mut i = 0;
        while i < len {
            let mut byte = 0u8;
            for slot in 0..4 {
                if i + slot < len {
                    let code = word.submer_of(len, i + slot, 1) as u8;
                    byte |= code << (6 - 2 * slot);
                }
            }
            out.push(byte);
            i += 4;
        }
    }
    out
}

/// Decodes one wire-form bucket back to `(packed word, length)` supermers.
/// Exact inverse of [`encode_bucket`]; panics on input that codec never
/// produced (the exchange layer's checksum frames catch wire corruption
/// before payloads reach this point). Callers holding bytes of unproven
/// provenance use [`try_decode_bucket`] instead.
pub fn decode_bucket<K: KmerWord>(buf: &[u8]) -> Vec<(K, u8)> {
    try_decode_bucket(buf).expect("bucket payload from the codec")
}

/// Fallible [`decode_bucket`]: every read is bounds-checked and every
/// header field sanity-checked, so a truncated or bit-flipped frame comes
/// back as `Err`, never a panic — and never an out-of-range supermer (a
/// zero or word-overflowing length). A frame that *passes* may still
/// differ from what was sent (a flipped base bit is undetectable without
/// the checksum layer), but it is always a well-formed bucket.
pub fn try_decode_bucket<K: KmerWord>(buf: &[u8]) -> Result<Vec<(K, u8)>, String> {
    if buf.is_empty() {
        return Ok(Vec::new());
    }
    let cap = K::WORD_BYTES * 4;
    let mut pos = 0usize;
    let n64 = try_read_varint(buf, &mut pos)?;
    // An honest non-empty bucket spends ≥ 1 byte per supermer on bases.
    if n64 == 0 || n64 > buf.len() as u64 {
        return Err(format!(
            "implausible supermer count {n64} in a {}-byte bucket",
            buf.len()
        ));
    }
    let n = n64 as usize;
    let min_len = try_read_varint(buf, &mut pos)?;
    if min_len == 0 || min_len > cap as u64 {
        return Err(format!(
            "bucket minimum length {min_len} outside 1..={cap} bases"
        ));
    }
    let flag = *buf
        .get(pos)
        .ok_or_else(|| "bucket truncated before the delta flag".to_string())?;
    pos += 1;
    if flag > 1 {
        return Err(format!("delta flag {flag} is neither 0 nor 1"));
    }
    let mut lens = Vec::with_capacity(n);
    if flag == 1 {
        let packed = n.div_ceil(2);
        let deltas = buf
            .get(pos..pos + packed)
            .ok_or_else(|| "bucket truncated in the nibble deltas".to_string())?;
        for i in 0..n {
            let byte = deltas[i / 2];
            let d = if i % 2 == 0 { byte & 0x0f } else { byte >> 4 };
            lens.push(min_len + u64::from(d));
        }
        pos += packed;
    } else {
        let deltas = buf
            .get(pos..pos + n)
            .ok_or_else(|| "bucket truncated in the raw deltas".to_string())?;
        for &d in deltas {
            lens.push(min_len + u64::from(d));
        }
        pos += n;
    }
    let mut out = Vec::with_capacity(n);
    for &len in &lens {
        if len > cap as u64 {
            return Err(format!("supermer length {len} exceeds {cap} bases"));
        }
        let l = len as usize;
        let mask = K::kmer_mask(l);
        let mut word = K::ZERO;
        let nbytes = l.div_ceil(4);
        let bases = buf
            .get(pos..pos + nbytes)
            .ok_or_else(|| "bucket truncated in the packed bases".to_string())?;
        for (b, &byte) in bases.iter().enumerate() {
            for slot in 0..4 {
                let i = b * 4 + slot;
                if i < l {
                    word = word.roll_sym((byte >> (6 - 2 * slot)) & 0b11, mask);
                }
            }
        }
        pos += nbytes;
        out.push((word, len as u8));
    }
    if pos != buf.len() {
        return Err(format!(
            "trailing bytes after bucket payload ({} of {} consumed)",
            pos,
            buf.len()
        ));
    }
    Ok(out)
}

/// The flat uncompressed wire cost of one supermer at this width —
/// packed word + 1 length byte (9 B for u64 keys, 17 B for u128). The
/// journal's `bytes` field reports this *logical* volume even when the
/// codec shrinks the physical `comp_bytes`.
pub fn flat_wire_bytes<K: KmerWord>() -> u64 {
    K::WORD_BYTES as u64 + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word_of(codes: &[u8]) -> u64 {
        let mask = u64::kmer_mask(codes.len());
        codes.iter().fold(0u64, |w, &c| w.roll_sym(c, mask))
    }

    #[test]
    fn roundtrips_typical_buckets() {
        // Paper-shape supermers: lengths clustered near window + k − 1.
        let items: Vec<(u64, u8)> = (0..40)
            .map(|i| {
                let len = 17 + (i % 15) as u8;
                let codes: Vec<u8> = (0..len).map(|j| ((i + j as usize) % 4) as u8).collect();
                (word_of(&codes), len)
            })
            .collect();
        let wire = encode_bucket(&items);
        assert_eq!(decode_bucket::<u64>(&wire), items);
        // The whole point: smaller than the flat 9 B/supermer record.
        assert!(
            (wire.len() as u64) < items.len() as u64 * flat_wire_bytes::<u64>(),
            "{} bytes vs flat {}",
            wire.len(),
            items.len() as u64 * flat_wire_bytes::<u64>()
        );
    }

    #[test]
    fn roundtrips_at_the_wide_width() {
        let items: Vec<(u128, u8)> = (0..20)
            .map(|i| {
                // Lengths cluster within a nibble of the bucket minimum,
                // as real minimizer buckets do around window + k − 1.
                let len = 41 + (i % 10) as u8;
                let mask = u128::kmer_mask(len as usize);
                let word = (0..len).fold(0u128, |w, j| w.roll_sym(((i as u8 + j) % 4) & 3, mask));
                (word, len)
            })
            .collect();
        let wire = encode_bucket(&items);
        assert_eq!(decode_bucket::<u128>(&wire), items);
        // 17 B flat vs ≤ 16 B packed + sub-byte length: > 1.3× shrink.
        let flat = items.len() as u64 * flat_wire_bytes::<u128>();
        assert!((wire.len() as f64) < flat as f64 / 1.3);
    }

    #[test]
    fn empty_and_singleton_buckets() {
        assert!(encode_bucket::<u64>(&[]).is_empty());
        assert!(decode_bucket::<u64>(&[]).is_empty());
        let one = vec![(word_of(&[3, 0, 1, 2, 3]), 5u8)];
        assert_eq!(decode_bucket::<u64>(&encode_bucket(&one)), one);
    }

    #[test]
    fn wide_length_spread_falls_back_to_raw_deltas() {
        // Deltas ≥ 16 force the raw-byte delta section.
        let items: Vec<(u64, u8)> = vec![
            (word_of(&[1]), 1),
            (word_of(&(0..31).map(|i| i % 4).collect::<Vec<_>>()), 31),
        ];
        let wire = encode_bucket(&items);
        // Layout: varint(n), varint(min_len), flag — flag sits at byte 2.
        assert_eq!(wire[2], 0, "flag byte must select raw deltas");
        assert_eq!(decode_bucket::<u64>(&wire), items);
    }

    #[test]
    fn encoding_is_deterministic() {
        let items: Vec<(u64, u8)> = (0..9)
            .map(|i| (word_of(&[i % 4, (i + 1) % 4, (i + 2) % 4]), 3u8))
            .collect();
        assert_eq!(encode_bucket(&items), encode_bucket(&items));
    }

    #[test]
    fn varints_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(try_read_varint(&buf, &mut pos), Ok(v));
            assert_eq!(pos, buf.len());
        }
        // Truncated mid-continuation and over-long encodings are errors.
        let mut pos = 0;
        assert!(try_read_varint(&[0x80], &mut pos).is_err());
        let mut pos = 0;
        assert!(try_read_varint(&[0x80; 11], &mut pos).is_err());
    }

    #[test]
    fn try_decode_rejects_mangled_frames_without_panicking() {
        let items: Vec<(u64, u8)> = (0..12)
            .map(|i| {
                let len = 17 + (i % 5) as u8;
                let codes: Vec<u8> = (0..len).map(|j| ((i + j as usize) % 4) as u8).collect();
                (word_of(&codes), len)
            })
            .collect();
        let wire = encode_bucket(&items);
        assert_eq!(try_decode_bucket::<u64>(&wire), Ok(items.clone()));
        // Every strict prefix either errors or decodes to something else —
        // a truncation is never silently accepted as the original bucket.
        for cut in 0..wire.len() {
            if let Ok(decoded) = try_decode_bucket::<u64>(&wire[..cut]) {
                assert_ne!(decoded, items, "truncation at {cut} mis-decoded");
            }
        }
    }
}
