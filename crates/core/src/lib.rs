//! Distributed-memory k-mer counting — the paper's contribution.
//!
//! This crate implements the three counters evaluated by Nisa et al.
//! (IPDPS 2021) on top of the workspace substrates:
//!
//! * [`pipeline::cpu`] — the CPU baseline (Algorithm 1, diBELLA's k-mer
//!   analysis): parse k-mers, route by MurmurHash, `MPI_Alltoallv`, count
//!   into per-rank hash tables. 42 ranks per node.
//! * [`pipeline::gpu_kmer`] — the GPU-accelerated k-mer counter (§III):
//!   parse and count offloaded to one simulated V100 per rank (6 per
//!   node), exchange unchanged.
//! * [`pipeline::gpu_supermer`] — the supermer-optimized GPU counter
//!   (§IV): windowed supermer construction on the device, partition by
//!   minimizer hash, exchange supermers plus a length byte each.
//!
//! Supporting modules: [`minimizer`] (three orderings incl. the paper's
//! random-encoding trick), [`supermer`] (sequential reference and windowed
//! builders, Algorithm 2), [`table`] (open-addressing count tables, host
//! and device-atomic variants), [`partition`] (owner-rank assignment incl.
//! the balanced extension), [`model`] (the §IV-D analytic communication
//! model), [`stats`] (phase breakdowns, volumes, Table III imbalance),
//! [`bloom`] (singleton-suppression extension), and [`verify`] (a
//! single-threaded reference counter every pipeline is checked against).

#![warn(missing_docs)]

pub mod analysis;
pub mod bloom;
pub mod config;
pub mod dump;
pub mod minimizer;
pub mod model;
pub mod partition;
pub mod pipeline;
pub mod stats;
pub mod supermer;
pub mod table;
pub mod verify;
pub mod wide;
pub mod width;
pub mod wire;

pub use config::{ConfigError, CountingConfig, CpuCoreModel, GpuTuning, Mode, RunConfig};
pub use minimizer::{minimizer_of_kmer, MinimizerScheme, OrderingKind};
pub use pipeline::{run, run_typed, RunError, RunReport};
pub use stats::PhaseBreakdown;
pub use supermer::Supermer;
pub use table::{DeviceCountTable, HostCountTable};
pub use width::PackedKmer;
