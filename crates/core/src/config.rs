//! Configuration for the counting pipelines.

use dedukt_dna::Encoding;
use dedukt_sim::Rate;

use crate::minimizer::{MinimizerScheme, OrderingKind};

/// Algorithmic parameters shared by all pipelines.
#[derive(Clone, Copy, Debug)]
pub struct CountingConfig {
    /// k-mer length. The paper evaluates k = 17 throughout (§V-A).
    pub k: usize,
    /// Minimizer length (paper: m = 7 or m = 9).
    pub m: usize,
    /// Supermer window in k-mer positions (paper: 15, chosen so a supermer
    /// packs into one 64-bit word for k = 17, §IV-C).
    pub window: usize,
    /// 2-bit base encoding. The paper's supermer counter uses the
    /// randomized encoding A=1, C=0, T=2, G=3 (§IV-A).
    pub encoding: Encoding,
    /// Minimizer ordering.
    pub ordering: OrderingKind,
    /// Count canonical k-mers (strand-neutral). The paper does not
    /// canonicalize; this is a reproduction extension.
    pub canonical: bool,
    /// Seed of the shared MurmurHash3 used for owner-rank routing.
    pub hash_seed: u64,
    /// Count-table load factor used when sizing tables.
    pub table_load_factor: f64,
}

impl Default for CountingConfig {
    /// The paper's defaults: k = 17, m = 7, window = 15, randomized
    /// encoding, no canonicalization.
    fn default() -> Self {
        CountingConfig {
            k: 17,
            m: 7,
            window: 15,
            encoding: Encoding::PaperRandom,
            ordering: OrderingKind::EncodedLexicographic,
            canonical: false,
            hash_seed: 0x6B6D_6572, // "kmer"
            table_load_factor: 0.7,
        }
    }
}

impl CountingConfig {
    /// Validates internal consistency at the narrow (`u64`) key width;
    /// call before running a pipeline. Equivalent to
    /// [`CountingConfig::validate_for_width`]`(31, 32)`.
    pub fn validate(&self) -> Result<(), String> {
        self.validate_for_width(31, 32)
    }

    /// Validates internal consistency against an explicit key width:
    /// `max_counting_k` is the width's largest countable k (31 for `u64`
    /// keys, 63 for `u128` — one below the packing bound so no packed
    /// k-mer collides with the all-ones empty-table sentinel), and
    /// `max_supermer_bases` is the largest supermer one packed word can
    /// hold (32 or 64), bounding `window + k - 1`.
    pub fn validate_for_width(
        &self,
        max_counting_k: usize,
        max_supermer_bases: usize,
    ) -> Result<(), String> {
        if self.k < 2 || self.k > max_counting_k {
            return Err(format!(
                "k = {} outside supported range 2..={max_counting_k}",
                self.k
            ));
        }
        if self.m == 0 || self.m >= self.k {
            return Err(format!(
                "m = {} must satisfy 0 < m < k = {}",
                self.m, self.k
            ));
        }
        if self.m > 31 {
            // Minimizer words are u64 at every key width.
            return Err(format!(
                "m = {} exceeds 31 (minimizers stay 64-bit)",
                self.m
            ));
        }
        if self.window == 0 {
            return Err("window must be positive".into());
        }
        // A supermer spans at most window + k - 1 bases and must pack into
        // a single word (the paper's design constraint, §IV-C).
        if self.window + self.k - 1 > max_supermer_bases {
            return Err(format!(
                "window {} + k {} - 1 = {} bases exceed one {}-base packed word",
                self.window,
                self.k,
                self.window + self.k - 1,
                max_supermer_bases
            ));
        }
        if !(0.1..=0.95).contains(&self.table_load_factor) {
            return Err(format!(
                "load factor {} unreasonable",
                self.table_load_factor
            ));
        }
        Ok(())
    }

    /// The minimizer scheme induced by `encoding` + `ordering`.
    pub fn minimizer_scheme(&self) -> MinimizerScheme {
        MinimizerScheme {
            encoding: self.encoding,
            ordering: self.ordering,
            m: self.m,
        }
    }

    /// Maximum supermer length in bases under the window constraint.
    pub fn max_supermer_bases(&self) -> usize {
        self.window + self.k - 1
    }
}

/// A rejected [`RunConfig`], with the reason.
///
/// Returned by [`RunConfig::validate`] (and hence
/// [`crate::pipeline::run`]) so callers can surface a clean diagnostic
/// instead of a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// The algorithmic parameters are inconsistent
    /// ([`CountingConfig::validate`]'s message).
    Counting(String),
    /// Canonical counting requested together with the supermer pipeline.
    CanonicalSupermer,
    /// `nodes == 0` — there is no machine to simulate.
    ZeroNodes,
    /// `round_limit_bytes == Some(0)` — no round could carry anything.
    ZeroRoundLimit,
    /// The fault plan's rates or retry policy are out of range
    /// ([`dedukt_net::fault::FaultSpec::validate`]'s message).
    Fault(String),
    /// The memory-pressure plan or table safety factor is out of range
    /// ([`dedukt_gpu::MemSpec::validate`]'s message, or a bad
    /// `table_safety`).
    Mem(String),
    /// The rank-failure plan, checkpoint cadence or rescale schedule is
    /// out of range ([`dedukt_net::fault::RankSpec::validate`]'s
    /// message, or a bad `--checkpoint-rounds` / `--rescale`).
    Rank(String),
    /// The out-of-core configuration is inconsistent: a bad storage
    /// fault plan ([`dedukt_store::IoSpec::validate`]'s message), or
    /// `--resume` / `--io-seed` / `--io-spec` / `--min-count` used
    /// without `--two-pass`.
    Io(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Counting(msg) => f.write_str(msg),
            ConfigError::CanonicalSupermer => f.write_str(
                "canonical counting is incompatible with minimizer routing of raw supermers; \
                 use the k-mer pipelines for canonical mode",
            ),
            ConfigError::ZeroNodes => f.write_str("node count must be positive"),
            ConfigError::ZeroRoundLimit => f.write_str("round limit must be positive"),
            ConfigError::Fault(msg) => f.write_str(msg),
            ConfigError::Mem(msg) => f.write_str(msg),
            ConfigError::Rank(msg) => f.write_str(msg),
            ConfigError::Io(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Which of the three counters to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// CPU baseline (Algorithm 1), 42 ranks/node.
    CpuBaseline,
    /// GPU k-mer counter (§III), 6 ranks/node, one V100 each.
    GpuKmer,
    /// GPU supermer counter (§IV), 6 ranks/node.
    GpuSupermer,
}

impl Mode {
    /// Ranks per Summit node for this mode (§V-A).
    pub fn ranks_per_node(self) -> usize {
        match self {
            Mode::CpuBaseline => 42,
            Mode::GpuKmer | Mode::GpuSupermer => 6,
        }
    }

    /// Stable lowercase label used by run journals and bench reports.
    pub fn label(self) -> &'static str {
        match self {
            Mode::CpuBaseline => "cpu",
            Mode::GpuKmer => "gpu-kmer",
            Mode::GpuSupermer => "gpu-supermer",
        }
    }
}

/// Effective per-core throughput of the CPU baseline.
///
/// Calibrated against Fig. 3a: the H. sapiens 54X run on 64 nodes
/// (2,688 Power9 cores) spends roughly 1,200 s parsing and 2,500 s
/// counting 167 G k-mers, i.e. ≈52 K bases/s and ≈25 K k-mers/s per core
/// end-to-end (diBELLA's k-mer analysis includes routing, buffering and
/// copying, hence far below raw memory speed). See EXPERIMENTS.md.
#[derive(Clone, Copy, Debug)]
pub struct CpuCoreModel {
    /// Bases parsed (k-mer extraction + routing) per second per core.
    pub parse_rate: Rate,
    /// k-mers inserted into the host table per second per core.
    pub count_rate: Rate,
}

impl Default for CpuCoreModel {
    fn default() -> Self {
        CpuCoreModel {
            parse_rate: Rate::per_sec(52_000.0),
            count_rate: Rate::per_sec(25_000.0),
        }
    }
}

/// Effective GPU kernel throughput calibration.
///
/// The simulator's roofline model prices the *architectural* work
/// (instructions, memory transactions, atomics), but the paper's measured
/// kernels are latency-bound far below those peaks: Fig. 9 implies
/// ~100-150 M k-mers/s *per V100* across parse + count. The `*_cycles_*`
/// charges below are *effective device-cycle* costs per item — calibrated
/// so a fully occupied V100 reproduces the paper's measured rates — while
/// the *ratios* between pipeline variants implement the paper's measured
/// overheads (+27-33% parse and +23-27% count for supermers, §V-C).
#[derive(Clone, Copy, Debug)]
pub struct GpuTuning {
    /// Effective instruction slots per k-mer in the k-mer parse kernel.
    pub parse_cycles_per_kmer: f64,
    /// Same, for the supermer parse kernel (minimizer scan on top).
    pub supermer_parse_cycles_per_kmer: f64,
    /// Effective instruction slots per k-mer in the count kernel.
    pub count_cycles_per_kmer: f64,
    /// Extra slots per k-mer for extracting k-mers out of received
    /// supermers before counting.
    pub extract_cycles_per_kmer: f64,
}

impl Default for GpuTuning {
    fn default() -> Self {
        // 7.83 T effective slots/s (80 SM × 64 IPC × 1.53 GHz) divided by
        // these charges gives ≈ 157 M k-mers/s parse and ≈ 142 M/s count —
        // the paper's measured per-GPU envelope.
        GpuTuning {
            parse_cycles_per_kmer: 50_000.0,
            supermer_parse_cycles_per_kmer: 65_000.0, // 1.30× (§V-C: +27-33%)
            count_cycles_per_kmer: 55_000.0,
            extract_cycles_per_kmer: 13_750.0, // 1.25× total (§V-C: +23-27%)
        }
    }
}

/// A full experiment description: algorithm + machine shape.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Algorithmic parameters.
    pub counting: CountingConfig,
    /// Which counter to run.
    pub mode: Mode,
    /// Number of Summit nodes to simulate.
    pub nodes: usize,
    /// Use GPUDirect for the exchange (skip host staging). §III-B2.
    pub gpu_direct: bool,
    /// CPU-baseline core model.
    pub cpu_model: CpuCoreModel,
    /// GPU kernel calibration.
    pub gpu_tuning: GpuTuning,
    /// Simulated GPU model (default: the Summit V100; swap in
    /// [`dedukt_gpu::DeviceConfig::a100`] for the "newer hardware"
    /// ablation).
    pub gpu_device: dedukt_gpu::DeviceConfig,
    /// Supermer pipeline only: replace minimizer *hashing* with the
    /// frequency-aware balanced assignment (this reproduction's
    /// implementation of the paper's §VII future-work item). Costs a
    /// sampling pre-pass plus an Allgather of the weight map.
    pub balanced_minimizers: bool,
    /// Fraction of reads sampled to build the balanced assignment's
    /// minimizer weights (only used with `balanced_minimizers`).
    pub balance_sample_fraction: f64,
    /// Exchange routing: direct `MPI_Alltoallv` (the paper's) or the
    /// node-aggregated variant (see
    /// [`dedukt_net::cost::ExchangeAlgo`]).
    pub exchange_algo: dedukt_net::cost::ExchangeAlgo,
    /// Supermer pipeline only: ship each minimizer bucket through the
    /// KMC 2-style wire codec ([`crate::wire`]) — varint/delta-coded
    /// lengths plus 2-bit base packing — instead of the flat
    /// `WORD_BYTES + 1` record per supermer. Buckets are decoded on
    /// receipt, so spectra are bit-identical either way; only the
    /// physical wire bytes (and hence simulated exchange time) change.
    /// No effect on the k-mer pipelines, whose payloads are already
    /// maximally packed words.
    pub wire_compress: bool,
    /// Split the exchange (and counting) into rounds so that no rank
    /// sends more than this many bytes per round — the paper's
    /// memory-bounded operation ("the computation and communication may
    /// proceed in multiple rounds", §III-A). `None` = single round.
    pub round_limit_bytes: Option<u64>,
    /// Double-buffer the exchange rounds: while round *r* is on the wire,
    /// round *r − 1*'s count kernel runs, so each rank pays
    /// max(wire, count) per overlapped round instead of their sum.
    /// Functional results are bit-identical either way; only the simulated
    /// times change. Needs `round_limit_bytes` to produce ≥ 2 rounds to
    /// have any effect.
    pub overlap_rounds: bool,
    /// Build the merged k-mer spectrum in the report (costs memory).
    pub collect_spectrum: bool,
    /// Keep every rank's `(kmer, count)` table in the report (costs
    /// memory; used for verification against the oracle).
    pub collect_tables: bool,
    /// Record a per-rank phase timeline in the report (viewable with
    /// `chrome://tracing` via [`dedukt_sim::trace::write_chrome_trace`]).
    pub collect_trace: bool,
    /// Collect run-wide telemetry (per-rank exchange counters, probe-step
    /// and supermer-length histograms, occupancy and memory high-water
    /// gauges) into [`crate::pipeline::RunReport::metrics`]. Disabled runs
    /// do no metrics work at all; simulated times are identical either way
    /// (they come from the analytic cost models).
    pub collect_metrics: bool,
    /// Record a structured run journal — one typed event per superstep
    /// span, collective, retry, regrow/spill/OOM recovery, phase total,
    /// and wall-clock stage — into
    /// [`crate::pipeline::RunReport::journal`] for offline analysis with
    /// `dedukt analyze`. Follows the metrics discipline: disabled runs do
    /// no journal work at all and are bit-identical either way.
    pub collect_journal: bool,
    /// Deterministic fault schedule for the exchange layer (stragglers,
    /// transient send failures, bucket corruption — DESIGN.md §7). The
    /// driver retries failed/corrupt buckets with bounded backoff; final
    /// counts are bit-identical to a fault-free run whenever the plan is
    /// survivable. `None` (the default) models a perfect fabric.
    pub fault: Option<dedukt_net::fault::FaultPlan>,
    /// Safety factor applied to every rank's expected-instance estimate
    /// when sizing count tables (DESIGN.md §8). `1.0` (the default)
    /// preserves exact sizing — tables are sized for the full expected
    /// load and byte-for-byte identical to earlier releases; values
    /// below 1.0 deliberately undersize tables to exercise the
    /// grow/spill recovery.
    pub table_safety: f64,
    /// Deterministic memory-pressure schedule for the counting phase
    /// (distinct-count underestimates, denied grow allocations —
    /// DESIGN.md §8). Counting survives pressure by growing tables on
    /// device or spilling overflowing k-mers to the host; final counts
    /// are bit-identical to an unconstrained run whenever the spill
    /// budget holds. `None` (the default) models a perfect memory
    /// estimate and allocator.
    pub mem: Option<dedukt_gpu::MemPlan>,
    /// Deterministic rank-death schedule (DESIGN.md §11). The driver
    /// detects a death at the next round boundary, re-partitions the
    /// dead rank's key ranges across survivors by rendezvous hashing,
    /// and replays the lost items from the deterministic exchange
    /// history; final counts are bit-identical to a failure-free run
    /// whenever the deaths stay within [`dedukt_net::fault::RankSpec`]'s
    /// budget. `None` (the default) models immortal ranks and keeps the
    /// driver on the exact pre-recovery code path.
    pub rank: Option<dedukt_net::fault::RankPlan>,
    /// Snapshot every rank's count table every N rounds so a death only
    /// replays the rounds since the last snapshot (DESIGN.md §11).
    /// `None` replays from the start of the dead rank's ranges.
    pub checkpoint_rounds: Option<u64>,
    /// Elastic rescale schedule: `(round, world)` pairs shrinking or
    /// growing the active rank set at round boundaries (DESIGN.md §11).
    /// Departures are graceful — a leaving rank's counts are salvaged,
    /// not replayed. Empty (the default) keeps the world fixed.
    pub rescale: Vec<(u64, usize)>,
    /// Out-of-core two-pass mode (DESIGN.md §12): pass 1 partitions
    /// extracted items into minimizer-keyed bins under this directory
    /// on a simulated NVMe tier, pass 2 streams them back one bin at a
    /// time, each sized to fit its count table. `None` (the default)
    /// counts fully in memory.
    pub two_pass_dir: Option<std::path::PathBuf>,
    /// Resume an interrupted two-pass run from its manifest: skip pass 1
    /// and re-count only the bins without a completed result file.
    pub two_pass_resume: bool,
    /// Deterministic storage-fault schedule for the bin store (torn
    /// writes, bit rot, transient read errors, injected mid-run kill —
    /// DESIGN.md §12). Recovery retries bounded times, then quarantines
    /// the bin and re-derives it from its input slice; final spectra are
    /// bit-identical to the in-memory reference whenever the budgets
    /// hold. `None` (the default) models a perfect drive.
    pub io: Option<dedukt_store::IoPlan>,
    /// Gerbil-style pre-filter applied as each pass-2 bin completes:
    /// k-mers with fewer than this many occurrences are dropped before
    /// they reach the merged tables/spectrum (and are reported via the
    /// `filtered_kmers_total` metric). `1` (the default) keeps
    /// everything.
    pub min_count: u32,
}

/// Parses a `--rescale` schedule: a comma list of `round:world` pairs,
/// e.g. `1:10,3:12`. Ordering and range checks live in
/// [`RunConfig::validate`].
pub fn parse_rescale(s: &str) -> Result<Vec<(u64, usize)>, String> {
    let mut out = Vec::new();
    for part in s.split(',').filter(|p| !p.trim().is_empty()) {
        let part = part.trim();
        let (round, world) = part
            .split_once(':')
            .ok_or_else(|| format!("rescale entry `{part}` is not round:world"))?;
        let round = round
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("rescale round `{}` is not an integer", round.trim()))?;
        let world = world
            .trim()
            .parse::<usize>()
            .map_err(|_| format!("rescale world `{}` is not an integer", world.trim()))?;
        out.push((round, world));
    }
    Ok(out)
}

impl RunConfig {
    /// A run of `mode` on `nodes` nodes with paper-default parameters.
    pub fn new(mode: Mode, nodes: usize) -> RunConfig {
        RunConfig {
            counting: CountingConfig::default(),
            mode,
            nodes,
            gpu_direct: false,
            cpu_model: CpuCoreModel::default(),
            gpu_tuning: GpuTuning::default(),
            gpu_device: dedukt_gpu::DeviceConfig::v100(),
            balanced_minimizers: false,
            balance_sample_fraction: 0.05,
            exchange_algo: dedukt_net::cost::ExchangeAlgo::Direct,
            wire_compress: false,
            round_limit_bytes: None,
            overlap_rounds: false,
            collect_spectrum: false,
            collect_tables: false,
            collect_trace: false,
            collect_metrics: false,
            collect_journal: false,
            fault: None,
            table_safety: 1.0,
            mem: None,
            rank: None,
            checkpoint_rounds: None,
            rescale: Vec::new(),
            two_pass_dir: None,
            two_pass_resume: false,
            io: None,
            min_count: 1,
        }
    }

    /// Total ranks for this run.
    pub fn nranks(&self) -> usize {
        self.nodes * self.mode.ranks_per_node()
    }

    /// Validates the full run description (algorithmic parameters plus
    /// machine shape) at the narrow key width; [`crate::pipeline::run`]
    /// calls this before doing any work.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.validate_for_width(31, 32)
    }

    /// [`RunConfig::validate`] against an explicit key width (see
    /// [`CountingConfig::validate_for_width`]);
    /// [`crate::pipeline::run_typed`] calls this with the bounds of its
    /// key type.
    pub fn validate_for_width(
        &self,
        max_counting_k: usize,
        max_supermer_bases: usize,
    ) -> Result<(), ConfigError> {
        self.counting
            .validate_for_width(max_counting_k, max_supermer_bases)
            .map_err(ConfigError::Counting)?;
        if self.nodes == 0 {
            return Err(ConfigError::ZeroNodes);
        }
        if self.counting.canonical && self.mode == Mode::GpuSupermer {
            return Err(ConfigError::CanonicalSupermer);
        }
        if self.round_limit_bytes == Some(0) {
            return Err(ConfigError::ZeroRoundLimit);
        }
        if let Some(plan) = &self.fault {
            plan.spec().validate().map_err(ConfigError::Fault)?;
        }
        if !self.table_safety.is_finite() || self.table_safety <= 0.0 || self.table_safety > 100.0 {
            return Err(ConfigError::Mem(format!(
                "table safety factor {} must be a finite value in (0, 100]",
                self.table_safety
            )));
        }
        if let Some(plan) = &self.mem {
            plan.spec().validate().map_err(ConfigError::Mem)?;
        }
        if let Some(plan) = &self.rank {
            plan.spec().validate().map_err(ConfigError::Rank)?;
        }
        if self.checkpoint_rounds == Some(0) {
            return Err(ConfigError::Rank(
                "checkpoint cadence must be at least 1 round".into(),
            ));
        }
        let mut prev_round = None;
        for &(round, world) in &self.rescale {
            if prev_round.is_some_and(|p| round <= p) {
                return Err(ConfigError::Rank(format!(
                    "rescale rounds must be strictly increasing (round {round} repeats or \
                     goes backwards)"
                )));
            }
            prev_round = Some(round);
            if world == 0 || world > self.nranks() {
                return Err(ConfigError::Rank(format!(
                    "rescale world {world} must be in 1..={} (the initial rank count)",
                    self.nranks()
                )));
            }
        }
        if let Some(plan) = &self.io {
            plan.spec().validate().map_err(ConfigError::Io)?;
        }
        if self.min_count == 0 {
            return Err(ConfigError::Io(
                "--min-count must be at least 1 (1 keeps every k-mer)".into(),
            ));
        }
        if self.two_pass_dir.is_none() {
            if self.two_pass_resume {
                return Err(ConfigError::Io(
                    "--resume requires --two-pass (there is no bin store to resume from)".into(),
                ));
            }
            if self.io.is_some() {
                return Err(ConfigError::Io(
                    "--io-seed/--io-spec require --two-pass (there is no bin store to fault)"
                        .into(),
                ));
            }
            if self.min_count > 1 {
                return Err(ConfigError::Io(
                    "--min-count requires --two-pass (the pre-filter runs in pass 2)".into(),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_validate() {
        let c = CountingConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.k, 17);
        assert_eq!(c.window, 15);
        // §IV-C: supermer must fit one 64-bit word: 15 + 17 - 1 = 31 ≤ 32.
        assert_eq!(c.max_supermer_bases(), 31);
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad = [
            CountingConfig {
                k: 32,
                ..Default::default()
            },
            CountingConfig {
                m: 17,
                ..Default::default()
            },
            CountingConfig {
                window: 20, // 20 + 16 = 36 > 32
                ..Default::default()
            },
            CountingConfig {
                table_load_factor: 0.99,
                ..Default::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err());
        }
    }

    #[test]
    fn run_config_validation_covers_machine_shape() {
        assert!(RunConfig::new(Mode::GpuSupermer, 2).validate().is_ok());
        let mut rc = RunConfig::new(Mode::GpuSupermer, 2);
        rc.counting.canonical = true;
        assert_eq!(rc.validate(), Err(ConfigError::CanonicalSupermer));
        rc.mode = Mode::GpuKmer; // canonical is fine on the k-mer paths
        assert!(rc.validate().is_ok());
        let mut rc = RunConfig::new(Mode::CpuBaseline, 0);
        assert_eq!(rc.validate(), Err(ConfigError::ZeroNodes));
        rc.nodes = 1;
        rc.round_limit_bytes = Some(0);
        assert_eq!(rc.validate(), Err(ConfigError::ZeroRoundLimit));
        rc.round_limit_bytes = Some(1);
        assert!(rc.validate().is_ok());
        rc.counting.k = 64;
        assert!(matches!(rc.validate(), Err(ConfigError::Counting(_))));
    }

    #[test]
    fn wide_width_bounds_validate() {
        let mut c = CountingConfig {
            k: 41,
            m: 11,
            window: 24,
            ..Default::default()
        };
        // Narrow validation rejects wide k; the wide bounds accept it.
        assert!(c.validate().is_err());
        assert!(c.validate_for_width(63, 64).is_ok());
        // m ≥ 32 must be rejected even at the wide width (minimizer
        // words stay u64) — no silent clamping anywhere.
        c.m = 32;
        assert!(c.validate_for_width(63, 64).is_err());
        c.m = 11;
        c.window = 25; // 25 + 41 - 1 = 65 > 64
        assert!(c.validate_for_width(63, 64).is_err());
        c.window = 24;
        c.k = 64; // all-ones sentinel collision
        assert!(c.validate_for_width(63, 64).is_err());
    }

    #[test]
    fn fault_plan_is_validated_with_the_run() {
        use dedukt_net::fault::{FaultPlan, FaultSpec};
        let mut rc = RunConfig::new(Mode::GpuKmer, 1);
        rc.fault = Some(FaultPlan::new(1, FaultSpec::default()));
        assert!(rc.validate().is_ok());
        rc.fault = Some(FaultPlan::new(1, FaultSpec::parse("fail=1.5").unwrap()));
        match rc.validate() {
            Err(ConfigError::Fault(msg)) => assert!(msg.contains("[0, 1]"), "{msg}"),
            other => panic!("expected a fault config error, got {other:?}"),
        }
        rc.fault = Some(FaultPlan::new(1, FaultSpec::parse("retries=0").unwrap()));
        assert!(matches!(rc.validate(), Err(ConfigError::Fault(_))));
    }

    #[test]
    fn mem_plan_and_table_safety_are_validated_with_the_run() {
        use dedukt_gpu::{MemPlan, MemSpec};
        let mut rc = RunConfig::new(Mode::GpuKmer, 1);
        rc.mem = Some(MemPlan::new(1, MemSpec::default()));
        assert!(rc.validate().is_ok());
        rc.mem = Some(MemPlan::new(1, MemSpec::parse("under=1.5").unwrap()));
        match rc.validate() {
            Err(ConfigError::Mem(msg)) => assert!(msg.contains("[0, 1]"), "{msg}"),
            other => panic!("expected a mem config error, got {other:?}"),
        }
        rc.mem = None;
        rc.table_safety = 0.0;
        assert!(matches!(rc.validate(), Err(ConfigError::Mem(_))));
        rc.table_safety = f64::NAN;
        assert!(matches!(rc.validate(), Err(ConfigError::Mem(_))));
        rc.table_safety = 0.25;
        assert!(rc.validate().is_ok());
    }

    #[test]
    fn rank_plan_and_rescale_are_validated_with_the_run() {
        use dedukt_net::fault::{RankPlan, RankSpec};
        let mut rc = RunConfig::new(Mode::GpuKmer, 1); // 6 ranks
        rc.rank = Some(RankPlan::new(1, RankSpec::default()));
        assert!(rc.validate().is_ok());
        rc.rank = Some(RankPlan::new(1, RankSpec::parse("rate=1.5").unwrap()));
        match rc.validate() {
            Err(ConfigError::Rank(msg)) => assert!(msg.contains("[0, 1]"), "{msg}"),
            other => panic!("expected a rank config error, got {other:?}"),
        }
        rc.rank = None;
        rc.checkpoint_rounds = Some(0);
        assert!(matches!(rc.validate(), Err(ConfigError::Rank(_))));
        rc.checkpoint_rounds = Some(2);
        assert!(rc.validate().is_ok());
        rc.rescale = vec![(1, 4), (1, 5)];
        assert!(matches!(rc.validate(), Err(ConfigError::Rank(_))));
        rc.rescale = vec![(1, 4), (2, 7)]; // 7 > 6 ranks
        assert!(matches!(rc.validate(), Err(ConfigError::Rank(_))));
        rc.rescale = vec![(1, 0)];
        assert!(matches!(rc.validate(), Err(ConfigError::Rank(_))));
        rc.rescale = vec![(1, 4), (2, 6)];
        assert!(rc.validate().is_ok());
    }

    #[test]
    fn io_plan_and_two_pass_flags_are_validated_with_the_run() {
        use dedukt_store::{IoPlan, IoSpec};
        let mut rc = RunConfig::new(Mode::GpuKmer, 1);
        rc.two_pass_dir = Some(std::path::PathBuf::from("/tmp/x"));
        rc.io = Some(IoPlan::new(1, IoSpec::default()));
        rc.min_count = 2;
        rc.two_pass_resume = true;
        assert!(rc.validate().is_ok());
        rc.io = Some(IoPlan::new(1, IoSpec::parse("torn=1.5").unwrap()));
        match rc.validate() {
            Err(ConfigError::Io(msg)) => assert!(msg.contains("[0, 1]"), "{msg}"),
            other => panic!("expected an io config error, got {other:?}"),
        }
        rc.io = Some(IoPlan::new(1, IoSpec::default()));
        rc.min_count = 0;
        assert!(matches!(rc.validate(), Err(ConfigError::Io(_))));
        rc.min_count = 1;
        // Every out-of-core companion flag requires --two-pass.
        rc.two_pass_dir = None;
        rc.two_pass_resume = false;
        match rc.validate() {
            Err(ConfigError::Io(msg)) => assert!(msg.contains("--two-pass"), "{msg}"),
            other => panic!("expected an io config error, got {other:?}"),
        }
        rc.io = None;
        rc.two_pass_resume = true;
        match rc.validate() {
            Err(ConfigError::Io(msg)) => assert!(msg.contains("--resume"), "{msg}"),
            other => panic!("expected an io config error, got {other:?}"),
        }
        rc.two_pass_resume = false;
        rc.min_count = 3;
        assert!(matches!(rc.validate(), Err(ConfigError::Io(_))));
        rc.min_count = 1;
        assert!(rc.validate().is_ok());
    }

    #[test]
    fn rescale_schedules_parse() {
        assert_eq!(parse_rescale("1:10, 3:12").unwrap(), vec![(1, 10), (3, 12)]);
        assert_eq!(parse_rescale("").unwrap(), vec![]);
        assert!(parse_rescale("5").unwrap_err().contains("round:world"));
        assert!(parse_rescale("a:1").unwrap_err().contains("not an integer"));
        assert!(parse_rescale("1:b").unwrap_err().contains("not an integer"));
    }

    #[test]
    fn config_errors_render_human_messages() {
        assert!(ConfigError::CanonicalSupermer
            .to_string()
            .contains("canonical"));
        assert!(ConfigError::ZeroRoundLimit.to_string().contains("round"));
        assert_eq!(ConfigError::Counting("bad k".into()).to_string(), "bad k");
    }

    #[test]
    fn mode_rank_counts_match_section_5a() {
        assert_eq!(Mode::CpuBaseline.ranks_per_node(), 42);
        assert_eq!(Mode::GpuKmer.ranks_per_node(), 6);
        assert_eq!(RunConfig::new(Mode::GpuKmer, 64).nranks(), 384);
        assert_eq!(RunConfig::new(Mode::CpuBaseline, 64).nranks(), 2688);
    }

    #[test]
    fn cpu_model_calibration_reproduces_fig3a_scale() {
        // 167 G k-mers over 2,688 cores at the default rates should land
        // in the paper's Fig. 3a ballpark (minutes, not seconds).
        let m = CpuCoreModel::default();
        let cores = 2688.0;
        let parse = m.parse_rate.time_for(167e9 / cores);
        let count = m.count_rate.time_for(167e9 / cores);
        assert!((1000.0..1500.0).contains(&parse.as_secs()), "{parse}");
        assert!((2000.0..3000.0).contains(&count.as_secs()), "{count}");
    }
}
