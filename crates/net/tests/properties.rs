//! Property tests for the network layer: the cost model must price like a
//! network (monotone in traffic, locality-sensitive), and both engines
//! must implement the same collective semantics.

use dedukt_net::cost::{ExchangeAlgo, Network};
use dedukt_net::{BspWorld, Communicator, ThreadedWorld};
use proptest::prelude::*;

fn matrix_strategy(p: usize) -> impl Strategy<Value = Vec<Vec<u64>>> {
    prop::collection::vec(prop::collection::vec(0u64..1 << 20, p), p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Adding bytes anywhere never makes the Alltoallv faster for anyone.
    #[test]
    fn alltoallv_times_monotone(
        nodes in 1usize..5,
        src in 0usize..6,
        dst in 0usize..6,
        algo_agg in any::<bool>(),
    ) {
        let mut net = Network::summit_gpu(nodes);
        net.params.algo = if algo_agg { ExchangeAlgo::NodeAggregated } else { ExchangeAlgo::Direct };
        let p = net.topology.nranks();
        let base_m = vec![vec![1000u64; p]; p];
        let mut grown = base_m.clone();
        grown[src % p][dst % p] += 1 << 20;
        let base = net.alltoallv_times(&base_m);
        let more = net.alltoallv_times(&grown);
        for (b, m) in base.iter().zip(&more) {
            prop_assert!(m >= b);
        }
        prop_assert_eq!(base.len(), p);
    }

    /// Moving a payload off-node can only cost more than keeping it
    /// on-node (locality sensitivity).
    #[test]
    fn off_node_traffic_costs_at_least_on_node(bytes in 1u64..1 << 24) {
        let net = Network::summit_gpu(2);
        let p = net.topology.nranks();
        let mut local = vec![vec![0u64; p]; p];
        let mut remote = local.clone();
        local[0][1] = bytes;  // ranks 0,1 share node 0
        remote[0][6] = bytes; // rank 6 is on node 1
        let tl = net.alltoallv_times(&local)[0];
        let tr = net.alltoallv_times(&remote)[0];
        prop_assert!(tr >= tl);
    }

    /// The BSP engine's payload routing is identical to the threaded
    /// engine's (real channels) for any payload matrix.
    #[test]
    fn bsp_and_threaded_agree_on_alltoallv(m in matrix_strategy(5)) {
        let p = 5;
        // Threaded: each rank sends row m[rank] (one u64 per dst, value
        // varies by matrix entry).
        let threaded = ThreadedWorld::run(p, |comm| {
            let send: Vec<Vec<u64>> = (0..p).map(|d| vec![m[comm.rank()][d]]).collect();
            comm.alltoallv_u64(send)
        });
        // BSP: same payloads.
        let mut world = BspWorld::new(Network::summit_gpu(1));
        // summit_gpu(1) has 6 ranks; build a 6x6 with the last row/col empty.
        let send: Vec<Vec<Vec<u64>>> = (0..6)
            .map(|s| (0..6).map(|d| if s < p && d < p { vec![m[s][d]] } else { vec![] }).collect())
            .collect();
        let out = world.alltoallv(send);
        for (dst, t_row) in threaded.iter().enumerate() {
            for (src, t_cell) in t_row.iter().enumerate() {
                prop_assert_eq!(&out.recv[dst][src], t_cell);
            }
        }
    }

    /// Allreduce agrees between engines and equals the plain sum.
    #[test]
    fn allreduce_sums(values in prop::collection::vec(0u64..1 << 40, 2..9)) {
        let p = values.len();
        let expect: u64 = values.iter().sum();
        let vals = values.clone();
        let results = ThreadedWorld::run(p, move |comm| comm.allreduce_sum(vals[comm.rank()]));
        for r in results {
            prop_assert_eq!(r, expect);
        }
    }

    /// Barrier time and Alltoallv latency grow (weakly) with scale.
    #[test]
    fn latency_grows_with_scale(small in 1usize..8, factor in 2usize..5) {
        let a = Network::summit_gpu(small);
        let b = Network::summit_gpu(small * factor);
        prop_assert!(b.barrier_time() >= a.barrier_time());
        prop_assert!(b.latency(b.topology.nranks()) >= a.latency(a.topology.nranks()));
    }
}
