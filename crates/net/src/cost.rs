//! Collective cost model (α-β with a node-injection bottleneck).
//!
//! The paper's §IV-D analyses the exchange as a per-processor volume of
//! `O((P−1)/P × K/P × k)` bytes; at scale the binding constraint on Summit
//! is each node's injection bandwidth (23 GB/s, §V-A). The model here:
//!
//! * Every collective pays a latency term `α × ceil(log2 P)`.
//! * On-node traffic moves at NVLink/shared-memory bandwidth, divided
//!   among the node's ranks.
//! * Off-node traffic is charged against the *node's* injection bandwidth
//!   (the max of what the node sends and receives), scaled by an
//!   `alltoallv_efficiency` factor — large-rank-count `MPI_Alltoallv` on
//!   fat-trees achieves only a few percent of peak injection in practice,
//!   which is what makes the exchange the bottleneck in Fig. 3b.
//!
//! Per-rank completion times are returned; bulk-synchronous callers take
//! the max.

use crate::topology::Topology;
use dedukt_sim::{Rate, SimTime};

/// How the personalized all-to-all is routed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExchangeAlgo {
    /// Every rank messages every other rank directly — `P − 1` messages
    /// per rank, the default `MPI_Alltoallv` shape.
    Direct,
    /// Node-aggregated: ranks combine per-node payloads on-node first, a
    /// leader exchanges `nodes − 1` node-to-node messages, and results
    /// scatter on-node. Trades intra-node gather/scatter bandwidth for a
    /// `ranks/node ×` reduction in message count — the optimization
    /// direction of Pan et al. (SC'18), cited by the paper's §VI.
    NodeAggregated,
}

/// Network performance parameters.
#[derive(Clone, Copy, Debug)]
pub struct NetworkParams {
    /// Point-to-point software/fabric latency per message round (seconds).
    pub alpha_secs: f64,
    /// Fixed software cost per posted message (seconds) — what makes
    /// 2,688-rank direct all-to-alls hurt and node aggregation pay off.
    pub per_message_secs: f64,
    /// Per-node injection bandwidth onto the fat-tree (bytes/s).
    pub node_injection: Rate,
    /// On-node (NVLink / shared-memory) bandwidth per node (bytes/s).
    pub intra_node: Rate,
    /// Fraction of peak injection that a many-rank `MPI_Alltoallv`
    /// actually achieves.
    pub alltoallv_efficiency: f64,
    /// Exchange routing.
    pub algo: ExchangeAlgo,
}

impl NetworkParams {
    /// Summit per §V-A: 23 GB/s injection per node, 25 GB/s NVLink links
    /// on-node, ~1.5 µs MPI latency. The 5% Alltoallv efficiency is
    /// calibrated so the H. sapiens 54X exchange on 64 nodes lands in the
    /// paper's observed ~25-30 s range (Fig. 7b); see EXPERIMENTS.md.
    pub fn summit() -> NetworkParams {
        NetworkParams {
            alpha_secs: 1.5e-6,
            per_message_secs: 0.2e-6,
            node_injection: Rate::gb_per_sec(23.0),
            intra_node: Rate::gb_per_sec(75.0),
            alltoallv_efficiency: 0.05,
            algo: ExchangeAlgo::Direct,
        }
    }

    /// Summit with node-aggregated exchange.
    pub fn summit_aggregated() -> NetworkParams {
        NetworkParams {
            algo: ExchangeAlgo::NodeAggregated,
            ..Self::summit()
        }
    }
}

/// The simulated NVMe/SSD storage tier used by the out-of-core
/// two-pass pipeline (DESIGN.md §12): sequential bandwidth per
/// direction plus a per-operation seek/submission latency. Like the
/// network parameters, these only price time — the bytes themselves are
/// written for real by `dedukt-store`.
#[derive(Clone, Copy, Debug)]
pub struct SsdParams {
    /// Sequential write bandwidth (bytes/s).
    pub write_bw: Rate,
    /// Sequential read bandwidth (bytes/s).
    pub read_bw: Rate,
    /// Per-operation latency (seek + queue submission), seconds.
    pub seek_secs: f64,
}

impl SsdParams {
    /// A Summit-era datacenter NVMe drive: ~2.0 GB/s sequential write,
    /// ~3.5 GB/s sequential read, ~100 µs per operation.
    pub fn nvme() -> SsdParams {
        SsdParams {
            write_bw: Rate::gb_per_sec(2.0),
            read_bw: Rate::gb_per_sec(3.5),
            seek_secs: 100e-6,
        }
    }

    /// Time to write `bytes` in one sequential operation.
    pub fn write_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs(self.seek_secs) + self.write_bw.time_for(bytes as f64)
    }

    /// Time to read `bytes` in one sequential operation.
    pub fn read_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs(self.seek_secs) + self.read_bw.time_for(bytes as f64)
    }
}

/// A topology plus its performance parameters.
#[derive(Clone, Copy, Debug)]
pub struct Network {
    /// Rank→node layout.
    pub topology: Topology,
    /// Link parameters.
    pub params: NetworkParams,
}

impl Network {
    /// Summit with 6 GPU ranks per node.
    pub fn summit_gpu(nodes: usize) -> Network {
        Network {
            topology: Topology::summit_gpu(nodes),
            params: NetworkParams::summit(),
        }
    }

    /// Summit with 42 CPU ranks per node.
    pub fn summit_cpu(nodes: usize) -> Network {
        Network {
            topology: Topology::summit_cpu(nodes),
            params: NetworkParams::summit(),
        }
    }

    /// Latency term for one collective over `p` ranks.
    pub fn latency(&self, p: usize) -> SimTime {
        let rounds = (p.max(2) as f64).log2().ceil();
        SimTime::from_secs(self.params.alpha_secs * rounds)
    }

    /// Per-node off-node send/recv volumes and per-node on-node volume:
    /// `(node_out, node_in, node_local)`.
    fn node_volumes(&self, send_bytes: &[Vec<u64>]) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
        let t = &self.topology;
        let p = t.nranks();
        assert_eq!(send_bytes.len(), p, "send matrix must be P×P");
        for row in send_bytes {
            assert_eq!(row.len(), p, "send matrix must be P×P");
        }
        let mut node_out = vec![0u64; t.nodes];
        let mut node_in = vec![0u64; t.nodes];
        let mut node_local = vec![0u64; t.nodes];
        for (i, row) in send_bytes.iter().enumerate() {
            let ni = t.node_of(i);
            for (j, &b) in row.iter().enumerate() {
                let nj = t.node_of(j);
                if ni == nj {
                    node_local[ni] += b;
                } else {
                    node_out[ni] += b;
                    node_in[nj] += b;
                }
            }
        }
        (node_out, node_in, node_local)
    }

    /// Per-node aggregation overhead under the active routing: the
    /// intra-node tier's gather+scatter time for node-aggregated routing
    /// (every payload crosses the intra-node fabric twice), all-zero for
    /// direct routing.
    fn aggregate_overhead(&self, node_out: &[u64], node_local: &[u64]) -> Vec<SimTime> {
        match self.params.algo {
            ExchangeAlgo::Direct => vec![SimTime::ZERO; self.topology.nodes],
            ExchangeAlgo::NodeAggregated => (0..self.topology.nodes)
                .map(|n| {
                    self.params
                        .intra_node
                        .time_for(2.0 * (node_out[n] + node_local[n]) as f64)
                })
                .collect(),
        }
    }

    /// The *intra-node tier* component of [`Network::alltoallv_times`]
    /// per rank — the leader gather/scatter overhead the hierarchical
    /// route pays before anything reaches the injection tier. All-zero
    /// under direct routing, and exactly the `aggregate_overhead` term
    /// inside `alltoallv_times` (so `total − intra` is the injection-tier
    /// share, with no float drift between the two views).
    pub fn alltoallv_intra_times(&self, send_bytes: &[Vec<u64>]) -> Vec<SimTime> {
        let (node_out, _, node_local) = self.node_volumes(send_bytes);
        let per_node = self.aggregate_overhead(&node_out, &node_local);
        (0..self.topology.nranks())
            .map(|i| per_node[self.topology.node_of(i)])
            .collect()
    }

    /// Models an Alltoallv: `send_bytes[i][j]` is the payload rank `i`
    /// sends to rank `j`. Returns per-rank completion times relative to a
    /// synchronized start.
    pub fn alltoallv_times(&self, send_bytes: &[Vec<u64>]) -> Vec<SimTime> {
        let t = &self.topology;
        let p = t.nranks();
        let (node_out, node_in, node_local) = self.node_volumes(send_bytes);

        let wire_bw = self
            .params
            .node_injection
            .scaled(self.params.alltoallv_efficiency);
        let latency = self.latency(p);

        // Message-count term and aggregation overhead depend on routing:
        // a leader exchanges nodes−1 coalesced frames instead of every
        // rank posting P−1 messages.
        let messages_per_rank: f64 = match self.params.algo {
            ExchangeAlgo::Direct => (p - 1) as f64,
            ExchangeAlgo::NodeAggregated => (t.nodes.saturating_sub(1)) as f64,
        };
        let aggregate_overhead = self.aggregate_overhead(&node_out, &node_local);
        let msg_cost = SimTime::from_secs(self.params.per_message_secs * messages_per_rank);

        (0..p)
            .map(|i| {
                let n = t.node_of(i);
                // The node's wire time is shared by all its ranks (they
                // inject through the same NIC); on-node traffic moves at
                // intra-node bandwidth.
                let wire = wire_bw.time_for(node_out[n].max(node_in[n]) as f64);
                let local = self.params.intra_node.time_for(node_local[n] as f64);
                latency + msg_cost + aggregate_overhead[n] + wire.max(local)
            })
            .collect()
    }

    /// Models an Allreduce of `bytes` per rank (recursive doubling:
    /// log2(P) rounds of latency plus 2×bytes on the wire).
    pub fn allreduce_time(&self, bytes: u64) -> SimTime {
        let p = self.topology.nranks();
        let wire = self
            .params
            .node_injection
            .scaled(self.params.alltoallv_efficiency)
            .time_for(2.0 * bytes as f64);
        self.latency(p) + wire
    }

    /// Models a barrier (latency only).
    pub fn barrier_time(&self) -> SimTime {
        self.latency(self.topology.nranks())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_matrix(p: usize, bytes: u64) -> Vec<Vec<u64>> {
        vec![vec![bytes; p]; p]
    }

    #[test]
    fn empty_exchange_costs_latency_and_messages_only() {
        let net = Network::summit_gpu(2);
        let times = net.alltoallv_times(&uniform_matrix(12, 0));
        let expect = net.latency(12) + SimTime::from_secs(net.params.per_message_secs * 11.0);
        for t in &times {
            assert_eq!(*t, expect);
        }
    }

    #[test]
    fn node_aggregation_cuts_message_cost_at_scale() {
        // 2,688 CPU ranks: direct = 2,687 messages/rank; aggregated = 63.
        let mut direct = Network::summit_cpu(64);
        direct.params.algo = ExchangeAlgo::Direct;
        let mut agg = direct;
        agg.params.algo = ExchangeAlgo::NodeAggregated;
        let p = direct.topology.nranks();
        // Tiny payloads: message overheads dominate.
        let m = uniform_matrix(p, 16);
        let td = direct.alltoallv_times(&m)[0];
        let ta = agg.alltoallv_times(&m)[0];
        assert!(
            ta < td,
            "aggregated {ta} should beat direct {td} on small messages"
        );
    }

    #[test]
    fn node_aggregation_pays_bandwidth_on_big_payloads() {
        // Large payloads: the double intra-node hop costs more than the
        // message savings on a small rank count.
        let mut direct = Network::summit_gpu(2);
        direct.params.algo = ExchangeAlgo::Direct;
        let mut agg = direct;
        agg.params.algo = ExchangeAlgo::NodeAggregated;
        let p = direct.topology.nranks();
        let m = uniform_matrix(p, 10_000_000);
        let td = direct.alltoallv_times(&m)[0];
        let ta = agg.alltoallv_times(&m)[0];
        assert!(
            ta > td,
            "aggregated {ta} should lose to direct {td} on big payloads"
        );
    }

    #[test]
    fn intra_times_split_the_aggregated_total_exactly() {
        let mut net = Network::summit_gpu(3);
        net.params.algo = ExchangeAlgo::NodeAggregated;
        let p = net.topology.nranks();
        let m = uniform_matrix(p, 4096);
        let total = net.alltoallv_times(&m);
        let intra = net.alltoallv_intra_times(&m);
        // The intra component is positive and strictly inside the total,
        // and subtracting it recovers the direct-shape remainder with no
        // float drift (same SimTime arithmetic on both paths).
        for (t, i) in total.iter().zip(&intra) {
            assert!(*i > SimTime::ZERO);
            assert!(i < t);
        }
        // Direct routing has no intra tier.
        net.params.algo = ExchangeAlgo::Direct;
        assert!(net.alltoallv_intra_times(&m).iter().all(|t| t.is_zero()));
    }

    #[test]
    fn volume_scales_time_linearly() {
        let net = Network::summit_gpu(4);
        let p = net.topology.nranks();
        let t1 = net.alltoallv_times(&uniform_matrix(p, 1_000_000));
        let t2 = net.alltoallv_times(&uniform_matrix(p, 2_000_000));
        let fixed = net.alltoallv_times(&uniform_matrix(p, 0))[0];
        let r = (t2[0] - fixed).as_secs() / (t1[0] - fixed).as_secs();
        assert!((r - 2.0).abs() < 1e-6, "ratio {r}");
    }

    #[test]
    fn off_node_traffic_is_the_bottleneck() {
        let net = Network::summit_gpu(2);
        let p = net.topology.nranks();
        // All traffic on-node vs all traffic off-node, same total volume.
        let mut local = vec![vec![0u64; p]; p];
        let mut remote = vec![vec![0u64; p]; p];
        for i in 0..p {
            for j in 0..p {
                if net.topology.same_node(i, j) {
                    local[i][j] = 1_000_000;
                } else {
                    remote[i][j] = 1_000_000;
                }
            }
        }
        let tl = net.alltoallv_times(&local)[0];
        let tr = net.alltoallv_times(&remote)[0];
        assert!(tr > tl * 2.0, "remote {tr} vs local {tl}");
    }

    #[test]
    fn hot_node_slows_only_its_ranks() {
        let net = Network::summit_gpu(2);
        let p = net.topology.nranks(); // 12 ranks, node 0 = ranks 0..6
        let mut m = vec![vec![0u64; p]; p];
        // Rank 0 sends a lot to rank 6 (off-node): node 0 sends, node 1
        // receives — both are charged, so compare against a third,
        // uninvolved direction by adding a second, idle node pair… with 2
        // nodes everyone is involved; instead check rank times are equal
        // within a node.
        m[0][6] = 50_000_000;
        let times = net.alltoallv_times(&m);
        for r in 0..6 {
            assert_eq!(times[r], times[0], "node-0 ranks share the NIC");
        }
        for r in 6..12 {
            assert_eq!(times[r], times[6]);
        }
    }

    #[test]
    fn supermer_reduction_shows_up_as_speedup() {
        // Table II E. coli: 412M k-mers × 8 B vs 108M supermers × 9 B.
        let net = Network::summit_gpu(16);
        let p = net.topology.nranks();
        let kmer_each = 412_000_000 * 8 / (p * p) as u64;
        let smer_each = 108_000_000 * 9 / (p * p) as u64;
        let tk = net.alltoallv_times(&uniform_matrix(p, kmer_each))[0];
        let ts = net.alltoallv_times(&uniform_matrix(p, smer_each))[0];
        let speedup = tk / ts;
        assert!(
            (2.5..4.5).contains(&speedup),
            "expected ~3.4x Alltoallv speedup, got {speedup}"
        );
    }

    #[test]
    fn allreduce_and_barrier_scale_with_rank_count() {
        let small = Network::summit_gpu(2);
        let big = Network::summit_gpu(128);
        assert!(big.barrier_time() > small.barrier_time());
        assert!(big.allreduce_time(1024) > small.allreduce_time(1024));
    }

    #[test]
    #[should_panic(expected = "P×P")]
    fn wrong_matrix_shape_rejected() {
        let net = Network::summit_gpu(2);
        net.alltoallv_times(&uniform_matrix(5, 1));
    }

    #[test]
    fn ssd_tier_prices_seek_plus_bandwidth() {
        let ssd = SsdParams::nvme();
        // Zero-byte operations still pay the seek.
        assert_eq!(ssd.write_time(0), SimTime::from_secs(ssd.seek_secs));
        assert_eq!(ssd.read_time(0), SimTime::from_secs(ssd.seek_secs));
        // Reads are faster than writes at equal volume (NVMe asymmetry).
        let mb = 50_000_000;
        assert!(ssd.read_time(mb) < ssd.write_time(mb));
        // Beyond the seek, time is linear in bytes.
        let seek = SimTime::from_secs(ssd.seek_secs);
        let r = (ssd.write_time(2 * mb) - seek).as_secs() / (ssd.write_time(mb) - seek).as_secs();
        assert!((r - 2.0).abs() < 1e-9, "ratio {r}");
        // 1 GB writes in about half a second at 2 GB/s.
        let t = ssd.write_time(1_000_000_000).as_secs();
        assert!((0.4..0.6).contains(&t), "{t}");
    }
}
