//! Exchange routing — how Alltoallv payloads physically travel.
//!
//! [`crate::cost::ExchangeAlgo`] *prices* the collective; `ExchangeRoute`
//! *routes* it. The two are derived from the same knob so the clocks and
//! the payload paths always agree:
//!
//! - [`ExchangeRoute::Direct`] — every `(src, dst)` bucket travels as its
//!   own per-rank-pair message (the paper's `MPI_Alltoallv`, §III-B).
//!   Bit-for-bit identical to the pre-routing engine behavior.
//! - [`ExchangeRoute::Hierarchical`] — the two-level collective of §VI's
//!   outlook: every rank first gathers its per-destination-node payloads
//!   to its node's *leader* rank over the intra-node tier (NVLink /
//!   shared memory), the leader sends **one coalesced frame per
//!   (node, node) pair** over the injection tier, and the receiving
//!   leader scatters buckets to their final ranks. Delivered payloads are
//!   identical to `Direct`; only the path — and therefore the per-tier
//!   byte accounting and the fault granularity — changes.
//!
//! Fault composition (DESIGN.md §10): with hierarchical routing, fates
//! are drawn *per coalesced inter-node frame* at the injection tier and
//! *per bucket* on the intra-node tier. Both engines (BSP and threaded)
//! evaluate the same pure [`FaultPlan`] at the same coordinates, so they
//! agree on every fate without any coordination traffic, and a retry
//! resends only the failed frames (all buckets of a frame fail or
//! deliver together).

use crate::cost::ExchangeAlgo;
use crate::fault::{BucketFate, FaultPlan};
use crate::topology::Topology;

/// How Alltoallv payloads are physically routed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExchangeRoute {
    /// One message per `(rank, rank)` pair — today's behavior, preserved
    /// bit-for-bit.
    Direct,
    /// Two-level: intra-node gather to a leader, one coalesced frame per
    /// `(node, node)` pair over injection, intra-node scatter on receipt.
    Hierarchical,
}

impl ExchangeRoute {
    /// The route implied by a pricing algorithm; keeps routing and the
    /// cost model in lock-step (a `NodeAggregated` price with direct
    /// routing would charge for frames that never existed).
    pub fn from_algo(algo: ExchangeAlgo) -> ExchangeRoute {
        match algo {
            ExchangeAlgo::Direct => ExchangeRoute::Direct,
            ExchangeAlgo::NodeAggregated => ExchangeRoute::Hierarchical,
        }
    }

    /// Parses a CLI-facing name (`direct` | `hierarchical`).
    pub fn parse(s: &str) -> Result<ExchangeRoute, String> {
        match s {
            "direct" => Ok(ExchangeRoute::Direct),
            "hierarchical" => Ok(ExchangeRoute::Hierarchical),
            other => Err(format!(
                "unknown exchange algorithm `{other}` (expected `direct` or `hierarchical`)"
            )),
        }
    }

    /// The pricing algorithm this route implies (inverse of
    /// [`ExchangeRoute::from_algo`]).
    pub fn algo(self) -> ExchangeAlgo {
        match self {
            ExchangeRoute::Direct => ExchangeAlgo::Direct,
            ExchangeRoute::Hierarchical => ExchangeAlgo::NodeAggregated,
        }
    }

    /// Stable lowercase label (journal detail, bench reports).
    pub fn label(self) -> &'static str {
        match self {
            ExchangeRoute::Direct => "direct",
            ExchangeRoute::Hierarchical => "hierarchical",
        }
    }

    /// The fate of the `(src, dst)` bucket at `(round, attempt)` under
    /// this route — the single point where both engines must agree.
    ///
    /// `Direct` draws one fate per rank pair, exactly as before. Under
    /// `Hierarchical`, a bucket whose endpoints share a node never leaves
    /// the intra-node tier and keeps its per-bucket fate; a cross-node
    /// bucket travels inside the `(node, node)` coalesced frame, so its
    /// fate is the *frame's*, drawn at node coordinates offset by
    /// `nranks` (fault schedules hash raw coordinates, so offsetting by
    /// the rank count keeps frame draws disjoint from every per-rank
    /// draw without touching the fault engine).
    pub fn bucket_fate(
        self,
        plan: &FaultPlan,
        topo: &Topology,
        round: u64,
        attempt: u32,
        src: usize,
        dst: usize,
    ) -> BucketFate {
        match self {
            ExchangeRoute::Direct => plan.bucket_fate(round, attempt, src, dst),
            ExchangeRoute::Hierarchical => {
                if topo.same_node(src, dst) {
                    plan.bucket_fate(round, attempt, src, dst)
                } else {
                    let p = topo.nranks();
                    plan.bucket_fate(round, attempt, p + topo.node_of(src), p + topo.node_of(dst))
                }
            }
        }
    }

    /// The leader rank of `node` — the lowest rank on the node, which
    /// performs the gather, the injection-tier frame sends, and the
    /// scatter for hierarchical routing.
    pub fn leader_of(topo: &Topology, node: usize) -> usize {
        topo.ranks_of(node).start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultSpec;

    #[test]
    fn route_follows_algo() {
        assert_eq!(
            ExchangeRoute::from_algo(ExchangeAlgo::Direct),
            ExchangeRoute::Direct
        );
        assert_eq!(
            ExchangeRoute::from_algo(ExchangeAlgo::NodeAggregated),
            ExchangeRoute::Hierarchical
        );
        assert_eq!(ExchangeRoute::Direct.algo(), ExchangeAlgo::Direct);
        assert_eq!(
            ExchangeRoute::Hierarchical.algo(),
            ExchangeAlgo::NodeAggregated
        );
    }

    #[test]
    fn parse_accepts_both_names_and_rejects_garbage() {
        assert_eq!(ExchangeRoute::parse("direct"), Ok(ExchangeRoute::Direct));
        assert_eq!(
            ExchangeRoute::parse("hierarchical"),
            Ok(ExchangeRoute::Hierarchical)
        );
        assert!(ExchangeRoute::parse("fancy").unwrap_err().contains("fancy"));
        assert_eq!(ExchangeRoute::Direct.label(), "direct");
        assert_eq!(ExchangeRoute::Hierarchical.label(), "hierarchical");
    }

    #[test]
    fn hierarchical_fates_are_shared_per_frame() {
        let topo = Topology::new(3, 4); // 12 ranks
        let plan = FaultPlan::new(42, FaultSpec::parse("fail=0.5,corrupt=0.2").unwrap());
        let route = ExchangeRoute::Hierarchical;
        // Every cross-node (src, dst) pair with the same (node, node)
        // coordinates draws the same fate — the frame's.
        for src_node in 0..3 {
            for dst_node in 0..3 {
                if src_node == dst_node {
                    continue;
                }
                let fates: Vec<_> = topo
                    .ranks_of(src_node)
                    .flat_map(|s| {
                        topo.ranks_of(dst_node)
                            .map(move |d| route.bucket_fate(&plan, &topo, 3, 1, s, d))
                    })
                    .collect();
                assert!(
                    fates.windows(2).all(|w| w[0] == w[1]),
                    "frame ({src_node},{dst_node}) fates must agree: {fates:?}"
                );
            }
        }
    }

    #[test]
    fn same_node_fates_match_direct() {
        let topo = Topology::new(2, 6);
        let plan = FaultPlan::new(7, FaultSpec::parse("fail=0.4").unwrap());
        for src in 0..6 {
            for dst in 0..6 {
                assert_eq!(
                    ExchangeRoute::Hierarchical.bucket_fate(&plan, &topo, 0, 0, src, dst),
                    ExchangeRoute::Direct.bucket_fate(&plan, &topo, 0, 0, src, dst),
                    "intra-node buckets keep their per-bucket fate"
                );
            }
        }
    }

    #[test]
    fn leader_is_the_lowest_rank_on_the_node() {
        let topo = Topology::new(3, 6);
        assert_eq!(ExchangeRoute::leader_of(&topo, 0), 0);
        assert_eq!(ExchangeRoute::leader_of(&topo, 1), 6);
        assert_eq!(ExchangeRoute::leader_of(&topo, 2), 12);
    }
}
