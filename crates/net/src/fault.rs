//! Deterministic fault injection for the exchange layer.
//!
//! A [`FaultPlan`] is a *pure function* from a seed and a fault coordinate
//! — `(round, attempt, src, dst)` for bucket fates, `(step, rank)` for
//! stragglers — to a fault decision, built on the stateless
//! [`dedukt_sim::rng::mix_coords`] hash. Because the plan carries no
//! mutable state, the BSP executor and the threaded engine (where both
//! endpoints of a channel evaluate the plan independently, without ACK
//! traffic) derive **identical** fault schedules, and retries draw fresh,
//! reproducible fates simply by bumping the attempt coordinate.
//!
//! Three fault kinds are modelled (DESIGN.md §7):
//!
//! * **Transient send failure** — a non-empty bucket `src → dst` is
//!   dropped for this attempt; the sender keeps the payload and re-offers
//!   it on the next attempt.
//! * **Payload corruption** — the bucket arrives, but its
//!   [`ChecksumFrame`] no longer matches; the receiver discards it and
//!   the sender retries. Corruption is *detected*, never silently
//!   consumed, which is what makes the headline "spectra are bit-identical
//!   with and without faults" guarantee provable.
//! * **Straggler** — a rank's compute step is stretched by
//!   [`FaultSpec::straggle_factor`]; timing-only, payloads are unaffected.

use dedukt_sim::rng::unit_from_coords;

/// Domain-separation salts so the fault streams never alias.
const SALT_FATE: u64 = 0xFA17_0001;
const SALT_STRAGGLE: u64 = 0xFA17_0002;
const SALT_RANK: u64 = 0xFA17_0003;

/// What happens to one non-empty bucket on one delivery attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BucketFate {
    /// Arrives intact.
    Deliver,
    /// Never arrives this attempt (transient link failure).
    FailSend,
    /// Arrives with a checksum mismatch and is discarded by the receiver.
    Corrupt,
}

/// Fault rates and retry policy. Parsed from `--fault-spec`
/// (`fail=0.1,corrupt=0.05,straggle=0.1,slow=4,retries=5,backoff=0.001`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSpec {
    /// Probability a non-empty bucket fails to send on a given attempt.
    pub fail_rate: f64,
    /// Probability a non-empty bucket arrives corrupted on a given attempt.
    pub corrupt_rate: f64,
    /// Probability a rank straggles on a given compute step.
    pub straggle_rate: f64,
    /// Slowdown multiplier applied to a straggling rank's step time.
    pub straggle_factor: f64,
    /// Retries allowed after the first attempt, so a round gets
    /// `1 + max_retries` delivery tries before the run fails with
    /// `RunError::ExchangeFailed`.
    pub max_retries: u32,
    /// Base backoff charged to the sim clock before retry `a` (seconds,
    /// doubling per attempt: `backoff_secs * 2^(a-1)`).
    pub backoff_secs: f64,
}

impl Default for FaultSpec {
    /// Moderate default rates so `--fault-seed` alone exercises every
    /// fault path (the acceptance criteria want rates > 0 by default).
    fn default() -> FaultSpec {
        FaultSpec {
            fail_rate: 0.05,
            corrupt_rate: 0.02,
            straggle_rate: 0.05,
            straggle_factor: 3.0,
            max_retries: 4,
            backoff_secs: 1e-3,
        }
    }
}

impl FaultSpec {
    /// The all-zero spec: no faults ever fire, runs are bit-identical to
    /// a plan-free world (pinned by the zero-fault regression test).
    pub fn none() -> FaultSpec {
        FaultSpec {
            fail_rate: 0.0,
            corrupt_rate: 0.0,
            straggle_rate: 0.0,
            straggle_factor: 1.0,
            max_retries: 4,
            backoff_secs: 0.0,
        }
    }

    /// Parses a `key=value` comma list. Unknown keys and unparseable
    /// values are errors; range checks live in [`FaultSpec::validate`] so
    /// the CLI surfaces them through `ConfigError` like every other
    /// configuration problem.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec::default();
        for part in s.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry `{}` is not key=value", part.trim()))?;
            let key = key.trim();
            let value = value.trim();
            let parse_f64 = || {
                value
                    .parse::<f64>()
                    .map_err(|_| format!("fault spec {key}=`{value}` is not a number"))
            };
            match key {
                "fail" => spec.fail_rate = parse_f64()?,
                "corrupt" => spec.corrupt_rate = parse_f64()?,
                "straggle" => spec.straggle_rate = parse_f64()?,
                "slow" => spec.straggle_factor = parse_f64()?,
                "backoff" => spec.backoff_secs = parse_f64()?,
                "retries" => {
                    spec.max_retries = value
                        .parse::<u32>()
                        .map_err(|_| format!("fault spec retries=`{value}` is not an integer"))?
                }
                _ => {
                    return Err(format!(
                        "unknown fault spec key `{key}` \
                         (expected fail/corrupt/straggle/slow/retries/backoff)"
                    ))
                }
            }
        }
        Ok(spec)
    }

    /// Range checks, in `validate_for_width` style: rates in [0, 1], at
    /// least one retry, slowdown ≥ 1, finite non-negative backoff.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("fail", self.fail_rate),
            ("corrupt", self.corrupt_rate),
            ("straggle", self.straggle_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
                return Err(format!("fault rate {name}={rate} must be in [0, 1]"));
            }
        }
        if self.fail_rate + self.corrupt_rate > 1.0 {
            return Err(format!(
                "fault rates fail+corrupt={} must not exceed 1",
                self.fail_rate + self.corrupt_rate
            ));
        }
        if self.max_retries == 0 {
            return Err("fault spec retries must be at least 1".to_string());
        }
        if !self.straggle_factor.is_finite() || self.straggle_factor < 1.0 {
            return Err(format!(
                "straggle factor slow={} must be >= 1",
                self.straggle_factor
            ));
        }
        if !self.backoff_secs.is_finite() || self.backoff_secs < 0.0 {
            return Err(format!(
                "fault backoff={} must be a non-negative number of seconds",
                self.backoff_secs
            ));
        }
        Ok(())
    }

    /// Is this spec semantically empty — valid, but incapable of ever
    /// producing a fault event? Such plans are normalized away before a
    /// run so both engines treat `--fault-spec fail=0,corrupt=0,straggle=0`
    /// exactly like an absent plan.
    pub fn is_noop(&self) -> bool {
        self.fail_rate == 0.0 && self.corrupt_rate == 0.0 && self.straggle_rate == 0.0
    }
}

/// A seeded, deterministic fault schedule. Cloning is cheap (two words);
/// both network engines and every retry attempt consult the same plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    spec: FaultSpec,
}

impl FaultPlan {
    /// A plan drawing every fault decision from `seed` under `spec`.
    pub fn new(seed: u64, spec: FaultSpec) -> FaultPlan {
        FaultPlan { seed, spec }
    }

    /// The plan's rates and retry policy.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Uniform `[0, 1)` draw at a fault coordinate.
    fn draw(&self, salt: u64, coords: &[u64]) -> f64 {
        unit_from_coords(self.seed ^ salt, coords)
    }

    /// Fate of the non-empty bucket `src → dst` on `attempt` (0 = first
    /// try) of exchange context `round`. Stateless: every evaluation at
    /// the same coordinate returns the same fate, on any engine. Callers
    /// must treat empty buckets as [`BucketFate::Deliver`] — nothing was
    /// sent, so nothing can fail.
    pub fn bucket_fate(&self, round: u64, attempt: u32, src: usize, dst: usize) -> BucketFate {
        let u = self.draw(SALT_FATE, &[round, attempt as u64, src as u64, dst as u64]);
        if u < self.spec.fail_rate {
            BucketFate::FailSend
        } else if u < self.spec.fail_rate + self.spec.corrupt_rate {
            BucketFate::Corrupt
        } else {
            BucketFate::Deliver
        }
    }

    /// Compute-time multiplier for `rank` on compute step `step`: 1.0
    /// normally, [`FaultSpec::straggle_factor`] when the rank straggles.
    pub fn straggle_factor(&self, step: u64, rank: usize) -> f64 {
        if self.spec.straggle_rate > 0.0
            && self.draw(SALT_STRAGGLE, &[step, rank as u64]) < self.spec.straggle_rate
        {
            self.spec.straggle_factor
        } else {
            1.0
        }
    }
}

/// Rank-death rates and recovery policy. Parsed from `--rank-spec`
/// (`rate=0.05,max-dead=2,kill=1:3` — `kill=ROUND:RANK` may repeat to
/// pin deterministic deaths on top of the drawn schedule).
#[derive(Clone, Debug, PartialEq)]
pub struct RankSpec {
    /// Probability a live rank dies at a given round boundary.
    pub rate: f64,
    /// Most rank deaths the run tolerates before failing cleanly with
    /// `RunError::RanksLost` (the recovery budget).
    pub max_dead: usize,
    /// Pinned `(round, rank)` deaths, independent of the drawn schedule.
    pub kill: Vec<(u64, usize)>,
}

impl Default for RankSpec {
    /// A low default rate so `--rank-seed` alone occasionally kills a
    /// rank, with a budget that keeps most runs recoverable.
    fn default() -> RankSpec {
        RankSpec {
            rate: 0.02,
            max_dead: 2,
            kill: Vec::new(),
        }
    }
}

impl RankSpec {
    /// The no-death spec: no rank ever dies, runs are bit-identical to a
    /// plan-free world (pinned by the zero-death regression test).
    pub fn none() -> RankSpec {
        RankSpec {
            rate: 0.0,
            max_dead: 2,
            kill: Vec::new(),
        }
    }

    /// Parses a `key=value` comma list. Unknown keys and unparseable
    /// values are errors; range checks live in [`RankSpec::validate`] so
    /// the CLI surfaces them through `ConfigError` like every other
    /// configuration problem.
    pub fn parse(s: &str) -> Result<RankSpec, String> {
        let mut spec = RankSpec::default();
        for part in s.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("rank spec entry `{}` is not key=value", part.trim()))?;
            let key = key.trim();
            let value = value.trim();
            match key {
                "rate" => {
                    spec.rate = value
                        .parse::<f64>()
                        .map_err(|_| format!("rank spec rate=`{value}` is not a number"))?
                }
                "max-dead" => {
                    spec.max_dead = value
                        .parse::<usize>()
                        .map_err(|_| format!("rank spec max-dead=`{value}` is not an integer"))?
                }
                "kill" => {
                    let (round, rank) = value
                        .split_once(':')
                        .ok_or_else(|| format!("rank spec kill=`{value}` is not ROUND:RANK"))?;
                    let round = round.trim().parse::<u64>().map_err(|_| {
                        format!("rank spec kill round `{}` is not an integer", round.trim())
                    })?;
                    let rank = rank.trim().parse::<usize>().map_err(|_| {
                        format!("rank spec kill rank `{}` is not an integer", rank.trim())
                    })?;
                    spec.kill.push((round, rank));
                }
                _ => {
                    return Err(format!(
                        "unknown rank spec key `{key}` (expected rate/max-dead/kill)"
                    ))
                }
            }
        }
        Ok(spec)
    }

    /// Range checks, in `FaultSpec::validate` style: rate in [0, 1].
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.rate) || !self.rate.is_finite() {
            return Err(format!(
                "rank death rate rate={} must be in [0, 1]",
                self.rate
            ));
        }
        Ok(())
    }

    /// Is this spec semantically empty — valid, but incapable of ever
    /// killing a rank? Such plans are normalized away before a run so
    /// both engines treat `--rank-spec rate=0` exactly like an absent
    /// plan.
    pub fn is_noop(&self) -> bool {
        self.rate == 0.0 && self.kill.is_empty()
    }
}

/// A seeded, deterministic rank-death schedule. Like [`FaultPlan`], a
/// pure function of its coordinates: every engine evaluates
/// [`RankPlan::dies_at`] independently and agrees on which ranks die at
/// which round boundary, without any coordination traffic.
#[derive(Clone, Debug, PartialEq)]
pub struct RankPlan {
    seed: u64,
    spec: RankSpec,
}

impl RankPlan {
    /// A plan drawing every death decision from `seed` under `spec`.
    pub fn new(seed: u64, spec: RankSpec) -> RankPlan {
        RankPlan { seed, spec }
    }

    /// The plan's rate, budget and pinned kills.
    pub fn spec(&self) -> &RankSpec {
        &self.spec
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Does `rank` die at the boundary before exchange round `round`?
    /// Pinned kills fire regardless of the drawn schedule; drawn deaths
    /// guard on `rate > 0` so a zero-rate plan never consults the RNG.
    pub fn dies_at(&self, round: u64, rank: usize) -> bool {
        if self
            .spec
            .kill
            .iter()
            .any(|&(ro, ra)| ro == round && ra == rank)
        {
            return true;
        }
        self.spec.rate > 0.0
            && unit_from_coords(self.seed ^ SALT_RANK, &[round, rank as u64]) < self.spec.rate
    }
}

/// Hash of one wire item, feeding the per-bucket [`ChecksumFrame`]. The
/// BSP engine moves typed payloads (no serialization), so the checksum is
/// computed over item hashes rather than a byte stream; the set of
/// implementors below covers every payload type the engines exchange.
pub trait WireHash {
    /// A 64-bit digest of this item's wire representation.
    fn wire_hash(&self) -> u64;
}

macro_rules! impl_wire_hash_int {
    ($($t:ty),*) => {$(
        impl WireHash for $t {
            #[inline]
            fn wire_hash(&self) -> u64 {
                dedukt_sim::rng::mix64(*self as u64)
            }
        }
    )*};
}
impl_wire_hash_int!(u8, u16, u32, u64, usize, i32, i64);

impl WireHash for u128 {
    #[inline]
    fn wire_hash(&self) -> u64 {
        dedukt_sim::rng::mix64((*self >> 64) as u64) ^ dedukt_sim::rng::mix64(*self as u64)
    }
}

impl<A: WireHash, B: WireHash> WireHash for (A, B) {
    #[inline]
    fn wire_hash(&self) -> u64 {
        dedukt_sim::rng::mix64(self.0.wire_hash().rotate_left(32) ^ self.1.wire_hash())
    }
}

/// Per-bucket checksum frame travelling alongside the payload (a small
/// fixed header, not charged as payload bytes — DESIGN.md §7). The
/// receiver recomputes the frame from the delivered items and discards
/// the bucket on mismatch; injected corruption flips the stored sum, so
/// detection exercises the real verification path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChecksumFrame {
    /// Item count of the bucket.
    pub len: u64,
    /// Order-sensitive mix64 fold of the items' wire hashes.
    pub sum: u64,
}

impl ChecksumFrame {
    /// Computes the frame for a bucket.
    pub fn compute<T: WireHash>(items: &[T]) -> ChecksumFrame {
        let mut sum = 0xC0DE_F00D_u64;
        for item in items {
            sum = dedukt_sim::rng::mix64(sum ^ item.wire_hash());
        }
        ChecksumFrame {
            len: items.len() as u64,
            sum,
        }
    }

    /// Does this frame match the delivered items?
    pub fn matches<T: WireHash>(&self, items: &[T]) -> bool {
        *self == ChecksumFrame::compute(items)
    }

    /// The frame after an in-flight bit flip the checksum is guaranteed
    /// to catch.
    pub fn corrupted(&self) -> ChecksumFrame {
        ChecksumFrame {
            len: self.len,
            sum: self.sum ^ 0x8000_0000_0000_0001,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_every_key() {
        let spec = FaultSpec::parse(
            "fail=0.1, corrupt=0.05, straggle=0.2, slow=4, retries=5, backoff=0.002",
        )
        .unwrap();
        assert_eq!(spec.fail_rate, 0.1);
        assert_eq!(spec.corrupt_rate, 0.05);
        assert_eq!(spec.straggle_rate, 0.2);
        assert_eq!(spec.straggle_factor, 4.0);
        assert_eq!(spec.max_retries, 5);
        assert_eq!(spec.backoff_secs, 0.002);
        spec.validate().unwrap();
    }

    #[test]
    fn parse_partial_spec_keeps_defaults() {
        let spec = FaultSpec::parse("fail=0.3").unwrap();
        assert_eq!(spec.fail_rate, 0.3);
        assert_eq!(spec.corrupt_rate, FaultSpec::default().corrupt_rate);
        assert_eq!(spec.max_retries, FaultSpec::default().max_retries);
    }

    #[test]
    fn parse_rejects_unknown_keys_and_garbage() {
        assert!(FaultSpec::parse("bogus=1")
            .unwrap_err()
            .contains("unknown fault spec key"));
        assert!(FaultSpec::parse("fail=abc")
            .unwrap_err()
            .contains("not a number"));
        assert!(FaultSpec::parse("retries=1.5")
            .unwrap_err()
            .contains("not an integer"));
        assert!(FaultSpec::parse("fail").unwrap_err().contains("key=value"));
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let s = FaultSpec {
            fail_rate: 1.5,
            ..FaultSpec::default()
        };
        assert!(s.validate().unwrap_err().contains("must be in [0, 1]"));
        let s = FaultSpec {
            max_retries: 0,
            ..FaultSpec::default()
        };
        assert!(s
            .validate()
            .unwrap_err()
            .contains("retries must be at least 1"));
        let s = FaultSpec {
            straggle_factor: 0.5,
            ..FaultSpec::default()
        };
        assert!(s.validate().unwrap_err().contains(">= 1"));
        let s = FaultSpec {
            fail_rate: 0.7,
            corrupt_rate: 0.7,
            ..FaultSpec::default()
        };
        assert!(s.validate().unwrap_err().contains("fail+corrupt"));
        let s = FaultSpec {
            backoff_secs: -1.0,
            ..FaultSpec::default()
        };
        assert!(s.validate().unwrap_err().contains("backoff"));
        FaultSpec::default().validate().unwrap();
        FaultSpec::none().validate().unwrap();
    }

    #[test]
    fn fates_are_deterministic_and_attempt_fresh() {
        let plan = FaultPlan::new(42, FaultSpec::parse("fail=0.4,corrupt=0.2").unwrap());
        for round in 0..4u64 {
            for src in 0..8 {
                for dst in 0..8 {
                    assert_eq!(
                        plan.bucket_fate(round, 0, src, dst),
                        plan.bucket_fate(round, 0, src, dst)
                    );
                }
            }
        }
        // Across 8×8×4 coordinates with fail+corrupt = 0.6, some bucket
        // must see a different fate on attempt 1 than on attempt 0.
        let differs = (0..8usize).any(|src| {
            (0..8usize)
                .any(|dst| plan.bucket_fate(0, 0, src, dst) != plan.bucket_fate(0, 1, src, dst))
        });
        assert!(differs, "attempts should draw fresh fates");
    }

    #[test]
    fn zero_rate_plan_never_faults() {
        let plan = FaultPlan::new(7, FaultSpec::none());
        for round in 0..8u64 {
            for src in 0..16 {
                for dst in 0..16 {
                    assert_eq!(plan.bucket_fate(round, 0, src, dst), BucketFate::Deliver);
                }
            }
            for rank in 0..16 {
                assert_eq!(plan.straggle_factor(round, rank), 1.0);
            }
        }
    }

    #[test]
    fn fate_distribution_tracks_rates() {
        let plan = FaultPlan::new(1234, FaultSpec::parse("fail=0.25,corrupt=0.25").unwrap());
        let mut tally = [0u32; 3];
        let n = 40_000u64;
        for i in 0..n {
            match plan.bucket_fate(i, 0, 0, 1) {
                BucketFate::Deliver => tally[0] += 1,
                BucketFate::FailSend => tally[1] += 1,
                BucketFate::Corrupt => tally[2] += 1,
            }
        }
        for (observed, expect) in tally.iter().zip([0.5, 0.25, 0.25]) {
            let frac = *observed as f64 / n as f64;
            assert!((frac - expect).abs() < 0.02, "tally {tally:?}");
        }
    }

    #[test]
    fn straggle_factor_tracks_rate() {
        let plan = FaultPlan::new(9, FaultSpec::parse("straggle=0.5,slow=8").unwrap());
        let n = 20_000u64;
        let slow = (0..n).filter(|&s| plan.straggle_factor(s, 3) > 1.0).count();
        let frac = slow as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "straggled {frac}");
        assert!((0..n).all(|s| {
            let f = plan.straggle_factor(s, 3);
            f == 1.0 || f == 8.0
        }));
    }

    #[test]
    fn checksum_catches_injected_corruption() {
        let items: Vec<u64> = (0..100).map(|i| i * 31).collect();
        let frame = ChecksumFrame::compute(&items);
        assert!(frame.matches(&items));
        assert!(!frame.corrupted().matches(&items));
        // Order-sensitive and length-sensitive.
        let mut swapped = items.clone();
        swapped.swap(3, 97);
        assert!(!frame.matches(&swapped));
        assert!(!frame.matches(&items[..99]));
        // Tuples (supermer payloads) hash too.
        let pairs: Vec<(u64, u8)> = (0..50).map(|i| (i as u64, (i % 7) as u8)).collect();
        let pf = ChecksumFrame::compute(&pairs);
        assert!(pf.matches(&pairs));
        let mut tweaked = pairs.clone();
        tweaked[10].1 ^= 1;
        assert!(!pf.matches(&tweaked));
        // u128 halves both contribute.
        let wide = vec![1u128 << 90, 5u128];
        let wf = ChecksumFrame::compute(&wide);
        assert!(wf.matches(&wide));
        assert!(!wf.matches(&[1u128 << 90, 4u128]));
    }

    #[test]
    fn empty_bucket_frame_is_stable() {
        let a: ChecksumFrame = ChecksumFrame::compute::<u64>(&[]);
        assert_eq!(a.len, 0);
        assert!(a.matches::<u64>(&[]));
    }

    #[test]
    fn rank_spec_parse_roundtrips_every_key() {
        let spec = RankSpec::parse("rate=0.1, max-dead=3, kill=1:4, kill=2:0").unwrap();
        assert_eq!(spec.rate, 0.1);
        assert_eq!(spec.max_dead, 3);
        assert_eq!(spec.kill, vec![(1, 4), (2, 0)]);
        spec.validate().unwrap();
    }

    #[test]
    fn rank_spec_parse_partial_keeps_defaults() {
        let spec = RankSpec::parse("rate=0.5").unwrap();
        assert_eq!(spec.rate, 0.5);
        assert_eq!(spec.max_dead, RankSpec::default().max_dead);
        assert!(spec.kill.is_empty());
    }

    #[test]
    fn rank_spec_parse_rejects_unknown_keys_and_garbage() {
        assert!(RankSpec::parse("bogus=1")
            .unwrap_err()
            .contains("unknown rank spec key"));
        assert!(RankSpec::parse("rate=abc")
            .unwrap_err()
            .contains("not a number"));
        assert!(RankSpec::parse("max-dead=1.5")
            .unwrap_err()
            .contains("not an integer"));
        assert!(RankSpec::parse("kill=3")
            .unwrap_err()
            .contains("ROUND:RANK"));
        assert!(RankSpec::parse("kill=a:0")
            .unwrap_err()
            .contains("not an integer"));
        assert!(RankSpec::parse("rate").unwrap_err().contains("key=value"));
    }

    #[test]
    fn rank_spec_validate_rejects_out_of_range() {
        let s = RankSpec {
            rate: 1.5,
            ..RankSpec::default()
        };
        assert!(s.validate().unwrap_err().contains("must be in [0, 1]"));
        let s = RankSpec {
            rate: f64::NAN,
            ..RankSpec::default()
        };
        assert!(s.validate().is_err());
        RankSpec::default().validate().unwrap();
        RankSpec::none().validate().unwrap();
    }

    #[test]
    fn rank_deaths_are_deterministic_and_pinned_kills_fire() {
        let plan = RankPlan::new(42, RankSpec::parse("rate=0.3,kill=2:5").unwrap());
        for round in 0..8u64 {
            for rank in 0..16 {
                assert_eq!(plan.dies_at(round, rank), plan.dies_at(round, rank));
            }
        }
        assert!(plan.dies_at(2, 5), "pinned kill must fire");
        // A pinned kill fires even on a zero-rate plan.
        let pinned = RankPlan::new(0, RankSpec::parse("rate=0,kill=1:3").unwrap());
        assert!(pinned.dies_at(1, 3));
        assert!(!pinned.dies_at(1, 2));
        assert!(!pinned.dies_at(0, 3));
    }

    #[test]
    fn zero_rate_rank_plan_never_kills() {
        let plan = RankPlan::new(7, RankSpec::none());
        for round in 0..32u64 {
            for rank in 0..64 {
                assert!(!plan.dies_at(round, rank));
            }
        }
    }

    #[test]
    fn rank_death_distribution_tracks_rate() {
        let plan = RankPlan::new(1234, RankSpec::parse("rate=0.25").unwrap());
        let n = 40_000u64;
        let dead = (0..n).filter(|&r| plan.dies_at(r, 3)).count();
        let frac = dead as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "died {frac}");
    }

    #[test]
    fn rank_deaths_do_not_alias_other_fault_streams() {
        // Same coordinates, different salts: death draws must not mirror
        // straggle draws.
        let fp = FaultPlan::new(9, FaultSpec::parse("straggle=0.5").unwrap());
        let rp = RankPlan::new(9, RankSpec::parse("rate=0.5").unwrap());
        let mirrored = (0..256usize).all(|r| (fp.straggle_factor(1, r) > 1.0) == rp.dies_at(1, r));
        assert!(!mirrored, "salt separation failed");
    }

    #[test]
    fn noop_specs_are_detected() {
        assert!(FaultSpec::none().is_noop());
        assert!(!FaultSpec::default().is_noop());
        assert!(FaultSpec::parse("fail=0,corrupt=0,straggle=0")
            .unwrap()
            .is_noop());
        // A straggle-only spec still perturbs timing — not a noop.
        assert!(!FaultSpec::parse("fail=0,corrupt=0,straggle=0.5")
            .unwrap()
            .is_noop());
        assert!(RankSpec::none().is_noop());
        assert!(!RankSpec::default().is_noop());
        assert!(RankSpec::parse("rate=0").unwrap().is_noop());
        assert!(!RankSpec::parse("rate=0,kill=0:1").unwrap().is_noop());
    }
}
