//! Cluster topology: how ranks map onto nodes.
//!
//! The paper's experiments place 6 GPU ranks per Summit node (one per V100)
//! or 42 CPU ranks per node (one per Power9 core), on up to 128 nodes
//! (§V-A). The topology determines which messages stay on-node (NVLink /
//! shared memory) and which cross the fat-tree (charged against the node's
//! injection bandwidth).

/// A flat nodes × ranks-per-node topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    /// Number of compute nodes.
    pub nodes: usize,
    /// Ranks on each node.
    pub ranks_per_node: usize,
}

impl Topology {
    /// Creates a topology; both dimensions must be non-zero.
    pub fn new(nodes: usize, ranks_per_node: usize) -> Topology {
        assert!(nodes > 0 && ranks_per_node > 0, "empty topology");
        Topology {
            nodes,
            ranks_per_node,
        }
    }

    /// Summit GPU placement: 6 ranks per node, one per V100 (§V-A).
    pub fn summit_gpu(nodes: usize) -> Topology {
        Topology::new(nodes, 6)
    }

    /// Summit CPU-baseline placement: 42 ranks per node, one per Power9
    /// core (§V-A).
    pub fn summit_cpu(nodes: usize) -> Topology {
        Topology::new(nodes, 42)
    }

    /// Total ranks.
    #[inline]
    pub fn nranks(&self) -> usize {
        self.nodes * self.ranks_per_node
    }

    /// The node hosting `rank`.
    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        debug_assert!(rank < self.nranks());
        rank / self.ranks_per_node
    }

    /// True if two ranks share a node.
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Iterates the ranks of `node`.
    pub fn ranks_of(&self, node: usize) -> std::ops::Range<usize> {
        debug_assert!(node < self.nodes);
        node * self.ranks_per_node..(node + 1) * self.ranks_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summit_presets_match_paper() {
        let g = Topology::summit_gpu(64);
        assert_eq!(g.nranks(), 384); // the paper's "384 GPUs"
        let c = Topology::summit_cpu(64);
        assert_eq!(c.nranks(), 2688); // "2,688 cores"
    }

    #[test]
    fn node_mapping() {
        let t = Topology::new(4, 6);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(5), 0);
        assert_eq!(t.node_of(6), 1);
        assert_eq!(t.node_of(23), 3);
        assert!(t.same_node(6, 11));
        assert!(!t.same_node(5, 6));
        assert_eq!(t.ranks_of(2), 12..18);
    }

    #[test]
    #[should_panic(expected = "empty topology")]
    fn zero_nodes_rejected() {
        Topology::new(0, 6);
    }
}
