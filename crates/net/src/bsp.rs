//! The BSP (bulk-synchronous parallel) engine.
//!
//! The paper's pipelines are bulk-synchronous MPI (§VI): every rank
//! computes, then everyone exchanges, then everyone computes again. This
//! engine exploits that structure to simulate thousands of ranks on one
//! host: a *superstep* runs every rank's compute task (in parallel on the
//! rayon pool), and collectives are performed centrally with the cost model
//! advancing each rank's simulated clock.
//!
//! Clock semantics: compute advances each rank's clock independently; a
//! collective first synchronizes (no rank completes an Alltoallv before the
//! slowest participant has contributed) and then charges each rank its
//! modelled collective time.

use crate::cost::Network;
use crate::fault::{BucketFate, ChecksumFrame, FaultPlan, WireHash};
use crate::route::ExchangeRoute;
use crate::stats::CommStats;
use dedukt_sim::{
    Journal, JournalEvent, MetricsRegistry, SimClock, SimTime, TraceCounter, TraceEvent,
};
use rayon::prelude::*;
use std::sync::Arc;

/// Fault-injection state attached to a world by
/// [`BspWorld::enable_faults`].
#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    /// Active exchange context `(round, attempt)` set by
    /// [`BspWorld::fault_context`]. Fates are applied **only** inside a
    /// context — a caller that opens one is promising it has a retry
    /// path for the undelivered buckets. Contextless collectives (e.g.
    /// the minimizer prepass) always deliver.
    ctx: Option<(u64, u32)>,
    /// Fates of the first collective in the current context, reused by
    /// subsequent collectives so paired payloads (supermer words +
    /// lengths) share one fate and stay zip-aligned.
    cached_fates: Option<Vec<Vec<BucketFate>>>,
    /// Compute steps seen, the straggler schedule's step coordinate.
    compute_steps: u64,
    /// Cumulative buckets re-sent on retry attempts, per source rank —
    /// the "retry buckets" trace counter lane.
    retry_buckets_cum: Vec<u64>,
}

/// Durations of one superstep, aggregated over ranks.
///
/// Per-module breakdowns (the paper's Figs. 3/7) report *typical* rank
/// time — the mean — because a bar chart of module times cannot include
/// straggler waits (the paper's count bar grows only 23-27% under a
/// 2.37× load imbalance, so theirs doesn't either). The makespan (max)
/// is what end-to-end latency pays and is tracked by the rank clocks.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepTimes {
    /// Mean per-rank duration.
    pub mean: SimTime,
    /// Slowest rank's duration.
    pub max: SimTime,
}

impl StepTimes {
    /// Aggregates a per-rank duration list.
    pub fn from_times(times: &[SimTime]) -> StepTimes {
        if times.is_empty() {
            return StepTimes::default();
        }
        let total: SimTime = times.iter().copied().sum();
        StepTimes {
            mean: total / times.len() as f64,
            max: times.iter().copied().fold(SimTime::ZERO, SimTime::max),
        }
    }
}

/// Result of one simulated Alltoallv.
#[derive(Debug)]
pub struct ExchangeOutcome<T> {
    /// `recv[dst][src]` — the payload rank `src` sent to rank `dst`.
    /// Buckets lost to an injected fault arrive empty here and show up in
    /// [`ExchangeOutcome::undelivered`] instead.
    pub recv: Vec<Vec<Vec<T>>>,
    /// `undelivered[src][dst]` — buckets that failed to send or arrived
    /// corrupt this attempt, returned in send-matrix shape so the caller
    /// can pass them straight back to the next attempt's Alltoallv. All
    /// empty on a fault-free fabric or outside a fault context.
    pub undelivered: Vec<Vec<Vec<T>>>,
    /// Buckets that failed to send this attempt.
    pub failed_sends: u64,
    /// Buckets delivered with a checksum mismatch and discarded this
    /// attempt.
    pub corrupt_buckets: u64,
    /// Per-rank *charged* time for this collective, measured from the
    /// synchronized start (straggler waits are reflected in the clocks,
    /// not here — phases are reported barrier-to-barrier, as the paper's
    /// breakdowns are). Equals the wire time for a blocking
    /// [`BspWorld::alltoallv`]; for
    /// [`BspWorld::alltoallv_overlapped`] it is max(wire, hidden compute).
    pub elapsed: Vec<SimTime>,
    /// Aggregated charged times.
    pub times: StepTimes,
    /// Aggregated *pure wire* times, overlap excluded (`== times` for a
    /// blocking exchange). Volume accounting (Fig. 8) reads these.
    pub wire: StepTimes,
}

/// A bulk-synchronous world of simulated ranks.
#[derive(Debug)]
pub struct BspWorld {
    net: Network,
    clocks: Vec<SimClock>,
    stats: CommStats,
    trace: Vec<TraceEvent>,
    counters: Vec<TraceCounter>,
    sent_bytes_cum: Vec<u64>,
    metrics: Option<Arc<MetricsRegistry>>,
    step_counter: usize,
    fault: Option<FaultState>,
    journal: Option<Arc<Journal>>,
    /// Superstep sequence number for journaled compute spans; advances
    /// only while a journal is attached (it is observable nowhere else).
    journal_seq: u64,
}

impl BspWorld {
    /// Creates a world over `net`'s topology with all clocks at zero.
    pub fn new(net: Network) -> BspWorld {
        let n = net.topology.nranks();
        BspWorld {
            net,
            clocks: vec![SimClock::new(); n],
            stats: CommStats::new(n),
            trace: Vec::new(),
            counters: Vec::new(),
            sent_bytes_cum: vec![0; n],
            metrics: None,
            step_counter: 0,
            fault: None,
            journal: None,
            journal_seq: 0,
        }
    }

    /// Attaches a metrics registry: subsequent supersteps and collectives
    /// record per-rank counters and gauges into it. All simulated times
    /// come from the analytic cost models, so attaching a registry never
    /// changes them.
    pub fn enable_metrics(&mut self, registry: Arc<MetricsRegistry>) {
        self.metrics = Some(registry);
    }

    /// Attaches a run journal: every subsequent clock charge — compute
    /// spans, per-rank collective charges, backoff advances — is recorded
    /// as a typed [`JournalEvent`]. Like metrics, the journal is a pure
    /// observer: simulated times come from the cost models and cannot be
    /// perturbed by recording them.
    pub fn enable_journal(&mut self, journal: Arc<Journal>) {
        self.journal = Some(journal);
    }

    /// Attaches a deterministic fault plan. Stragglers stretch subsequent
    /// compute steps immediately; bucket fates (failed sends, corruption)
    /// fire only inside a [`BspWorld::fault_context`], because applying
    /// them requires the caller to own a retry path.
    pub fn enable_faults(&mut self, plan: FaultPlan) {
        let n = self.nranks();
        self.fault = Some(FaultState {
            plan,
            ctx: None,
            cached_fates: None,
            compute_steps: 0,
            retry_buckets_cum: vec![0; n],
        });
    }

    /// Opens (or re-keys) a fault context: collectives until the next
    /// [`BspWorld::fault_context`]/[`BspWorld::clear_fault_context`] call
    /// draw bucket fates at `(round, attempt)`. The first collective in a
    /// context fixes the fate matrix; later collectives in the same
    /// context reuse it, so multi-collective payloads (supermer words +
    /// lengths) fail or deliver together. No-op without a fault plan.
    pub fn fault_context(&mut self, round: u64, attempt: u32) {
        if let Some(fs) = &mut self.fault {
            fs.ctx = Some((round, attempt));
            fs.cached_fates = None;
        }
    }

    /// Closes the fault context: collectives go back to always delivering.
    pub fn clear_fault_context(&mut self) {
        if let Some(fs) = &mut self.fault {
            fs.ctx = None;
            fs.cached_fates = None;
        }
    }

    /// Advances every rank's clock by `dt`, recording one `name` trace
    /// span per rank — used to charge retry backoff to the sim clock.
    pub fn advance_all(&mut self, name: &str, dt: SimTime) {
        if dt.is_zero() {
            return;
        }
        let step = self.next_journal_step();
        for rank in 0..self.clocks.len() {
            self.trace.push(TraceEvent {
                name: name.to_string(),
                rank,
                start: self.clocks[rank].now(),
                duration: dt,
            });
            if let Some(j) = &self.journal {
                let start = self.clocks[rank].now().as_secs();
                j.push(JournalEvent::Span {
                    step,
                    rank,
                    phase: name.to_string(),
                    start,
                    end: start + dt.as_secs(),
                });
            }
            self.clocks[rank].advance(dt);
        }
    }

    /// Next superstep id for journaled spans (0 when no journal is
    /// attached — the sequence is observable only through the journal).
    fn next_journal_step(&mut self) -> u64 {
        if self.journal.is_some() {
            self.journal_seq += 1;
            self.journal_seq
        } else {
            0
        }
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.clocks.len()
    }

    /// The network (topology + parameters).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Accumulated communication statistics.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Per-rank simulated clocks.
    pub fn clocks(&self) -> &[SimClock] {
        &self.clocks
    }

    /// The latest rank clock — the simulated makespan so far.
    pub fn elapsed(&self) -> SimTime {
        self.clocks
            .iter()
            .map(|c| c.now())
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Runs one compute superstep: `f(rank)` returns the rank's output and
    /// its simulated compute duration. Returns all outputs plus the
    /// aggregated per-rank durations.
    pub fn compute_step<T, F>(&mut self, f: F) -> (Vec<T>, StepTimes)
    where
        T: Send,
        F: Fn(usize) -> (T, SimTime) + Sync,
    {
        self.step_counter += 1;
        let name = format!("compute#{}", self.step_counter);
        self.compute_step_named(&name, f)
    }

    /// Like [`BspWorld::compute_step`], with a phase name for the run
    /// trace (see [`BspWorld::take_trace`]).
    pub fn compute_step_named<T, F>(&mut self, name: &str, f: F) -> (Vec<T>, StepTimes)
    where
        T: Send,
        F: Fn(usize) -> (T, SimTime) + Sync,
    {
        let results: Vec<(T, SimTime)> = (0..self.nranks()).into_par_iter().map(&f).collect();
        let metrics = self.metrics.clone();
        let straggle: Option<(FaultPlan, u64)> = self.fault.as_mut().map(|fs| {
            fs.compute_steps += 1;
            (fs.plan, fs.compute_steps - 1)
        });
        let step = self.next_journal_step();
        let mut outputs = Vec::with_capacity(results.len());
        let mut times = Vec::with_capacity(results.len());
        for (rank, (out, dt)) in results.into_iter().enumerate() {
            // A scheduled straggler stretches this rank's step — timing
            // only, the computed payload is untouched.
            let dt = match &straggle {
                Some((plan, step)) => {
                    let factor = plan.straggle_factor(*step, rank);
                    if factor != 1.0 {
                        SimTime::from_secs(dt.as_secs() * factor)
                    } else {
                        dt
                    }
                }
                None => dt,
            };
            if !dt.is_zero() {
                self.trace.push(TraceEvent {
                    name: name.to_string(),
                    rank,
                    start: self.clocks[rank].now(),
                    duration: dt,
                });
                if let Some(j) = &self.journal {
                    let start = self.clocks[rank].now().as_secs();
                    j.push(JournalEvent::Span {
                        step,
                        rank,
                        phase: name.to_string(),
                        start,
                        end: start + dt.as_secs(),
                    });
                }
            }
            if let Some(m) = &metrics {
                m.gauge_add("compute_seconds_total", Some(rank), dt.as_secs());
            }
            self.clocks[rank].advance(dt);
            times.push(dt);
            outputs.push(out);
        }
        (outputs, StepTimes::from_times(&times))
    }

    /// Drains the recorded trace (compute steps and collectives, one span
    /// per rank per step), e.g. for
    /// [`dedukt_sim::trace::write_chrome_trace`].
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.trace)
    }

    /// Drains the recorded counter samples (cumulative Alltoallv bytes per
    /// rank, one sample per collective), for
    /// [`dedukt_sim::trace::write_chrome_trace_with`].
    pub fn take_trace_counters(&mut self) -> Vec<TraceCounter> {
        std::mem::take(&mut self.counters)
    }

    /// Records one sample on a named counter lane at `rank`'s current
    /// simulated time. Lets layers above the wire (e.g. the counting
    /// stage's spill accounting) feed the same Chrome-trace counter
    /// machinery as the built-in byte and retry lanes.
    pub fn push_counter_sample(&mut self, name: &str, rank: usize, value: f64) {
        self.counters.push(TraceCounter {
            name: name.to_string(),
            rank,
            ts: self.clocks[rank].now(),
            value,
        });
    }

    /// Performs an Alltoallv: `send[src][dst]` is the payload `src` sends
    /// to `dst`. Payloads move (no copies); the cost model charges each
    /// rank its simulated exchange time.
    pub fn alltoallv<T: Send + WireHash>(&mut self, send: Vec<Vec<Vec<T>>>) -> ExchangeOutcome<T> {
        self.exchange(send, None, None)
    }

    /// Non-blocking-style Alltoallv for the double-buffered round
    /// pipeline: rank `r` starts the collective and keeps computing
    /// `hidden[r]` worth of work (typically the previous round's count
    /// kernel on its own stream) while the wire is busy. The rank is
    /// charged `max(wire, hidden)` — whichever finishes last gates the
    /// superstep — instead of their sum. Volumes, statistics, and payload
    /// routing are identical to [`BspWorld::alltoallv`].
    pub fn alltoallv_overlapped<T: Send + WireHash>(
        &mut self,
        send: Vec<Vec<Vec<T>>>,
        hidden: &[SimTime],
    ) -> ExchangeOutcome<T> {
        assert_eq!(
            hidden.len(),
            self.nranks(),
            "need one hidden-compute time per rank"
        );
        self.exchange(send, Some(hidden), None)
    }

    /// An Alltoallv of *codec-compressed* payloads: the wire moves (and
    /// the cost model charges) the physical `send` bytes, while
    /// `logical_bytes[src][dst]` declares the pre-codec volume each
    /// bucket represents. Statistics stay physical (what actually moved);
    /// the journal records `bytes` = logical next to `comp_bytes` =
    /// physical, so `dedukt analyze` can report the compression ratio.
    /// With `hidden`, behaves like [`BspWorld::alltoallv_overlapped`].
    pub fn alltoallv_compressed<T: Send + WireHash>(
        &mut self,
        send: Vec<Vec<Vec<T>>>,
        hidden: Option<&[SimTime]>,
        logical_bytes: &[Vec<u64>],
    ) -> ExchangeOutcome<T> {
        if let Some(h) = hidden {
            assert_eq!(
                h.len(),
                self.nranks(),
                "need one hidden-compute time per rank"
            );
        }
        assert_eq!(
            logical_bytes.len(),
            self.nranks(),
            "need one logical-byte row per rank"
        );
        self.exchange(send, hidden, Some(logical_bytes))
    }

    fn exchange<T: Send + WireHash>(
        &mut self,
        send: Vec<Vec<Vec<T>>>,
        hidden: Option<&[SimTime]>,
        logical_bytes: Option<&[Vec<u64>]>,
    ) -> ExchangeOutcome<T> {
        let p = self.nranks();
        assert_eq!(send.len(), p, "need one send vector per rank");
        for row in &send {
            assert_eq!(row.len(), p, "each rank must address every rank");
        }
        let elem = std::mem::size_of::<T>() as u64;
        let send_bytes: Vec<Vec<u64>> = send
            .iter()
            .map(|row| row.iter().map(|v| v.len() as u64 * elem).collect())
            .collect();
        let topo = self.net.topology;
        let route = ExchangeRoute::from_algo(self.net.params.algo);
        self.stats
            .record_alltoallv(&send_bytes, |r| topo.node_of(r));
        if route == ExchangeRoute::Hierarchical {
            // Every payload byte crosses the intra-node tier twice:
            // gather to the source leader, scatter from the destination
            // leader (node-local traffic included — it routes via the
            // leader too, which is exactly what the cost model's
            // aggregation overhead charges for).
            self.stats.intra_tier_bytes += 2 * send_bytes.iter().flatten().sum::<u64>();
            // One coalesced frame per (node, node) pair with any payload.
            for sn in 0..topo.nodes {
                for dn in 0..topo.nodes {
                    if sn == dn {
                        continue;
                    }
                    let nonempty = topo
                        .ranks_of(sn)
                        .any(|s| topo.ranks_of(dn).any(|d| send_bytes[s][d] > 0));
                    if nonempty {
                        self.stats.coalesced_messages += 1;
                    }
                }
            }
        }
        if hidden.is_some() {
            self.stats.overlapped_collectives += 1;
        }
        // Fates for this attempt, fixed before the wire: every attempted
        // byte is charged whether or not its bucket survives. Inside a
        // fault context the first collective's matrix is cached so paired
        // collectives share fates. The route decides the granularity:
        // direct draws per rank pair; hierarchical draws one fate per
        // coalesced inter-node frame (shared by all its buckets) and per
        // bucket on the intra-node tier.
        let fates: Option<Vec<Vec<BucketFate>>> = match &mut self.fault {
            Some(fs) if fs.ctx.is_some() => Some(match &fs.cached_fates {
                Some(m) => m.clone(),
                None => {
                    let (round, attempt) = fs.ctx.expect("guarded above");
                    let m: Vec<Vec<BucketFate>> = (0..p)
                        .map(|src| {
                            (0..p)
                                .map(|dst| {
                                    route.bucket_fate(&fs.plan, &topo, round, attempt, src, dst)
                                })
                                .collect()
                        })
                        .collect();
                    fs.cached_fates = Some(m.clone());
                    m
                }
            }),
            _ => None,
        };
        let is_retry = self
            .fault
            .as_ref()
            .and_then(|fs| fs.ctx)
            .is_some_and(|(_, attempt)| attempt > 0);
        if is_retry {
            // Retry traffic: charged to the wire like any collective, but
            // tracked separately from first-attempt volume.
            self.stats.retry_bytes += send_bytes.iter().flatten().sum::<u64>();
        }
        let wire_times = self.net.alltoallv_times(&send_bytes);
        // Per-rank intra-node-tier share of the wire time: the leader
        // gather/scatter overhead under hierarchical routing, all-zero
        // for direct (where the single-tier arithmetic below reduces
        // bit-for-bit to the pre-routing formula).
        let intra_times = match route {
            ExchangeRoute::Direct => vec![SimTime::ZERO; p],
            ExchangeRoute::Hierarchical => self.net.alltoallv_intra_times(&send_bytes),
        };
        let sent_per_rank: Vec<u64> = send_bytes.iter().map(|row| row.iter().sum()).collect();
        // On-node vs off-node split of each rank's sent bytes (physical).
        let intra_sent_per_rank: Vec<u64> = send_bytes
            .iter()
            .enumerate()
            .map(|(src, row)| {
                row.iter()
                    .enumerate()
                    .filter(|(dst, _)| topo.same_node(src, *dst))
                    .map(|(_, &b)| b)
                    .sum()
            })
            .collect();
        // Logical (pre-codec) per-rank volumes; identical to the physical
        // ones unless the caller declared a compressed payload.
        let logical_sent_per_rank: Vec<u64> = match logical_bytes {
            Some(m) => m.iter().map(|row| row.iter().sum()).collect(),
            None => sent_per_rank.clone(),
        };
        let logical_off_per_rank: Vec<u64> = match logical_bytes {
            Some(m) => m
                .iter()
                .enumerate()
                .map(|(src, row)| {
                    row.iter()
                        .enumerate()
                        .filter(|(dst, _)| !topo.same_node(src, *dst))
                        .map(|(_, &b)| b)
                        .sum()
                })
                .collect(),
            None => sent_per_rank
                .iter()
                .zip(&intra_sent_per_rank)
                .map(|(&t, &i)| t - i)
                .collect(),
        };

        // Synchronize: nobody finishes before the slowest rank has arrived.
        let start = self.elapsed();
        let metrics = self.metrics.clone();
        if let Some(m) = &metrics {
            m.counter_add("exchange_collectives_total", None, 1);
            // Zero-padded so the superstep series sorts numerically in
            // exports (the registry is name-ordered).
            m.counter_add(
                &format!("exchange_superstep_bytes:{:04}", self.stats.collectives),
                None,
                sent_per_rank.iter().sum(),
            );
        }
        let mut elapsed = Vec::with_capacity(p);
        let mut wire = Vec::with_capacity(p);
        for (rank, wt) in wire_times.iter().enumerate() {
            let hid = hidden.map_or(SimTime::ZERO, |h| h[rank]);
            // Overlap hides compute behind the *injection* tier only —
            // the intra-node gather must finish before there is anything
            // to overlap with. Under direct routing `intra` is zero and
            // this is exactly the pre-routing `max(wire, hidden)`.
            let intra = intra_times[rank];
            let inject = *wt - intra;
            let charged = intra + SimTime::max(inject, hid);
            self.trace.push(TraceEvent {
                name: "alltoallv".to_string(),
                rank,
                start,
                duration: *wt,
            });
            if !hid.is_zero() {
                // The hidden count kernel runs on the rank's device stream
                // while the wire is busy; it shares the collective's start.
                self.trace.push(TraceEvent {
                    name: "count(overlap)".to_string(),
                    rank,
                    start,
                    duration: hid,
                });
            }
            if let Some(m) = &metrics {
                // How long this rank idled at the barrier waiting for the
                // slowest participant (SimTime subtraction floors at zero).
                let wait = start - self.clocks[rank].now();
                m.counter_add("exchange_bytes_total", Some(rank), sent_per_rank[rank]);
                // Always recorded (zero included) so the on-node/off-node
                // split is pinned in the metrics schema.
                m.counter_add(
                    "exchange_intra_node_bytes_total",
                    Some(rank),
                    intra_sent_per_rank[rank],
                );
                if is_retry {
                    m.counter_add(
                        "exchange_retry_bytes_total",
                        Some(rank),
                        sent_per_rank[rank],
                    );
                }
                m.gauge_add("alltoallv_wire_seconds_total", Some(rank), wt.as_secs());
                m.gauge_add("alltoallv_wait_seconds_total", Some(rank), wait.as_secs());
                if hidden.is_some() {
                    // Compute seconds this rank did not pay for serially:
                    // the portion of the hidden work the wire absorbed.
                    m.gauge_add(
                        "overlap_hidden_seconds_total",
                        Some(rank),
                        SimTime::min(*wt, hid).as_secs(),
                    );
                }
            }
            if let Some(j) = &self.journal {
                match route {
                    ExchangeRoute::Direct => j.push(JournalEvent::Collective {
                        step: self.stats.collectives,
                        rank,
                        label: "alltoallv".to_string(),
                        start: start.as_secs(),
                        wire: wt.as_secs(),
                        hidden: hid.as_secs(),
                        charged: charged.as_secs(),
                        bytes: logical_sent_per_rank[rank],
                        tier: "inject".to_string(),
                        comp_bytes: sent_per_rank[rank],
                    }),
                    ExchangeRoute::Hierarchical => {
                        // Two stacked events per rank, sharing the step:
                        // the intra-node gather/scatter, then the
                        // injection-tier frame exchange. Their charges sum
                        // to the clock advance, so journal replay keeps
                        // reconstructing the makespan exactly.
                        j.push(JournalEvent::Collective {
                            step: self.stats.collectives,
                            rank,
                            label: "alltoallv".to_string(),
                            start: start.as_secs(),
                            wire: intra.as_secs(),
                            hidden: 0.0,
                            charged: intra.as_secs(),
                            bytes: 2 * logical_sent_per_rank[rank],
                            tier: "intra".to_string(),
                            comp_bytes: 2 * sent_per_rank[rank],
                        });
                        j.push(JournalEvent::Collective {
                            step: self.stats.collectives,
                            rank,
                            label: "alltoallv".to_string(),
                            start: (start + intra).as_secs(),
                            wire: inject.as_secs(),
                            hidden: hid.as_secs(),
                            charged: SimTime::max(inject, hid).as_secs(),
                            bytes: logical_off_per_rank[rank],
                            tier: "inject".to_string(),
                            comp_bytes: sent_per_rank[rank] - intra_sent_per_rank[rank],
                        });
                    }
                }
            }
            self.clocks[rank].sync_to(start + charged);
            self.sent_bytes_cum[rank] += sent_per_rank[rank];
            self.counters.push(TraceCounter {
                name: "alltoallv bytes".to_string(),
                rank,
                ts: start + charged,
                value: self.sent_bytes_cum[rank] as f64,
            });
            elapsed.push(charged);
            wire.push(*wt);
        }
        let times = StepTimes::from_times(&elapsed);
        let wire = StepTimes::from_times(&wire);

        if is_retry {
            // "retry buckets" counter lane: cumulative buckets each source
            // rank had to re-offer, sampled at this attempt's finish.
            let fs = self.fault.as_mut().expect("is_retry implies fault state");
            for (rank, row) in send_bytes.iter().enumerate() {
                fs.retry_buckets_cum[rank] += row.iter().filter(|&&b| b > 0).count() as u64;
            }
            let cum = fs.retry_buckets_cum.clone();
            for (rank, &buckets) in cum.iter().enumerate() {
                self.counters.push(TraceCounter {
                    name: "retry buckets".to_string(),
                    rank,
                    ts: self.clocks[rank].now(),
                    value: buckets as f64,
                });
            }
        }

        // Transpose payloads: recv[dst][src] = send[src][dst], applying
        // this attempt's bucket fates. A failed or corrupt bucket arrives
        // empty and is handed back in `undelivered[src][dst]` for the
        // caller's next attempt; corruption is *detected* by the receiver
        // recomputing the checksum frame, never silently consumed.
        let mut recv: Vec<Vec<Vec<T>>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
        let mut undelivered: Vec<Vec<Vec<T>>> = (0..p)
            .map(|_| (0..p).map(|_| Vec::new()).collect())
            .collect();
        let mut failed_sends = 0u64;
        let mut corrupt_buckets = 0u64;
        for (src, row) in send.into_iter().enumerate() {
            for (dst, payload) in row.into_iter().enumerate() {
                // Nothing sent, nothing to fault.
                let fate = match &fates {
                    Some(m) if !payload.is_empty() => m[src][dst],
                    _ => BucketFate::Deliver,
                };
                match fate {
                    BucketFate::Deliver if fates.is_none() => recv[dst].push(payload),
                    BucketFate::Deliver => {
                        // Receiver-side verification: recompute the frame
                        // over the delivered items.
                        let frame = ChecksumFrame::compute(&payload);
                        debug_assert!(frame.matches(&payload));
                        recv[dst].push(payload);
                    }
                    BucketFate::FailSend => {
                        failed_sends += 1;
                        recv[dst].push(Vec::new());
                        undelivered[src][dst] = payload;
                    }
                    BucketFate::Corrupt => {
                        // The wire flipped bits; the frame no longer
                        // matches, so the receiver discards the bucket.
                        let frame = ChecksumFrame::compute(&payload).corrupted();
                        assert!(!frame.matches(&payload), "corrupted frame must not verify");
                        corrupt_buckets += 1;
                        recv[dst].push(Vec::new());
                        undelivered[src][dst] = payload;
                    }
                }
            }
        }
        self.stats.failed_sends += failed_sends;
        self.stats.corrupt_buckets += corrupt_buckets;

        ExchangeOutcome {
            recv,
            undelivered,
            failed_sends,
            corrupt_buckets,
            elapsed,
            times,
            wire,
        }
    }

    /// Synchronizes all ranks (barrier): clocks align to the slowest rank
    /// plus the modelled barrier latency.
    pub fn barrier(&mut self) -> SimTime {
        let start = self.elapsed();
        let dt = self.net.barrier_time();
        let t = start + dt;
        if let Some(j) = &self.journal {
            for rank in 0..self.clocks.len() {
                j.push(JournalEvent::Collective {
                    step: self.stats.collectives,
                    rank,
                    label: "barrier".to_string(),
                    start: start.as_secs(),
                    wire: dt.as_secs(),
                    hidden: 0.0,
                    charged: dt.as_secs(),
                    bytes: 0,
                    tier: "inject".to_string(),
                    comp_bytes: 0,
                });
            }
        }
        for c in &mut self.clocks {
            c.sync_to(t);
        }
        self.net.barrier_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Network;

    fn world(nodes: usize) -> BspWorld {
        BspWorld::new(Network::summit_gpu(nodes))
    }

    #[test]
    fn compute_step_runs_every_rank() {
        let mut w = world(2); // 12 ranks
        let (outs, times) = w.compute_step(|r| (r * 10, SimTime::from_millis(r as f64)));
        assert_eq!(outs, (0..12).map(|r| r * 10).collect::<Vec<_>>());
        assert_eq!(times.max, SimTime::from_millis(11.0));
        assert!((times.mean.as_millis() - 5.5).abs() < 1e-9);
        assert_eq!(w.clocks()[3].now(), SimTime::from_millis(3.0));
        assert_eq!(w.elapsed(), SimTime::from_millis(11.0));
    }

    #[test]
    fn alltoallv_transposes_payloads() {
        let mut w = world(1); // 6 ranks
        let p = w.nranks();
        // send[src][dst] = vec![src*100 + dst]
        let send: Vec<Vec<Vec<u64>>> = (0..p)
            .map(|src| (0..p).map(|dst| vec![(src * 100 + dst) as u64]).collect())
            .collect();
        let out = w.alltoallv(send);
        for dst in 0..p {
            for src in 0..p {
                assert_eq!(out.recv[dst][src], vec![(src * 100 + dst) as u64]);
            }
        }
    }

    #[test]
    fn exchange_synchronizes_clocks() {
        let mut w = world(2);
        // Rank 0 is slow in compute; everyone else idles.
        w.compute_step(|r| {
            (
                (),
                if r == 0 {
                    SimTime::from_secs(1.0)
                } else {
                    SimTime::ZERO
                },
            )
        });
        let p = w.nranks();
        let send: Vec<Vec<Vec<u8>>> = vec![vec![vec![1u8; 100]; p]; p];
        let out = w.alltoallv(send);
        // Every rank's clock is now >= 1 s (waited for rank 0).
        for c in w.clocks() {
            assert!(c.now().as_secs() >= 1.0);
        }
        // Elapsed is pure wire time (uniform matrix → identical per rank);
        // the straggler wait shows up in the clocks instead.
        assert_eq!(out.elapsed[0], out.elapsed[1]);
        assert_eq!(
            out.times.max,
            out.elapsed
                .iter()
                .copied()
                .fold(SimTime::ZERO, SimTime::max)
        );
        assert!(out.times.mean <= out.times.max);
    }

    #[test]
    fn stats_accumulate_across_exchanges() {
        let mut w = world(1);
        let p = w.nranks();
        let send: Vec<Vec<Vec<u64>>> = vec![vec![vec![7u64; 3]; p]; p];
        w.alltoallv(send.clone());
        w.alltoallv(send);
        assert_eq!(w.stats().collectives, 2);
        assert_eq!(w.stats().total_bytes, 2 * (p * p * 3 * 8) as u64);
        assert_eq!(w.stats().off_node_bytes, 0); // single node
    }

    #[test]
    fn barrier_aligns_clocks() {
        let mut w = world(1);
        w.compute_step(|r| ((), SimTime::from_millis(r as f64)));
        w.barrier();
        let t0 = w.clocks()[0].now();
        assert!(w.clocks().iter().all(|c| c.now() == t0));
        assert!(t0 >= SimTime::from_millis(5.0));
    }

    #[test]
    #[should_panic(expected = "one send vector per rank")]
    fn wrong_send_shape_panics() {
        let mut w = world(1);
        w.alltoallv(vec![vec![vec![0u8]]]);
    }

    #[test]
    fn trace_records_steps_and_collectives() {
        let mut w = world(1);
        let p = w.nranks();
        w.compute_step_named("parse", |r| ((), SimTime::from_millis(1.0 + r as f64)));
        w.alltoallv(vec![vec![vec![1u64; 10]; p]; p]);
        let trace = w.take_trace();
        // One parse span per rank plus one alltoallv span per rank.
        assert_eq!(trace.len(), 2 * p);
        assert_eq!(trace.iter().filter(|e| e.name == "parse").count(), p);
        assert_eq!(trace.iter().filter(|e| e.name == "alltoallv").count(), p);
        // Parse spans start at 0; the collective starts after the slowest.
        for e in &trace {
            if e.name == "parse" {
                assert!(e.start.is_zero());
            } else {
                assert_eq!(e.start, SimTime::from_millis(6.0)); // rank 5 parse
            }
        }
        // Draining empties the trace.
        assert!(w.take_trace().is_empty());
    }

    #[test]
    fn overlapped_exchange_charges_max_of_wire_and_hidden() {
        let send = |p: usize| -> Vec<Vec<Vec<u64>>> { vec![vec![vec![7u64; 50]; p]; p] };
        // Reference: the blocking wire time for this matrix.
        let mut plain = world(1);
        let p = plain.nranks();
        let out = plain.alltoallv(send(p));
        let wire = out.times.max;
        assert!(wire > SimTime::ZERO);
        assert_eq!(out.wire.mean, out.times.mean); // blocking: wire == charged

        // Hidden compute much longer than the wire: charged = hidden.
        let mut w = world(1);
        let big = SimTime::from_secs(wire.as_secs() * 10.0);
        let out = w.alltoallv_overlapped(send(p), &vec![big; p]);
        assert_eq!(out.times.max, big);
        assert_eq!(out.wire.max, wire); // pure wire unchanged
        assert_eq!(w.elapsed(), big);

        // Hidden compute shorter than the wire: fully absorbed, charged =
        // wire — identical clocks to the blocking exchange.
        let mut w = world(1);
        let small = SimTime::from_secs(wire.as_secs() * 0.1);
        let out = w.alltoallv_overlapped(send(p), &vec![small; p]);
        assert_eq!(out.times.max, wire);
        assert_eq!(w.elapsed(), plain.elapsed());

        // Payload routing and byte accounting are those of a blocking
        // exchange; only the overlap counter differs.
        for dst in 0..p {
            for src in 0..p {
                assert_eq!(out.recv[dst][src], vec![7u64; 50]);
            }
        }
        assert_eq!(w.stats().total_bytes, plain.stats().total_bytes);
        assert_eq!(w.stats().overlapped_collectives, 1);
        assert_eq!(plain.stats().overlapped_collectives, 0);
        // The hidden kernel shows up as its own trace span.
        let trace = w.take_trace();
        assert_eq!(
            trace.iter().filter(|e| e.name == "count(overlap)").count(),
            p
        );
    }

    #[test]
    fn metrics_record_overlap_savings() {
        use dedukt_sim::MetricValue;
        let mut w = world(1);
        let reg = Arc::new(MetricsRegistry::new());
        w.enable_metrics(Arc::clone(&reg));
        let p = w.nranks();
        let send: Vec<Vec<Vec<u64>>> = vec![vec![vec![1u64; 40]; p]; p];
        let hidden = vec![SimTime::from_secs(100.0); p]; // dwarfs the wire
        let out = w.alltoallv_overlapped(send, &hidden);
        let snap = reg.snapshot();
        // The absorbed portion is the wire time (hidden > wire here).
        match snap.get("overlap_hidden_seconds_total", Some(0)) {
            Some(MetricValue::Gauge(v)) => {
                assert!((v - out.wire.max.as_secs()).abs() < 1e-12, "saved {v}");
            }
            other => panic!("missing overlap gauge: {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "hidden-compute time per rank")]
    fn overlapped_exchange_rejects_wrong_hidden_shape() {
        let mut w = world(1);
        let p = w.nranks();
        let send: Vec<Vec<Vec<u64>>> = vec![vec![vec![1u64]; p]; p];
        w.alltoallv_overlapped(send, &[SimTime::ZERO]);
    }

    #[test]
    fn faults_need_a_context_to_fire() {
        use crate::fault::{FaultPlan, FaultSpec};
        let mut w = world(1);
        w.enable_faults(FaultPlan::new(
            3,
            FaultSpec::parse("fail=1.0,straggle=0").unwrap(),
        ));
        let p = w.nranks();
        // No fault context: even fail=1.0 delivers everything.
        let out = w.alltoallv(vec![vec![vec![5u64; 4]; p]; p]);
        assert_eq!(out.failed_sends, 0);
        assert!(out.undelivered.iter().flatten().all(|b| b.is_empty()));
        for dst in 0..p {
            for src in 0..p {
                assert_eq!(out.recv[dst][src], vec![5u64; 4]);
            }
        }
        // Inside a context, every non-empty bucket fails.
        w.fault_context(0, 0);
        let out = w.alltoallv(vec![vec![vec![5u64; 4]; p]; p]);
        assert_eq!(out.failed_sends, (p * p) as u64);
        assert!(out.recv.iter().flatten().all(|b| b.is_empty()));
        assert!(out
            .undelivered
            .iter()
            .flatten()
            .all(|b| b == &vec![5u64; 4]));
        assert_eq!(w.stats().failed_sends, (p * p) as u64);
        // Clearing the context restores perfect delivery.
        w.clear_fault_context();
        let out = w.alltoallv(vec![vec![vec![5u64; 4]; p]; p]);
        assert_eq!(out.failed_sends, 0);
    }

    #[test]
    fn retry_loop_recovers_every_bucket() {
        use crate::fault::{FaultPlan, FaultSpec};
        let mut w = world(1);
        let spec = FaultSpec::parse("fail=0.4,corrupt=0.3,straggle=0").unwrap();
        w.enable_faults(FaultPlan::new(1234, spec));
        let p = w.nranks();
        // Tagged payloads so we can verify exact reassembly.
        let tag = |src: usize, dst: usize| vec![(src * 100 + dst) as u64; 3];
        let mut pending: Vec<Vec<Vec<u64>>> = (0..p)
            .map(|src| (0..p).map(|dst| tag(src, dst)).collect())
            .collect();
        let mut delivered: Vec<Vec<Vec<u64>>> = (0..p)
            .map(|_| (0..p).map(|_| Vec::new()).collect())
            .collect();
        let mut attempts = 0u32;
        let mut retried_buckets = 0u64;
        loop {
            w.fault_context(0, attempts);
            let out = w.alltoallv(pending);
            for (dst, row) in out.recv.into_iter().enumerate() {
                for (src, bucket) in row.into_iter().enumerate() {
                    if !bucket.is_empty() {
                        assert!(delivered[dst][src].is_empty(), "double delivery");
                        delivered[dst][src] = bucket;
                    }
                }
            }
            if out.failed_sends + out.corrupt_buckets == 0 {
                break;
            }
            retried_buckets += out.failed_sends + out.corrupt_buckets;
            pending = out.undelivered;
            attempts += 1;
            assert!(attempts < 64, "fates must eventually deliver");
        }
        assert!(attempts > 0, "rates this high must fault at least once");
        assert!(retried_buckets > 0);
        for (dst, row) in delivered.iter().enumerate() {
            for (src, bucket) in row.iter().enumerate() {
                assert_eq!(*bucket, tag(src, dst));
            }
        }
        // All attempted bytes are in total_bytes; the retry share is
        // exactly the re-offered buckets' bytes.
        assert_eq!(w.stats().retry_bytes, retried_buckets * 3 * 8);
        assert_eq!(
            w.stats().failed_sends + w.stats().corrupt_buckets,
            retried_buckets
        );
        assert!(w.stats().total_bytes > w.stats().retry_bytes);
        // Retry attempts left "retry buckets" counter samples.
        let lanes = w.take_trace_counters();
        assert!(lanes.iter().any(|c| c.name == "retry buckets"));
    }

    #[test]
    fn paired_collectives_share_fates_within_a_context() {
        use crate::fault::{FaultPlan, FaultSpec};
        let mut w = world(1);
        w.enable_faults(FaultPlan::new(
            77,
            FaultSpec::parse("fail=0.5,straggle=0").unwrap(),
        ));
        let p = w.nranks();
        w.fault_context(9, 0);
        let words = w.alltoallv(vec![vec![vec![1u64; 2]; p]; p]);
        let lens = w.alltoallv(vec![vec![vec![1u8; 2]; p]; p]);
        for dst in 0..p {
            for src in 0..p {
                assert_eq!(
                    words.recv[dst][src].is_empty(),
                    lens.recv[dst][src].is_empty(),
                    "words and lengths must share a fate ({src}->{dst})"
                );
            }
        }
        // Re-keying the context redraws fates; with fail=0.5 over 36
        // buckets the new draw must differ somewhere.
        w.fault_context(10, 0);
        let again = w.alltoallv(vec![vec![vec![1u64; 2]; p]; p]);
        let differs = (0..p).any(|dst| {
            (0..p).any(|src| words.recv[dst][src].is_empty() != again.recv[dst][src].is_empty())
        });
        assert!(differs);
    }

    #[test]
    fn stragglers_stretch_compute_only() {
        use crate::fault::{FaultPlan, FaultSpec};
        let mut plain = world(1);
        let mut faulty = world(1);
        faulty.enable_faults(FaultPlan::new(
            5,
            FaultSpec::parse("straggle=0.5,slow=10").unwrap(),
        ));
        let step =
            |w: &mut BspWorld| w.compute_step_named("work", |r| (r * 2, SimTime::from_millis(1.0)));
        let (outs_a, times_a) = step(&mut plain);
        let (outs_b, times_b) = step(&mut faulty);
        // Payloads identical, times stretched for the scheduled ranks.
        assert_eq!(outs_a, outs_b);
        assert!(times_b.max > times_a.max);
        assert_eq!(times_b.max, SimTime::from_millis(10.0));
        // Zero-rate plan leaves timing bit-identical.
        let mut zero = world(1);
        zero.enable_faults(FaultPlan::new(5, FaultSpec::none()));
        let (_, times_z) = step(&mut zero);
        assert_eq!(times_z.max, times_a.max);
        assert_eq!(times_z.mean, times_a.mean);
    }

    #[test]
    fn advance_all_charges_every_clock() {
        let mut w = world(1);
        w.advance_all("retry-backoff", SimTime::from_millis(2.0));
        assert!(w
            .clocks()
            .iter()
            .all(|c| c.now() == SimTime::from_millis(2.0)));
        let trace = w.take_trace();
        assert_eq!(trace.len(), w.nranks());
        assert!(trace.iter().all(|e| e.name == "retry-backoff"));
        // Zero advance records nothing.
        w.advance_all("noop", SimTime::ZERO);
        assert!(w.take_trace().is_empty());
    }

    #[test]
    fn journal_records_every_clock_charge() {
        use dedukt_sim::{analyze, Journal};
        let mut w = world(1);
        let j = Arc::new(Journal::new());
        w.enable_journal(Arc::clone(&j));
        let p = w.nranks();
        w.compute_step_named("parse", |r| ((), SimTime::from_millis(1.0 + r as f64)));
        let send: Vec<Vec<Vec<u64>>> = vec![vec![vec![7u64; 16]; p]; p];
        w.alltoallv(send);
        w.advance_all("retry-backoff", SimTime::from_millis(2.0));
        w.compute_step_named("count", |_| ((), SimTime::from_millis(3.0)));
        let events = j.take();
        let spans = events
            .iter()
            .filter(|e| matches!(e, JournalEvent::Span { .. }))
            .count();
        let colls = events
            .iter()
            .filter(|e| matches!(e, JournalEvent::Collective { .. }))
            .count();
        assert_eq!(spans, 3 * p, "parse + backoff + count spans per rank");
        assert_eq!(colls, p, "one collective event per rank");
        // The analyzer can replay the journal: every charge is covered,
        // so the reconstructed makespan matches the world's clocks.
        let a = analyze(&events).unwrap();
        assert!(
            (a.makespan - w.elapsed().as_secs()).abs() < 1e-15,
            "journal replay {} != world {}",
            a.makespan,
            w.elapsed().as_secs()
        );
        a.check_invariants().unwrap();
        assert!(a.critical_len <= a.makespan + 1e-15);
    }

    #[test]
    fn journal_is_a_pure_observer() {
        use dedukt_sim::Journal;
        let run = |journal: bool| {
            let mut w = world(1);
            let j = Arc::new(Journal::new());
            if journal {
                w.enable_journal(Arc::clone(&j));
            }
            let p = w.nranks();
            w.compute_step_named("parse", |r| ((), SimTime::from_millis(r as f64)));
            let out = w.alltoallv(vec![vec![vec![5u64; 8]; p]; p]);
            (
                out.times.mean,
                out.times.max,
                w.elapsed(),
                w.take_trace(),
                w.take_trace_counters(),
            )
        };
        let plain = run(false);
        let journaled = run(true);
        assert_eq!(plain.0, journaled.0);
        assert_eq!(plain.1, journaled.1);
        assert_eq!(plain.2, journaled.2);
        assert_eq!(plain.3, journaled.3, "trace must be bit-identical");
        assert_eq!(plain.4, journaled.4, "counter lanes must be bit-identical");
    }

    #[test]
    fn metrics_record_exchange_and_straggler_waits() {
        use dedukt_sim::MetricValue;
        let mut w = world(1);
        let reg = Arc::new(MetricsRegistry::new());
        w.enable_metrics(Arc::clone(&reg));
        let p = w.nranks();
        // Rank 0 computes for 1 s; everyone else waits at the collective.
        w.compute_step(|r| {
            (
                (),
                if r == 0 {
                    SimTime::from_secs(1.0)
                } else {
                    SimTime::ZERO
                },
            )
        });
        let send: Vec<Vec<Vec<u64>>> = vec![vec![vec![7u64; 3]; p]; p];
        w.alltoallv(send.clone());
        w.alltoallv(send);
        let snap = reg.snapshot();
        // Per-rank bytes sum to the world's total exchange bytes.
        assert_eq!(
            snap.counter_total("exchange_bytes_total"),
            w.stats().total_bytes
        );
        assert_eq!(
            snap.get("exchange_collectives_total", None),
            Some(&MetricValue::Counter(2))
        );
        // One per-superstep byte series per collective, each half the total.
        assert_eq!(
            snap.counter_total("exchange_superstep_bytes:0001"),
            w.stats().total_bytes / 2
        );
        assert_eq!(
            snap.counter_total("exchange_superstep_bytes:0002"),
            w.stats().total_bytes / 2
        );
        // Rank 0 was the straggler: it never waited, everyone else did.
        let wait = |r: usize| match snap.get("alltoallv_wait_seconds_total", Some(r)) {
            Some(MetricValue::Gauge(v)) => *v,
            other => panic!("missing wait gauge for rank {r}: {other:?}"),
        };
        assert_eq!(wait(0), 0.0);
        for r in 1..p {
            assert!(wait(r) >= 1.0, "rank {r} waited {}", wait(r));
        }
        // Compute seconds were recorded for the straggler.
        assert_eq!(
            snap.get("compute_seconds_total", Some(0)),
            Some(&MetricValue::Gauge(1.0))
        );
        // The counter lane carries one cumulative-bytes sample per rank per
        // collective, recorded whether or not metrics are attached.
        let counters = w.take_trace_counters();
        assert_eq!(counters.len(), 2 * p);
        let last = counters.last().unwrap();
        assert_eq!(last.name, "alltoallv bytes");
        assert_eq!(last.value, (w.stats().total_bytes / p as u64) as f64);
        assert!(w.take_trace_counters().is_empty());
    }
}
