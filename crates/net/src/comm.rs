//! The rank-side communicator interface.
//!
//! Rank code written against [`Communicator`] runs unchanged on the
//! threaded engine (real channels) — and mirrors what the same code looks
//! like against real MPI. The BSP engine does not implement this trait; it
//! inverts control (the driver owns the collective), which is what lets it
//! scale to thousands of ranks.

/// MPI-flavoured collectives available to rank code.
pub trait Communicator {
    /// This rank's index in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks in the communicator.
    fn size(&self) -> usize;

    /// Personalized all-to-all of `u64` payloads: `send[dst]` goes to
    /// `dst`; returns `recv[src]` from every `src`. All ranks must call
    /// collectively. (MPI_Alltoallv over 64-bit words — the k-mer
    /// exchange of Algorithm 1.)
    fn alltoallv_u64(&self, send: Vec<Vec<u64>>) -> Vec<Vec<u64>>;

    /// Personalized all-to-all of raw byte payloads (the supermer-length
    /// exchange of Algorithm 2).
    fn alltoallv_bytes(&self, send: Vec<Vec<u8>>) -> Vec<Vec<u8>>;

    /// Global sum of one `u64`, returned on every rank.
    fn allreduce_sum(&self, value: u64) -> u64;

    /// Gathers one `u64` per rank at `root`; returns `Some(values)` (in
    /// rank order) on the root, `None` elsewhere.
    fn gather(&self, value: u64, root: usize) -> Option<Vec<u64>>;

    /// Broadcasts `value` from `root` to every rank; returns the root's
    /// value everywhere.
    fn broadcast(&self, value: u64, root: usize) -> u64;

    /// Blocks until every rank has arrived.
    fn barrier(&self);
}
