//! Rank-based message-passing runtime with a Summit-like network model.
//!
//! Stand-in for the paper's MPI layer (Spectrum MPI on Summit's dual-rail
//! EDR fat-tree; see DESIGN.md §2). Two engines share one cost model:
//!
//! * [`bsp`] — the **BSP executor**: ranks are tasks executed per
//!   superstep, collectives are performed centrally. Scales to thousands
//!   of simulated ranks on one host (the paper's CPU baseline uses 2,688
//!   ranks), which free-running threads cannot.
//! * [`threaded`] — ranks as real OS threads exchanging data through
//!   channels, for moderate rank counts; used to cross-validate the BSP
//!   engine and to run the examples "live".
//!
//! The [`cost`] module prices collectives with an α-β model over the
//! [`topology`] (per-node injection bandwidth of 23 GB/s, NVLink on-node,
//! per §V-A), and [`stats`] counts exact communication volumes — the
//! numbers behind the paper's Table II.

#![warn(missing_docs)]

pub mod bsp;
pub mod comm;
pub mod cost;
pub mod fault;
pub mod route;
pub mod stats;
pub mod threaded;
pub mod topology;

pub use bsp::BspWorld;
pub use comm::Communicator;
pub use cost::NetworkParams;
pub use fault::{BucketFate, ChecksumFrame, FaultPlan, FaultSpec, RankPlan, RankSpec, WireHash};
pub use route::ExchangeRoute;
pub use stats::CommStats;
pub use threaded::ThreadedWorld;
pub use topology::Topology;
