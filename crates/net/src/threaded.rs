//! The threaded engine: ranks as OS threads, collectives over channels.
//!
//! Every pair of ranks gets a dedicated FIFO channel; because all ranks
//! execute the same sequence of collectives (the MPI contract), matching
//! sends and receives pair up deterministically. Used for moderate rank
//! counts (≤ a few hundred) and for cross-validating the BSP engine.

use crate::comm::Communicator;
use crate::fault::{BucketFate, ChecksumFrame, FaultPlan, WireHash};
use crate::route::ExchangeRoute;
use crate::topology::Topology;
use crossbeam::channel::{unbounded, Receiver, Sender};
use dedukt_sim::{Journal, JournalEvent};
use std::cell::Cell;
use std::sync::{Arc, Barrier};

/// Payload carried between ranks.
enum Payload {
    Bytes(Vec<u8>),
    Words(Vec<u64>),
    Scalar(u64),
    /// A byte bucket travelling with its checksum frame (fault runs).
    FramedBytes(Vec<u8>, ChecksumFrame),
    /// A word bucket travelling with its checksum frame (fault runs).
    FramedWords(Vec<u64>, ChecksumFrame),
    /// The attempt's send failed in flight; the receiver learns only that
    /// nothing arrived and must wait for the next attempt.
    FailedSend,
}

/// Header-capable payload element: hierarchical relay frames pack their
/// `(src, dst, len)` headers as ordinary payload elements, so coalesced
/// frames reuse the existing [`Payload`] variants and checksum framing
/// unchanged.
trait Lane: WireHash + Copy {
    fn push_u64(buf: &mut Vec<Self>, v: u64);
    fn read_u64(buf: &[Self], pos: &mut usize) -> u64;
}

impl Lane for u64 {
    fn push_u64(buf: &mut Vec<u64>, v: u64) {
        buf.push(v);
    }

    fn read_u64(buf: &[u64], pos: &mut usize) -> u64 {
        let v = buf[*pos];
        *pos += 1;
        v
    }
}

impl Lane for u8 {
    fn push_u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    fn read_u64(buf: &[u8], pos: &mut usize) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&buf[*pos..*pos + 8]);
        *pos += 8;
        u64::from_le_bytes(b)
    }
}

/// Packs `(src, dst, bucket)` entries into one relay frame. The empty
/// entry list packs to the empty payload, so node pairs with no traffic
/// keep the "nothing on the wire can fail" fault semantics.
fn pack_frame<T: Lane>(entries: &[(usize, usize, Vec<T>)]) -> Vec<T> {
    if entries.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    T::push_u64(&mut out, entries.len() as u64);
    for (src, dst, bucket) in entries {
        T::push_u64(&mut out, *src as u64);
        T::push_u64(&mut out, *dst as u64);
        T::push_u64(&mut out, bucket.len() as u64);
        out.extend_from_slice(bucket);
    }
    out
}

/// Exact inverse of [`pack_frame`].
fn unpack_frame<T: Lane>(frame: &[T]) -> Vec<(usize, usize, Vec<T>)> {
    if frame.is_empty() {
        return Vec::new();
    }
    let mut pos = 0usize;
    let n = T::read_u64(frame, &mut pos) as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let src = T::read_u64(frame, &mut pos) as usize;
        let dst = T::read_u64(frame, &mut pos) as usize;
        let len = T::read_u64(frame, &mut pos) as usize;
        out.push((src, dst, frame[pos..pos + len].to_vec()));
        pos += len;
    }
    assert_eq!(pos, frame.len(), "trailing elements in relay frame");
    out
}

/// Per-rank fault-injection state: the shared plan plus this rank's view
/// of the schedule. Both endpoints of every channel evaluate the *same*
/// pure [`FaultPlan`], so no acknowledgement traffic is needed — sender
/// and receiver independently agree on each bucket's per-attempt fate.
struct FaultCtx {
    plan: FaultPlan,
    /// Fault-aware collectives completed (the fate schedule's `round`
    /// coordinate, matching the BSP engine's `fault_context` round).
    round: Cell<u64>,
    /// Failed or corrupt bucket arrivals observed by this rank as a
    /// receiver — one per retry the matching sender had to perform.
    retries: Cell<u64>,
    /// Optional flight recorder: every observed failed/corrupt arrival
    /// becomes a [`JournalEvent::Retry`]. The threaded engine has no
    /// simulated clock, so recorded backoff is always zero.
    journal: Option<Arc<Journal>>,
}

impl FaultCtx {
    /// Records one failed or corrupt arrival in the attached journal, if
    /// any. `attempt` is the sender-side attempt index that produced the
    /// bad delivery; the retry it forces is attempt `attempt + 1`.
    fn observe_retry(&self, round: u64, attempt: u32, failed: u64, corrupt: u64) {
        if let Some(j) = &self.journal {
            j.push(JournalEvent::Retry {
                round,
                attempt: attempt + 1,
                failed,
                corrupt,
                backoff: 0.0,
            });
        }
    }
}

/// A per-rank handle implementing [`Communicator`] over channels.
pub struct ThreadedComm {
    rank: usize,
    size: usize,
    /// `to[dst]` sends to rank `dst`.
    to: Vec<Sender<Payload>>,
    /// `from[src]` receives from rank `src`.
    from: Vec<Receiver<Payload>>,
    barrier: Arc<Barrier>,
    fault: Option<FaultCtx>,
    /// How Alltoallv payloads travel ([`ExchangeRoute::Direct`] unless
    /// the world was launched with [`ThreadedWorld::run_routed`]).
    route: ExchangeRoute,
    /// Node layout; required (and present) whenever `route` is
    /// hierarchical.
    topo: Option<Topology>,
}

/// Hang guard for fault-run collectives: with any survivable fault rates
/// the per-pair retry loop finishes in a handful of attempts, so hitting
/// this bound means the plan can never deliver (e.g. fail=1).
const MAX_FAULT_ATTEMPTS: u32 = 1000;

impl ThreadedComm {
    fn send_to(&self, dst: usize, p: Payload) {
        self.to[dst].send(p).expect("peer rank hung up");
    }

    fn recv_from(&self, src: usize) -> Payload {
        self.from[src].recv().expect("peer rank hung up")
    }

    /// Failed or corrupt bucket arrivals this rank has observed — the
    /// threaded engine's analogue of `CommStats::failed_sends +
    /// corrupt_buckets`, summed over receiving ranks.
    pub fn fault_retries(&self) -> u64 {
        self.fault.as_ref().map_or(0, |c| c.retries.get())
    }

    /// One fault-aware Alltoallv: every pair `(self → dst, src → self)`
    /// runs its own deterministic retry loop. On each attempt a pending
    /// pair moves exactly one message (framed payload, corrupt-framed
    /// payload, or a [`Payload::FailedSend`] marker), so matched
    /// send/receive counts keep the unbounded FIFO channels deadlock-free;
    /// a pair leaves the loop at its first [`BucketFate::Deliver`] draw,
    /// the same attempt index at which the BSP engine's retry loop
    /// re-delivers that bucket. Empty buckets always deliver on attempt 0
    /// (nothing on the wire can fail).
    fn faulty_alltoallv<T: WireHash>(
        &self,
        ctx: &FaultCtx,
        send: Vec<Vec<T>>,
        wrap: impl Fn(Vec<T>, ChecksumFrame) -> Payload,
        unwrap: impl Fn(Payload) -> Option<(Vec<T>, ChecksumFrame)>,
        clone_bucket: impl Fn(&[T]) -> Vec<T>,
    ) -> Vec<Vec<T>> {
        let round = ctx.round.get();
        ctx.round.set(round + 1);
        let peers: Vec<usize> = (0..self.size).collect();
        self.retry_exchange(
            ctx,
            round,
            &peers,
            send,
            |attempt, dst| ctx.plan.bucket_fate(round, attempt, self.rank, dst),
            wrap,
            unwrap,
            clone_bucket,
        )
    }

    /// The deterministic per-pair retry protocol over an arbitrary peer
    /// set: `send[i]` goes to `peers[i]`, the returned buckets arrive
    /// from `peers[i]`. Each pending pair moves exactly one message per
    /// attempt (framed payload, corrupt-framed payload, or a
    /// [`Payload::FailedSend`] marker), so matched send/receive counts
    /// keep the unbounded FIFO channels deadlock-free; a pair leaves the
    /// loop at its first [`BucketFate::Deliver`] draw from `fate`, the
    /// same attempt index at which the BSP engine's retry loop
    /// re-delivers that bucket. Empty buckets always deliver on attempt 0
    /// (nothing on the wire can fail).
    ///
    /// Direct routing runs this over every rank with per-bucket fates;
    /// hierarchical routing runs it twice — once over this node's ranks
    /// (per-bucket fates, intra-node tier) and once between node leaders
    /// (per-coalesced-frame fates, injection tier).
    #[allow(clippy::too_many_arguments)]
    fn retry_exchange<T: WireHash>(
        &self,
        ctx: &FaultCtx,
        round: u64,
        peers: &[usize],
        send: Vec<Vec<T>>,
        fate: impl Fn(u32, usize) -> BucketFate,
        wrap: impl Fn(Vec<T>, ChecksumFrame) -> Payload,
        unwrap: impl Fn(Payload) -> Option<(Vec<T>, ChecksumFrame)>,
        clone_bucket: impl Fn(&[T]) -> Vec<T>,
    ) -> Vec<Vec<T>> {
        assert_eq!(send.len(), peers.len(), "one bucket per peer");
        let mut pending_out: Vec<Option<Vec<T>>> = send.into_iter().map(Some).collect();
        let mut result: Vec<Option<Vec<T>>> = peers.iter().map(|_| None).collect();
        let mut pending_in: Vec<bool> = vec![true; peers.len()];
        for attempt in 0..MAX_FAULT_ATTEMPTS {
            if pending_out.iter().all(Option::is_none) && result.iter().all(Option::is_some) {
                return result.into_iter().map(Option::unwrap).collect();
            }
            for (i, slot) in pending_out.iter_mut().enumerate() {
                let Some(payload) = slot else {
                    continue;
                };
                let dst = peers[i];
                let fate = if payload.is_empty() {
                    BucketFate::Deliver
                } else {
                    fate(attempt, dst)
                };
                match fate {
                    BucketFate::Deliver => {
                        let p = slot.take().expect("guarded above");
                        let frame = ChecksumFrame::compute(&p);
                        self.send_to(dst, wrap(p, frame));
                    }
                    BucketFate::Corrupt => {
                        // The bucket crosses the wire with a bad frame;
                        // the sender keeps its copy for the retry.
                        let frame = ChecksumFrame::compute(payload).corrupted();
                        self.send_to(dst, wrap(clone_bucket(payload), frame));
                    }
                    BucketFate::FailSend => self.send_to(dst, Payload::FailedSend),
                }
            }
            for (i, pending) in pending_in.iter_mut().enumerate() {
                if !*pending {
                    continue;
                }
                match self.recv_from(peers[i]) {
                    Payload::FailedSend => {
                        ctx.retries.set(ctx.retries.get() + 1);
                        ctx.observe_retry(round, attempt, 1, 0);
                    }
                    other => {
                        let (items, frame) =
                            unwrap(other).expect("collective mismatch: expected framed payload");
                        if frame.matches(&items) {
                            result[i] = Some(items);
                            *pending = false;
                        } else {
                            // Receiver-side checksum verification caught
                            // the corruption; discard and await a resend.
                            ctx.retries.set(ctx.retries.get() + 1);
                            ctx.observe_retry(round, attempt, 0, 1);
                        }
                    }
                }
            }
        }
        panic!(
            "fault plan never delivered: a bucket survived {MAX_FAULT_ATTEMPTS} attempts \
             (are fail+corrupt rates at 1?)"
        );
    }

    /// Fault-free hierarchical Alltoallv (DESIGN.md §10): same-node
    /// buckets travel directly (the physical content is identical either
    /// way; only the simulated byte accounting distinguishes the NVLink
    /// tier, and this engine has no clock), off-node rows gather to the
    /// node leader, leaders exchange one coalesced frame per (node, node)
    /// pair, and the receiving leader scatters buckets to their final
    /// ranks.
    ///
    /// Channel-ordering contract (unbounded FIFO channels, so only the
    /// per-channel message *order* matters): every rank sends its
    /// same-node buckets before its gather frame, and consumes same-node
    /// buckets before the leader consumes gathers — each local→leader
    /// channel therefore carries `[bucket, gather]` and each
    /// leader→local channel `[bucket, scatter]`, always drained in send
    /// order.
    fn relay_alltoallv<T: Lane>(
        &self,
        topo: &Topology,
        mut send: Vec<Vec<T>>,
        wrap: impl Fn(Vec<T>) -> Payload,
        unwrap: impl Fn(Payload) -> Option<Vec<T>>,
    ) -> Vec<Vec<T>> {
        let my_node = topo.node_of(self.rank);
        let leader = ExchangeRoute::leader_of(topo, my_node);
        let local = topo.ranks_of(my_node);
        // 1. Same-node buckets, directly to their final ranks.
        for dst in local.clone() {
            self.send_to(dst, wrap(std::mem::take(&mut send[dst])));
        }
        // 2. Gather the non-empty off-node rows to the node leader.
        let mut gathered: Vec<(usize, usize, Vec<T>)> = Vec::new();
        for (d, bucket) in send.iter_mut().enumerate().take(self.size) {
            if !local.contains(&d) && !bucket.is_empty() {
                gathered.push((self.rank, d, std::mem::take(bucket)));
            }
        }
        self.send_to(leader, wrap(pack_frame(&gathered)));
        // 3. Receive same-node buckets (all sent in step 1 before any
        //    rank blocked).
        let mut result: Vec<Option<Vec<T>>> = (0..self.size).map(|_| None).collect();
        for src in local.clone() {
            result[src] =
                Some(unwrap(self.recv_from(src)).expect("collective mismatch: expected bucket"));
        }
        // 4. Leader relay: regroup gathers into one coalesced frame per
        //    remote node, exchange leader-to-leader, scatter per dst.
        if self.rank == leader {
            let mut per_node: Vec<Vec<(usize, usize, Vec<T>)>> = vec![Vec::new(); topo.nodes];
            for src in local.clone() {
                let frame = unwrap(self.recv_from(src))
                    .expect("collective mismatch: expected gather frame");
                for e in unpack_frame(&frame) {
                    per_node[topo.node_of(e.1)].push(e);
                }
            }
            for node in (0..topo.nodes).filter(|&n| n != my_node) {
                let frame = pack_frame(&per_node[node]);
                self.send_to(ExchangeRoute::leader_of(topo, node), wrap(frame));
            }
            let mut per_dst: Vec<Vec<(usize, usize, Vec<T>)>> =
                vec![Vec::new(); topo.ranks_per_node];
            for node in (0..topo.nodes).filter(|&n| n != my_node) {
                let frame = unwrap(self.recv_from(ExchangeRoute::leader_of(topo, node)))
                    .expect("collective mismatch: expected leader frame");
                for e in unpack_frame(&frame) {
                    per_dst[e.1 - local.start].push(e);
                }
            }
            for dst in local.clone() {
                let frame = pack_frame(&per_dst[dst - local.start]);
                self.send_to(dst, wrap(frame));
            }
        }
        // 5. Scatter: off-node buckets arrive via the leader; off-node
        //    pairs that sent nothing stay empty.
        let frame =
            unwrap(self.recv_from(leader)).expect("collective mismatch: expected scatter frame");
        for (src, dst, bucket) in unpack_frame(&frame) {
            debug_assert_eq!(dst, self.rank, "scatter frame misrouted");
            result[src] = Some(bucket);
        }
        result
            .into_iter()
            .map(|slot| slot.unwrap_or_default())
            .collect()
    }

    /// Hierarchical Alltoallv under a fault plan. Fate granularity
    /// matches the BSP engine exactly (both evaluate
    /// [`ExchangeRoute::bucket_fate`] at the same coordinates): one fate
    /// per bucket for same-node pairs, one fate per coalesced
    /// (node, node) frame on the injection tier — all buckets of a frame
    /// fail or deliver together, and a retry resends only the failed
    /// frames. The gather-to-leader and scatter-from-leader hops are
    /// reliable bookkeeping (a cross-node bucket draws only its frame's
    /// fate, never an additional intra-node one).
    ///
    /// Channel-ordering contract: the gather frame is the *first*
    /// message on each local→leader channel and the leader drains every
    /// gather before entering the same-node retry loop; the scatter
    /// frame is the *last* message on each leader→local channel and each
    /// rank only receives it after its own retry loop finished.
    /// Leader-to-leader channels carry only injection-tier frames.
    #[allow(clippy::too_many_arguments)]
    fn relay_alltoallv_faulty<T: Lane>(
        &self,
        ctx: &FaultCtx,
        topo: &Topology,
        mut send: Vec<Vec<T>>,
        wrap: impl Fn(Vec<T>) -> Payload,
        unwrap: impl Fn(Payload) -> Option<Vec<T>>,
        wrap_framed: impl Fn(Vec<T>, ChecksumFrame) -> Payload,
        unwrap_framed: impl Fn(Payload) -> Option<(Vec<T>, ChecksumFrame)>,
    ) -> Vec<Vec<T>> {
        let round = ctx.round.get();
        ctx.round.set(round + 1);
        let route = ExchangeRoute::Hierarchical;
        let my_node = topo.node_of(self.rank);
        let leader = ExchangeRoute::leader_of(topo, my_node);
        let local = topo.ranks_of(my_node);
        // 1. Reliable gather of the non-empty off-node rows.
        let mut gathered: Vec<(usize, usize, Vec<T>)> = Vec::new();
        for (d, bucket) in send.iter_mut().enumerate().take(self.size) {
            if !local.contains(&d) && !bucket.is_empty() {
                gathered.push((self.rank, d, std::mem::take(bucket)));
            }
        }
        self.send_to(leader, wrap(pack_frame(&gathered)));
        // 2. Leader drains every gather frame before the same-node retry
        //    loop starts consuming the same channels.
        let mut per_node: Vec<Vec<(usize, usize, Vec<T>)>> = vec![Vec::new(); topo.nodes];
        if self.rank == leader {
            for src in local.clone() {
                let frame = unwrap(self.recv_from(src))
                    .expect("collective mismatch: expected gather frame");
                for e in unpack_frame(&frame) {
                    per_node[topo.node_of(e.1)].push(e);
                }
            }
        }
        // 3. Same-node buckets: per-bucket retry at rank coordinates —
        //    identical fates to direct routing.
        let local_peers: Vec<usize> = local.clone().collect();
        let local_send: Vec<Vec<T>> = local
            .clone()
            .map(|dst| std::mem::take(&mut send[dst]))
            .collect();
        let local_recv = self.retry_exchange(
            ctx,
            round,
            &local_peers,
            local_send,
            |attempt, dst| route.bucket_fate(&ctx.plan, topo, round, attempt, self.rank, dst),
            &wrap_framed,
            &unwrap_framed,
            |b: &[T]| b.to_vec(),
        );
        let mut result: Vec<Option<Vec<T>>> = (0..self.size).map(|_| None).collect();
        for (bucket, src) in local_recv.into_iter().zip(local.clone()) {
            result[src] = Some(bucket);
        }
        // 4. Injection tier: leaders run the same retry protocol over
        //    coalesced frames, one fate per (node, node) frame.
        if self.rank == leader {
            let remote: Vec<usize> = (0..topo.nodes)
                .filter(|&n| n != my_node)
                .map(|n| ExchangeRoute::leader_of(topo, n))
                .collect();
            let frames: Vec<Vec<T>> = (0..topo.nodes)
                .filter(|&n| n != my_node)
                .map(|n| pack_frame(&per_node[n]))
                .collect();
            let recv_frames = self.retry_exchange(
                ctx,
                round,
                &remote,
                frames,
                |attempt, dst| route.bucket_fate(&ctx.plan, topo, round, attempt, self.rank, dst),
                &wrap_framed,
                &unwrap_framed,
                |b: &[T]| b.to_vec(),
            );
            // 5. Reliable scatter to the final ranks.
            let mut per_dst: Vec<Vec<(usize, usize, Vec<T>)>> =
                vec![Vec::new(); topo.ranks_per_node];
            for frame in recv_frames {
                for e in unpack_frame(&frame) {
                    per_dst[e.1 - local.start].push(e);
                }
            }
            for dst in local.clone() {
                let frame = pack_frame(&per_dst[dst - local.start]);
                self.send_to(dst, wrap(frame));
            }
        }
        // 6. Scatter receipt completes the off-node rows.
        let frame =
            unwrap(self.recv_from(leader)).expect("collective mismatch: expected scatter frame");
        for (src, dst, bucket) in unpack_frame(&frame) {
            debug_assert_eq!(dst, self.rank, "scatter frame misrouted");
            result[src] = Some(bucket);
        }
        result
            .into_iter()
            .map(|slot| slot.unwrap_or_default())
            .collect()
    }

    /// Dispatches one u64 Alltoallv through the hierarchical relay.
    fn relay_u64(&self, send: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
        let topo = self.topo.expect("hierarchical routing requires a topology");
        let unwrap = |p| match p {
            Payload::Words(w) => Some(w),
            _ => None,
        };
        match &self.fault {
            Some(ctx) => self.relay_alltoallv_faulty(
                ctx,
                &topo,
                send,
                Payload::Words,
                unwrap,
                Payload::FramedWords,
                |p| match p {
                    Payload::FramedWords(w, f) => Some((w, f)),
                    _ => None,
                },
            ),
            None => self.relay_alltoallv(&topo, send, Payload::Words, unwrap),
        }
    }

    /// Dispatches one byte Alltoallv through the hierarchical relay.
    fn relay_bytes(&self, send: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        let topo = self.topo.expect("hierarchical routing requires a topology");
        let unwrap = |p| match p {
            Payload::Bytes(b) => Some(b),
            _ => None,
        };
        match &self.fault {
            Some(ctx) => self.relay_alltoallv_faulty(
                ctx,
                &topo,
                send,
                Payload::Bytes,
                unwrap,
                Payload::FramedBytes,
                |p| match p {
                    Payload::FramedBytes(b, f) => Some((b, f)),
                    _ => None,
                },
            ),
            None => self.relay_alltoallv(&topo, send, Payload::Bytes, unwrap),
        }
    }
}

impl Communicator for ThreadedComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn alltoallv_u64(&self, send: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
        assert_eq!(send.len(), self.size, "send must address every rank");
        if self.route == ExchangeRoute::Hierarchical {
            return self.relay_u64(send);
        }
        if let Some(ctx) = &self.fault {
            return self.faulty_alltoallv(
                ctx,
                send,
                Payload::FramedWords,
                |p| match p {
                    Payload::FramedWords(w, f) => Some((w, f)),
                    _ => None,
                },
                |b| b.to_vec(),
            );
        }
        for (dst, payload) in send.into_iter().enumerate() {
            self.send_to(dst, Payload::Words(payload));
        }
        (0..self.size)
            .map(|src| match self.recv_from(src) {
                Payload::Words(w) => w,
                _ => panic!("collective mismatch: expected u64 alltoallv"),
            })
            .collect()
    }

    fn alltoallv_bytes(&self, send: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        assert_eq!(send.len(), self.size, "send must address every rank");
        if self.route == ExchangeRoute::Hierarchical {
            return self.relay_bytes(send);
        }
        if let Some(ctx) = &self.fault {
            return self.faulty_alltoallv(
                ctx,
                send,
                Payload::FramedBytes,
                |p| match p {
                    Payload::FramedBytes(b, f) => Some((b, f)),
                    _ => None,
                },
                |b| b.to_vec(),
            );
        }
        for (dst, payload) in send.into_iter().enumerate() {
            self.send_to(dst, Payload::Bytes(payload));
        }
        (0..self.size)
            .map(|src| match self.recv_from(src) {
                Payload::Bytes(b) => b,
                _ => panic!("collective mismatch: expected byte alltoallv"),
            })
            .collect()
    }

    fn allreduce_sum(&self, value: u64) -> u64 {
        // Reduce to rank 0, then broadcast.
        if self.rank == 0 {
            let mut acc = value;
            for src in 1..self.size {
                match self.recv_from(src) {
                    Payload::Scalar(v) => acc += v,
                    _ => panic!("collective mismatch: expected scalar"),
                }
            }
            for dst in 1..self.size {
                self.send_to(dst, Payload::Scalar(acc));
            }
            acc
        } else {
            self.send_to(0, Payload::Scalar(value));
            match self.recv_from(0) {
                Payload::Scalar(v) => v,
                _ => panic!("collective mismatch: expected scalar"),
            }
        }
    }

    fn gather(&self, value: u64, root: usize) -> Option<Vec<u64>> {
        assert!(root < self.size);
        if self.rank == root {
            let mut out = vec![0u64; self.size];
            out[root] = value;
            for src in (0..self.size).filter(|&s| s != root) {
                match self.recv_from(src) {
                    Payload::Scalar(v) => out[src] = v,
                    _ => panic!("collective mismatch: expected scalar gather"),
                }
            }
            Some(out)
        } else {
            self.send_to(root, Payload::Scalar(value));
            None
        }
    }

    fn broadcast(&self, value: u64, root: usize) -> u64 {
        assert!(root < self.size);
        if self.rank == root {
            for dst in (0..self.size).filter(|&d| d != root) {
                self.send_to(dst, Payload::Scalar(value));
            }
            value
        } else {
            match self.recv_from(root) {
                Payload::Scalar(v) => v,
                _ => panic!("collective mismatch: expected scalar broadcast"),
            }
        }
    }

    fn barrier(&self) {
        self.barrier.wait();
    }
}

/// Launches `nranks` rank threads running `f` and returns their results in
/// rank order.
pub struct ThreadedWorld;

impl ThreadedWorld {
    /// Runs the world to completion.
    pub fn run<T, F>(nranks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(ThreadedComm) -> T + Sync,
    {
        ThreadedWorld::run_with_faults(nranks, None, f)
    }

    /// [`ThreadedWorld::run`] under a deterministic fault plan: every
    /// rank's Alltoallv collectives route through the framed retry
    /// protocol (scalar collectives and barriers are fault-free), and the
    /// engine delivers exactly the payloads the BSP engine would under
    /// the same plan. The threaded engine has no simulated clock, so
    /// stragglers and backoff do not apply here.
    pub fn run_with_faults<T, F>(nranks: usize, plan: Option<FaultPlan>, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(ThreadedComm) -> T + Sync,
    {
        ThreadedWorld::run_observed(nranks, plan, None, f)
    }

    /// [`ThreadedWorld::run_with_faults`] with an optional flight
    /// recorder: every failed or corrupt bucket arrival any rank observes
    /// is appended to `journal` as a [`JournalEvent::Retry`] (backoff is
    /// recorded as zero — this engine has no simulated clock). With
    /// `journal: None` this is exactly `run_with_faults`.
    pub fn run_observed<T, F>(
        nranks: usize,
        plan: Option<FaultPlan>,
        journal: Option<Arc<Journal>>,
        f: F,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(ThreadedComm) -> T + Sync,
    {
        ThreadedWorld::launch(nranks, ExchangeRoute::Direct, None, plan, journal, f)
    }

    /// Runs the world with an explicit payload route over `topo`:
    /// under [`ExchangeRoute::Hierarchical`], cross-node Alltoallv
    /// payloads relay through per-node leader ranks as coalesced
    /// (node, node) frames — delivering exactly the payloads direct
    /// routing would, with the BSP engine's fate coordinates (one fate
    /// per frame on the injection tier, per bucket on-node).
    pub fn run_routed<T, F>(
        topo: Topology,
        route: ExchangeRoute,
        plan: Option<FaultPlan>,
        journal: Option<Arc<Journal>>,
        f: F,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(ThreadedComm) -> T + Sync,
    {
        ThreadedWorld::launch(topo.nranks(), route, Some(topo), plan, journal, f)
    }

    fn launch<T, F>(
        nranks: usize,
        route: ExchangeRoute,
        topo: Option<Topology>,
        plan: Option<FaultPlan>,
        journal: Option<Arc<Journal>>,
        f: F,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(ThreadedComm) -> T + Sync,
    {
        assert!(nranks > 0);
        assert!(
            route == ExchangeRoute::Direct || topo.is_some(),
            "hierarchical routing requires a topology"
        );
        // channels[src][dst]
        let mut senders: Vec<Vec<Sender<Payload>>> = Vec::with_capacity(nranks);
        let mut receivers: Vec<Vec<Option<Receiver<Payload>>>> = (0..nranks)
            .map(|_| (0..nranks).map(|_| None).collect())
            .collect();
        for src in 0..nranks {
            let mut row = Vec::with_capacity(nranks);
            for (dst, rx_row) in receivers.iter_mut().enumerate() {
                let (tx, rx) = unbounded();
                row.push(tx);
                let _ = dst;
                rx_row[src] = Some(rx);
            }
            senders.push(row);
        }
        let barrier = Arc::new(Barrier::new(nranks));

        let comms: Vec<ThreadedComm> = receivers
            .into_iter()
            .zip(senders)
            .enumerate()
            .map(|(rank, (from_opts, to_row))| ThreadedComm {
                rank,
                size: nranks,
                to: to_row,
                from: from_opts.into_iter().map(Option::unwrap).collect(),
                barrier: Arc::clone(&barrier),
                fault: plan.map(|plan| FaultCtx {
                    plan,
                    round: Cell::new(0),
                    retries: Cell::new(0),
                    journal: journal.clone(),
                }),
                route,
                topo,
            })
            .collect();

        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| scope.spawn(|| f(comm)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alltoallv_u64_transposes() {
        let p = 5;
        let results = ThreadedWorld::run(p, |comm| {
            let send: Vec<Vec<u64>> = (0..p)
                .map(|dst| vec![(comm.rank() * 100 + dst) as u64])
                .collect();
            comm.alltoallv_u64(send)
        });
        for (dst, recv) in results.iter().enumerate() {
            for (src, payload) in recv.iter().enumerate() {
                assert_eq!(payload, &vec![(src * 100 + dst) as u64]);
            }
        }
    }

    #[test]
    fn alltoallv_bytes_roundtrip() {
        let p = 3;
        let results = ThreadedWorld::run(p, |comm| {
            let send: Vec<Vec<u8>> = (0..p).map(|dst| vec![comm.rank() as u8; dst + 1]).collect();
            comm.alltoallv_bytes(send)
        });
        for (dst, recv) in results.iter().enumerate() {
            for (src, payload) in recv.iter().enumerate() {
                assert_eq!(payload, &vec![src as u8; dst + 1]);
            }
        }
    }

    #[test]
    fn allreduce_sums_everywhere() {
        let p = 7;
        let results = ThreadedWorld::run(p, |comm| comm.allreduce_sum(comm.rank() as u64 + 1));
        let expect: u64 = (1..=p as u64).sum();
        assert!(results.iter().all(|&v| v == expect));
    }

    #[test]
    fn barrier_does_not_deadlock() {
        let results = ThreadedWorld::run(4, |comm| {
            comm.barrier();
            comm.barrier();
            comm.rank()
        });
        assert_eq!(results, vec![0, 1, 2, 3]);
    }

    #[test]
    fn consecutive_collectives_stay_matched() {
        let p = 4;
        let results = ThreadedWorld::run(p, |comm| {
            let a = comm.allreduce_sum(1);
            let send: Vec<Vec<u64>> = (0..p).map(|_| vec![comm.rank() as u64]).collect();
            let b = comm.alltoallv_u64(send);
            comm.barrier();
            let c = comm.allreduce_sum(10);
            (a, b, c)
        });
        for (a, b, c) in results {
            assert_eq!(a, p as u64);
            assert_eq!(b, (0..p as u64).map(|s| vec![s]).collect::<Vec<_>>());
            assert_eq!(c, 10 * p as u64);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let p = 5;
        let results = ThreadedWorld::run(p, |comm| comm.gather(comm.rank() as u64 * 10, 2));
        for (rank, r) in results.iter().enumerate() {
            if rank == 2 {
                assert_eq!(r.as_ref().unwrap(), &vec![0, 10, 20, 30, 40]);
            } else {
                assert!(r.is_none());
            }
        }
    }

    #[test]
    fn broadcast_delivers_roots_value() {
        let p = 4;
        let results = ThreadedWorld::run(p, |comm| {
            let v = if comm.rank() == 1 { 99 } else { 0 };
            comm.broadcast(v, 1)
        });
        assert!(results.iter().all(|&v| v == 99));
    }

    #[test]
    fn faulty_alltoallv_delivers_everything() {
        use crate::fault::{FaultPlan, FaultSpec};
        let p = 6;
        let plan = FaultPlan::new(2024, FaultSpec::parse("fail=0.3,corrupt=0.2").unwrap());
        let results = ThreadedWorld::run_with_faults(p, Some(plan), |comm| {
            let send: Vec<Vec<u64>> = (0..p)
                .map(|dst| vec![(comm.rank() * 100 + dst) as u64; 3])
                .collect();
            let words = comm.alltoallv_u64(send);
            let bytes =
                comm.alltoallv_bytes((0..p).map(|dst| vec![comm.rank() as u8; dst + 1]).collect());
            (words, bytes, comm.fault_retries())
        });
        let mut total_retries = 0;
        for (dst, (words, bytes, retries)) in results.iter().enumerate() {
            for src in 0..p {
                assert_eq!(words[src], vec![(src * 100 + dst) as u64; 3]);
                assert_eq!(bytes[src], vec![src as u8; dst + 1]);
            }
            total_retries += retries;
        }
        assert!(total_retries > 0, "rates this high must retry somewhere");
    }

    #[test]
    fn zero_fault_plan_matches_plain_run() {
        use crate::fault::{FaultPlan, FaultSpec};
        let p = 4;
        let body = |comm: &ThreadedComm| {
            let send: Vec<Vec<u64>> = (0..p).map(|dst| vec![(comm.rank() + dst) as u64]).collect();
            comm.alltoallv_u64(send)
        };
        let plain = ThreadedWorld::run(p, |comm| body(&comm));
        let zero =
            ThreadedWorld::run_with_faults(p, Some(FaultPlan::new(1, FaultSpec::none())), |comm| {
                (body(&comm), comm.fault_retries())
            });
        for (a, (b, retries)) in plain.iter().zip(&zero) {
            assert_eq!(a, b);
            assert_eq!(*retries, 0);
        }
    }

    #[test]
    fn faulty_collectives_stay_matched_across_rounds() {
        use crate::fault::{FaultPlan, FaultSpec};
        let p = 4;
        let plan = FaultPlan::new(9, FaultSpec::parse("fail=0.4,corrupt=0.1").unwrap());
        let results = ThreadedWorld::run_with_faults(p, Some(plan), |comm| {
            let mut out = Vec::new();
            for round in 0..5u64 {
                let send: Vec<Vec<u64>> = (0..p)
                    .map(|dst| vec![round * 1000 + (comm.rank() * 10 + dst) as u64])
                    .collect();
                out.push(comm.alltoallv_u64(send));
                comm.barrier();
            }
            let sum = comm.allreduce_sum(comm.rank() as u64);
            (out, sum)
        });
        for (dst, (rounds, sum)) in results.iter().enumerate() {
            assert_eq!(*sum, (0..p as u64).sum::<u64>());
            for (round, recv) in rounds.iter().enumerate() {
                for (src, bucket) in recv.iter().enumerate() {
                    assert_eq!(*bucket, vec![round as u64 * 1000 + (src * 10 + dst) as u64]);
                }
            }
        }
    }

    #[test]
    fn observed_run_journals_every_retry() {
        use crate::fault::{FaultPlan, FaultSpec};
        let p = 6;
        let plan = FaultPlan::new(2024, FaultSpec::parse("fail=0.3,corrupt=0.2").unwrap());
        let journal = Arc::new(Journal::new());
        let results =
            ThreadedWorld::run_observed(p, Some(plan), Some(Arc::clone(&journal)), |comm| {
                let send: Vec<Vec<u64>> = (0..p)
                    .map(|dst| vec![(comm.rank() * 100 + dst) as u64; 3])
                    .collect();
                comm.alltoallv_u64(send);
                comm.fault_retries()
            });
        let observed: u64 = results.iter().sum();
        assert!(observed > 0, "rates this high must retry somewhere");
        let events = journal.take();
        let mut failed = 0u64;
        let mut corrupt = 0u64;
        for e in &events {
            match e {
                JournalEvent::Retry {
                    round,
                    attempt,
                    failed: f,
                    corrupt: c,
                    backoff,
                } => {
                    assert_eq!(*round, 0, "single collective is round 0");
                    assert!(*attempt >= 1);
                    assert_eq!(f + c, 1, "one event per bad arrival");
                    assert_eq!(*backoff, 0.0, "threaded engine has no clock");
                    failed += f;
                    corrupt += c;
                }
                other => panic!("unexpected event kind {:?}", other.kind()),
            }
        }
        assert_eq!(
            failed + corrupt,
            observed,
            "journal must record exactly the retries the ranks counted"
        );
        assert!(corrupt > 0, "corrupt=0.2 must corrupt something");
    }

    #[test]
    fn hierarchical_routing_delivers_direct_payloads() {
        let topo = Topology::new(3, 2);
        let p = topo.nranks();
        let body = |comm: &ThreadedComm| {
            let words: Vec<Vec<u64>> = (0..p)
                .map(|dst| vec![(comm.rank() * 100 + dst) as u64; (dst % 3) + 1])
                .collect();
            let bytes: Vec<Vec<u8>> = (0..p)
                .map(|dst| {
                    if dst % 2 == 0 {
                        Vec::new() // empty off-node and on-node rows both survive relay
                    } else {
                        vec![comm.rank() as u8; dst]
                    }
                })
                .collect();
            (comm.alltoallv_u64(words), comm.alltoallv_bytes(bytes))
        };
        let direct = ThreadedWorld::run(p, |comm| body(&comm));
        let routed =
            ThreadedWorld::run_routed(topo, ExchangeRoute::Hierarchical, None, None, |comm| {
                body(&comm)
            });
        assert_eq!(direct, routed, "relay must deliver identical payloads");
    }

    #[test]
    fn hierarchical_routing_survives_faults() {
        use crate::fault::{FaultPlan, FaultSpec};
        let topo = Topology::new(3, 2);
        let p = topo.nranks();
        let plan = FaultPlan::new(2024, FaultSpec::parse("fail=0.3,corrupt=0.2").unwrap());
        let results = ThreadedWorld::run_routed(
            topo,
            ExchangeRoute::Hierarchical,
            Some(plan),
            None,
            |comm| {
                let mut rounds = Vec::new();
                for round in 0..3u64 {
                    let send: Vec<Vec<u64>> = (0..p)
                        .map(|dst| vec![round * 1000 + (comm.rank() * 10 + dst) as u64])
                        .collect();
                    rounds.push(comm.alltoallv_u64(send));
                    comm.barrier();
                }
                let bytes = comm
                    .alltoallv_bytes((0..p).map(|dst| vec![comm.rank() as u8; dst + 1]).collect());
                (rounds, bytes, comm.fault_retries())
            },
        );
        let mut total_retries = 0;
        for (dst, (rounds, bytes, retries)) in results.iter().enumerate() {
            for (round, recv) in rounds.iter().enumerate() {
                for (src, bucket) in recv.iter().enumerate() {
                    assert_eq!(*bucket, vec![round as u64 * 1000 + (src * 10 + dst) as u64]);
                }
            }
            for (src, payload) in bytes.iter().enumerate() {
                assert_eq!(payload, &vec![src as u8; dst + 1]);
            }
            total_retries += retries;
        }
        assert!(total_retries > 0, "rates this high must retry somewhere");
    }

    #[test]
    fn hierarchical_single_node_collapses_to_intra_traffic() {
        let topo = Topology::new(1, 4);
        let results =
            ThreadedWorld::run_routed(topo, ExchangeRoute::Hierarchical, None, None, |comm| {
                let send: Vec<Vec<u64>> =
                    (0..4).map(|dst| vec![(comm.rank() + dst) as u64]).collect();
                comm.alltoallv_u64(send)
            });
        for (dst, recv) in results.iter().enumerate() {
            for (src, bucket) in recv.iter().enumerate() {
                assert_eq!(*bucket, vec![(src + dst) as u64]);
            }
        }
    }

    #[test]
    fn relay_frames_roundtrip() {
        let entries: Vec<(usize, usize, Vec<u64>)> =
            vec![(0, 7, vec![1, 2, 3]), (3, 8, Vec::new()), (5, 9, vec![9])];
        assert_eq!(unpack_frame::<u64>(&pack_frame(&entries)), entries);
        let bytes: Vec<(usize, usize, Vec<u8>)> = vec![(1, 4, vec![0xab; 5]), (2, 5, vec![1])];
        assert_eq!(unpack_frame::<u8>(&pack_frame(&bytes)), bytes);
        assert!(pack_frame::<u8>(&[]).is_empty());
        assert!(unpack_frame::<u64>(&[]).is_empty());
    }

    #[test]
    fn single_rank_world() {
        let r = ThreadedWorld::run(1, |comm| {
            assert_eq!(comm.size(), 1);
            let recv = comm.alltoallv_u64(vec![vec![42]]);
            (comm.allreduce_sum(5), recv)
        });
        assert_eq!(r[0].0, 5);
        assert_eq!(r[0].1, vec![vec![42]]);
    }
}
