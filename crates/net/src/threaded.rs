//! The threaded engine: ranks as OS threads, collectives over channels.
//!
//! Every pair of ranks gets a dedicated FIFO channel; because all ranks
//! execute the same sequence of collectives (the MPI contract), matching
//! sends and receives pair up deterministically. Used for moderate rank
//! counts (≤ a few hundred) and for cross-validating the BSP engine.

use crate::comm::Communicator;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::{Arc, Barrier};

/// Payload carried between ranks.
enum Payload {
    Bytes(Vec<u8>),
    Words(Vec<u64>),
    Scalar(u64),
}

/// A per-rank handle implementing [`Communicator`] over channels.
pub struct ThreadedComm {
    rank: usize,
    size: usize,
    /// `to[dst]` sends to rank `dst`.
    to: Vec<Sender<Payload>>,
    /// `from[src]` receives from rank `src`.
    from: Vec<Receiver<Payload>>,
    barrier: Arc<Barrier>,
}

impl ThreadedComm {
    fn send_to(&self, dst: usize, p: Payload) {
        self.to[dst].send(p).expect("peer rank hung up");
    }

    fn recv_from(&self, src: usize) -> Payload {
        self.from[src].recv().expect("peer rank hung up")
    }
}

impl Communicator for ThreadedComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn alltoallv_u64(&self, send: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
        assert_eq!(send.len(), self.size, "send must address every rank");
        for (dst, payload) in send.into_iter().enumerate() {
            self.send_to(dst, Payload::Words(payload));
        }
        (0..self.size)
            .map(|src| match self.recv_from(src) {
                Payload::Words(w) => w,
                _ => panic!("collective mismatch: expected u64 alltoallv"),
            })
            .collect()
    }

    fn alltoallv_bytes(&self, send: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        assert_eq!(send.len(), self.size, "send must address every rank");
        for (dst, payload) in send.into_iter().enumerate() {
            self.send_to(dst, Payload::Bytes(payload));
        }
        (0..self.size)
            .map(|src| match self.recv_from(src) {
                Payload::Bytes(b) => b,
                _ => panic!("collective mismatch: expected byte alltoallv"),
            })
            .collect()
    }

    fn allreduce_sum(&self, value: u64) -> u64 {
        // Reduce to rank 0, then broadcast.
        if self.rank == 0 {
            let mut acc = value;
            for src in 1..self.size {
                match self.recv_from(src) {
                    Payload::Scalar(v) => acc += v,
                    _ => panic!("collective mismatch: expected scalar"),
                }
            }
            for dst in 1..self.size {
                self.send_to(dst, Payload::Scalar(acc));
            }
            acc
        } else {
            self.send_to(0, Payload::Scalar(value));
            match self.recv_from(0) {
                Payload::Scalar(v) => v,
                _ => panic!("collective mismatch: expected scalar"),
            }
        }
    }

    fn gather(&self, value: u64, root: usize) -> Option<Vec<u64>> {
        assert!(root < self.size);
        if self.rank == root {
            let mut out = vec![0u64; self.size];
            out[root] = value;
            for src in (0..self.size).filter(|&s| s != root) {
                match self.recv_from(src) {
                    Payload::Scalar(v) => out[src] = v,
                    _ => panic!("collective mismatch: expected scalar gather"),
                }
            }
            Some(out)
        } else {
            self.send_to(root, Payload::Scalar(value));
            None
        }
    }

    fn broadcast(&self, value: u64, root: usize) -> u64 {
        assert!(root < self.size);
        if self.rank == root {
            for dst in (0..self.size).filter(|&d| d != root) {
                self.send_to(dst, Payload::Scalar(value));
            }
            value
        } else {
            match self.recv_from(root) {
                Payload::Scalar(v) => v,
                _ => panic!("collective mismatch: expected scalar broadcast"),
            }
        }
    }

    fn barrier(&self) {
        self.barrier.wait();
    }
}

/// Launches `nranks` rank threads running `f` and returns their results in
/// rank order.
pub struct ThreadedWorld;

impl ThreadedWorld {
    /// Runs the world to completion.
    pub fn run<T, F>(nranks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(ThreadedComm) -> T + Sync,
    {
        assert!(nranks > 0);
        // channels[src][dst]
        let mut senders: Vec<Vec<Sender<Payload>>> = Vec::with_capacity(nranks);
        let mut receivers: Vec<Vec<Option<Receiver<Payload>>>> = (0..nranks)
            .map(|_| (0..nranks).map(|_| None).collect())
            .collect();
        for src in 0..nranks {
            let mut row = Vec::with_capacity(nranks);
            for (dst, rx_row) in receivers.iter_mut().enumerate() {
                let (tx, rx) = unbounded();
                row.push(tx);
                let _ = dst;
                rx_row[src] = Some(rx);
            }
            senders.push(row);
        }
        let barrier = Arc::new(Barrier::new(nranks));

        let comms: Vec<ThreadedComm> = receivers
            .into_iter()
            .zip(senders)
            .enumerate()
            .map(|(rank, (from_opts, to_row))| ThreadedComm {
                rank,
                size: nranks,
                to: to_row,
                from: from_opts.into_iter().map(Option::unwrap).collect(),
                barrier: Arc::clone(&barrier),
            })
            .collect();

        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| scope.spawn(|| f(comm)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alltoallv_u64_transposes() {
        let p = 5;
        let results = ThreadedWorld::run(p, |comm| {
            let send: Vec<Vec<u64>> = (0..p)
                .map(|dst| vec![(comm.rank() * 100 + dst) as u64])
                .collect();
            comm.alltoallv_u64(send)
        });
        for (dst, recv) in results.iter().enumerate() {
            for (src, payload) in recv.iter().enumerate() {
                assert_eq!(payload, &vec![(src * 100 + dst) as u64]);
            }
        }
    }

    #[test]
    fn alltoallv_bytes_roundtrip() {
        let p = 3;
        let results = ThreadedWorld::run(p, |comm| {
            let send: Vec<Vec<u8>> = (0..p).map(|dst| vec![comm.rank() as u8; dst + 1]).collect();
            comm.alltoallv_bytes(send)
        });
        for (dst, recv) in results.iter().enumerate() {
            for (src, payload) in recv.iter().enumerate() {
                assert_eq!(payload, &vec![src as u8; dst + 1]);
            }
        }
    }

    #[test]
    fn allreduce_sums_everywhere() {
        let p = 7;
        let results = ThreadedWorld::run(p, |comm| comm.allreduce_sum(comm.rank() as u64 + 1));
        let expect: u64 = (1..=p as u64).sum();
        assert!(results.iter().all(|&v| v == expect));
    }

    #[test]
    fn barrier_does_not_deadlock() {
        let results = ThreadedWorld::run(4, |comm| {
            comm.barrier();
            comm.barrier();
            comm.rank()
        });
        assert_eq!(results, vec![0, 1, 2, 3]);
    }

    #[test]
    fn consecutive_collectives_stay_matched() {
        let p = 4;
        let results = ThreadedWorld::run(p, |comm| {
            let a = comm.allreduce_sum(1);
            let send: Vec<Vec<u64>> = (0..p).map(|_| vec![comm.rank() as u64]).collect();
            let b = comm.alltoallv_u64(send);
            comm.barrier();
            let c = comm.allreduce_sum(10);
            (a, b, c)
        });
        for (a, b, c) in results {
            assert_eq!(a, p as u64);
            assert_eq!(b, (0..p as u64).map(|s| vec![s]).collect::<Vec<_>>());
            assert_eq!(c, 10 * p as u64);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let p = 5;
        let results = ThreadedWorld::run(p, |comm| comm.gather(comm.rank() as u64 * 10, 2));
        for (rank, r) in results.iter().enumerate() {
            if rank == 2 {
                assert_eq!(r.as_ref().unwrap(), &vec![0, 10, 20, 30, 40]);
            } else {
                assert!(r.is_none());
            }
        }
    }

    #[test]
    fn broadcast_delivers_roots_value() {
        let p = 4;
        let results = ThreadedWorld::run(p, |comm| {
            let v = if comm.rank() == 1 { 99 } else { 0 };
            comm.broadcast(v, 1)
        });
        assert!(results.iter().all(|&v| v == 99));
    }

    #[test]
    fn single_rank_world() {
        let r = ThreadedWorld::run(1, |comm| {
            assert_eq!(comm.size(), 1);
            let recv = comm.alltoallv_u64(vec![vec![42]]);
            (comm.allreduce_sum(5), recv)
        });
        assert_eq!(r[0].0, 5);
        assert_eq!(r[0].1, vec![vec![42]]);
    }
}
