//! The threaded engine: ranks as OS threads, collectives over channels.
//!
//! Every pair of ranks gets a dedicated FIFO channel; because all ranks
//! execute the same sequence of collectives (the MPI contract), matching
//! sends and receives pair up deterministically. Used for moderate rank
//! counts (≤ a few hundred) and for cross-validating the BSP engine.

use crate::comm::Communicator;
use crate::fault::{BucketFate, ChecksumFrame, FaultPlan, WireHash};
use crossbeam::channel::{unbounded, Receiver, Sender};
use dedukt_sim::{Journal, JournalEvent};
use std::cell::Cell;
use std::sync::{Arc, Barrier};

/// Payload carried between ranks.
enum Payload {
    Bytes(Vec<u8>),
    Words(Vec<u64>),
    Scalar(u64),
    /// A byte bucket travelling with its checksum frame (fault runs).
    FramedBytes(Vec<u8>, ChecksumFrame),
    /// A word bucket travelling with its checksum frame (fault runs).
    FramedWords(Vec<u64>, ChecksumFrame),
    /// The attempt's send failed in flight; the receiver learns only that
    /// nothing arrived and must wait for the next attempt.
    FailedSend,
}

/// Per-rank fault-injection state: the shared plan plus this rank's view
/// of the schedule. Both endpoints of every channel evaluate the *same*
/// pure [`FaultPlan`], so no acknowledgement traffic is needed — sender
/// and receiver independently agree on each bucket's per-attempt fate.
struct FaultCtx {
    plan: FaultPlan,
    /// Fault-aware collectives completed (the fate schedule's `round`
    /// coordinate, matching the BSP engine's `fault_context` round).
    round: Cell<u64>,
    /// Failed or corrupt bucket arrivals observed by this rank as a
    /// receiver — one per retry the matching sender had to perform.
    retries: Cell<u64>,
    /// Optional flight recorder: every observed failed/corrupt arrival
    /// becomes a [`JournalEvent::Retry`]. The threaded engine has no
    /// simulated clock, so recorded backoff is always zero.
    journal: Option<Arc<Journal>>,
}

impl FaultCtx {
    /// Records one failed or corrupt arrival in the attached journal, if
    /// any. `attempt` is the sender-side attempt index that produced the
    /// bad delivery; the retry it forces is attempt `attempt + 1`.
    fn observe_retry(&self, round: u64, attempt: u32, failed: u64, corrupt: u64) {
        if let Some(j) = &self.journal {
            j.push(JournalEvent::Retry {
                round,
                attempt: attempt + 1,
                failed,
                corrupt,
                backoff: 0.0,
            });
        }
    }
}

/// A per-rank handle implementing [`Communicator`] over channels.
pub struct ThreadedComm {
    rank: usize,
    size: usize,
    /// `to[dst]` sends to rank `dst`.
    to: Vec<Sender<Payload>>,
    /// `from[src]` receives from rank `src`.
    from: Vec<Receiver<Payload>>,
    barrier: Arc<Barrier>,
    fault: Option<FaultCtx>,
}

/// Hang guard for fault-run collectives: with any survivable fault rates
/// the per-pair retry loop finishes in a handful of attempts, so hitting
/// this bound means the plan can never deliver (e.g. fail=1).
const MAX_FAULT_ATTEMPTS: u32 = 1000;

impl ThreadedComm {
    fn send_to(&self, dst: usize, p: Payload) {
        self.to[dst].send(p).expect("peer rank hung up");
    }

    fn recv_from(&self, src: usize) -> Payload {
        self.from[src].recv().expect("peer rank hung up")
    }

    /// Failed or corrupt bucket arrivals this rank has observed — the
    /// threaded engine's analogue of `CommStats::failed_sends +
    /// corrupt_buckets`, summed over receiving ranks.
    pub fn fault_retries(&self) -> u64 {
        self.fault.as_ref().map_or(0, |c| c.retries.get())
    }

    /// One fault-aware Alltoallv: every pair `(self → dst, src → self)`
    /// runs its own deterministic retry loop. On each attempt a pending
    /// pair moves exactly one message (framed payload, corrupt-framed
    /// payload, or a [`Payload::FailedSend`] marker), so matched
    /// send/receive counts keep the unbounded FIFO channels deadlock-free;
    /// a pair leaves the loop at its first [`BucketFate::Deliver`] draw,
    /// the same attempt index at which the BSP engine's retry loop
    /// re-delivers that bucket. Empty buckets always deliver on attempt 0
    /// (nothing on the wire can fail).
    fn faulty_alltoallv<T: WireHash>(
        &self,
        ctx: &FaultCtx,
        send: Vec<Vec<T>>,
        wrap: impl Fn(Vec<T>, ChecksumFrame) -> Payload,
        unwrap: impl Fn(Payload) -> Option<(Vec<T>, ChecksumFrame)>,
        clone_bucket: impl Fn(&[T]) -> Vec<T>,
    ) -> Vec<Vec<T>> {
        let round = ctx.round.get();
        ctx.round.set(round + 1);
        let mut pending_out: Vec<Option<Vec<T>>> = send.into_iter().map(Some).collect();
        let mut result: Vec<Option<Vec<T>>> = (0..self.size).map(|_| None).collect();
        let mut pending_in: Vec<bool> = vec![true; self.size];
        for attempt in 0..MAX_FAULT_ATTEMPTS {
            if pending_out.iter().all(Option::is_none) && result.iter().all(Option::is_some) {
                return result.into_iter().map(Option::unwrap).collect();
            }
            for (dst, slot) in pending_out.iter_mut().enumerate() {
                let Some(payload) = slot else {
                    continue;
                };
                let fate = if payload.is_empty() {
                    BucketFate::Deliver
                } else {
                    ctx.plan.bucket_fate(round, attempt, self.rank, dst)
                };
                match fate {
                    BucketFate::Deliver => {
                        let p = slot.take().expect("guarded above");
                        let frame = ChecksumFrame::compute(&p);
                        self.send_to(dst, wrap(p, frame));
                    }
                    BucketFate::Corrupt => {
                        // The bucket crosses the wire with a bad frame;
                        // the sender keeps its copy for the retry.
                        let frame = ChecksumFrame::compute(payload).corrupted();
                        self.send_to(dst, wrap(clone_bucket(payload), frame));
                    }
                    BucketFate::FailSend => self.send_to(dst, Payload::FailedSend),
                }
            }
            for (src, pending) in pending_in.iter_mut().enumerate() {
                if !*pending {
                    continue;
                }
                match self.recv_from(src) {
                    Payload::FailedSend => {
                        ctx.retries.set(ctx.retries.get() + 1);
                        ctx.observe_retry(round, attempt, 1, 0);
                    }
                    other => {
                        let (items, frame) =
                            unwrap(other).expect("collective mismatch: expected framed payload");
                        if frame.matches(&items) {
                            result[src] = Some(items);
                            *pending = false;
                        } else {
                            // Receiver-side checksum verification caught
                            // the corruption; discard and await a resend.
                            ctx.retries.set(ctx.retries.get() + 1);
                            ctx.observe_retry(round, attempt, 0, 1);
                        }
                    }
                }
            }
        }
        panic!(
            "fault plan never delivered: a bucket survived {MAX_FAULT_ATTEMPTS} attempts \
             (are fail+corrupt rates at 1?)"
        );
    }
}

impl Communicator for ThreadedComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn alltoallv_u64(&self, send: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
        assert_eq!(send.len(), self.size, "send must address every rank");
        if let Some(ctx) = &self.fault {
            return self.faulty_alltoallv(
                ctx,
                send,
                Payload::FramedWords,
                |p| match p {
                    Payload::FramedWords(w, f) => Some((w, f)),
                    _ => None,
                },
                |b| b.to_vec(),
            );
        }
        for (dst, payload) in send.into_iter().enumerate() {
            self.send_to(dst, Payload::Words(payload));
        }
        (0..self.size)
            .map(|src| match self.recv_from(src) {
                Payload::Words(w) => w,
                _ => panic!("collective mismatch: expected u64 alltoallv"),
            })
            .collect()
    }

    fn alltoallv_bytes(&self, send: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        assert_eq!(send.len(), self.size, "send must address every rank");
        if let Some(ctx) = &self.fault {
            return self.faulty_alltoallv(
                ctx,
                send,
                Payload::FramedBytes,
                |p| match p {
                    Payload::FramedBytes(b, f) => Some((b, f)),
                    _ => None,
                },
                |b| b.to_vec(),
            );
        }
        for (dst, payload) in send.into_iter().enumerate() {
            self.send_to(dst, Payload::Bytes(payload));
        }
        (0..self.size)
            .map(|src| match self.recv_from(src) {
                Payload::Bytes(b) => b,
                _ => panic!("collective mismatch: expected byte alltoallv"),
            })
            .collect()
    }

    fn allreduce_sum(&self, value: u64) -> u64 {
        // Reduce to rank 0, then broadcast.
        if self.rank == 0 {
            let mut acc = value;
            for src in 1..self.size {
                match self.recv_from(src) {
                    Payload::Scalar(v) => acc += v,
                    _ => panic!("collective mismatch: expected scalar"),
                }
            }
            for dst in 1..self.size {
                self.send_to(dst, Payload::Scalar(acc));
            }
            acc
        } else {
            self.send_to(0, Payload::Scalar(value));
            match self.recv_from(0) {
                Payload::Scalar(v) => v,
                _ => panic!("collective mismatch: expected scalar"),
            }
        }
    }

    fn gather(&self, value: u64, root: usize) -> Option<Vec<u64>> {
        assert!(root < self.size);
        if self.rank == root {
            let mut out = vec![0u64; self.size];
            out[root] = value;
            for src in (0..self.size).filter(|&s| s != root) {
                match self.recv_from(src) {
                    Payload::Scalar(v) => out[src] = v,
                    _ => panic!("collective mismatch: expected scalar gather"),
                }
            }
            Some(out)
        } else {
            self.send_to(root, Payload::Scalar(value));
            None
        }
    }

    fn broadcast(&self, value: u64, root: usize) -> u64 {
        assert!(root < self.size);
        if self.rank == root {
            for dst in (0..self.size).filter(|&d| d != root) {
                self.send_to(dst, Payload::Scalar(value));
            }
            value
        } else {
            match self.recv_from(root) {
                Payload::Scalar(v) => v,
                _ => panic!("collective mismatch: expected scalar broadcast"),
            }
        }
    }

    fn barrier(&self) {
        self.barrier.wait();
    }
}

/// Launches `nranks` rank threads running `f` and returns their results in
/// rank order.
pub struct ThreadedWorld;

impl ThreadedWorld {
    /// Runs the world to completion.
    pub fn run<T, F>(nranks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(ThreadedComm) -> T + Sync,
    {
        ThreadedWorld::run_with_faults(nranks, None, f)
    }

    /// [`ThreadedWorld::run`] under a deterministic fault plan: every
    /// rank's Alltoallv collectives route through the framed retry
    /// protocol (scalar collectives and barriers are fault-free), and the
    /// engine delivers exactly the payloads the BSP engine would under
    /// the same plan. The threaded engine has no simulated clock, so
    /// stragglers and backoff do not apply here.
    pub fn run_with_faults<T, F>(nranks: usize, plan: Option<FaultPlan>, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(ThreadedComm) -> T + Sync,
    {
        ThreadedWorld::run_observed(nranks, plan, None, f)
    }

    /// [`ThreadedWorld::run_with_faults`] with an optional flight
    /// recorder: every failed or corrupt bucket arrival any rank observes
    /// is appended to `journal` as a [`JournalEvent::Retry`] (backoff is
    /// recorded as zero — this engine has no simulated clock). With
    /// `journal: None` this is exactly `run_with_faults`.
    pub fn run_observed<T, F>(
        nranks: usize,
        plan: Option<FaultPlan>,
        journal: Option<Arc<Journal>>,
        f: F,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(ThreadedComm) -> T + Sync,
    {
        assert!(nranks > 0);
        // channels[src][dst]
        let mut senders: Vec<Vec<Sender<Payload>>> = Vec::with_capacity(nranks);
        let mut receivers: Vec<Vec<Option<Receiver<Payload>>>> = (0..nranks)
            .map(|_| (0..nranks).map(|_| None).collect())
            .collect();
        for src in 0..nranks {
            let mut row = Vec::with_capacity(nranks);
            for (dst, rx_row) in receivers.iter_mut().enumerate() {
                let (tx, rx) = unbounded();
                row.push(tx);
                let _ = dst;
                rx_row[src] = Some(rx);
            }
            senders.push(row);
        }
        let barrier = Arc::new(Barrier::new(nranks));

        let comms: Vec<ThreadedComm> = receivers
            .into_iter()
            .zip(senders)
            .enumerate()
            .map(|(rank, (from_opts, to_row))| ThreadedComm {
                rank,
                size: nranks,
                to: to_row,
                from: from_opts.into_iter().map(Option::unwrap).collect(),
                barrier: Arc::clone(&barrier),
                fault: plan.map(|plan| FaultCtx {
                    plan,
                    round: Cell::new(0),
                    retries: Cell::new(0),
                    journal: journal.clone(),
                }),
            })
            .collect();

        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| scope.spawn(|| f(comm)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alltoallv_u64_transposes() {
        let p = 5;
        let results = ThreadedWorld::run(p, |comm| {
            let send: Vec<Vec<u64>> = (0..p)
                .map(|dst| vec![(comm.rank() * 100 + dst) as u64])
                .collect();
            comm.alltoallv_u64(send)
        });
        for (dst, recv) in results.iter().enumerate() {
            for (src, payload) in recv.iter().enumerate() {
                assert_eq!(payload, &vec![(src * 100 + dst) as u64]);
            }
        }
    }

    #[test]
    fn alltoallv_bytes_roundtrip() {
        let p = 3;
        let results = ThreadedWorld::run(p, |comm| {
            let send: Vec<Vec<u8>> = (0..p).map(|dst| vec![comm.rank() as u8; dst + 1]).collect();
            comm.alltoallv_bytes(send)
        });
        for (dst, recv) in results.iter().enumerate() {
            for (src, payload) in recv.iter().enumerate() {
                assert_eq!(payload, &vec![src as u8; dst + 1]);
            }
        }
    }

    #[test]
    fn allreduce_sums_everywhere() {
        let p = 7;
        let results = ThreadedWorld::run(p, |comm| comm.allreduce_sum(comm.rank() as u64 + 1));
        let expect: u64 = (1..=p as u64).sum();
        assert!(results.iter().all(|&v| v == expect));
    }

    #[test]
    fn barrier_does_not_deadlock() {
        let results = ThreadedWorld::run(4, |comm| {
            comm.barrier();
            comm.barrier();
            comm.rank()
        });
        assert_eq!(results, vec![0, 1, 2, 3]);
    }

    #[test]
    fn consecutive_collectives_stay_matched() {
        let p = 4;
        let results = ThreadedWorld::run(p, |comm| {
            let a = comm.allreduce_sum(1);
            let send: Vec<Vec<u64>> = (0..p).map(|_| vec![comm.rank() as u64]).collect();
            let b = comm.alltoallv_u64(send);
            comm.barrier();
            let c = comm.allreduce_sum(10);
            (a, b, c)
        });
        for (a, b, c) in results {
            assert_eq!(a, p as u64);
            assert_eq!(b, (0..p as u64).map(|s| vec![s]).collect::<Vec<_>>());
            assert_eq!(c, 10 * p as u64);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let p = 5;
        let results = ThreadedWorld::run(p, |comm| comm.gather(comm.rank() as u64 * 10, 2));
        for (rank, r) in results.iter().enumerate() {
            if rank == 2 {
                assert_eq!(r.as_ref().unwrap(), &vec![0, 10, 20, 30, 40]);
            } else {
                assert!(r.is_none());
            }
        }
    }

    #[test]
    fn broadcast_delivers_roots_value() {
        let p = 4;
        let results = ThreadedWorld::run(p, |comm| {
            let v = if comm.rank() == 1 { 99 } else { 0 };
            comm.broadcast(v, 1)
        });
        assert!(results.iter().all(|&v| v == 99));
    }

    #[test]
    fn faulty_alltoallv_delivers_everything() {
        use crate::fault::{FaultPlan, FaultSpec};
        let p = 6;
        let plan = FaultPlan::new(2024, FaultSpec::parse("fail=0.3,corrupt=0.2").unwrap());
        let results = ThreadedWorld::run_with_faults(p, Some(plan), |comm| {
            let send: Vec<Vec<u64>> = (0..p)
                .map(|dst| vec![(comm.rank() * 100 + dst) as u64; 3])
                .collect();
            let words = comm.alltoallv_u64(send);
            let bytes =
                comm.alltoallv_bytes((0..p).map(|dst| vec![comm.rank() as u8; dst + 1]).collect());
            (words, bytes, comm.fault_retries())
        });
        let mut total_retries = 0;
        for (dst, (words, bytes, retries)) in results.iter().enumerate() {
            for src in 0..p {
                assert_eq!(words[src], vec![(src * 100 + dst) as u64; 3]);
                assert_eq!(bytes[src], vec![src as u8; dst + 1]);
            }
            total_retries += retries;
        }
        assert!(total_retries > 0, "rates this high must retry somewhere");
    }

    #[test]
    fn zero_fault_plan_matches_plain_run() {
        use crate::fault::{FaultPlan, FaultSpec};
        let p = 4;
        let body = |comm: &ThreadedComm| {
            let send: Vec<Vec<u64>> = (0..p).map(|dst| vec![(comm.rank() + dst) as u64]).collect();
            comm.alltoallv_u64(send)
        };
        let plain = ThreadedWorld::run(p, |comm| body(&comm));
        let zero =
            ThreadedWorld::run_with_faults(p, Some(FaultPlan::new(1, FaultSpec::none())), |comm| {
                (body(&comm), comm.fault_retries())
            });
        for (a, (b, retries)) in plain.iter().zip(&zero) {
            assert_eq!(a, b);
            assert_eq!(*retries, 0);
        }
    }

    #[test]
    fn faulty_collectives_stay_matched_across_rounds() {
        use crate::fault::{FaultPlan, FaultSpec};
        let p = 4;
        let plan = FaultPlan::new(9, FaultSpec::parse("fail=0.4,corrupt=0.1").unwrap());
        let results = ThreadedWorld::run_with_faults(p, Some(plan), |comm| {
            let mut out = Vec::new();
            for round in 0..5u64 {
                let send: Vec<Vec<u64>> = (0..p)
                    .map(|dst| vec![round * 1000 + (comm.rank() * 10 + dst) as u64])
                    .collect();
                out.push(comm.alltoallv_u64(send));
                comm.barrier();
            }
            let sum = comm.allreduce_sum(comm.rank() as u64);
            (out, sum)
        });
        for (dst, (rounds, sum)) in results.iter().enumerate() {
            assert_eq!(*sum, (0..p as u64).sum::<u64>());
            for (round, recv) in rounds.iter().enumerate() {
                for (src, bucket) in recv.iter().enumerate() {
                    assert_eq!(*bucket, vec![round as u64 * 1000 + (src * 10 + dst) as u64]);
                }
            }
        }
    }

    #[test]
    fn observed_run_journals_every_retry() {
        use crate::fault::{FaultPlan, FaultSpec};
        let p = 6;
        let plan = FaultPlan::new(2024, FaultSpec::parse("fail=0.3,corrupt=0.2").unwrap());
        let journal = Arc::new(Journal::new());
        let results =
            ThreadedWorld::run_observed(p, Some(plan), Some(Arc::clone(&journal)), |comm| {
                let send: Vec<Vec<u64>> = (0..p)
                    .map(|dst| vec![(comm.rank() * 100 + dst) as u64; 3])
                    .collect();
                comm.alltoallv_u64(send);
                comm.fault_retries()
            });
        let observed: u64 = results.iter().sum();
        assert!(observed > 0, "rates this high must retry somewhere");
        let events = journal.take();
        let mut failed = 0u64;
        let mut corrupt = 0u64;
        for e in &events {
            match e {
                JournalEvent::Retry {
                    round,
                    attempt,
                    failed: f,
                    corrupt: c,
                    backoff,
                } => {
                    assert_eq!(*round, 0, "single collective is round 0");
                    assert!(*attempt >= 1);
                    assert_eq!(f + c, 1, "one event per bad arrival");
                    assert_eq!(*backoff, 0.0, "threaded engine has no clock");
                    failed += f;
                    corrupt += c;
                }
                other => panic!("unexpected event kind {:?}", other.kind()),
            }
        }
        assert_eq!(
            failed + corrupt,
            observed,
            "journal must record exactly the retries the ranks counted"
        );
        assert!(corrupt > 0, "corrupt=0.2 must corrupt something");
    }

    #[test]
    fn single_rank_world() {
        let r = ThreadedWorld::run(1, |comm| {
            assert_eq!(comm.size(), 1);
            let recv = comm.alltoallv_u64(vec![vec![42]]);
            (comm.allreduce_sum(5), recv)
        });
        assert_eq!(r[0].0, 5);
        assert_eq!(r[0].1, vec![vec![42]]);
    }
}
