//! Communication statistics: the exact byte and message counts behind the
//! paper's Table II.

use dedukt_sim::{DataVolume, DistStats};

/// Accumulated statistics over one or more collectives.
#[derive(Clone, Debug, Default)]
pub struct CommStats {
    /// Number of collective operations performed.
    pub collectives: u64,
    /// How many of those collectives ran in overlapped (non-blocking)
    /// mode, hiding compute behind the wire.
    pub overlapped_collectives: u64,
    /// Total payload bytes moved (sum over all rank pairs, both on- and
    /// off-node).
    pub total_bytes: u64,
    /// Payload bytes that crossed node boundaries.
    pub off_node_bytes: u64,
    /// Payload bytes whose endpoints shared a node (exactly
    /// `total_bytes - off_node_bytes`, accumulated explicitly so Table II
    /// style reports never have to re-derive it).
    pub intra_node_bytes: u64,
    /// Bytes moved over the *intra-node tier* by hierarchical routing:
    /// every payload byte crosses it twice (gather to the source node's
    /// leader, scatter from the destination node's leader). Zero under
    /// direct routing.
    pub intra_tier_bytes: u64,
    /// Coalesced inter-node frames sent by hierarchical routing (one per
    /// non-empty `(node, node)` pair per collective). Zero under direct
    /// routing, where [`CommStats::messages`] counts rank-pair messages.
    pub coalesced_messages: u64,
    /// Total messages (non-empty rank→rank payloads).
    pub messages: u64,
    /// Bytes of [`CommStats::total_bytes`] that were *re-sent* on retry
    /// attempts after a fault (zero on a fault-free fabric). First-attempt
    /// traffic is `total_bytes - retry_bytes`.
    pub retry_bytes: u64,
    /// Buckets that failed to send (transient link fault) across all
    /// attempts.
    pub failed_sends: u64,
    /// Buckets delivered with a checksum mismatch and discarded.
    pub corrupt_buckets: u64,
    /// Per-rank bytes *sent*, accumulated (for imbalance reporting).
    pub sent_by_rank: Vec<u64>,
}

impl CommStats {
    /// Empty statistics for `nranks` ranks.
    pub fn new(nranks: usize) -> CommStats {
        CommStats {
            sent_by_rank: vec![0; nranks],
            ..Default::default()
        }
    }

    /// Records one Alltoallv given its send-byte matrix and a node
    /// assignment function.
    pub fn record_alltoallv(&mut self, send_bytes: &[Vec<u64>], node_of: impl Fn(usize) -> usize) {
        self.collectives += 1;
        for (i, row) in send_bytes.iter().enumerate() {
            for (j, &b) in row.iter().enumerate() {
                self.total_bytes += b;
                if node_of(i) != node_of(j) {
                    self.off_node_bytes += b;
                } else {
                    self.intra_node_bytes += b;
                }
                if b > 0 {
                    self.messages += 1;
                }
                self.sent_by_rank[i] += b;
            }
        }
    }

    /// Total volume as a [`DataVolume`].
    pub fn total_volume(&self) -> DataVolume {
        DataVolume::from_bytes(self.total_bytes)
    }

    /// Distribution of per-rank sent bytes.
    pub fn send_distribution(&self) -> Option<DistStats> {
        DistStats::from_loads(&self.sent_by_rank)
    }

    /// Merges another set of statistics (e.g. from a second phase).
    pub fn merge(&mut self, other: &CommStats) {
        assert_eq!(self.sent_by_rank.len(), other.sent_by_rank.len());
        self.collectives += other.collectives;
        self.overlapped_collectives += other.overlapped_collectives;
        self.total_bytes += other.total_bytes;
        self.off_node_bytes += other.off_node_bytes;
        self.intra_node_bytes += other.intra_node_bytes;
        self.intra_tier_bytes += other.intra_tier_bytes;
        self.coalesced_messages += other.coalesced_messages;
        self.messages += other.messages;
        self.retry_bytes += other.retry_bytes;
        self.failed_sends += other.failed_sends;
        self.corrupt_buckets += other.corrupt_buckets;
        for (a, b) in self.sent_by_rank.iter_mut().zip(&other.sent_by_rank) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_one_alltoallv() {
        let mut s = CommStats::new(4);
        // 2 nodes × 2 ranks: node_of = rank / 2.
        let m = vec![
            vec![0, 10, 20, 30],
            vec![1, 0, 2, 3],
            vec![0, 0, 0, 5],
            vec![7, 0, 0, 0],
        ];
        s.record_alltoallv(&m, |r| r / 2);
        assert_eq!(s.collectives, 1);
        assert_eq!(s.total_bytes, 78);
        // Off-node: 0→2 (20), 0→3 (30), 1→2 (2), 1→3 (3), 3→0 (7) = 62.
        assert_eq!(s.off_node_bytes, 62);
        // On-node: 0→1 (10), 1→0 (1), 2→3 (5) = 16; the split is exact.
        assert_eq!(s.intra_node_bytes, 16);
        assert_eq!(s.intra_node_bytes + s.off_node_bytes, s.total_bytes);
        // Direct-route accounting leaves the hierarchical tiers at zero.
        assert_eq!(s.intra_tier_bytes, 0);
        assert_eq!(s.coalesced_messages, 0);
        assert_eq!(s.messages, 8);
        assert_eq!(s.sent_by_rank, vec![60, 6, 5, 7]);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CommStats::new(2);
        a.record_alltoallv(&[vec![0, 1], vec![2, 0]], |_| 0);
        let mut b = CommStats::new(2);
        b.record_alltoallv(&[vec![0, 5], vec![5, 0]], |r| r);
        a.intra_tier_bytes = 4;
        a.coalesced_messages = 1;
        b.intra_tier_bytes = 6;
        b.coalesced_messages = 2;
        a.merge(&b);
        assert_eq!(a.collectives, 2);
        assert_eq!(a.total_bytes, 13);
        assert_eq!(a.off_node_bytes, 10);
        assert_eq!(a.intra_node_bytes, 3);
        assert_eq!(a.intra_tier_bytes, 10);
        assert_eq!(a.coalesced_messages, 3);
        assert_eq!(a.sent_by_rank, vec![6, 7]);
    }

    #[test]
    fn send_distribution_reports_imbalance() {
        let mut s = CommStats::new(2);
        s.record_alltoallv(&[vec![0, 30], vec![10, 0]], |_| 0);
        let d = s.send_distribution().unwrap();
        assert_eq!(d.max, 30);
        assert!((d.imbalance() - 1.5).abs() < 1e-12);
    }
}
