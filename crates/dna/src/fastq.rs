//! FASTQ and FASTA parsing and writing.
//!
//! The paper's datasets are FASTQ files (Table I sizes are `.fastq` sizes).
//! The parsers here are deliberately strict about record structure but
//! tolerant about content: ambiguous bases (`N` etc.) split a read into
//! clean fragments, mirroring how the counting pipelines must skip k-mers
//! spanning ambiguous positions.

use crate::base::{ascii_to_fragments, Base};
use crate::read::{Read, ReadSet};
use std::io::{self, BufRead, Write};

/// Errors from FASTQ/FASTA parsing.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Structural problem with the record at 1-based line `line`.
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        reason: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "io error: {e}"),
            ParseError::Malformed { line, reason } => {
                write!(f, "malformed record at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Parses FASTQ from a buffered reader. Reads containing ambiguous bases
/// are split into clean fragments of at least `min_fragment` bases, each
/// fragment becoming its own read named `<id>/<fragment-index>`; clean
/// reads keep their name and qualities.
pub fn parse_fastq<R: BufRead>(reader: R, min_fragment: usize) -> Result<ReadSet, ParseError> {
    let mut out = ReadSet::new();
    let mut lines = reader.lines().enumerate();
    while let Some((i, header)) = lines.next() {
        let header = header?;
        if header.is_empty() {
            continue; // tolerate trailing blank lines
        }
        let lineno = i + 1;
        if !header.starts_with('@') {
            return Err(ParseError::Malformed {
                line: lineno,
                reason: format!("expected '@' header, got {header:?}"),
            });
        }
        let id = header[1..]
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_string();
        let (_, seq) = lines.next().ok_or(ParseError::Malformed {
            line: lineno,
            reason: "missing sequence line".into(),
        })?;
        let seq = seq?;
        let (pi, plus) = lines.next().ok_or(ParseError::Malformed {
            line: lineno,
            reason: "missing '+' line".into(),
        })?;
        let plus = plus?;
        if !plus.starts_with('+') {
            return Err(ParseError::Malformed {
                line: pi + 1,
                reason: format!("expected '+' separator, got {plus:?}"),
            });
        }
        let (qi, qual) = lines.next().ok_or(ParseError::Malformed {
            line: lineno,
            reason: "missing quality line".into(),
        })?;
        let qual = qual?;
        if qual.len() != seq.len() {
            return Err(ParseError::Malformed {
                line: qi + 1,
                reason: format!(
                    "quality length {} != sequence length {}",
                    qual.len(),
                    seq.len()
                ),
            });
        }
        push_sequence(
            &mut out,
            &id,
            seq.as_bytes(),
            Some(qual.as_bytes()),
            min_fragment,
        );
    }
    Ok(out)
}

/// Parses FASTA from a buffered reader, splitting on ambiguous bases like
/// [`parse_fastq`]. Multi-line sequences are supported.
pub fn parse_fasta<R: BufRead>(reader: R, min_fragment: usize) -> Result<ReadSet, ParseError> {
    let mut out = ReadSet::new();
    let mut id: Option<String> = None;
    let mut seq: Vec<u8> = Vec::new();
    let mut first_content_line = true;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('>') {
            if let Some(prev) = id.take() {
                push_sequence(&mut out, &prev, &seq, None, min_fragment);
                seq.clear();
            }
            id = Some(rest.split_whitespace().next().unwrap_or("").to_string());
            first_content_line = false;
        } else {
            if first_content_line {
                return Err(ParseError::Malformed {
                    line: i + 1,
                    reason: "sequence data before any '>' header".into(),
                });
            }
            seq.extend_from_slice(line.as_bytes());
        }
    }
    if let Some(prev) = id.take() {
        push_sequence(&mut out, &prev, &seq, None, min_fragment);
    }
    Ok(out)
}

/// Appends `seq` to `out`, splitting at ambiguous bases. A clean sequence
/// keeps its quality string; fragments drop qualities (their alignment to
/// the fragment is gone anyway once positions shift).
fn push_sequence(
    out: &mut ReadSet,
    id: &str,
    seq: &[u8],
    qual: Option<&[u8]>,
    min_fragment: usize,
) {
    let is_clean = seq.iter().all(|&c| Base::from_ascii(c).is_some());
    if is_clean {
        if seq.len() >= min_fragment {
            let codes = seq
                .iter()
                .map(|&c| Base::from_ascii(c).expect("checked clean").code())
                .collect();
            out.reads.push(Read {
                id: id.to_string(),
                codes,
                quals: qual.map(|q| q.to_vec()),
            });
        }
        return;
    }
    for (fi, frag) in ascii_to_fragments(seq, min_fragment)
        .into_iter()
        .enumerate()
    {
        out.reads.push(Read {
            id: format!("{id}/{fi}"),
            codes: frag,
            quals: None,
        });
    }
}

/// Writes a read set as FASTQ. Reads without qualities get a constant
/// placeholder quality (`I`, Phred 40).
pub fn write_fastq<W: Write>(w: &mut W, reads: &ReadSet) -> io::Result<()> {
    for r in &reads.reads {
        writeln!(w, "@{}", r.id)?;
        writeln!(w, "{}", r.to_ascii())?;
        writeln!(w, "+")?;
        match &r.quals {
            Some(q) => w.write_all(q)?,
            None => w.write_all(&vec![b'I'; r.len()])?,
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Writes a read set as FASTA with 80-column wrapping.
pub fn write_fasta<W: Write>(w: &mut W, reads: &ReadSet) -> io::Result<()> {
    for r in &reads.reads {
        writeln!(w, ">{}", r.id)?;
        let ascii = r.to_ascii();
        for chunk in ascii.as_bytes().chunks(80) {
            w.write_all(chunk)?;
            writeln!(w)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn fastq(text: &str) -> ReadSet {
        parse_fastq(BufReader::new(text.as_bytes()), 1).unwrap()
    }

    #[test]
    fn parses_simple_fastq() {
        let rs = fastq("@r1 extra stuff\nACGT\n+\nIIII\n@r2\nGG\n+anything\nII\n");
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.reads[0].id, "r1");
        assert_eq!(rs.reads[0].to_ascii(), "ACGT");
        assert_eq!(rs.reads[0].quals.as_deref(), Some(&b"IIII"[..]));
        assert_eq!(rs.reads[1].to_ascii(), "GG");
    }

    #[test]
    fn splits_on_ambiguous_bases() {
        let rs = fastq("@r1\nACGTNNGGTT\n+\nIIIIIIIIII\n");
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.reads[0].id, "r1/0");
        assert_eq!(rs.reads[0].to_ascii(), "ACGT");
        assert_eq!(rs.reads[1].to_ascii(), "GGTT");
        assert!(rs.reads[0].quals.is_none());
    }

    #[test]
    fn min_fragment_drops_short_pieces() {
        let rs = parse_fastq(BufReader::new(&b"@r\nACNGGGG\n+\nIIIIIII\n"[..]), 3).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.reads[0].to_ascii(), "GGGG");
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_fastq(BufReader::new(&b"ACGT\n"[..]), 1).is_err()); // no @
        assert!(parse_fastq(BufReader::new(&b"@r\nACGT\nIIII\nIIII\n"[..]), 1).is_err()); // no +
        assert!(parse_fastq(BufReader::new(&b"@r\nACGT\n+\nII\n"[..]), 1).is_err()); // qual len
        assert!(parse_fastq(BufReader::new(&b"@r\nACGT\n"[..]), 1).is_err()); // truncated
    }

    #[test]
    fn fastq_roundtrip() {
        let rs = fastq("@a\nGATTACA\n+\nIIIIIII\n@b\nCCGG\n+\nJJJJ\n");
        let mut buf = Vec::new();
        write_fastq(&mut buf, &rs).unwrap();
        let rs2 = parse_fastq(BufReader::new(&buf[..]), 1).unwrap();
        assert_eq!(rs, rs2);
    }

    #[test]
    fn parses_multiline_fasta() {
        let txt = ">chr1 description\nACGTACGT\nGGGG\n>chr2\nTTTT\n";
        let rs = parse_fasta(BufReader::new(txt.as_bytes()), 1).unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.reads[0].id, "chr1");
        assert_eq!(rs.reads[0].to_ascii(), "ACGTACGTGGGG");
        assert_eq!(rs.reads[1].to_ascii(), "TTTT");
    }

    #[test]
    fn fasta_rejects_headerless_data() {
        assert!(parse_fasta(BufReader::new(&b"ACGT\n"[..]), 1).is_err());
    }

    #[test]
    fn fasta_write_wraps_lines() {
        let rs: ReadSet = [Read::from_ascii("long", &[b'A'; 200]).unwrap()]
            .into_iter()
            .collect();
        let mut buf = Vec::new();
        write_fasta(&mut buf, &rs).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let max_line = text.lines().map(str::len).max().unwrap();
        assert!(max_line <= 80);
        let rs2 = parse_fasta(BufReader::new(text.as_bytes()), 1).unwrap();
        assert_eq!(rs2.reads[0].to_ascii(), "A".repeat(200));
    }
}
