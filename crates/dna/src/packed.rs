//! 2-bit packed base arrays.
//!
//! The GPU pipeline concatenates all reads of a partition into "one long
//! array of bases" before copying it to the device (§III-B1). [`PackedSeq`]
//! is that array: 2 bits per base (4 bases per byte), plus the read-end
//! offsets that replace the paper's in-band "special bases". Packing
//! quarters the host→device transfer volume and is what the simulated
//! transfer cost model charges for.

use crate::base::Encoding;

/// An append-only 2-bit packed sequence of base *symbols* under a fixed
/// [`Encoding`].
///
/// Symbols — not raw base codes — are stored, so slicing a window out of a
/// `PackedSeq` and comparing packed words is consistent with [`crate::kmer`]
/// packing under the same encoding.
#[derive(Clone, Debug, Default)]
pub struct PackedSeq {
    /// 4 symbols per byte, first symbol in the two most significant bits.
    data: Vec<u8>,
    /// Number of symbols stored.
    len: usize,
    /// Encoding the symbols were produced with.
    encoding: Encoding,
}

impl PackedSeq {
    /// An empty packed sequence under `encoding`.
    pub fn new(encoding: Encoding) -> Self {
        PackedSeq {
            data: Vec::new(),
            len: 0,
            encoding,
        }
    }

    /// Empty, with capacity for `bases` bases.
    pub fn with_capacity(bases: usize, encoding: Encoding) -> Self {
        PackedSeq {
            data: Vec::with_capacity(bases.div_ceil(4)),
            len: 0,
            encoding,
        }
    }

    /// Packs a slice of base codes.
    pub fn from_codes(codes: &[u8], encoding: Encoding) -> Self {
        let mut s = Self::with_capacity(codes.len(), encoding);
        s.extend_codes(codes);
        s
    }

    /// The encoding in force.
    #[inline]
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// Number of bases stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bases are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of bytes of packed storage (the transfer-relevant size).
    #[inline]
    pub fn packed_bytes(&self) -> usize {
        self.data.len()
    }

    /// Appends one base code.
    #[inline]
    pub fn push_code(&mut self, code: u8) {
        let sym = self.encoding.encode(code);
        let slot = self.len % 4;
        if slot == 0 {
            self.data.push(sym << 6);
        } else {
            let last = self.data.last_mut().expect("slot != 0 implies a byte");
            *last |= sym << (6 - 2 * slot);
        }
        self.len += 1;
    }

    /// Appends a slice of base codes.
    pub fn extend_codes(&mut self, codes: &[u8]) {
        for &c in codes {
            self.push_code(c);
        }
    }

    /// The 2-bit symbol at base index `i`.
    #[inline]
    pub fn symbol(&self, i: usize) -> u8 {
        debug_assert!(i < self.len);
        (self.data[i / 4] >> (6 - 2 * (i % 4))) & 3
    }

    /// The base code at index `i` (decoded through the encoding).
    #[inline]
    pub fn code(&self, i: usize) -> u8 {
        self.encoding.decode(self.symbol(i))
    }

    /// Extracts the packed k-mer word covering bases `[start, start + k)`,
    /// MSB-first — identical to [`crate::kmer::Kmer::from_codes`] on the
    /// same window and encoding. `k` must be 1..=32 and the window in range.
    pub fn kmer_word(&self, start: usize, k: usize) -> u64 {
        debug_assert!((1..=32).contains(&k) && start + k <= self.len);
        let mut w = 0u64;
        for i in start..start + k {
            w = (w << 2) | self.symbol(i) as u64;
        }
        w
    }

    /// Unpacks the whole sequence back to base codes.
    pub fn to_codes(&self) -> Vec<u8> {
        (0..self.len).map(|i| self.code(i)).collect()
    }

    /// Iterates base codes.
    pub fn iter_codes(&self) -> impl Iterator<Item = u8> + '_ {
        (0..self.len).map(move |i| self.code(i))
    }
}

/// A batch of reads concatenated into one packed base array with explicit
/// read boundaries — the exact layout the GPU parse kernels consume.
///
/// The paper marks read ends with special in-band bases; an offset side
/// table is the idiomatic out-of-band equivalent (and is what the paper's
/// released CUDA code also does for supermer lengths).
#[derive(Clone, Debug)]
pub struct ConcatReads {
    /// All bases of all reads, packed.
    pub bases: PackedSeq,
    /// `ends[i]` is the exclusive end offset of read `i` in `bases`;
    /// read `i` spans `ends[i-1]..ends[i]` (with `ends[-1] = 0`).
    pub ends: Vec<usize>,
}

impl ConcatReads {
    /// Concatenates base-code reads under `encoding`.
    pub fn from_reads<'a, I>(reads: I, encoding: Encoding) -> Self
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let mut bases = PackedSeq::new(encoding);
        let mut ends = Vec::new();
        for r in reads {
            bases.extend_codes(r);
            ends.push(bases.len());
        }
        ConcatReads { bases, ends }
    }

    /// Number of reads.
    pub fn num_reads(&self) -> usize {
        self.ends.len()
    }

    /// Total number of bases.
    pub fn num_bases(&self) -> usize {
        self.bases.len()
    }

    /// The `[start, end)` range of read `i`.
    pub fn read_span(&self, i: usize) -> (usize, usize) {
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        (start, self.ends[i])
    }

    /// Total number of k-mers across all reads for a given k
    /// (`Σ max(len - k + 1, 0)`).
    pub fn num_kmers(&self, k: usize) -> usize {
        (0..self.num_reads())
            .map(|i| {
                let (s, e) = self.read_span(i);
                (e - s).saturating_sub(k - 1)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::Base;
    use crate::kmer::Kmer;

    fn codes(s: &[u8]) -> Vec<u8> {
        s.iter()
            .map(|&c| Base::from_ascii(c).unwrap().code())
            .collect()
    }

    #[test]
    fn roundtrip_various_lengths() {
        for enc in [Encoding::Alphabetical, Encoding::PaperRandom] {
            for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 63, 64, 65] {
                let cs: Vec<u8> = (0..len).map(|i| (i % 4) as u8).collect();
                let p = PackedSeq::from_codes(&cs, enc);
                assert_eq!(p.len(), len);
                assert_eq!(p.to_codes(), cs, "enc {enc:?} len {len}");
            }
        }
    }

    #[test]
    fn packing_density() {
        let p = PackedSeq::from_codes(&[0; 100], Encoding::Alphabetical);
        assert_eq!(p.packed_bytes(), 25); // 4 bases per byte
        let p = PackedSeq::from_codes(&[0; 101], Encoding::Alphabetical);
        assert_eq!(p.packed_bytes(), 26);
    }

    #[test]
    fn kmer_word_matches_kmer_type() {
        let seq = b"GATTACAGATTACA";
        for enc in [Encoding::Alphabetical, Encoding::PaperRandom] {
            let p = PackedSeq::from_codes(&codes(seq), enc);
            for k in [1usize, 3, 7, 14] {
                for start in 0..=(seq.len() - k) {
                    let expect = Kmer::from_ascii(&seq[start..start + k], enc)
                        .unwrap()
                        .word();
                    assert_eq!(p.kmer_word(start, k), expect, "enc {enc:?} k {k} s {start}");
                }
            }
        }
    }

    #[test]
    fn concat_reads_spans() {
        let r1 = codes(b"ACGT");
        let r2 = codes(b"GG");
        let r3 = codes(b"TTTTT");
        let c = ConcatReads::from_reads([&r1[..], &r2[..], &r3[..]], Encoding::Alphabetical);
        assert_eq!(c.num_reads(), 3);
        assert_eq!(c.num_bases(), 11);
        assert_eq!(c.read_span(0), (0, 4));
        assert_eq!(c.read_span(1), (4, 6));
        assert_eq!(c.read_span(2), (6, 11));
    }

    #[test]
    fn concat_kmer_count_formula() {
        // L - k + 1 per read, zero for reads shorter than k.
        let r1 = codes(b"ACGTACGT"); // 8 bases, k=3 -> 6
        let r2 = codes(b"AC"); // too short -> 0
        let c = ConcatReads::from_reads([&r1[..], &r2[..]], Encoding::Alphabetical);
        assert_eq!(c.num_kmers(3), 6);
        assert_eq!(c.num_kmers(8), 1);
        assert_eq!(c.num_kmers(9), 0);
    }

    #[test]
    fn iter_codes_matches_to_codes() {
        let cs = codes(b"ACGTTGCA");
        let p = PackedSeq::from_codes(&cs, Encoding::PaperRandom);
        let collected: Vec<u8> = p.iter_codes().collect();
        assert_eq!(collected, cs);
    }
}
