//! The Table I dataset catalog, re-scaled for a single host.
//!
//! The paper evaluates six real datasets (Table I): four ~30X bacterial
//! genomes, C. elegans 40X, and H. sapiens 54X (317 GB of FASTQ, 167 billion
//! k-mers per Table II). Real data at that scale is out of reach here, so
//! each catalog entry generates a *synthetic equivalent* via [`crate::sim`]:
//! the genome length, coverage, and repeat structure are chosen so that
//!
//! * within the bacterial group, k-mer totals keep Table II's ratios
//!   (412 : 187 : 154 : 129);
//! * C. elegans and H. sapiens remain the two dominant datasets, with
//!   H. sapiens the largest and the most repeat-rich (which is what drives
//!   its higher supermer load imbalance in Table III);
//! * the absolute sizes fit the chosen [`ScalePreset`].
//!
//! The compression of the bacteria→human size gap (3 orders of magnitude in
//! the paper, ~1.5 here at `Bench` scale) is a documented deviation; see
//! EXPERIMENTS.md.

use crate::read::ReadSet;
use crate::sim::{simulate_genome, simulate_reads, GenomeParams, ReadSimParams};

/// Identifies one of the paper's six evaluation datasets.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DatasetId {
    /// Escherichia coli MG1655, 30X (792 MB FASTQ in the paper).
    EColi30x,
    /// Pseudomonas aeruginosa PAO1, 30X (360 MB).
    PAeruginosa30x,
    /// Vibrio vulnificus YJ016, 30X (297 MB).
    VVulnificus30x,
    /// Acinetobacter baumannii, 30X (249 MB).
    ABaumannii30x,
    /// Caenorhabditis elegans Bristol, 40X (8.90 GB).
    CElegans40x,
    /// Homo sapiens, 54X (317 GB).
    HSapiens54x,
}

impl DatasetId {
    /// All six datasets in Table I order.
    pub const ALL: [DatasetId; 6] = [
        DatasetId::EColi30x,
        DatasetId::PAeruginosa30x,
        DatasetId::VVulnificus30x,
        DatasetId::ABaumannii30x,
        DatasetId::CElegans40x,
        DatasetId::HSapiens54x,
    ];

    /// The four small bacterial datasets (used in the paper's 16-node
    /// experiments, Fig. 6a / 8a).
    pub const SMALL: [DatasetId; 4] = [
        DatasetId::EColi30x,
        DatasetId::PAeruginosa30x,
        DatasetId::VVulnificus30x,
        DatasetId::ABaumannii30x,
    ];

    /// The two large datasets (64-node experiments, Fig. 6b / 7 / 8b).
    pub const LARGE: [DatasetId; 2] = [DatasetId::CElegans40x, DatasetId::HSapiens54x];

    /// Paper short name, as printed in Table I.
    pub fn short_name(self) -> &'static str {
        match self {
            DatasetId::EColi30x => "E. coli 30X",
            DatasetId::PAeruginosa30x => "P. aeruginosa 30X",
            DatasetId::VVulnificus30x => "V. vulnificus 30X",
            DatasetId::ABaumannii30x => "A. baumannii 30X",
            DatasetId::CElegans40x => "C. elegans 40X",
            DatasetId::HSapiens54x => "H. sapien 54X", // sic — paper spelling
        }
    }

    /// Species and strain, as printed in Table I.
    pub fn species(self) -> &'static str {
        match self {
            DatasetId::EColi30x => "Escherichia coli MG1655 strain",
            DatasetId::PAeruginosa30x => "Pseudomonas aeruginosa PAO1",
            DatasetId::VVulnificus30x => "Vibrio vulnificus YJ016",
            DatasetId::ABaumannii30x => "Acinetobacter baumannii",
            DatasetId::CElegans40x => "Caenorhabditis elegans Bristol mutant strain",
            DatasetId::HSapiens54x => "Homo sapiens",
        }
    }

    /// The paper's FASTQ size for this dataset, in bytes (Table I).
    pub fn paper_fastq_bytes(self) -> u64 {
        match self {
            DatasetId::EColi30x => 792 << 20,
            DatasetId::PAeruginosa30x => 360 << 20,
            DatasetId::VVulnificus30x => 297 << 20,
            DatasetId::ABaumannii30x => 249 << 20,
            DatasetId::CElegans40x => (8.90 * (1u64 << 30) as f64) as u64,
            DatasetId::HSapiens54x => 317u64 << 30,
        }
    }

    /// The paper's total k-mer count for this dataset (Table II, k=17).
    pub fn paper_kmer_count(self) -> u64 {
        match self {
            DatasetId::EColi30x => 412_000_000,
            DatasetId::PAeruginosa30x => 187_000_000,
            DatasetId::VVulnificus30x => 154_000_000,
            DatasetId::ABaumannii30x => 129_000_000,
            DatasetId::CElegans40x => 4_700_000_000,
            DatasetId::HSapiens54x => 167_000_000_000,
        }
    }
}

/// How aggressively to shrink the catalog for the host at hand.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ScalePreset {
    /// Unit-test scale: tens of thousands of k-mers per dataset; entire
    /// suite generates in milliseconds.
    Tiny,
    /// Benchmark scale (default for the figure regenerators): millions to
    /// tens of millions of k-mers; each dataset generates in seconds.
    Bench,
    /// A multiplier on `Bench` genome lengths (1.0 == `Bench`).
    Custom(f64),
}

impl ScalePreset {
    fn genome_multiplier(self) -> f64 {
        match self {
            ScalePreset::Tiny => 0.02,
            ScalePreset::Bench => 1.0,
            ScalePreset::Custom(f) => f,
        }
    }
}

/// A fully specified synthetic dataset: identity plus generation
/// parameters. Construct via [`Dataset::catalog`] or [`Dataset::new`].
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Which Table I entry this models.
    pub id: DatasetId,
    /// Genome synthesis parameters (already scaled).
    pub genome: GenomeParams,
    /// Read sampling parameters.
    pub reads: ReadSimParams,
    /// Master seed; genome and reads derive their own streams from it.
    pub seed: u64,
}

impl Dataset {
    /// Builds the catalog entry for `id` at the given scale.
    ///
    /// Bench-scale genome lengths keep Table II's bacterial ratios
    /// (E. coli : P. aeruginosa : V. vulnificus : A. baumannii =
    /// 412 : 187 : 154 : 129) and make C. elegans and H. sapiens the
    /// dominant datasets.
    pub fn new(id: DatasetId, scale: ScalePreset) -> Dataset {
        let m = scale.genome_multiplier();
        // Bench-scale genome lengths (bases) and per-dataset shape knobs.
        let (genome_len, coverage, repeat_fraction, mean_read_len) = match id {
            DatasetId::EColi30x => (100_000.0, 30.0, 0.06, 1_000),
            DatasetId::PAeruginosa30x => (45_400.0, 30.0, 0.06, 1_000),
            DatasetId::VVulnificus30x => (37_400.0, 30.0, 0.06, 1_000),
            DatasetId::ABaumannii30x => (31_300.0, 30.0, 0.06, 1_000),
            DatasetId::CElegans40x => (850_000.0, 40.0, 0.15, 1_200),
            DatasetId::HSapiens54x => (1_030_000.0, 54.0, 0.28, 1_500),
        };
        let length = ((genome_len * m) as usize).max(4_000);
        Dataset {
            id,
            genome: GenomeParams {
                length,
                repeat_fraction,
                repeat_len: (200, (length / 20).max(400)),
                gc_content: 0.45,
                // AT-rich low-complexity load grows with genome complexity
                // (H. sapiens is the most microsatellite-rich), which is
                // what skews lexicographic minimizer partitions (§IV-A).
                low_complexity_fraction: match id {
                    DatasetId::HSapiens54x => 0.04,
                    DatasetId::CElegans40x => 0.03,
                    _ => 0.02,
                },
                low_complexity_len: (20, 200),
            },
            reads: ReadSimParams {
                coverage,
                mean_read_len,
                len_sigma: 0.4,
                min_read_len: 64,
                sub_rate: 0.002,
                both_strands: true,
            },
            seed: 0xDED0_0000 + id as u64,
        }
    }

    /// The whole Table I catalog at one scale.
    pub fn catalog(scale: ScalePreset) -> Vec<Dataset> {
        DatasetId::ALL
            .iter()
            .map(|&id| Dataset::new(id, scale))
            .collect()
    }

    /// Generates the dataset (genome synthesis + read sampling).
    /// Deterministic in `self`.
    pub fn generate(&self) -> ReadSet {
        let genome = simulate_genome(&self.genome, self.seed);
        simulate_reads(&genome, &self.reads, self.seed ^ 0x9E37_79B9)
    }

    /// Expected number of sampled bases (`coverage × genome length`).
    pub fn expected_bases(&self) -> usize {
        (self.genome.length as f64 * self.reads.coverage) as usize
    }

    /// Approximate FASTQ size of the generated data, in bytes
    /// (sequence + qualities + headers ≈ 2.05 bytes per base).
    pub fn approx_fastq_bytes(&self) -> u64 {
        (self.expected_bases() as f64 * 2.05) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_all_six() {
        let cat = Dataset::catalog(ScalePreset::Tiny);
        assert_eq!(cat.len(), 6);
        for (d, id) in cat.iter().zip(DatasetId::ALL) {
            assert_eq!(d.id, id);
        }
    }

    #[test]
    fn bacterial_ratios_match_table2() {
        // Genome lengths (equal coverage) must keep 412:187:154:129.
        let e = Dataset::new(DatasetId::EColi30x, ScalePreset::Bench);
        let p = Dataset::new(DatasetId::PAeruginosa30x, ScalePreset::Bench);
        let ratio = e.genome.length as f64 / p.genome.length as f64;
        let paper = 412.0 / 187.0;
        assert!(
            (ratio - paper).abs() / paper < 0.02,
            "ratio {ratio} vs {paper}"
        );
    }

    #[test]
    fn human_is_largest_and_most_repetitive() {
        let cat = Dataset::catalog(ScalePreset::Bench);
        let human = &cat[5];
        for other in &cat[..5] {
            assert!(human.expected_bases() > other.expected_bases());
            assert!(human.genome.repeat_fraction >= other.genome.repeat_fraction);
        }
    }

    #[test]
    fn tiny_generates_quickly_and_deterministically() {
        let d = Dataset::new(DatasetId::EColi30x, ScalePreset::Tiny);
        let a = d.generate();
        let b = d.generate();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // Coverage target honoured within 10%.
        let total = a.total_bases() as f64;
        let expect = d.expected_bases() as f64;
        assert!(
            total >= expect && total < expect * 1.1,
            "{total} vs {expect}"
        );
    }

    #[test]
    fn custom_scale_scales_genome() {
        let one = Dataset::new(DatasetId::EColi30x, ScalePreset::Custom(1.0));
        let half = Dataset::new(DatasetId::EColi30x, ScalePreset::Custom(0.5));
        assert_eq!(one.genome.length / 2, half.genome.length);
    }

    #[test]
    fn paper_constants_present() {
        assert_eq!(DatasetId::HSapiens54x.paper_kmer_count(), 167_000_000_000);
        assert_eq!(DatasetId::EColi30x.paper_fastq_bytes(), 792 << 20);
        assert_eq!(DatasetId::HSapiens54x.short_name(), "H. sapien 54X");
    }

    #[test]
    fn distinct_seeds_per_dataset() {
        let cat = Dataset::catalog(ScalePreset::Tiny);
        let mut seeds: Vec<u64> = cat.iter().map(|d| d.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 6);
    }
}
