//! Sequencing reads.

use crate::base::Base;

/// A single sequencing read: an identifier, base codes, and optional
/// per-base quality scores (Phred+33 style, kept only for FASTQ round
/// tripping — the counting pipelines ignore qualities, as the paper does).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Read {
    /// Read name (FASTQ header without the leading `@`).
    pub id: String,
    /// Base codes (A=0, C=1, G=2, T=3).
    pub codes: Vec<u8>,
    /// Optional quality string, same length as `codes` when present.
    pub quals: Option<Vec<u8>>,
}

impl Read {
    /// Builds a read from an ASCII sequence, which must be clean ACGT.
    /// Returns `None` if any character is ambiguous.
    pub fn from_ascii(id: impl Into<String>, seq: &[u8]) -> Option<Read> {
        let codes = seq
            .iter()
            .map(|&c| Base::from_ascii(c).map(Base::code))
            .collect::<Option<Vec<u8>>>()?;
        Some(Read {
            id: id.into(),
            codes,
            quals: None,
        })
    }

    /// Read length in bases.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True for a zero-length read.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Number of k-mers this read contributes: `max(len - k + 1, 0)`.
    pub fn num_kmers(&self, k: usize) -> usize {
        self.len().saturating_sub(k - 1)
    }

    /// The sequence as an ASCII string.
    pub fn to_ascii(&self) -> String {
        self.codes
            .iter()
            .map(|&c| Base::from_code(c).to_ascii() as char)
            .collect()
    }

    /// Quality-trims the read: finds the longest run of bases whose
    /// Phred+33 quality is at least `min_phred` and keeps only it.
    /// Reads without qualities are returned unchanged. Returns `None` if
    /// nothing survives.
    ///
    /// Counting erroneous k-mers wastes exchange volume and table space
    /// (the error mass a Bloom pre-pass would otherwise absorb); trimming
    /// is the standard upstream mitigation.
    pub fn quality_trimmed(&self, min_phred: u8) -> Option<Read> {
        let Some(quals) = &self.quals else {
            return Some(self.clone());
        };
        debug_assert_eq!(quals.len(), self.codes.len());
        let threshold = min_phred.saturating_add(33);
        // Longest run of positions with qual >= threshold.
        let (mut best_start, mut best_len) = (0usize, 0usize);
        let (mut run_start, mut run_len) = (0usize, 0usize);
        for (i, &q) in quals.iter().enumerate() {
            if q >= threshold {
                if run_len == 0 {
                    run_start = i;
                }
                run_len += 1;
                if run_len > best_len {
                    best_start = run_start;
                    best_len = run_len;
                }
            } else {
                run_len = 0;
            }
        }
        if best_len == 0 {
            return None;
        }
        Some(Read {
            id: self.id.clone(),
            codes: self.codes[best_start..best_start + best_len].to_vec(),
            quals: Some(quals[best_start..best_start + best_len].to_vec()),
        })
    }
}

/// An owned collection of reads with convenience statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReadSet {
    /// The reads.
    pub reads: Vec<Read>,
}

impl ReadSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of reads.
    pub fn len(&self) -> usize {
        self.reads.len()
    }

    /// True if there are no reads.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty()
    }

    /// Total bases across all reads.
    pub fn total_bases(&self) -> usize {
        self.reads.iter().map(Read::len).sum()
    }

    /// Total k-mers across all reads.
    pub fn total_kmers(&self, k: usize) -> usize {
        self.reads.iter().map(|r| r.num_kmers(k)).sum()
    }

    /// Mean read length (0.0 for an empty set).
    pub fn mean_len(&self) -> f64 {
        if self.reads.is_empty() {
            0.0
        } else {
            self.total_bases() as f64 / self.reads.len() as f64
        }
    }

    /// Quality-trims every read (see [`Read::quality_trimmed`]), dropping
    /// reads that end up shorter than `min_len`.
    pub fn quality_trimmed(&self, min_phred: u8, min_len: usize) -> ReadSet {
        ReadSet {
            reads: self
                .reads
                .iter()
                .filter_map(|r| r.quality_trimmed(min_phred))
                .filter(|r| r.len() >= min_len)
                .collect(),
        }
    }

    /// Splits the set into `n` near-equal *by base count* partitions,
    /// preserving read order — modelling the paper's parallel I/O, which
    /// "partitions the input roughly uniformly over P processors" (§IV-D).
    /// Reads are never split across partitions.
    pub fn partition_by_bases(&self, n: usize) -> Vec<ReadSet> {
        assert!(n > 0);
        let total = self.total_bases();
        let target = total as f64 / n as f64;
        let mut parts: Vec<ReadSet> = Vec::with_capacity(n);
        let mut cur = ReadSet::new();
        let mut acc = 0usize; // bases in parts already closed + cur
        for r in &self.reads {
            // Close the current partition once it has reached its share,
            // but never exceed n partitions.
            let boundary = (parts.len() + 1) as f64 * target;
            if parts.len() + 1 < n && !cur.reads.is_empty() && (acc + r.len()) as f64 > boundary {
                parts.push(std::mem::take(&mut cur));
            }
            acc += r.len();
            cur.reads.push(r.clone());
        }
        parts.push(cur);
        while parts.len() < n {
            parts.push(ReadSet::new());
        }
        parts
    }
}

impl FromIterator<Read> for ReadSet {
    fn from_iter<I: IntoIterator<Item = Read>>(iter: I) -> Self {
        ReadSet {
            reads: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(id: &str, seq: &[u8]) -> Read {
        Read::from_ascii(id, seq).unwrap()
    }

    #[test]
    fn read_basics() {
        let r = read("r1", b"GATTACA");
        assert_eq!(r.len(), 7);
        assert_eq!(r.num_kmers(3), 5);
        assert_eq!(r.num_kmers(7), 1);
        assert_eq!(r.num_kmers(8), 0);
        assert_eq!(r.to_ascii(), "GATTACA");
    }

    #[test]
    fn rejects_ambiguous() {
        assert!(Read::from_ascii("x", b"ACGN").is_none());
    }

    #[test]
    fn set_statistics() {
        let s: ReadSet = [read("a", b"ACGT"), read("b", b"GGGGGGGG")]
            .into_iter()
            .collect();
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_bases(), 12);
        assert_eq!(s.total_kmers(4), 1 + 5);
        assert!((s.mean_len() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn partition_covers_everything_in_order() {
        let s: ReadSet = (0..20)
            .map(|i| read(&format!("r{i}"), &vec![b'A'; 10 + (i % 7) * 30]))
            .collect();
        for n in [1usize, 2, 3, 5, 8] {
            let parts = s.partition_by_bases(n);
            assert_eq!(parts.len(), n);
            let rejoined: Vec<&Read> = parts.iter().flat_map(|p| p.reads.iter()).collect();
            assert_eq!(rejoined.len(), s.len());
            for (a, b) in rejoined.iter().zip(s.reads.iter()) {
                assert_eq!(**a, *b);
            }
        }
    }

    #[test]
    fn partition_is_roughly_even_by_bases() {
        let s: ReadSet = (0..100)
            .map(|i| read(&format!("r{i}"), &[b'C'; 100]))
            .collect();
        let parts = s.partition_by_bases(4);
        for p in &parts {
            let b = p.total_bases();
            assert!((2000..=3000).contains(&b), "partition has {b} bases");
        }
    }

    #[test]
    fn quality_trim_keeps_longest_good_run() {
        // Phred+33: 'I' = Q40, '#' = Q2.
        let r = Read {
            id: "q".into(),
            codes: vec![0, 1, 2, 3, 0, 1, 2, 3],
            quals: Some(b"##IIII##".to_vec()),
        };
        let t = r.quality_trimmed(20).unwrap();
        assert_eq!(t.codes, vec![2, 3, 0, 1]);
        assert_eq!(t.quals.as_deref(), Some(&b"IIII"[..]));
    }

    #[test]
    fn quality_trim_edge_cases() {
        // No qualities: unchanged.
        let r = read("a", b"ACGT");
        assert_eq!(r.quality_trimmed(40).unwrap(), r);
        // All bad: dropped.
        let bad = Read {
            id: "b".into(),
            codes: vec![0; 4],
            quals: Some(b"####".to_vec()),
        };
        assert!(bad.quality_trimmed(20).is_none());
        // All good: identical.
        let good = Read {
            id: "c".into(),
            codes: vec![1; 4],
            quals: Some(b"IIII".to_vec()),
        };
        assert_eq!(good.quality_trimmed(20).unwrap().codes, vec![1; 4]);
    }

    #[test]
    fn set_quality_trim_drops_short_survivors() {
        let mk = |id: &str, quals: &[u8]| Read {
            id: id.into(),
            codes: vec![0; quals.len()],
            quals: Some(quals.to_vec()),
        };
        let s: ReadSet = [
            mk("long", b"IIIIIIII"),  // survives
            mk("short", b"##II####"), // trims to 2 -> dropped at min_len 4
            mk("dead", b"########"),  // nothing survives
        ]
        .into_iter()
        .collect();
        let t = s.quality_trimmed(20, 4);
        assert_eq!(t.len(), 1);
        assert_eq!(t.reads[0].id, "long");
    }

    #[test]
    fn partition_more_ranks_than_reads() {
        let s: ReadSet = [read("a", b"ACGT")].into_iter().collect();
        let parts = s.partition_by_bases(4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 1);
    }
}
