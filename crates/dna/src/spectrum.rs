//! k-mer spectra (frequency-of-frequency histograms).
//!
//! The paper motivates k-mer counting by the downstream value of "k-mer
//! histograms" (§II-A). A spectrum maps multiplicity → number of distinct
//! k-mers with that multiplicity; it is also the natural cross-check
//! artifact between two counters (identical multisets ⇒ identical spectra).

use std::collections::BTreeMap;

/// A k-mer spectrum: for each multiplicity `c`, the number of distinct
/// k-mers that occur exactly `c` times.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Spectrum {
    counts: BTreeMap<u32, u64>,
}

impl Spectrum {
    /// Empty spectrum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a spectrum from `(kmer, count)` pairs; the k-mer itself is
    /// irrelevant, only counts matter.
    pub fn from_counts<I: IntoIterator<Item = u32>>(counts: I) -> Spectrum {
        let mut s = Spectrum::new();
        for c in counts {
            s.record(c);
        }
        s
    }

    /// Records one distinct k-mer with multiplicity `count`.
    pub fn record(&mut self, count: u32) {
        if count > 0 {
            *self.counts.entry(count).or_insert(0) += 1;
        }
    }

    /// Number of distinct k-mers.
    pub fn distinct(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Total k-mer instances (`Σ multiplicity × distinct-at-multiplicity`).
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|(&c, &n)| c as u64 * n).sum()
    }

    /// Number of singletons (multiplicity 1) — mostly sequencing errors in
    /// real data, the usual target of Bloom-filter suppression.
    pub fn singletons(&self) -> u64 {
        self.counts.get(&1).copied().unwrap_or(0)
    }

    /// Largest multiplicity observed (0 for an empty spectrum).
    pub fn max_multiplicity(&self) -> u32 {
        self.counts.keys().next_back().copied().unwrap_or(0)
    }

    /// Iterates `(multiplicity, distinct k-mers)` in increasing
    /// multiplicity.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts.iter().map(|(&c, &n)| (c, n))
    }

    /// Merges another spectrum into this one. Only meaningful when the two
    /// spectra were built over disjoint k-mer key spaces (e.g. per-rank
    /// partitions of a distributed table, which never share a k-mer).
    pub fn merge(&mut self, other: &Spectrum) {
        for (&c, &n) in &other.counts {
            *self.counts.entry(c).or_insert(0) += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accounting() {
        // counts: three kmers seen once, one seen 5 times.
        let s = Spectrum::from_counts([1, 1, 5, 1]);
        assert_eq!(s.distinct(), 4);
        assert_eq!(s.total(), 8);
        assert_eq!(s.singletons(), 3);
        assert_eq!(s.max_multiplicity(), 5);
    }

    #[test]
    fn zero_counts_ignored() {
        let s = Spectrum::from_counts([0, 0, 2]);
        assert_eq!(s.distinct(), 1);
        assert_eq!(s.total(), 2);
    }

    #[test]
    fn empty_spectrum() {
        let s = Spectrum::new();
        assert_eq!(s.distinct(), 0);
        assert_eq!(s.total(), 0);
        assert_eq!(s.max_multiplicity(), 0);
    }

    #[test]
    fn merge_disjoint_partitions() {
        let mut a = Spectrum::from_counts([1, 2]);
        let b = Spectrum::from_counts([2, 2, 7]);
        a.merge(&b);
        assert_eq!(a.distinct(), 5);
        assert_eq!(a.total(), 1 + 2 + 2 + 2 + 7);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![(1, 1), (2, 3), (7, 1)]);
    }

    #[test]
    fn iteration_is_sorted_by_multiplicity() {
        let s = Spectrum::from_counts([9, 1, 4, 4]);
        let mults: Vec<u32> = s.iter().map(|(c, _)| c).collect();
        assert_eq!(mults, vec![1, 4, 9]);
    }
}
