//! Packed k-mers.
//!
//! A k-mer is stored as 2 bits per base, most-significant-first, right
//! aligned in a machine word: `u64` for k ≤ 32 ([`Kmer`]) or `u128` for
//! k ≤ 64 ([`Kmer128`]). The paper packs k-mers the same way ("a 11-mer can
//! fit into a 32 bit data type", §III-B1); with the paper's default k = 17 a
//! k-mer occupies 34 bits of a single 64-bit word.
//!
//! MSB-first packing gives the property the minimizer machinery relies on:
//! numeric comparison of equal-length packed words equals lexicographic
//! comparison of their encoded symbol strings.
//!
//! Both supported [`Encoding`]s map complementary bases to symbols summing
//! to 3, so reverse-complement works directly in symbol space (reverse the
//! 2-bit groups and XOR with all-ones) regardless of encoding. A test
//! enforces this invariant.

use crate::base::{Base, Encoding};
use std::fmt;

/// A packed k-mer with k ≤ 32 (2 bits/base in a `u64`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Kmer {
    word: u64,
    k: u8,
}

impl Kmer {
    /// Maximum supported k.
    pub const MAX_K: usize = 32;

    /// Builds a k-mer from base codes under `encoding`. Panics if
    /// `codes.len()` is 0 or exceeds [`Kmer::MAX_K`].
    pub fn from_codes(codes: &[u8], encoding: Encoding) -> Kmer {
        assert!(
            (1..=Self::MAX_K).contains(&codes.len()),
            "k = {} out of range 1..=32",
            codes.len()
        );
        let mut word = 0u64;
        for &c in codes {
            word = (word << 2) | encoding.encode(c) as u64;
        }
        Kmer {
            word,
            k: codes.len() as u8,
        }
    }

    /// Builds a k-mer from an ASCII sequence (must be clean ACGT).
    pub fn from_ascii(seq: &[u8], encoding: Encoding) -> Option<Kmer> {
        if seq.is_empty() || seq.len() > Self::MAX_K {
            return None;
        }
        let mut word = 0u64;
        for &ch in seq {
            let b = Base::from_ascii(ch)?;
            word = (word << 2) | encoding.encode_base(b) as u64;
        }
        Some(Kmer {
            word,
            k: seq.len() as u8,
        })
    }

    /// Wraps a raw packed word. The low `2k` bits must hold the symbols and
    /// all higher bits must be zero (debug-asserted).
    #[inline]
    pub fn from_word(word: u64, k: usize) -> Kmer {
        debug_assert!((1..=Self::MAX_K).contains(&k));
        debug_assert!(k == 32 || word < (1u64 << (2 * k)), "stray high bits");
        Kmer { word, k: k as u8 }
    }

    /// The raw packed word (low `2k` bits).
    #[inline]
    pub fn word(self) -> u64 {
        self.word
    }

    /// The k-mer length.
    #[inline]
    pub fn k(self) -> usize {
        self.k as usize
    }

    /// Bit mask covering the low `2k` bits.
    #[inline]
    pub fn mask(k: usize) -> u64 {
        debug_assert!((1..=Self::MAX_K).contains(&k));
        if k == 32 {
            u64::MAX
        } else {
            (1u64 << (2 * k)) - 1
        }
    }

    /// Rolls the window one base to the right: drops the leftmost base and
    /// appends `code` (already in base-code space) on the right.
    #[inline]
    pub fn rolled(self, code: u8, encoding: Encoding) -> Kmer {
        let word = ((self.word << 2) | encoding.encode(code) as u64) & Self::mask(self.k());
        Kmer { word, k: self.k }
    }

    /// Decodes back to base codes.
    pub fn codes(self, encoding: Encoding) -> Vec<u8> {
        let k = self.k();
        let mut out = vec![0u8; k];
        for (i, slot) in out.iter_mut().enumerate() {
            let shift = 2 * (k - 1 - i);
            *slot = encoding.decode(((self.word >> shift) & 3) as u8);
        }
        out
    }

    /// Renders as an ASCII string.
    pub fn to_ascii(self, encoding: Encoding) -> String {
        self.codes(encoding)
            .into_iter()
            .map(|c| Base::from_code(c).to_ascii() as char)
            .collect()
    }

    /// Extracts the `m`-mer starting at base offset `pos` (0-based from the
    /// left / most significant end) as a packed word, preserving symbol
    /// order. Used by the minimizer scan. Requires `pos + m <= k`.
    #[inline]
    pub fn submer(self, pos: usize, m: usize) -> u64 {
        let k = self.k();
        debug_assert!(m >= 1 && pos + m <= k);
        let shift = 2 * (k - pos - m);
        (self.word >> shift) & Kmer::mask(m)
    }

    /// Reverse complement. Works in symbol space; valid for both supported
    /// encodings because each maps complement pairs to symbols summing to 3.
    pub fn reverse_complement(self) -> Kmer {
        let k = self.k();
        // Complement every symbol, then reverse the 2-bit groups.
        let comp = !self.word;
        let rev = reverse_2bit_groups(comp);
        // After a full 64-bit group reversal the k meaningful groups sit in
        // the high bits; shift them back down.
        let word = (rev >> (2 * (32 - k))) & Self::mask(k);
        Kmer { word, k: self.k }
    }

    /// Canonical form: the numerically smaller of the k-mer and its reverse
    /// complement. The paper does *not* canonicalize (Fig. 4); canonical
    /// mode is an extension of this reproduction.
    pub fn canonical(self) -> Kmer {
        let rc = self.reverse_complement();
        if rc.word < self.word {
            rc
        } else {
            self
        }
    }
}

impl fmt::Debug for Kmer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Kmer(k={}, word={:#x})", self.k, self.word)
    }
}

/// Reverses the 32 2-bit groups of a `u64` (group 0 swaps with group 31).
#[inline]
pub fn reverse_2bit_groups(mut v: u64) -> u64 {
    // Swap adjacent 2-bit groups, then nibbles, bytes, and wider lanes.
    v = ((v & 0x3333_3333_3333_3333) << 2) | ((v >> 2) & 0x3333_3333_3333_3333);
    v = ((v & 0x0F0F_0F0F_0F0F_0F0F) << 4) | ((v >> 4) & 0x0F0F_0F0F_0F0F_0F0F);
    v.swap_bytes()
}

/// A packed k-mer with k ≤ 64 (2 bits/base in a `u128`), for long-k
/// workloads (third-generation analyses sometimes use k up to 63).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Kmer128 {
    word: u128,
    k: u8,
}

impl Kmer128 {
    /// Maximum supported k.
    pub const MAX_K: usize = 64;

    /// Builds from base codes under `encoding`.
    pub fn from_codes(codes: &[u8], encoding: Encoding) -> Kmer128 {
        assert!(
            (1..=Self::MAX_K).contains(&codes.len()),
            "k = {} out of range 1..=64",
            codes.len()
        );
        let mut word = 0u128;
        for &c in codes {
            word = (word << 2) | encoding.encode(c) as u128;
        }
        Kmer128 {
            word,
            k: codes.len() as u8,
        }
    }

    /// Wraps a raw packed word (low `2k` bits hold the symbols).
    #[inline]
    pub fn from_word(word: u128, k: usize) -> Kmer128 {
        debug_assert!((1..=Self::MAX_K).contains(&k));
        debug_assert!(k == 64 || word < (1u128 << (2 * k)), "stray high bits");
        Kmer128 { word, k: k as u8 }
    }

    /// The raw packed word.
    #[inline]
    pub fn word(self) -> u128 {
        self.word
    }

    /// The k-mer length.
    #[inline]
    pub fn k(self) -> usize {
        self.k as usize
    }

    /// Mask over the low `2k` bits.
    #[inline]
    pub fn mask(k: usize) -> u128 {
        debug_assert!((1..=Self::MAX_K).contains(&k));
        if k == 64 {
            u128::MAX
        } else {
            (1u128 << (2 * k)) - 1
        }
    }

    /// Rolls the window one base to the right.
    #[inline]
    pub fn rolled(self, code: u8, encoding: Encoding) -> Kmer128 {
        let word = ((self.word << 2) | encoding.encode(code) as u128) & Self::mask(self.k());
        Kmer128 { word, k: self.k }
    }

    /// Decodes back to base codes.
    pub fn codes(self, encoding: Encoding) -> Vec<u8> {
        let k = self.k();
        let mut out = vec![0u8; k];
        for (i, slot) in out.iter_mut().enumerate() {
            let shift = 2 * (k - 1 - i);
            *slot = encoding.decode(((self.word >> shift) & 3) as u8);
        }
        out
    }

    /// Extracts the `m`-mer starting at base offset `pos` as a packed
    /// `u64` word (m ≤ 32), preserving symbol order — the wide-k
    /// minimizer scan's primitive.
    #[inline]
    pub fn submer(self, pos: usize, m: usize) -> u64 {
        let k = self.k();
        debug_assert!((1..=32).contains(&m) && pos + m <= k);
        let shift = 2 * (k - pos - m);
        ((self.word >> shift) as u64) & Kmer::mask(m)
    }

    /// Reverse complement (same symbol-space trick as [`Kmer`]).
    pub fn reverse_complement(self) -> Kmer128 {
        let k = self.k();
        let comp = !self.word;
        let lo = reverse_2bit_groups(comp as u64);
        let hi = reverse_2bit_groups((comp >> 64) as u64);
        let rev = ((lo as u128) << 64) | hi as u128;
        let word = (rev >> (2 * (64 - k))) & Self::mask(k);
        Kmer128 { word, k: self.k }
    }

    /// Canonical form (min of self and reverse complement).
    pub fn canonical(self) -> Kmer128 {
        let rc = self.reverse_complement();
        if rc.word < self.word {
            rc
        } else {
            self
        }
    }
}

impl fmt::Debug for Kmer128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Kmer128(k={}, word={:#x})", self.k, self.word)
    }
}

/// A machine word wide enough to hold a 2-bit-packed k-mer: `u64` for
/// k ≤ 32 or `u128` for k ≤ 64.
///
/// This is the width abstraction the generic counting stack is built on:
/// packing, rolling, minimizer extraction ([`KmerWord::submer_of`] always
/// yields a `u64` because m ≤ 32 at either width), canonicalization, and
/// the exact wire size of one packed word. All methods delegate to
/// [`Kmer`] / [`Kmer128`], so narrow behaviour is bit-identical to the
/// concrete types.
pub trait KmerWord: Copy + Eq + Ord + std::hash::Hash + fmt::Debug + Send + Sync + 'static {
    /// Maximum k this width can pack (32 or 64).
    const MAX_K: usize;
    /// The all-zero word.
    const ZERO: Self;
    /// Bytes one packed word occupies on the wire (8 or 16).
    const WORD_BYTES: usize;

    /// Bit mask covering the low `2k` bits.
    fn kmer_mask(k: usize) -> Self;

    /// Rolls the window one base right: shifts in the 2-bit `sym` and
    /// masks back to `2k` bits. `mask` must be `Self::kmer_mask(k)`.
    fn roll_sym(self, sym: u8, mask: Self) -> Self;

    /// Packs a slice of base codes under `encoding` (MSB-first).
    fn pack_codes(codes: &[u8], encoding: Encoding) -> Self;

    /// Extracts the `m`-mer (m ≤ 32) starting at base offset `pos` of a
    /// `k`-long word as a packed `u64`, preserving symbol order.
    fn submer_of(self, k: usize, pos: usize, m: usize) -> u64;

    /// Extracts the `sub_len`-base window starting at base offset `pos`
    /// of a `total_len`-long word as a full-width packed word (the k-mer
    /// extraction primitive of supermer unpacking, where `sub_len` may
    /// exceed 32 at the wide width).
    fn subword(self, total_len: usize, pos: usize, sub_len: usize) -> Self;

    /// Canonical form: numeric min of the word and its reverse complement.
    fn canonical_word(self, k: usize) -> Self;

    /// Decodes the `k`-long word back to base codes.
    fn word_codes(self, k: usize, encoding: Encoding) -> Vec<u8>;
}

impl KmerWord for u64 {
    const MAX_K: usize = Kmer::MAX_K;
    const ZERO: Self = 0;
    const WORD_BYTES: usize = 8;

    #[inline]
    fn kmer_mask(k: usize) -> u64 {
        Kmer::mask(k)
    }

    #[inline]
    fn roll_sym(self, sym: u8, mask: u64) -> u64 {
        ((self << 2) | sym as u64) & mask
    }

    fn pack_codes(codes: &[u8], encoding: Encoding) -> u64 {
        Kmer::from_codes(codes, encoding).word()
    }

    #[inline]
    fn submer_of(self, k: usize, pos: usize, m: usize) -> u64 {
        Kmer::from_word(self, k).submer(pos, m)
    }

    #[inline]
    fn subword(self, total_len: usize, pos: usize, sub_len: usize) -> u64 {
        debug_assert!(sub_len >= 1 && pos + sub_len <= total_len);
        (self >> (2 * (total_len - pos - sub_len))) & Kmer::mask(sub_len)
    }

    #[inline]
    fn canonical_word(self, k: usize) -> u64 {
        Kmer::from_word(self, k).canonical().word()
    }

    fn word_codes(self, k: usize, encoding: Encoding) -> Vec<u8> {
        Kmer::from_word(self, k).codes(encoding)
    }
}

impl KmerWord for u128 {
    const MAX_K: usize = Kmer128::MAX_K;
    const ZERO: Self = 0;
    const WORD_BYTES: usize = 16;

    #[inline]
    fn kmer_mask(k: usize) -> u128 {
        Kmer128::mask(k)
    }

    #[inline]
    fn roll_sym(self, sym: u8, mask: u128) -> u128 {
        ((self << 2) | sym as u128) & mask
    }

    fn pack_codes(codes: &[u8], encoding: Encoding) -> u128 {
        Kmer128::from_codes(codes, encoding).word()
    }

    #[inline]
    fn submer_of(self, k: usize, pos: usize, m: usize) -> u64 {
        Kmer128::from_word(self, k).submer(pos, m)
    }

    #[inline]
    fn subword(self, total_len: usize, pos: usize, sub_len: usize) -> u128 {
        debug_assert!(sub_len >= 1 && pos + sub_len <= total_len);
        (self >> (2 * (total_len - pos - sub_len))) & Kmer128::mask(sub_len)
    }

    #[inline]
    fn canonical_word(self, k: usize) -> u128 {
        Kmer128::from_word(self, k).canonical().word()
    }

    fn word_codes(self, k: usize, encoding: Encoding) -> Vec<u8> {
        Kmer128::from_word(self, k).codes(encoding)
    }
}

/// Iterates all packed k-mer words of a base-code slice with a rolling
/// window, at either word width. Yields nothing if the slice is shorter
/// than k. Width-generic twin of [`kmer_words`] / [`kmer_words128`].
pub fn kmer_words_w<W: KmerWord>(
    codes: &[u8],
    k: usize,
    encoding: Encoding,
) -> impl Iterator<Item = W> + '_ {
    assert!((1..=W::MAX_K).contains(&k));
    let mask = W::kmer_mask(k);
    let mut acc = W::ZERO;
    let mut filled = 0usize;
    codes.iter().filter_map(move |&c| {
        acc = acc.roll_sym(encoding.encode(c), mask);
        filled += 1;
        if filled >= k {
            Some(acc)
        } else {
            None
        }
    })
}

/// Iterates all packed wide k-mer words (k ≤ 64) of a base-code slice
/// with a rolling window. Yields nothing if the slice is shorter than k.
pub fn kmer_words128<'a>(
    codes: &'a [u8],
    k: usize,
    encoding: Encoding,
) -> impl Iterator<Item = u128> + 'a {
    assert!((1..=Kmer128::MAX_K).contains(&k));
    let mask = Kmer128::mask(k);
    let mut acc = 0u128;
    let mut filled = 0usize;
    codes.iter().filter_map(move |&c| {
        acc = ((acc << 2) | encoding.encode(c) as u128) & mask;
        filled += 1;
        if filled >= k {
            Some(acc)
        } else {
            None
        }
    })
}

/// Iterates all packed k-mer words of a base-code slice with a rolling
/// window (O(1) per k-mer). Yields nothing if the slice is shorter than k.
pub fn kmer_words<'a>(
    codes: &'a [u8],
    k: usize,
    encoding: Encoding,
) -> impl Iterator<Item = u64> + 'a {
    assert!((1..=Kmer::MAX_K).contains(&k));
    let mask = Kmer::mask(k);
    let mut acc = 0u64;
    let mut filled = 0usize;
    codes.iter().filter_map(move |&c| {
        acc = ((acc << 2) | encoding.encode(c) as u64) & mask;
        filled += 1;
        if filled >= k {
            Some(acc)
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENC: Encoding = Encoding::Alphabetical;

    #[test]
    fn packs_msb_first() {
        // "ACGT" under alphabetical encoding: 00 01 10 11 = 0b00011011.
        let k = Kmer::from_ascii(b"ACGT", ENC).unwrap();
        assert_eq!(k.word(), 0b00_01_10_11);
        assert_eq!(k.k(), 4);
    }

    #[test]
    fn numeric_order_equals_lexicographic() {
        let words: Vec<&[u8]> = vec![b"AAAA", b"AAAC", b"ACGT", b"CAAA", b"TTTT"];
        let mut packed: Vec<u64> = words
            .iter()
            .map(|w| Kmer::from_ascii(w, ENC).unwrap().word())
            .collect();
        let sorted = {
            let mut s = packed.clone();
            s.sort_unstable();
            s
        };
        packed.sort_unstable();
        assert_eq!(packed, sorted);
        // And the lexicographically smallest string gives smallest word.
        assert_eq!(packed[0], Kmer::from_ascii(b"AAAA", ENC).unwrap().word());
    }

    #[test]
    fn ascii_roundtrip() {
        for s in [&b"GATTACA"[..], b"A", b"ACGTACGTACGTACGTACGTACGTACGTACGT"] {
            let k = Kmer::from_ascii(s, ENC).unwrap();
            assert_eq!(k.to_ascii(ENC).as_bytes(), s);
        }
        // Same under the paper encoding.
        let k = Kmer::from_ascii(b"GATTACA", Encoding::PaperRandom).unwrap();
        assert_eq!(k.to_ascii(Encoding::PaperRandom), "GATTACA");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Kmer::from_ascii(b"", ENC).is_none());
        assert!(Kmer::from_ascii(b"ACGN", ENC).is_none());
        assert!(Kmer::from_ascii(&[b'A'; 33], ENC).is_none());
    }

    #[test]
    fn rolling_matches_fresh_construction() {
        let seq = b"GATTACAGATTACAGA";
        let k = 5;
        let mut rolled = Kmer::from_ascii(&seq[..k], ENC).unwrap();
        for i in 1..=(seq.len() - k) {
            let code = Base::from_ascii(seq[i + k - 1]).unwrap().code();
            rolled = rolled.rolled(code, ENC);
            let fresh = Kmer::from_ascii(&seq[i..i + k], ENC).unwrap();
            assert_eq!(rolled, fresh, "window {i}");
        }
    }

    #[test]
    fn kmer_words_iterator_matches_windows() {
        let seq = b"ACGTTGCAACGT";
        let codes: Vec<u8> = seq
            .iter()
            .map(|&c| Base::from_ascii(c).unwrap().code())
            .collect();
        let k = 4;
        let got: Vec<u64> = kmer_words(&codes, k, ENC).collect();
        let expect: Vec<u64> = (0..=seq.len() - k)
            .map(|i| Kmer::from_ascii(&seq[i..i + k], ENC).unwrap().word())
            .collect();
        assert_eq!(got, expect);
        assert_eq!(got.len(), seq.len() - k + 1); // L - k + 1 k-mers
    }

    #[test]
    fn kmer_words_short_input_yields_nothing() {
        let codes = [0u8, 1, 2];
        assert_eq!(kmer_words(&codes, 4, ENC).count(), 0);
    }

    #[test]
    fn submer_extracts_mmers() {
        // GATTACA, m=3: windows GAT, ATT, TTA, TAC, ACA.
        let k = Kmer::from_ascii(b"GATTACA", ENC).unwrap();
        for (pos, expect) in [b"GAT", b"ATT", b"TTA", b"TAC", b"ACA"].iter().enumerate() {
            let want = Kmer::from_ascii(*expect, ENC).unwrap().word();
            assert_eq!(k.submer(pos, 3), want, "pos {pos}");
        }
    }

    #[test]
    fn reverse_complement_known_answer() {
        let k = Kmer::from_ascii(b"AACGTT", ENC).unwrap();
        assert_eq!(k.reverse_complement().to_ascii(ENC), "AACGTT"); // palindrome
        let k = Kmer::from_ascii(b"GATTACA", ENC).unwrap();
        assert_eq!(k.reverse_complement().to_ascii(ENC), "TGTAATC");
    }

    #[test]
    fn reverse_complement_is_involution_both_encodings() {
        for enc in [Encoding::Alphabetical, Encoding::PaperRandom] {
            for s in [&b"A"[..], b"ACGT", b"GGGATCCTTAAAGCGC", &[b'T'; 32]] {
                let k = Kmer::from_ascii(s, enc).unwrap();
                assert_eq!(k.reverse_complement().reverse_complement(), k);
                // Sequence-level check: rc in symbol space equals rc computed
                // on the ASCII string.
                let rc_ascii: Vec<u8> = s
                    .iter()
                    .rev()
                    .map(|&c| Base::from_ascii(c).unwrap().complement().to_ascii())
                    .collect();
                assert_eq!(
                    k.reverse_complement().to_ascii(enc).as_bytes(),
                    &rc_ascii[..],
                    "enc {enc:?} seq {}",
                    std::str::from_utf8(s).unwrap()
                );
            }
        }
    }

    #[test]
    fn canonical_is_stable() {
        let k = Kmer::from_ascii(b"GATTACA", ENC).unwrap();
        let c = k.canonical();
        assert_eq!(c, c.canonical());
        assert_eq!(c, k.reverse_complement().canonical());
        assert!(c.word() <= k.word());
    }

    #[test]
    fn kmer128_roundtrip_and_rc() {
        let s = b"ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT"; // 44 bases
        let codes: Vec<u8> = s
            .iter()
            .map(|&c| Base::from_ascii(c).unwrap().code())
            .collect();
        let k = Kmer128::from_codes(&codes, ENC);
        assert_eq!(k.k(), 44);
        assert_eq!(k.codes(ENC), codes);
        assert_eq!(k.reverse_complement().reverse_complement(), k);
        assert_eq!(k.canonical(), k.canonical().canonical());
    }

    #[test]
    fn kmer128_submer_matches_narrow_submer() {
        let s = b"GATTACAGATTACAGATTACAGATTACAGATTACAGATT"; // 39 bases
        let codes: Vec<u8> = s
            .iter()
            .map(|&c| Base::from_ascii(c).unwrap().code())
            .collect();
        let wide = Kmer128::from_codes(&codes, ENC);
        for m in [3usize, 7, 15] {
            for pos in [0usize, 5, 39 - m] {
                let expect = Kmer::from_codes(&codes[pos..pos + m], ENC).word();
                assert_eq!(wide.submer(pos, m), expect, "m {m} pos {pos}");
            }
        }
    }

    #[test]
    fn kmer_words128_matches_fresh_packing() {
        let s = b"ACGTTGCAACGTACGTTGCAACGTACGTTGCAACGTACGTTGCAACGT"; // 48 bases
        let codes: Vec<u8> = s
            .iter()
            .map(|&c| Base::from_ascii(c).unwrap().code())
            .collect();
        let k = 41;
        let got: Vec<u128> = kmer_words128(&codes, k, ENC).collect();
        let expect: Vec<u128> = (0..=codes.len() - k)
            .map(|i| Kmer128::from_codes(&codes[i..i + k], ENC).word())
            .collect();
        assert_eq!(got, expect);
        assert_eq!(got.len(), codes.len() - k + 1);
    }

    #[test]
    fn kmer128_rolling() {
        let s = b"GATTACAGATTACAGATTACAGATTACAGATTACAG"; // 36 bases
        let codes: Vec<u8> = s
            .iter()
            .map(|&c| Base::from_ascii(c).unwrap().code())
            .collect();
        let k = 35;
        let mut rolled = Kmer128::from_codes(&codes[..k], ENC);
        rolled = rolled.rolled(codes[k], ENC);
        let fresh = Kmer128::from_codes(&codes[1..k + 1], ENC);
        assert_eq!(rolled, fresh);
    }

    #[test]
    fn kmer_word_trait_matches_concrete_types() {
        let s = b"GATTACAGATTACAGATTACAGATTACAGATTACAGATT"; // 39 bases
        let codes: Vec<u8> = s
            .iter()
            .map(|&c| Base::from_ascii(c).unwrap().code())
            .collect();
        // Narrow parity at k = 17.
        let k = 17;
        let narrow: Vec<u64> = kmer_words_w(&codes, k, ENC).collect();
        let expect: Vec<u64> = kmer_words(&codes, k, ENC).collect();
        assert_eq!(narrow, expect);
        let w0 = narrow[0];
        assert_eq!(
            w0.canonical_word(k),
            Kmer::from_word(w0, k).canonical().word()
        );
        assert_eq!(w0.submer_of(k, 3, 7), Kmer::from_word(w0, k).submer(3, 7));
        assert_eq!(w0.word_codes(k, ENC), Kmer::from_word(w0, k).codes(ENC));
        assert_eq!(<u64 as KmerWord>::pack_codes(&codes[..k], ENC), w0);
        // Wide parity at k = 35.
        let k = 35;
        let wide: Vec<u128> = kmer_words_w(&codes, k, ENC).collect();
        let expect: Vec<u128> = kmer_words128(&codes, k, ENC).collect();
        assert_eq!(wide, expect);
        let w0 = wide[0];
        assert_eq!(
            w0.canonical_word(k),
            Kmer128::from_word(w0, k).canonical().word()
        );
        assert_eq!(
            w0.submer_of(k, 4, 11),
            Kmer128::from_word(w0, k).submer(4, 11)
        );
        assert_eq!(w0.word_codes(k, ENC), Kmer128::from_word(w0, k).codes(ENC));
        assert_eq!(<u128 as KmerWord>::pack_codes(&codes[..k], ENC), w0);
    }

    #[test]
    fn full_width_k32_mask() {
        let s = [b'T'; 32];
        let k = Kmer::from_ascii(&s, ENC).unwrap();
        assert_eq!(k.word(), u64::MAX); // T=3 everywhere
        assert_eq!(k.reverse_complement().to_ascii(ENC), "A".repeat(32));
    }
}
