//! Nucleotide bases and 2-bit encodings.
//!
//! A base is stored internally as a *code* in `0..4` using the conventional
//! alphabetical assignment A=0, C=1, G=2, T=3. An [`Encoding`] maps codes to
//! the 2-bit symbols that get packed into k-mer words. The paper's key trick
//! (§IV-A) is that choosing a *non*-alphabetical encoding — A=1, C=0, T=2,
//! G=3, as previously explored by Squeakr — makes the numeric (and hence
//! "lexicographic over encoded symbols") minimizer ordering behave like a
//! custom ordering, spreading minimizers more evenly across partitions
//! without extra computation.

use std::fmt;

/// A single nucleotide. The discriminant is the internal *code*
/// (alphabetical: A=0, C=1, G=2, T=3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum Base {
    /// Adenine.
    A = 0,
    /// Cytosine.
    C = 1,
    /// Guanine.
    G = 2,
    /// Thymine.
    T = 3,
}

impl Base {
    /// All four bases in code order.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// Builds a base from an internal code. Panics in debug builds if
    /// `code >= 4`.
    #[inline]
    pub fn from_code(code: u8) -> Base {
        debug_assert!(code < 4, "base code out of range: {code}");
        // SAFETY-free dispatch: match keeps this fully safe and the
        // optimizer reduces it to a no-op.
        match code & 3 {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            _ => Base::T,
        }
    }

    /// The internal code (A=0, C=1, G=2, T=3).
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Parses an ASCII nucleotide (case-insensitive). Returns `None` for
    /// anything that is not `ACGTacgt` — including `N`, which callers must
    /// handle as a read break (the pipelines treat ambiguous bases as
    /// separators, like the paper's "special bases" marking read ends).
    #[inline]
    pub fn from_ascii(ch: u8) -> Option<Base> {
        match ch {
            b'A' | b'a' => Some(Base::A),
            b'C' | b'c' => Some(Base::C),
            b'G' | b'g' => Some(Base::G),
            b'T' | b't' => Some(Base::T),
            _ => None,
        }
    }

    /// The uppercase ASCII letter.
    #[inline]
    pub fn to_ascii(self) -> u8 {
        b"ACGT"[self as usize]
    }

    /// Watson-Crick complement (A↔T, C↔G).
    #[inline]
    pub fn complement(self) -> Base {
        // Codes are alphabetical, so complement is 3 - code.
        Base::from_code(3 - self.code())
    }
}

impl fmt::Display for Base {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_ascii() as char)
    }
}

/// A 2-bit encoding: the map from base codes to packed 2-bit symbols.
///
/// The encoding determines the numeric value of packed k-mer words and
/// therefore the induced minimizer ordering (packed words are compared
/// numerically, which equals lexicographic comparison over encoded symbols
/// because bases are packed most-significant-first).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Encoding {
    /// Alphabetical: A=0, C=1, G=2, T=3. Induces the classic lexicographic
    /// minimizer ordering of Roberts et al., which is known to produce
    /// skewed partitions (poly-A minimizers dominate).
    Alphabetical,
    /// The paper's randomized encoding (§IV-A): A=1, C=0, T=2, G=3.
    /// Behaves like a cheap custom minimizer ordering and spreads
    /// partitions much more evenly.
    PaperRandom,
}

impl Encoding {
    /// Encodes a base code (0..4) into its 2-bit symbol.
    #[inline]
    pub fn encode(self, code: u8) -> u8 {
        debug_assert!(code < 4);
        match self {
            Encoding::Alphabetical => code,
            // A(0)→1, C(1)→0, G(2)→3, T(3)→2
            Encoding::PaperRandom => [1u8, 0, 3, 2][code as usize],
        }
    }

    /// Decodes a 2-bit symbol back to a base code.
    #[inline]
    pub fn decode(self, sym: u8) -> u8 {
        debug_assert!(sym < 4);
        match self {
            Encoding::Alphabetical => sym,
            // Inverse of [1,0,3,2]: 0→C(1), 1→A(0), 2→T(3), 3→G(2)
            Encoding::PaperRandom => [1u8, 0, 3, 2][sym as usize],
        }
    }

    /// Encodes a [`Base`].
    #[inline]
    pub fn encode_base(self, base: Base) -> u8 {
        self.encode(base.code())
    }

    /// Decodes a 2-bit symbol to a [`Base`].
    #[inline]
    pub fn decode_base(self, sym: u8) -> Base {
        Base::from_code(self.decode(sym))
    }
}

impl Default for Encoding {
    /// The paper's pipelines default to the randomized encoding.
    fn default() -> Self {
        Encoding::PaperRandom
    }
}

/// Converts an ASCII sequence into base codes, treating any non-ACGT
/// character as a break. Returns the list of maximal clean fragments
/// (each a `Vec` of base codes). Fragments shorter than `min_len` are
/// dropped.
pub fn ascii_to_fragments(seq: &[u8], min_len: usize) -> Vec<Vec<u8>> {
    let mut fragments = Vec::new();
    let mut cur: Vec<u8> = Vec::new();
    for &ch in seq {
        match Base::from_ascii(ch) {
            Some(b) => cur.push(b.code()),
            None => {
                if cur.len() >= min_len {
                    fragments.push(std::mem::take(&mut cur));
                } else {
                    cur.clear();
                }
            }
        }
    }
    if cur.len() >= min_len {
        fragments.push(cur);
    }
    fragments
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip() {
        for b in Base::ALL {
            assert_eq!(Base::from_code(b.code()), b);
        }
    }

    #[test]
    fn ascii_roundtrip_and_case() {
        assert_eq!(Base::from_ascii(b'A'), Some(Base::A));
        assert_eq!(Base::from_ascii(b'g'), Some(Base::G));
        assert_eq!(Base::from_ascii(b'N'), None);
        assert_eq!(Base::from_ascii(b'-'), None);
        for b in Base::ALL {
            assert_eq!(Base::from_ascii(b.to_ascii()), Some(b));
        }
    }

    #[test]
    fn complement_is_involution() {
        for b in Base::ALL {
            assert_eq!(b.complement().complement(), b);
        }
        assert_eq!(Base::A.complement(), Base::T);
        assert_eq!(Base::C.complement(), Base::G);
    }

    #[test]
    fn paper_encoding_matches_section_4a() {
        // §IV-A: "we map A = 1, C = 0, T = 2, G = 3".
        let e = Encoding::PaperRandom;
        assert_eq!(e.encode_base(Base::A), 1);
        assert_eq!(e.encode_base(Base::C), 0);
        assert_eq!(e.encode_base(Base::T), 2);
        assert_eq!(e.encode_base(Base::G), 3);
    }

    #[test]
    fn encodings_are_bijective() {
        for e in [Encoding::Alphabetical, Encoding::PaperRandom] {
            let mut seen = [false; 4];
            for code in 0..4u8 {
                let sym = e.encode(code);
                assert!(!seen[sym as usize], "{e:?} not injective");
                seen[sym as usize] = true;
                assert_eq!(e.decode(sym), code, "{e:?} decode mismatch");
            }
        }
    }

    #[test]
    fn fragments_split_on_ambiguous_bases() {
        let frags = ascii_to_fragments(b"ACGTNNGGTTNA", 2);
        assert_eq!(frags.len(), 2); // "ACGT", "GGTT"; trailing "A" too short
        assert_eq!(frags[0], vec![0, 1, 2, 3]);
        assert_eq!(frags[1], vec![2, 2, 3, 3]);
    }

    #[test]
    fn fragments_keep_whole_clean_sequence() {
        let frags = ascii_to_fragments(b"ACGT", 1);
        assert_eq!(frags, vec![vec![0, 1, 2, 3]]);
        assert!(ascii_to_fragments(b"NNNN", 1).is_empty());
        assert!(ascii_to_fragments(b"", 1).is_empty());
    }

    #[test]
    fn display_single_base() {
        assert_eq!(format!("{}", Base::G), "G");
    }
}
