//! DNA substrate for DEDUKT-RS.
//!
//! Everything the k-mer counting pipelines need to know about sequences:
//!
//! * [`base`] — nucleotide codes and 2-bit encodings, including the paper's
//!   deliberately "random" encoding A=1, C=0, T=2, G=3 (§IV-A) used to
//!   de-skew minimizer partitions.
//! * [`kmer`] — packed k-mer words (`u64` for k ≤ 32, `u128` for k ≤ 64)
//!   with rolling extension, reverse complement and canonicalization.
//! * [`packed`] — 2-bit packed base arrays (the "one long array of bases"
//!   the GPU pipeline concatenates reads into, §III-B1).
//! * [`read`] / [`fastq`] — reads and FASTQ/FASTA parsing and writing.
//! * [`sim`] — deterministic synthetic genome and long-read simulators.
//! * [`datasets`] — the Table I dataset catalog, re-scaled for a single
//!   host (see DESIGN.md §2 for the substitution rationale).
//! * [`spectrum`] — k-mer frequency histograms ("k-mer spectra").

#![warn(missing_docs)]

pub mod base;
pub mod datasets;
pub mod fastq;
pub mod kmer;
pub mod packed;
pub mod read;
pub mod sim;
pub mod spectrum;

pub use base::{Base, Encoding};
pub use datasets::{Dataset, DatasetId, ScalePreset};
pub use kmer::{Kmer, Kmer128};
pub use packed::PackedSeq;
pub use read::{Read, ReadSet};
