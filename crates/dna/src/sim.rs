//! Deterministic synthetic genome and read simulators.
//!
//! The paper evaluates on real datasets up to 317 GB (Table I), which a
//! single-host reproduction cannot ingest. These simulators produce scaled
//! synthetic equivalents that preserve the properties k-mer counting
//! behaviour actually depends on:
//!
//! * **multiplicity skew** — genomes get an explicit repeat structure
//!   (segments copied to multiple loci), so the k-mer spectrum has the
//!   heavy tail that drives count-table contention and partition imbalance;
//! * **minimizer run lengths** — reads are contiguous genome windows, so
//!   consecutive k-mers share minimizers exactly as in real data, which is
//!   what supermer compression (§IV) exploits;
//! * **read-length distribution** — log-normal "third generation" lengths
//!   with wide variance (the load-balancing challenge of §III-B1).
//!
//! Everything is seeded and reproducible: the same `(params, seed)` always
//! yields the same byte-identical dataset.

use crate::base::Base;
use crate::read::{Read, ReadSet};
use dedukt_sim::SplitMix64;

/// Uniform draw from the inclusive range `[lo, hi]`.
fn gen_usize(rng: &mut SplitMix64, lo: usize, hi: usize) -> usize {
    debug_assert!(lo <= hi);
    lo + rng.next_below((hi - lo + 1) as u64) as usize
}

/// Parameters for synthetic genome generation.
#[derive(Clone, Debug)]
pub struct GenomeParams {
    /// Genome length in bases.
    pub length: usize,
    /// Fraction of the genome covered by repeat copies (0.0 – 0.9).
    pub repeat_fraction: f64,
    /// Repeat segment length range (inclusive).
    pub repeat_len: (usize, usize),
    /// GC content in (0, 1); 0.5 is uniform.
    pub gc_content: f64,
    /// Fraction of the genome covered by AT-rich low-complexity tracts
    /// (poly-A / poly-T / AT microsatellites). Real genomes have these,
    /// and they are exactly why lexicographic minimizers skew partitions
    /// (§II-B / §IV-A: "lexicographical ordering often leads to
    /// unbalanced partitions").
    pub low_complexity_fraction: f64,
    /// Low-complexity tract length range (inclusive).
    pub low_complexity_len: (usize, usize),
}

impl Default for GenomeParams {
    fn default() -> Self {
        GenomeParams {
            length: 1_000_000,
            repeat_fraction: 0.15,
            repeat_len: (500, 5_000),
            gc_content: 0.45,
            low_complexity_fraction: 0.03,
            low_complexity_len: (20, 200),
        }
    }
}

/// Generates a synthetic genome as base codes.
///
/// First draws i.i.d. bases honouring `gc_content`, then overwrites
/// `repeat_fraction` of the genome with copies of segments sampled from the
/// already-generated prefix, giving repeated k-mers realistic clustering.
pub fn simulate_genome(params: &GenomeParams, seed: u64) -> Vec<u8> {
    assert!(params.length > 0, "genome length must be positive");
    assert!(
        (0.0..=0.9).contains(&params.repeat_fraction),
        "repeat_fraction out of range"
    );
    assert!(
        params.repeat_len.0 >= 2 && params.repeat_len.0 <= params.repeat_len.1,
        "bad repeat_len range"
    );
    assert!(
        (0.0..=0.5).contains(&params.low_complexity_fraction),
        "low_complexity_fraction out of range"
    );
    assert!(
        params.low_complexity_len.0 >= 2
            && params.low_complexity_len.0 <= params.low_complexity_len.1,
        "bad low_complexity_len range"
    );
    let mut rng = SplitMix64::new(seed);
    let gc = params.gc_content;
    let mut genome: Vec<u8> = (0..params.length)
        .map(|_| {
            let r: f64 = rng.next_f64();
            // Split GC mass between C and G, AT mass between A and T.
            if r < gc / 2.0 {
                Base::C.code()
            } else if r < gc {
                Base::G.code()
            } else if r < gc + (1.0 - gc) / 2.0 {
                Base::A.code()
            } else {
                Base::T.code()
            }
        })
        .collect();

    // Paste AT-rich low-complexity tracts (before repeats, so tracts can
    // also be duplicated — as in real genomes).
    let mut lc_budget = (params.length as f64 * params.low_complexity_fraction) as usize;
    let (lc_min, lc_max) = params.low_complexity_len;
    while lc_budget > 0 && params.length > lc_max * 2 {
        let len = gen_usize(&mut rng, lc_min, lc_max).min(lc_budget.max(lc_min));
        let dst = gen_usize(&mut rng, 0, params.length - len);
        // 45% poly-A, 30% poly-T, 25% AT microsatellite — with ~20% random
        // interruptions, as in real genomes. Interruptions matter: they
        // spread the tract's k-mers over many near-poly-A *keys* (so exact
        // k-mer hashing stays balanced) while all those keys still share
        // AT-heavy *minimizers* (so minimizer routing concentrates — the
        // paper's Table III effect).
        let style: f64 = rng.next_f64();
        for (i, slot) in genome[dst..dst + len].iter_mut().enumerate() {
            if rng.next_f64() < 0.20 {
                *slot = rng.next_below(4) as u8;
                continue;
            }
            *slot = if style < 0.45 {
                Base::A.code()
            } else if style < 0.75 {
                Base::T.code()
            } else if i % 2 == 0 {
                Base::A.code()
            } else {
                Base::T.code()
            };
        }
        lc_budget = lc_budget.saturating_sub(len);
    }

    // Paste repeat copies until the budget is used.
    let mut budget = (params.length as f64 * params.repeat_fraction) as usize;
    while budget > 0 && params.length > params.repeat_len.0 * 2 {
        let max_len = params
            .repeat_len
            .1
            .min(params.length / 2)
            .min(budget.max(params.repeat_len.0));
        let len = if max_len <= params.repeat_len.0 {
            params.repeat_len.0
        } else {
            gen_usize(&mut rng, params.repeat_len.0, max_len)
        };
        let src = gen_usize(&mut rng, 0, params.length - len);
        let dst = gen_usize(&mut rng, 0, params.length - len);
        if src != dst {
            let segment: Vec<u8> = genome[src..src + len].to_vec();
            genome[dst..dst + len].copy_from_slice(&segment);
        }
        budget = budget.saturating_sub(len);
    }
    genome
}

/// Parameters for read simulation.
#[derive(Clone, Debug)]
pub struct ReadSimParams {
    /// Target sequencing depth: total sampled bases ≈ `coverage × genome`.
    pub coverage: f64,
    /// Mean read length in bases (log-normal location is derived from this).
    pub mean_read_len: usize,
    /// Log-normal sigma controlling read-length spread. ~0.4 gives the wide
    /// third-generation variance the paper highlights; 0.05 approximates
    /// fixed-length short reads.
    pub len_sigma: f64,
    /// Minimum read length (shorter draws are clamped).
    pub min_read_len: usize,
    /// Per-base substitution error probability.
    pub sub_rate: f64,
    /// Sample reads from the reverse strand with probability 0.5.
    pub both_strands: bool,
}

impl Default for ReadSimParams {
    fn default() -> Self {
        ReadSimParams {
            coverage: 30.0,
            mean_read_len: 8_000,
            len_sigma: 0.4,
            min_read_len: 64,
            sub_rate: 0.002,
            both_strands: true,
        }
    }
}

/// Samples reads from a genome according to `params`, deterministically in
/// `seed`.
pub fn simulate_reads(genome: &[u8], params: &ReadSimParams, seed: u64) -> ReadSet {
    assert!(!genome.is_empty(), "empty genome");
    assert!(params.coverage > 0.0 && params.mean_read_len > 0);
    assert!((0.0..=0.5).contains(&params.sub_rate));
    let mut rng = SplitMix64::new(seed);
    let target_bases = (genome.len() as f64 * params.coverage) as usize;

    // Log-normal with the requested mean: mean = exp(mu + sigma^2/2).
    let sigma = params.len_sigma.max(1e-6);
    let mu = (params.mean_read_len as f64).ln() - sigma * sigma / 2.0;

    let mut out = ReadSet::new();
    let mut sampled = 0usize;
    let mut idx = 0usize;
    while sampled < target_bases {
        // Box-Muller normal draw.
        let u1: f64 = rng.next_f64().max(f64::EPSILON);
        let u2: f64 = rng.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let len = (mu + sigma * z).exp() as usize;
        let len = len.clamp(params.min_read_len, genome.len());

        let start = gen_usize(&mut rng, 0, genome.len() - len);
        let mut codes: Vec<u8> = genome[start..start + len].to_vec();

        if params.both_strands && rng.next_f64() < 0.5 {
            codes.reverse();
            for c in &mut codes {
                *c = 3 - *c; // complement in code space (alphabetical codes)
            }
        }

        if params.sub_rate > 0.0 {
            for c in &mut codes {
                if rng.next_f64() < params.sub_rate {
                    // Substitute with one of the three other bases.
                    *c = (*c + 1 + rng.next_below(3) as u8) % 4;
                }
            }
        }

        sampled += codes.len();
        out.reads.push(Read {
            id: format!("sim_{idx}"),
            codes,
            quals: None,
        });
        idx += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn genome_is_deterministic() {
        let p = GenomeParams {
            length: 10_000,
            ..Default::default()
        };
        assert_eq!(simulate_genome(&p, 7), simulate_genome(&p, 7));
        assert_ne!(simulate_genome(&p, 7), simulate_genome(&p, 8));
    }

    #[test]
    fn genome_respects_length_and_alphabet() {
        let p = GenomeParams {
            length: 5_000,
            ..Default::default()
        };
        let g = simulate_genome(&p, 1);
        assert_eq!(g.len(), 5_000);
        assert!(g.iter().all(|&c| c < 4));
    }

    #[test]
    fn gc_content_is_respected() {
        let p = GenomeParams {
            length: 200_000,
            repeat_fraction: 0.0,
            low_complexity_fraction: 0.0,
            gc_content: 0.3,
            ..Default::default()
        };
        let g = simulate_genome(&p, 3);
        let gc = g.iter().filter(|&&c| c == 1 || c == 2).count() as f64 / g.len() as f64;
        assert!((gc - 0.3).abs() < 0.02, "gc {gc}");
    }

    #[test]
    fn repeats_create_multiplicity_skew() {
        let k = 21usize;
        let flat = GenomeParams {
            length: 100_000,
            repeat_fraction: 0.0,
            low_complexity_fraction: 0.0,
            ..Default::default()
        };
        let repetitive = GenomeParams {
            length: 100_000,
            repeat_fraction: 0.5,
            repeat_len: (1_000, 5_000),
            low_complexity_fraction: 0.0,
            ..Default::default()
        };
        let count_max = |g: &[u8]| {
            let mut m: HashMap<&[u8], u32> = HashMap::new();
            for w in g.windows(k) {
                *m.entry(w).or_default() += 1;
            }
            m.values().copied().max().unwrap()
        };
        let flat_max = count_max(&simulate_genome(&flat, 11));
        let rep_max = count_max(&simulate_genome(&repetitive, 11));
        assert!(
            rep_max > flat_max.max(2),
            "repeats should raise max multiplicity: flat {flat_max}, repetitive {rep_max}"
        );
    }

    #[test]
    fn low_complexity_tracts_present() {
        let p = GenomeParams {
            length: 100_000,
            repeat_fraction: 0.0,
            low_complexity_fraction: 0.05,
            low_complexity_len: (30, 100),
            ..Default::default()
        };
        let g = simulate_genome(&p, 21);
        // There must be at least one run of ≥ 20 identical A or T bases.
        let mut run = 0usize;
        let mut best = 0usize;
        let mut prev = 255u8;
        for &c in &g {
            if c == prev && (c == 0 || c == 3) {
                run += 1;
            } else {
                run = 1;
            }
            prev = c;
            best = best.max(run);
        }
        assert!(best >= 20, "longest A/T homopolymer run: {best}");
        // And with the knob off, such runs are vanishingly unlikely.
        let clean = simulate_genome(
            &GenomeParams {
                low_complexity_fraction: 0.0,
                ..p
            },
            21,
        );
        let mut run = 0usize;
        let mut best_clean = 0usize;
        let mut prev = 255u8;
        for &c in &clean {
            if c == prev {
                run += 1;
            } else {
                run = 1;
            }
            prev = c;
            best_clean = best_clean.max(run);
        }
        assert!(
            best_clean < 20,
            "unexpected homopolymer in clean genome: {best_clean}"
        );
    }

    #[test]
    fn reads_hit_coverage_target() {
        let g = simulate_genome(
            &GenomeParams {
                length: 50_000,
                ..Default::default()
            },
            2,
        );
        let p = ReadSimParams {
            coverage: 10.0,
            mean_read_len: 2_000,
            ..Default::default()
        };
        let rs = simulate_reads(&g, &p, 5);
        let total = rs.total_bases() as f64;
        let target = 500_000.0;
        assert!(total >= target && total < target * 1.1, "total {total}");
    }

    #[test]
    fn reads_are_deterministic() {
        let g = simulate_genome(
            &GenomeParams {
                length: 20_000,
                ..Default::default()
            },
            2,
        );
        let p = ReadSimParams {
            coverage: 3.0,
            mean_read_len: 1_000,
            ..Default::default()
        };
        assert_eq!(simulate_reads(&g, &p, 9), simulate_reads(&g, &p, 9));
        assert_ne!(simulate_reads(&g, &p, 9), simulate_reads(&g, &p, 10));
    }

    #[test]
    fn read_lengths_vary_lognormally() {
        let g = simulate_genome(
            &GenomeParams {
                length: 100_000,
                ..Default::default()
            },
            2,
        );
        let p = ReadSimParams {
            coverage: 20.0,
            mean_read_len: 2_000,
            len_sigma: 0.5,
            ..Default::default()
        };
        let rs = simulate_reads(&g, &p, 1);
        let mean = rs.mean_len();
        assert!((1_500.0..2_500.0).contains(&mean), "mean {mean}");
        let min = rs.reads.iter().map(Read::len).min().unwrap();
        let max = rs.reads.iter().map(Read::len).max().unwrap();
        assert!(max > min * 2, "expected wide length variance: {min}..{max}");
    }

    #[test]
    fn error_free_reads_are_genome_substrings_or_rc() {
        let g = simulate_genome(
            &GenomeParams {
                length: 10_000,
                repeat_fraction: 0.0,
                ..Default::default()
            },
            4,
        );
        let p = ReadSimParams {
            coverage: 2.0,
            mean_read_len: 500,
            sub_rate: 0.0,
            ..Default::default()
        };
        let rs = simulate_reads(&g, &p, 6);
        let genome_str: Vec<u8> = g.clone();
        for r in rs.reads.iter().take(20) {
            let fwd = r.codes.clone();
            let rc: Vec<u8> = r.codes.iter().rev().map(|&c| 3 - c).collect();
            let found = windows_contain(&genome_str, &fwd) || windows_contain(&genome_str, &rc);
            assert!(found, "read {} not found in genome", r.id);
        }
    }

    fn windows_contain(haystack: &[u8], needle: &[u8]) -> bool {
        haystack.windows(needle.len()).any(|w| w == needle)
    }

    #[test]
    fn substitutions_inject_errors() {
        let g = vec![0u8; 10_000]; // all-A genome
        let p = ReadSimParams {
            coverage: 1.0,
            mean_read_len: 1_000,
            sub_rate: 0.1,
            both_strands: false,
            ..Default::default()
        };
        let rs = simulate_reads(&g, &p, 3);
        let non_a = rs
            .reads
            .iter()
            .flat_map(|r| r.codes.iter())
            .filter(|&&c| c != 0)
            .count() as f64;
        let frac = non_a / rs.total_bases() as f64;
        assert!((0.07..0.13).contains(&frac), "error fraction {frac}");
    }
}
