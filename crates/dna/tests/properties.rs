//! Property tests for the DNA substrate.

use dedukt_dna::base::{ascii_to_fragments, Base};
use dedukt_dna::fastq::{parse_fastq, write_fastq};
use dedukt_dna::kmer::{kmer_words, Kmer};
use dedukt_dna::packed::PackedSeq;
use dedukt_dna::{Encoding, Read, ReadSet};
use proptest::prelude::*;
use std::io::BufReader;

fn encoding() -> impl Strategy<Value = Encoding> {
    prop_oneof![Just(Encoding::Alphabetical), Just(Encoding::PaperRandom)]
}

proptest! {
    /// PackedSeq is a faithful container for any code sequence.
    #[test]
    fn packed_seq_roundtrip(codes in prop::collection::vec(0u8..4, 0..500), enc in encoding()) {
        let p = PackedSeq::from_codes(&codes, enc);
        prop_assert_eq!(p.len(), codes.len());
        prop_assert_eq!(p.to_codes(), codes.clone());
        prop_assert_eq!(p.packed_bytes(), codes.len().div_ceil(4));
    }

    /// Every window read out of a PackedSeq equals packing that window
    /// directly.
    #[test]
    fn packed_windows_match_kmer_packing(
        codes in prop::collection::vec(0u8..4, 5..100),
        k in 1usize..20,
        enc in encoding(),
    ) {
        prop_assume!(k <= codes.len());
        let p = PackedSeq::from_codes(&codes, enc);
        for start in 0..=codes.len() - k {
            let expect = Kmer::from_codes(&codes[start..start + k], enc).word();
            prop_assert_eq!(p.kmer_word(start, k), expect);
        }
    }

    /// kmer_words yields exactly len-k+1 windows for clean input.
    #[test]
    fn kmer_count_formula(codes in prop::collection::vec(0u8..4, 0..200), k in 1usize..33) {
        let n = kmer_words(&codes, k, Encoding::Alphabetical).count();
        prop_assert_eq!(n, codes.len().saturating_sub(k - 1));
    }

    /// Canonical k-mers are strand-invariant: a sequence and its reverse
    /// complement produce identical canonical k-mer multisets.
    #[test]
    fn canonical_multiset_is_strand_invariant(
        codes in prop::collection::vec(0u8..4, 1..120),
        k in 1usize..20,
        enc in encoding(),
    ) {
        prop_assume!(k <= codes.len());
        let rc: Vec<u8> = codes.iter().rev().map(|&c| 3 - c).collect();
        let canon = |cs: &[u8]| {
            let mut v: Vec<u64> = kmer_words(cs, k, enc)
                .map(|w| Kmer::from_word(w, k).canonical().word())
                .collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(canon(&codes), canon(&rc));
    }

    /// FASTQ writer → parser is the identity on clean read sets.
    #[test]
    fn fastq_roundtrip_clean_reads(
        reads in prop::collection::vec(prop::collection::vec(0u8..4, 1..80), 1..10),
    ) {
        let rs: ReadSet = reads
            .into_iter()
            .enumerate()
            .map(|(i, codes)| Read { id: format!("r{i}"), codes, quals: None })
            .collect();
        let mut buf = Vec::new();
        write_fastq(&mut buf, &rs).unwrap();
        let back = parse_fastq(BufReader::new(&buf[..]), 1).unwrap();
        prop_assert_eq!(back.len(), rs.len());
        for (a, b) in back.reads.iter().zip(&rs.reads) {
            prop_assert_eq!(&a.id, &b.id);
            prop_assert_eq!(&a.codes, &b.codes);
        }
    }

    /// Fragment splitting never loses clean bases and never emits short
    /// fragments.
    #[test]
    fn fragments_cover_all_clean_bases(seq in "[ACGTN]{0,200}", min_len in 1usize..5) {
        let frags = ascii_to_fragments(seq.as_bytes(), min_len);
        for f in &frags {
            prop_assert!(f.len() >= min_len);
            prop_assert!(f.iter().all(|&c| c < 4));
        }
        // Total fragment bases + dropped bases == clean bases.
        let clean = seq.bytes().filter(|&c| Base::from_ascii(c).is_some()).count();
        let covered: usize = frags.iter().map(Vec::len).sum();
        prop_assert!(covered <= clean);
        // Rebuild: fragments appear in order within the cleaned sequence.
        let cleaned: Vec<u8> = seq
            .bytes()
            .filter_map(|c| Base::from_ascii(c).map(|b| b.code()))
            .collect();
        let mut cursor = 0usize;
        for f in &frags {
            let found = cleaned[cursor..]
                .windows(f.len().max(1))
                .position(|w| w == &f[..]);
            prop_assert!(found.is_some(), "fragment must appear in cleaned sequence");
            cursor += found.unwrap();
        }
    }

    /// Read partitioning preserves content for any rank count.
    #[test]
    fn partition_preserves_reads(
        lens in prop::collection::vec(1usize..60, 1..30),
        n in 1usize..20,
    ) {
        let rs: ReadSet = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| Read { id: format!("r{i}"), codes: vec![(i % 4) as u8; l], quals: None })
            .collect();
        let parts = rs.partition_by_bases(n);
        prop_assert_eq!(parts.len(), n);
        let rejoined: Vec<&Read> = parts.iter().flat_map(|p| p.reads.iter()).collect();
        prop_assert_eq!(rejoined.len(), rs.len());
        for (a, b) in rejoined.iter().zip(&rs.reads) {
            prop_assert_eq!(*a, b);
        }
    }
}
