//! Shared simulation primitives used across the DEDUKT-RS workspace.
//!
//! The reproduction computes all *functional* results (k-mer counts, buckets,
//! communication volumes) for real, but hardware timings are produced by
//! analytic cost models. This crate holds the vocabulary types those models
//! speak: [`SimTime`] for simulated durations, [`DataVolume`] for byte
//! counts, [`Rate`] for throughputs, plus counters and distribution
//! statistics ([`DistStats`]) used for load-imbalance reporting (Table III of
//! the paper).

#![warn(missing_docs)]

pub mod analyze;
pub mod journal;
pub mod metrics;
pub mod rate;
pub mod rng;
pub mod stats;
pub mod tally;
pub mod time;
pub mod trace;
pub mod volume;

pub use analyze::{analyze, render_diff, RunAnalysis};
pub use journal::{read_journal, write_journal, Journal, JournalEvent};
pub use metrics::{Histogram, MetricValue, MetricsRegistry, MetricsSnapshot};
pub use rate::Rate;
pub use rng::SplitMix64;
pub use stats::DistStats;
pub use tally::Counter;
pub use time::{SimClock, SimTime};
pub use trace::{TraceCounter, TraceEvent};
pub use volume::DataVolume;
