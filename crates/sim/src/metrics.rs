//! Run-wide metrics: mergeable counters, gauges, and log-bucketed
//! histograms behind a [`MetricsRegistry`].
//!
//! The paper's whole argument is read off instrumentation — phase
//! breakdowns (Figs. 3/7), exchange volume (Table II), load imbalance
//! (Table III) — so the reproduction carries a first-class metrics layer.
//! Every metric is keyed by `(name, rank)`: `rank = None` is a run-global
//! series, `rank = Some(r)` a per-rank lane. Two exporters are provided:
//! a JSON snapshot ([`MetricsSnapshot::write_json`]) and Prometheus text
//! exposition ([`MetricsSnapshot::write_prometheus`]).
//!
//! Collection is strictly an observer: all simulated times come from
//! analytic cost models, so recording metrics can never perturb them, and
//! the registry is threaded through the pipelines as an `Option` so a run
//! without `--metrics` does no work at all.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::Mutex;

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `b ≥ 1`
/// holds values in `[2^(b-1), 2^b)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A mergeable power-of-two-bucketed histogram of `u64` samples.
///
/// Merging shard histograms is exactly equivalent (bucket-wise, and for
/// `sum`/`count`/`min`/`max`) to building one histogram over the
/// concatenated samples — the property the per-block accumulators in the
/// GPU pipelines rely on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a sample.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Inclusive upper bound of a bucket (`u64::MAX` for the last one).
    pub fn bucket_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper-bound quantile estimate from the log2 buckets.
    ///
    /// Returns the inclusive upper bound ([`Histogram::bucket_bound`]) of
    /// the first bucket at which the cumulative sample count reaches
    /// `q · count` (at least one sample), clamped into
    /// `[min(), max()]` so the estimate never leaves the observed range.
    /// `q` is clamped to `[0, 1]`; an empty histogram reports 0. The
    /// estimate is monotone in `q` (pinned by a property test).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return Self::bucket_bound(i).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Index of the highest non-empty bucket, if any.
    fn top_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }
}

/// One recorded series.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotonic event/byte count.
    Counter(u64),
    /// Last-written (or max-tracked) level.
    Gauge(f64),
    /// Distribution of `u64` samples.
    Histogram(Histogram),
}

type MetricKey = (String, Option<usize>);

/// Thread-safe registry of `(name, rank)`-keyed metrics.
///
/// The map is a `BTreeMap` so exports are deterministically ordered —
/// name-major, run-global series before per-rank lanes.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<MetricKey, MetricValue>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to a counter.
    pub fn counter_add(&self, name: &str, rank: Option<usize>, n: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        match inner
            .entry((name.to_string(), rank))
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(v) => *v += n,
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    /// Sets a gauge to `v`.
    pub fn gauge_set(&self, name: &str, rank: Option<usize>, v: f64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.insert((name.to_string(), rank), MetricValue::Gauge(v));
    }

    /// Adds `v` to a gauge (creating it at `v`). Used for accumulated
    /// simulated durations, which are fractional.
    pub fn gauge_add(&self, name: &str, rank: Option<usize>, v: f64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        match inner
            .entry((name.to_string(), rank))
            .or_insert(MetricValue::Gauge(0.0))
        {
            MetricValue::Gauge(g) => *g += v,
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// Raises a gauge to `v` if `v` is larger (high-water marks).
    pub fn gauge_max(&self, name: &str, rank: Option<usize>, v: f64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        match inner
            .entry((name.to_string(), rank))
            .or_insert(MetricValue::Gauge(f64::NEG_INFINITY))
        {
            MetricValue::Gauge(g) => *g = g.max(v),
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// Records one histogram sample.
    pub fn observe(&self, name: &str, rank: Option<usize>, value: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        match inner
            .entry((name.to_string(), rank))
            .or_insert_with(|| MetricValue::Histogram(Histogram::new()))
        {
            MetricValue::Histogram(h) => h.observe(value),
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// Merges a locally-accumulated shard histogram in one lock
    /// acquisition (the hot-loop-friendly path).
    pub fn merge_histogram(&self, name: &str, rank: Option<usize>, shard: &Histogram) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        match inner
            .entry((name.to_string(), rank))
            .or_insert_with(|| MetricValue::Histogram(Histogram::new()))
        {
            MetricValue::Histogram(h) => h.merge(shard),
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// Freezes the registry into an exportable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            entries: inner
                .iter()
                .map(|((name, rank), value)| MetricEntry {
                    name: name.clone(),
                    rank: *rank,
                    value: value.clone(),
                })
                .collect(),
        }
    }
}

/// One exported series.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricEntry {
    /// Metric name (Prometheus-style, e.g. `exchange_bytes_total`).
    pub name: String,
    /// Per-rank lane, or `None` for a run-global series.
    pub rank: Option<usize>,
    /// The recorded value.
    pub value: MetricValue,
}

/// A frozen, ordered view of every metric in a registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All series, ordered name-major then rank.
    pub entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// Looks up one series.
    pub fn get(&self, name: &str, rank: Option<usize>) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|e| e.name == name && e.rank == rank)
            .map(|e| &e.value)
    }

    /// Sums a counter across every rank lane (and the global lane).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.name == name)
            .map(|e| match &e.value {
                MetricValue::Counter(v) => *v,
                _ => 0,
            })
            .sum()
    }

    /// Writes the snapshot as a JSON document:
    /// `{"metrics": [{"name": ..., "rank": ..., "type": ..., ...}]}`.
    pub fn write_json<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(w, "{{")?;
        writeln!(w, "  \"metrics\": [")?;
        let lines: Vec<String> = self.entries.iter().map(json_entry).collect();
        write!(w, "{}", lines.join(",\n"))?;
        if !lines.is_empty() {
            writeln!(w)?;
        }
        writeln!(w, "  ]")?;
        writeln!(w, "}}")?;
        Ok(())
    }

    /// Writes the snapshot in Prometheus text exposition format. Ranks
    /// become a `rank="N"` label; metric names are sanitised to the
    /// Prometheus charset.
    pub fn write_prometheus<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut last_name: Option<&str> = None;
        for e in &self.entries {
            let name = prom_name(&e.name);
            let labels = match e.rank {
                Some(r) => format!("{{rank=\"{r}\"}}"),
                None => String::new(),
            };
            if last_name != Some(e.name.as_str()) {
                let kind = match &e.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                writeln!(w, "# TYPE {name} {kind}")?;
                last_name = Some(e.name.as_str());
            }
            match &e.value {
                MetricValue::Counter(v) => writeln!(w, "{name}{labels} {v}")?,
                MetricValue::Gauge(v) => writeln!(w, "{name}{labels} {v}")?,
                MetricValue::Histogram(h) => {
                    let rank_label = match e.rank {
                        Some(r) => format!("rank=\"{r}\","),
                        None => String::new(),
                    };
                    let top = h.top_bucket().unwrap_or(0);
                    let mut cumulative = 0u64;
                    for (i, &c) in h.buckets().iter().enumerate().take(top + 1) {
                        cumulative += c;
                        let le = Histogram::bucket_bound(i);
                        writeln!(w, "{name}_bucket{{{rank_label}le=\"{le}\"}} {cumulative}")?;
                    }
                    writeln!(w, "{name}_bucket{{{rank_label}le=\"+Inf\"}} {}", h.count())?;
                    writeln!(w, "{name}_sum{labels} {}", h.sum())?;
                    writeln!(w, "{name}_count{labels} {}", h.count())?;
                }
            }
        }
        Ok(())
    }
}

fn json_entry(e: &MetricEntry) -> String {
    let name = crate::trace::escape(&e.name);
    let rank = match e.rank {
        Some(r) => format!("\"rank\": {r}, "),
        None => String::new(),
    };
    match &e.value {
        MetricValue::Counter(v) => {
            format!("    {{\"name\": \"{name}\", {rank}\"type\": \"counter\", \"value\": {v}}}")
        }
        MetricValue::Gauge(v) => {
            let v = if v.is_finite() { *v } else { 0.0 };
            format!("    {{\"name\": \"{name}\", {rank}\"type\": \"gauge\", \"value\": {v}}}")
        }
        MetricValue::Histogram(h) => {
            let top = h.top_bucket().unwrap_or(0);
            let buckets: Vec<String> = h
                .buckets()
                .iter()
                .enumerate()
                .take(top + 1)
                .map(|(i, c)| format!("{{\"le\": {}, \"count\": {c}}}", Histogram::bucket_bound(i)))
                .collect();
            format!(
                "    {{\"name\": \"{name}\", {rank}\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [{}]}}",
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                buckets.join(", "),
            )
        }
    }
}

/// Maps a metric name onto the Prometheus charset `[a-zA-Z0-9_:]`.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_values_by_log2() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.buckets()[0], 1); // {0}
        assert_eq!(h.buckets()[1], 1); // {1}
        assert_eq!(h.buckets()[2], 2); // {2,3}
        assert_eq!(h.buckets()[3], 2); // {4..7}
        assert_eq!(h.buckets()[4], 1); // {8..15}
        assert_eq!(h.buckets()[11], 1); // {1024..2047}
        assert_eq!(h.buckets()[64], 1); // top bucket
        assert_eq!(h.count(), 9);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_are_log2_upper_bounds() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        for v in 1..=100u64 {
            h.observe(v);
        }
        // p50 of 1..=100 lands in bucket [32, 63]; the estimate is the
        // bucket's inclusive upper bound.
        assert_eq!(h.quantile(0.5), 63);
        assert_eq!(h.quantile(1.0), 100, "clamped to max");
        assert_eq!(h.quantile(0.0), 1, "clamped to min");
        // A single-valued histogram answers exactly at every q.
        let mut one = Histogram::new();
        for _ in 0..10 {
            one.observe(42);
        }
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(one.quantile(q), 42);
        }
    }

    #[test]
    fn histogram_merge_equals_concatenation() {
        let (a, b): (Vec<u64>, Vec<u64>) = ((0..100).collect(), (50..300).collect());
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hall = Histogram::new();
        for &v in &a {
            ha.observe(v);
            hall.observe(v);
        }
        for &v in &b {
            hb.observe(v);
            hall.observe(v);
        }
        ha.merge(&hb);
        assert_eq!(ha, hall);
    }

    #[test]
    fn registry_accumulates_and_snapshots_ordered() {
        let reg = MetricsRegistry::new();
        reg.counter_add("bytes_total", Some(1), 10);
        reg.counter_add("bytes_total", Some(0), 5);
        reg.counter_add("bytes_total", Some(1), 7);
        reg.gauge_max("peak", None, 3.0);
        reg.gauge_max("peak", None, 2.0);
        reg.observe("probe_steps", Some(0), 1);
        let snap = reg.snapshot();
        assert_eq!(
            snap.get("bytes_total", Some(1)),
            Some(&MetricValue::Counter(17))
        );
        assert_eq!(
            snap.get("bytes_total", Some(0)),
            Some(&MetricValue::Counter(5))
        );
        assert_eq!(snap.get("peak", None), Some(&MetricValue::Gauge(3.0)));
        assert_eq!(snap.counter_total("bytes_total"), 22);
        // BTreeMap ordering: names sorted, None before Some within a name.
        let names: Vec<_> = snap.entries.iter().map(|e| (&e.name, e.rank)).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn json_export_shape() {
        let reg = MetricsRegistry::new();
        reg.counter_add("c", Some(0), 1);
        reg.gauge_set("g", None, 0.5);
        reg.observe("h", Some(2), 9);
        let mut buf = Vec::new();
        reg.snapshot().write_json(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"metrics\": ["));
        assert!(text.contains("\"name\": \"c\", \"rank\": 0, \"type\": \"counter\", \"value\": 1"));
        assert!(text.contains("\"name\": \"g\", \"type\": \"gauge\", \"value\": 0.5"));
        assert!(text.contains("\"type\": \"histogram\""));
        assert!(text.contains("\"le\": 15, \"count\": 1"));
    }

    #[test]
    fn prometheus_export_shape() {
        let reg = MetricsRegistry::new();
        reg.counter_add("exchange_bytes_total", Some(0), 64);
        reg.counter_add("exchange_bytes_total", Some(1), 32);
        reg.observe("probe-steps", Some(0), 3);
        let mut buf = Vec::new();
        reg.snapshot().write_prometheus(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("# TYPE exchange_bytes_total counter"));
        // The TYPE line is emitted once per metric name, not per lane.
        assert_eq!(text.matches("# TYPE exchange_bytes_total").count(), 1);
        assert!(text.contains("exchange_bytes_total{rank=\"0\"} 64"));
        assert!(text.contains("exchange_bytes_total{rank=\"1\"} 32"));
        // Name sanitised, histogram series complete.
        assert!(text.contains("# TYPE probe_steps histogram"));
        assert!(text.contains("probe_steps_bucket{rank=\"0\",le=\"+Inf\"} 1"));
        assert!(text.contains("probe_steps_sum{rank=\"0\"} 3"));
        assert!(text.contains("probe_steps_count{rank=\"0\"} 1"));
    }

    #[test]
    fn empty_snapshot_is_valid_json() {
        let mut buf = Vec::new();
        MetricsRegistry::new()
            .snapshot()
            .write_json(&mut buf)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"metrics\": ["));
        assert!(text.contains("]"));
    }
}
