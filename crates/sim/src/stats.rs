//! Distribution statistics over per-rank loads.
//!
//! The paper quantifies partition quality as *load imbalance* — the ratio of
//! the maximum per-rank load to the average (Table III: 1.16 for the k-mer
//! partitioning vs 2.37 for supermers on H. sapiens). [`DistStats`]
//! summarises any per-rank load vector that way.

use std::fmt;

/// Summary statistics of a load distribution (one value per rank).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistStats {
    /// Number of samples (ranks).
    pub count: usize,
    /// Smallest load.
    pub min: u64,
    /// Largest load.
    pub max: u64,
    /// Total load.
    pub sum: u64,
    /// Mean load.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl DistStats {
    /// Computes statistics over per-rank loads. Returns `None` for an empty
    /// slice.
    pub fn from_loads(loads: &[u64]) -> Option<DistStats> {
        if loads.is_empty() {
            return None;
        }
        let count = loads.len();
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut sum = 0u64;
        for &v in loads {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        let mean = sum as f64 / count as f64;
        let var = loads
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / count as f64;
        Some(DistStats {
            count,
            min,
            max,
            sum,
            mean,
            stddev: var.sqrt(),
        })
    }

    /// Load imbalance, the paper's Table III metric: `max / mean`.
    /// 1.0 is perfect balance. Returns infinity when the mean is zero but the
    /// max is not (cannot happen for non-negative loads unless all zero, in
    /// which case this returns 1.0 by convention).
    pub fn imbalance(&self) -> f64 {
        if self.sum == 0 {
            1.0
        } else {
            self.max as f64 / self.mean
        }
    }

    /// Coefficient of variation (`stddev / mean`); 0 for perfectly even
    /// loads.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

impl fmt::Display for DistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={} max={} mean={:.1} imbalance={:.2}",
            self.count,
            self.min,
            self.max,
            self.mean,
            self.imbalance()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(DistStats::from_loads(&[]).is_none());
    }

    #[test]
    fn basic_moments() {
        let s = DistStats::from_loads(&[2, 4, 6, 8]).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 8);
        assert_eq!(s.sum, 20);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.stddev - 5.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn perfect_balance_has_imbalance_one() {
        let s = DistStats::from_loads(&[10, 10, 10]).unwrap();
        assert!((s.imbalance() - 1.0).abs() < 1e-12);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn paper_style_imbalance() {
        // Mimic Table III H. sapiens supermer row: avg 255M, max 606M → 2.37.
        let loads = [41u64, 255, 255, 469]; // mean 255, max 469
        let s = DistStats::from_loads(&loads).unwrap();
        assert!((s.imbalance() - 469.0 / 255.0).abs() < 1e-9);
    }

    #[test]
    fn all_zero_loads() {
        let s = DistStats::from_loads(&[0, 0]).unwrap();
        assert_eq!(s.imbalance(), 1.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn display_formats() {
        let s = DistStats::from_loads(&[1, 3]).unwrap();
        let txt = format!("{s}");
        assert!(txt.contains("n=2"));
        assert!(txt.contains("imbalance=1.50"));
    }
}
