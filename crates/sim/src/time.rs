//! Simulated time.
//!
//! All durations reported by the cost models are [`SimTime`] values —
//! non-negative seconds on a simulated clock, *not* wall-clock measurements.
//! Keeping them in a newtype prevents accidental mixing with
//! `std::time::Duration` wall times.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A duration on the simulated clock, in seconds.
///
/// `SimTime` is a thin wrapper over `f64` seconds with saturating-at-zero
/// subtraction and convenience constructors. Values are always finite and
/// non-negative; constructors debug-assert this.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Zero duration.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a duration from seconds.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        debug_assert!(secs.is_finite() && secs >= 0.0, "invalid SimTime: {secs}");
        SimTime(secs.max(0.0))
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms * 1e-3)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us * 1e-6)
    }

    /// Creates a duration from nanoseconds.
    #[inline]
    pub fn from_nanos(ns: f64) -> Self {
        Self::from_secs(ns * 1e-9)
    }

    /// The duration in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The duration in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// The duration in microseconds.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the larger of two durations (used for bulk-synchronous
    /// supersteps, where the step takes as long as its slowest rank).
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// True if this is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// Saturating subtraction: never goes below zero.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 / rhs)
    }
}

impl Div<SimTime> for SimTime {
    type Output = f64;
    /// Ratio of two durations (e.g. a speedup).
    #[inline]
    fn div(self, rhs: SimTime) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({self})")
    }
}

impl fmt::Display for SimTime {
    /// Human-readable with an automatic unit: `1.234 s`, `56.7 ms`, `890 µs`,
    /// `12 ns`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s >= 1.0 {
            write!(f, "{s:.3} s")
        } else if s >= 1e-3 {
            write!(f, "{:.3} ms", s * 1e3)
        } else if s >= 1e-6 {
            write!(f, "{:.3} µs", s * 1e6)
        } else {
            write!(f, "{:.1} ns", s * 1e9)
        }
    }
}

/// A monotonically advancing simulated clock, one per simulated rank or
/// device.
///
/// Clocks accumulate [`SimTime`] from cost models. Synchronising collectives
/// align all participating clocks to the maximum (see
/// [`SimClock::sync_to`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `dt` and returns the new time.
    #[inline]
    pub fn advance(&mut self, dt: SimTime) -> SimTime {
        self.now += dt;
        self.now
    }

    /// Moves the clock forward to `t` if `t` is later; otherwise leaves it.
    /// Models a barrier arrival: you cannot leave a barrier before the
    /// slowest participant arrives.
    #[inline]
    pub fn sync_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_units() {
        assert_eq!(SimTime::from_millis(1500.0).as_secs(), 1.5);
        assert_eq!(SimTime::from_micros(2.0).as_secs(), 2e-6);
        assert_eq!(SimTime::from_nanos(5.0).as_secs(), 5e-9);
        assert_eq!(SimTime::from_secs(2.0).as_millis(), 2000.0);
        assert_eq!(SimTime::from_secs(2.0).as_micros(), 2_000_000.0);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(2.0);
        let b = SimTime::from_secs(0.5);
        assert_eq!((a + b).as_secs(), 2.5);
        assert_eq!((a - b).as_secs(), 1.5);
        // Subtraction saturates at zero rather than going negative.
        assert_eq!((b - a).as_secs(), 0.0);
        assert_eq!((a * 3.0).as_secs(), 6.0);
        assert_eq!((a / 4.0).as_secs(), 0.5);
        assert_eq!(a / b, 4.0);
    }

    #[test]
    fn min_max_and_sum() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(3.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let total: SimTime = [a, b, a].into_iter().sum();
        assert_eq!(total.as_secs(), 5.0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_secs(1.5)), "1.500 s");
        assert_eq!(format!("{}", SimTime::from_secs(0.0025)), "2.500 ms");
        assert_eq!(format!("{}", SimTime::from_micros(12.0)), "12.000 µs");
        assert_eq!(format!("{}", SimTime::from_nanos(7.0)), "7.0 ns");
    }

    #[test]
    fn clock_advances_and_syncs() {
        let mut c = SimClock::new();
        assert!(c.now().is_zero());
        c.advance(SimTime::from_secs(1.0));
        c.sync_to(SimTime::from_secs(0.5)); // earlier: no effect
        assert_eq!(c.now().as_secs(), 1.0);
        c.sync_to(SimTime::from_secs(2.0)); // later: jump forward
        assert_eq!(c.now().as_secs(), 2.0);
    }
}
