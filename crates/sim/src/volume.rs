//! Data volumes (byte counts).
//!
//! Communication-volume accounting is one of the paper's headline results
//! (Table II, §IV-D): the supermer optimization reduces the number of bytes
//! crossing the network by up to 4×. [`DataVolume`] is the exact byte count
//! the simulators track.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// An exact number of bytes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DataVolume(u64);

impl DataVolume {
    /// Zero bytes.
    pub const ZERO: DataVolume = DataVolume(0);

    /// From a raw byte count.
    #[inline]
    pub const fn from_bytes(bytes: u64) -> Self {
        DataVolume(bytes)
    }

    /// From kibibytes.
    #[inline]
    pub const fn from_kib(kib: u64) -> Self {
        DataVolume(kib * 1024)
    }

    /// From mebibytes.
    #[inline]
    pub const fn from_mib(mib: u64) -> Self {
        DataVolume(mib * 1024 * 1024)
    }

    /// From gibibytes.
    #[inline]
    pub const fn from_gib(gib: u64) -> Self {
        DataVolume(gib * 1024 * 1024 * 1024)
    }

    /// The raw byte count.
    #[inline]
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// Bytes as `f64` (for bandwidth arithmetic).
    #[inline]
    pub fn bytes_f64(self) -> f64 {
        self.0 as f64
    }

    /// Elementwise maximum.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        DataVolume(self.0.max(other.0))
    }

    /// True if zero bytes.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Ratio of two volumes, e.g. the communication-reduction factor of
    /// Table II. Returns `f64::INFINITY` when dividing by zero volume.
    #[inline]
    pub fn ratio(self, other: Self) -> f64 {
        self.0 as f64 / other.0 as f64
    }
}

impl Add for DataVolume {
    type Output = DataVolume;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        DataVolume(self.0 + rhs.0)
    }
}

impl AddAssign for DataVolume {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for DataVolume {
    type Output = DataVolume;
    /// Saturating subtraction.
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        DataVolume(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for DataVolume {
    type Output = DataVolume;
    #[inline]
    fn mul(self, rhs: u64) -> Self {
        DataVolume(self.0 * rhs)
    }
}

impl Sum for DataVolume {
    fn sum<I: Iterator<Item = DataVolume>>(iter: I) -> DataVolume {
        iter.fold(DataVolume::ZERO, Add::add)
    }
}

impl fmt::Debug for DataVolume {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DataVolume({self})")
    }
}

impl fmt::Display for DataVolume {
    /// Human readable with binary units: `317.00 GiB`, `1.50 MiB`, `42 B`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KIB: f64 = 1024.0;
        const MIB: f64 = 1024.0 * 1024.0;
        const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
        const TIB: f64 = 1024.0 * GIB;
        let b = self.0 as f64;
        if b >= TIB {
            write!(f, "{:.2} TiB", b / TIB)
        } else if b >= GIB {
            write!(f, "{:.2} GiB", b / GIB)
        } else if b >= MIB {
            write!(f, "{:.2} MiB", b / MIB)
        } else if b >= KIB {
            write!(f, "{:.2} KiB", b / KIB)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors() {
        assert_eq!(DataVolume::from_kib(2).bytes(), 2048);
        assert_eq!(DataVolume::from_mib(1).bytes(), 1 << 20);
        assert_eq!(DataVolume::from_gib(1).bytes(), 1 << 30);
    }

    #[test]
    fn arithmetic_saturates() {
        let a = DataVolume::from_bytes(100);
        let b = DataVolume::from_bytes(30);
        assert_eq!((a + b).bytes(), 130);
        assert_eq!((a - b).bytes(), 70);
        assert_eq!((b - a).bytes(), 0); // saturating
        assert_eq!((b * 3).bytes(), 90);
    }

    #[test]
    fn ratio_matches_table2_style_reduction() {
        // 412M k-mers * 8B vs 108M supermers * 9B is a ~3.4x reduction.
        let kmers = DataVolume::from_bytes(412_000_000 * 8);
        let supermers = DataVolume::from_bytes(108_000_000 * 9);
        let r = kmers.ratio(supermers);
        assert!(r > 3.3 && r < 3.5, "ratio {r}");
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", DataVolume::from_bytes(42)), "42 B");
        assert_eq!(format!("{}", DataVolume::from_kib(3)), "3.00 KiB");
        assert_eq!(format!("{}", DataVolume::from_mib(5)), "5.00 MiB");
        assert_eq!(format!("{}", DataVolume::from_gib(2)), "2.00 GiB");
    }

    #[test]
    fn sum_of_volumes() {
        let total: DataVolume = (1..=4u64).map(DataVolume::from_bytes).sum();
        assert_eq!(total.bytes(), 10);
    }
}
