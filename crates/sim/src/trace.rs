//! Simulation traces in Chrome trace-event format.
//!
//! Every BSP superstep and collective can be recorded as a
//! [`TraceEvent`]; [`write_chrome_trace`] serialises a run to the JSON
//! array format that `chrome://tracing`, Perfetto, and Speedscope all
//! ingest — one lane per simulated rank, simulated microseconds on the
//! x-axis. No JSON dependency: the format is simple enough to emit
//! directly.

use crate::SimTime;
use serde::{Deserialize, Serialize};
use std::io::{self, Write};

/// One completed span on a simulated rank's timeline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Phase name (e.g. `parse`, `alltoallv`, `count`).
    pub name: String,
    /// Rank (drawn as the trace's thread id).
    pub rank: usize,
    /// Start on the simulated clock.
    pub start: SimTime,
    /// Span duration.
    pub duration: SimTime,
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes events as a Chrome trace-event JSON array (`ph: "X"` complete
/// events; timestamps in microseconds, as the format requires).
pub fn write_chrome_trace<W: Write>(w: &mut W, events: &[TraceEvent]) -> io::Result<()> {
    writeln!(w, "[")?;
    for (i, e) in events.iter().enumerate() {
        let comma = if i + 1 == events.len() { "" } else { "," };
        writeln!(
            w,
            "  {{\"name\": \"{}\", \"ph\": \"X\", \"pid\": 0, \"tid\": {}, \"ts\": {:.3}, \"dur\": {:.3}}}{comma}",
            escape(&e.name),
            e.rank,
            e.start.as_micros(),
            e.duration.as_micros(),
        )?;
    }
    writeln!(w, "]")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, rank: usize, start_us: f64, dur_us: f64) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            rank,
            start: SimTime::from_micros(start_us),
            duration: SimTime::from_micros(dur_us),
        }
    }

    #[test]
    fn emits_valid_chrome_json() {
        let events = vec![ev("parse", 0, 0.0, 100.0), ev("alltoallv", 1, 100.0, 50.5)];
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &events).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.trim_start().starts_with('['));
        assert!(text.trim_end().ends_with(']'));
        assert!(text.contains("\"name\": \"parse\""));
        assert!(text.contains("\"tid\": 1"));
        assert!(text.contains("\"dur\": 50.500"));
        // Exactly one separating comma for two events.
        assert_eq!(text.matches("},").count(), 1);
    }

    #[test]
    fn empty_trace_is_valid() {
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &[]).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap().split_whitespace().collect::<String>(), "[]");
    }

    #[test]
    fn escapes_hostile_names() {
        let events = vec![ev("we\"ird\\name\n", 0, 0.0, 1.0)];
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &events).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("we\\\"ird\\\\name\\u000a"));
    }
}
