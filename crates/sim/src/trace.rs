//! Simulation traces in Chrome trace-event format.
//!
//! Every BSP superstep and collective can be recorded as a
//! [`TraceEvent`]; [`write_chrome_trace`] serialises a run to the JSON
//! array format that `chrome://tracing`, Perfetto, and Speedscope all
//! ingest — one lane per simulated rank, simulated microseconds on the
//! x-axis. Each rank's lane carries a `thread_name` metadata event
//! (`"ph": "M"`) so viewers label it "rank N", and
//! [`write_chrome_trace_with`] additionally embeds counter series
//! (`"ph": "C"`, e.g. cumulative alltoallv bytes or resident device
//! memory) that Perfetto renders as per-rank counter tracks. No JSON
//! dependency: the format is simple enough to emit directly.

use crate::SimTime;
use std::collections::BTreeSet;
use std::io::{self, Write};

/// One completed span on a simulated rank's timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Phase name (e.g. `parse`, `alltoallv`, `count`).
    pub name: String,
    /// Rank (drawn as the trace's thread id).
    pub rank: usize,
    /// Start on the simulated clock.
    pub start: SimTime,
    /// Span duration.
    pub duration: SimTime,
}

/// One sample of a counter series (`"ph": "C"`): the value of a named
/// quantity on one rank at one simulated instant.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceCounter {
    /// Counter-track name (e.g. `alltoallv bytes`, `device memory`).
    pub name: String,
    /// Rank the sample belongs to (drawn as the trace's thread id).
    pub rank: usize,
    /// Sample instant on the simulated clock.
    pub ts: SimTime,
    /// Sampled value.
    pub value: f64,
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes events as a Chrome trace-event JSON array (`ph: "X"` complete
/// events plus `ph: "M"` thread-name metadata; timestamps in
/// microseconds, as the format requires).
pub fn write_chrome_trace<W: Write>(w: &mut W, events: &[TraceEvent]) -> io::Result<()> {
    write_chrome_trace_with(w, events, &[])
}

/// Like [`write_chrome_trace`], with counter series (`ph: "C"`) embedded
/// alongside the span events.
pub fn write_chrome_trace_with<W: Write>(
    w: &mut W,
    events: &[TraceEvent],
    counters: &[TraceCounter],
) -> io::Result<()> {
    let ranks: BTreeSet<usize> = events
        .iter()
        .map(|e| e.rank)
        .chain(counters.iter().map(|c| c.rank))
        .collect();
    let mut lines: Vec<String> = Vec::with_capacity(ranks.len() + events.len() + counters.len());
    for r in ranks {
        lines.push(format!(
            "  {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": {r}, \"args\": {{\"name\": \"rank {r}\"}}}}"
        ));
    }
    for e in events {
        lines.push(format!(
            "  {{\"name\": \"{}\", \"ph\": \"X\", \"pid\": 0, \"tid\": {}, \"ts\": {:.3}, \"dur\": {:.3}}}",
            escape(&e.name),
            e.rank,
            e.start.as_micros(),
            e.duration.as_micros(),
        ));
    }
    for c in counters {
        lines.push(format!(
            "  {{\"name\": \"{}\", \"ph\": \"C\", \"pid\": 0, \"tid\": {}, \"ts\": {:.3}, \"args\": {{\"value\": {}}}}}",
            escape(&c.name),
            c.rank,
            c.ts.as_micros(),
            c.value,
        ));
    }
    writeln!(w, "[")?;
    if !lines.is_empty() {
        writeln!(w, "{}", lines.join(",\n"))?;
    }
    writeln!(w, "]")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, rank: usize, start_us: f64, dur_us: f64) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            rank,
            start: SimTime::from_micros(start_us),
            duration: SimTime::from_micros(dur_us),
        }
    }

    #[test]
    fn emits_valid_chrome_json() {
        let events = vec![ev("parse", 0, 0.0, 100.0), ev("alltoallv", 1, 100.0, 50.5)];
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &events).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.trim_start().starts_with('['));
        assert!(text.trim_end().ends_with(']'));
        assert!(text.contains("\"name\": \"parse\""));
        assert!(text.contains("\"tid\": 1"));
        assert!(text.contains("\"dur\": 50.500"));
        // Two metadata events (ranks 0 and 1) + two span events = four
        // objects, so exactly three separating commas.
        assert_eq!(text.matches("},").count(), 3);
    }

    #[test]
    fn labels_every_rank_lane() {
        let events = vec![ev("a", 0, 0.0, 1.0), ev("b", 3, 0.0, 1.0)];
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &events).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"ph\": \"M\""));
        assert!(text.contains("\"args\": {\"name\": \"rank 0\"}"));
        assert!(text.contains("\"args\": {\"name\": \"rank 3\"}"));
        assert_eq!(text.matches("thread_name").count(), 2);
    }

    #[test]
    fn counter_events_are_embedded() {
        let events = vec![ev("alltoallv", 0, 0.0, 10.0)];
        let counters = vec![
            TraceCounter {
                name: "alltoallv bytes".into(),
                rank: 0,
                ts: SimTime::from_micros(10.0),
                value: 4096.0,
            },
            TraceCounter {
                name: "alltoallv bytes".into(),
                rank: 0,
                ts: SimTime::from_micros(20.0),
                value: 8192.0,
            },
        ];
        let mut buf = Vec::new();
        write_chrome_trace_with(&mut buf, &events, &counters).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.matches("\"ph\": \"C\"").count(), 2);
        assert!(text.contains(
            "\"name\": \"alltoallv bytes\", \"ph\": \"C\", \"pid\": 0, \"tid\": 0, \"ts\": 10.000, \"args\": {\"value\": 4096}"
        ));
    }

    #[test]
    fn empty_trace_is_valid() {
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &[]).unwrap();
        assert_eq!(
            String::from_utf8(buf)
                .unwrap()
                .split_whitespace()
                .collect::<String>(),
            "[]"
        );
    }

    #[test]
    fn escapes_hostile_names() {
        let events = vec![ev("we\"ird\\name\n", 0, 0.0, 1.0)];
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &events).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("we\\\"ird\\\\name\\u000a"));
    }
}
