//! SplitMix64: a tiny, fast, deterministic PRNG / bit mixer.
//!
//! Used wherever the simulators need cheap reproducible pseudo-randomness
//! that must not depend on the `rand` crate's version-specific streams
//! (e.g. deriving per-rank seeds, shuffling probe offsets). The algorithm is
//! the public-domain SplitMix64 of Steele, Lea & Flood.

/// SplitMix64 PRNG state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Every seed yields a full-period
    /// (2^64) sequence.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        mix64(self.state)
    }

    /// Next value in `[0, bound)`. `bound` must be non-zero. Uses the
    /// widening-multiply trick (unbiased enough for simulation purposes).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits give a uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Derives an independent child generator; used to give each simulated
    /// rank its own stream from a single experiment seed.
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

/// The SplitMix64 finalizer: a strong 64-bit mixing function usable on its
/// own as an integer hash.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Hashes a coordinate tuple into 64 uniform bits: a stateless draw at a
/// named point of a deterministic schedule (e.g. "round 3, attempt 1,
/// src 4 → dst 9"). Order-sensitive and collision-resistant enough for
/// simulation: each coordinate is folded through [`mix64`] with the
/// golden-ratio increment separating positions, so permuted or extended
/// tuples land on independent streams.
#[inline]
pub fn mix_coords(seed: u64, coords: &[u64]) -> u64 {
    let mut acc = mix64(seed ^ 0x9E3779B97F4A7C15);
    for &c in coords {
        acc = mix64(acc ^ c.wrapping_add(0x9E3779B97F4A7C15));
    }
    acc
}

/// Uniform `f64` in `[0, 1)` at a coordinate tuple: the stateless-draw
/// companion to [`mix_coords`], shared by every seeded injection plan
/// (network faults, memory pressure) so that independent engines agree
/// on each decision without exchanging state. The 53 high bits of the
/// mixed hash give a uniform double, exactly like
/// [`SplitMix64::next_f64`].
#[inline]
pub fn unit_from_coords(seed: u64, coords: &[u64]) -> f64 {
    (mix_coords(seed, coords) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors() {
        // Reference outputs for seed 1234567 from the canonical C
        // implementation (Vigna, prng.di.unimi.it/splitmix64.c).
        let mut g = SplitMix64::new(1234567);
        assert_eq!(g.next_u64(), 6457827717110365317);
        assert_eq!(g.next_u64(), 3203168211198807973);
        assert_eq!(g.next_u64(), 9817491932198370423);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut g = SplitMix64::new(42);
            (0..16).map(|_| g.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut g = SplitMix64::new(42);
            (0..16).map(|_| g.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut g = SplitMix64::new(43);
            (0..16).map(|_| g.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn bounded_values_stay_in_range() {
        let mut g = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(g.next_below(37) < 37);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = SplitMix64::new(9);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn split_streams_diverge() {
        let mut parent = SplitMix64::new(5);
        let mut a = parent.split();
        let mut b = parent.split();
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn mix_coords_is_deterministic_and_order_sensitive() {
        assert_eq!(mix_coords(1, &[2, 3, 4]), mix_coords(1, &[2, 3, 4]));
        assert_ne!(mix_coords(1, &[2, 3, 4]), mix_coords(1, &[4, 3, 2]));
        assert_ne!(mix_coords(1, &[2, 3, 4]), mix_coords(2, &[2, 3, 4]));
        assert_ne!(mix_coords(1, &[2, 3]), mix_coords(1, &[2, 3, 0]));
    }

    #[test]
    fn unit_from_coords_matches_the_mix_and_stays_in_range() {
        for i in 0..10_000u64 {
            let u = unit_from_coords(3, &[i, 7]);
            assert!((0.0..1.0).contains(&u));
            let expect = (mix_coords(3, &[i, 7]) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            assert_eq!(u, expect);
        }
        assert_eq!(unit_from_coords(5, &[1, 2]), unit_from_coords(5, &[1, 2]));
        assert_ne!(unit_from_coords(5, &[1, 2]), unit_from_coords(6, &[1, 2]));
    }

    #[test]
    fn mix_coords_distribution_roughly_uniform() {
        let mut buckets = [0u32; 8];
        let n = 80_000u64;
        for i in 0..n {
            buckets[(mix_coords(17, &[i, i ^ 0xABCD]) % 8) as usize] += 1;
        }
        let expect = n as f64 / 8.0;
        for &b in &buckets {
            assert!(
                (b as f64 - expect).abs() < expect * 0.1,
                "skewed: {buckets:?}"
            );
        }
    }

    #[test]
    fn bounded_distribution_roughly_uniform() {
        let mut g = SplitMix64::new(11);
        let mut buckets = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            buckets[g.next_below(8) as usize] += 1;
        }
        let expect = n as f64 / 8.0;
        for &b in &buckets {
            assert!(
                (b as f64 - expect).abs() < expect * 0.1,
                "skewed: {buckets:?}"
            );
        }
    }
}
