//! Offline analysis of a run journal: phase reconciliation, critical
//! path, imbalance, recovery cost, and run-to-run diffing.
//!
//! `dedukt analyze` feeds a parsed JSONL journal ([`crate::journal`])
//! into [`analyze`], which reconstructs the superstep DAG from the
//! recorded clock charges. Because *every* charge against a simulated
//! rank clock is journaled (compute spans, per-rank collective charges,
//! retry backoff), two invariants hold by construction and are re-checked
//! here on every run:
//!
//! 1. `critical path ≤ makespan` — the path is a chain of disjoint
//!    intervals inside `[0, makespan]`;
//! 2. `makespan ≤ total rank-seconds` — each clock's final time is the
//!    sum of its own charges, which the journal covers completely.
//!
//! The critical path is found by walking backwards from the last-ending
//! interval: a compute span starts exactly when its rank's previous
//! charge ended, while a synchronizing collective starts exactly when the
//! *last-arriving* rank's previous charge ended (BSP semantics), so the
//! blocking predecessor is always identifiable from timestamps alone.

use crate::journal::JournalEvent;
use crate::metrics::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One clock-charge interval reconstructed from the journal.
#[derive(Clone, Debug, PartialEq)]
pub struct Interval {
    /// Rank whose clock was charged.
    pub rank: usize,
    /// Step or collective label.
    pub label: String,
    /// Interval start, simulated seconds.
    pub start: f64,
    /// Interval end, simulated seconds.
    pub end: f64,
    /// True for synchronizing collectives (start = global clock max).
    pub sync: bool,
}

impl Interval {
    /// Interval duration, seconds.
    pub fn duration(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }
}

/// Per-collective (exchange superstep) aggregation across ranks.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CollectiveRound {
    /// Collective superstep index.
    pub step: u64,
    /// Total logical payload bytes received across ranks (injection-tier
    /// events only — intra-node relay events re-count the same payload).
    pub bytes: u64,
    /// Physical bytes on the injection tier (equals `bytes` unless the
    /// wire codec shrank the payload).
    pub comp_bytes: u64,
    /// Sum of per-rank intra-node tier seconds (0 under direct routing).
    pub intra_secs: f64,
    /// Sum of per-rank injection-tier wire seconds.
    pub inject_secs: f64,
    /// Mean per-rank wire seconds (both tiers).
    pub wire_mean: f64,
    /// Slowest rank's wire seconds.
    pub wire_max: f64,
    /// Rank with the largest wire time (the round's straggler).
    pub straggler: usize,
    /// Mean per-rank charged seconds (`max(wire, hidden)`).
    pub charged_mean: f64,
    /// Sum of per-rank overlapped compute hidden behind the wire.
    pub hidden_sum: f64,
    /// Sum of per-rank exposed wire time (`charged − hidden`, floored
    /// at 0).
    pub exposed_sum: f64,
}

impl CollectiveRound {
    /// Wire-time imbalance for the round: `max / mean` (1.0 when the
    /// round is uniform or empty).
    pub fn imbalance(&self) -> f64 {
        if self.wire_mean > 0.0 {
            self.wire_max / self.wire_mean
        } else {
            1.0
        }
    }
}

/// One segment of the critical path (an interval the makespan waited on).
#[derive(Clone, Debug, PartialEq)]
pub struct CritSegment {
    /// Rank the segment ran on.
    pub rank: usize,
    /// Step or collective label.
    pub label: String,
    /// Segment start, seconds.
    pub start: f64,
    /// Segment duration, seconds.
    pub duration: f64,
}

/// Everything [`analyze`] derives from one journal.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunAnalysis {
    /// Pipeline mode from the `meta` event (empty if absent).
    pub mode: String,
    /// Simulated node count.
    pub nodes: usize,
    /// Simulated rank count.
    pub nranks: usize,
    /// Free-form configuration detail from the `meta` event.
    pub detail: String,
    /// Driver phase summaries `(phase, seconds)` in journal order —
    /// exactly the accumulators behind the run report and metrics.
    pub phases: Vec<(String, f64)>,
    /// Simulated makespan (from the `run` trailer, else max interval
    /// end).
    pub makespan: f64,
    /// Sum of every journaled clock charge (rank-seconds).
    pub total_rank_seconds: f64,
    /// Mean rank-seconds per step label, in first-seen order.
    pub step_means: Vec<(String, f64)>,
    /// Per-rank busy seconds (sum of that rank's charges).
    pub busy_per_rank: Vec<f64>,
    /// Per-collective aggregation, in step order.
    pub rounds: Vec<CollectiveRound>,
    /// The critical path, earliest segment first.
    pub critical_path: Vec<CritSegment>,
    /// Total critical-path seconds.
    pub critical_len: f64,
    /// Retry events `(round, attempt, failed, corrupt, backoff)`.
    pub retries: Vec<(u64, u32, u64, u64, f64)>,
    /// Regrow totals per rank.
    pub regrows: Vec<(usize, u64)>,
    /// Spill totals per rank.
    pub spills: Vec<(usize, u64)>,
    /// OOM events `(rank, detail)`.
    pub ooms: Vec<(usize, String)>,
    /// Rank deaths `(rank, round)` recovered from by re-partition +
    /// replay.
    pub rank_deaths: Vec<(usize, u64)>,
    /// Elastic rescales `(round, from, to)` of the active rank set.
    pub rescales: Vec<(u64, usize, usize)>,
    /// Storage-tier operations `(op, bin, bytes, secs)` from out-of-core
    /// two-pass runs, in journal order. Empty for in-memory runs.
    pub io_events: Vec<(String, u64, u64, f64)>,
    /// Wall-clock stage timings `(stage, host seconds)` in journal order.
    pub wall: Vec<(String, f64)>,
}

impl RunAnalysis {
    /// Seconds attributed to one driver phase (0.0 if absent).
    pub fn phase(&self, name: &str) -> f64 {
        self.phases
            .iter()
            .find(|(p, _)| p == name)
            .map_or(0.0, |(_, s)| *s)
    }

    /// Sum of all driver phase summaries.
    pub fn phase_total(&self) -> f64 {
        self.phases.iter().map(|(_, s)| s).sum()
    }

    /// Wall seconds for one stage (0.0 if absent).
    pub fn wall_stage(&self, name: &str) -> f64 {
        self.wall
            .iter()
            .find(|(s, _)| s == name)
            .map_or(0.0, |(_, s)| *s)
    }

    /// Total retry attempts observed.
    pub fn retry_attempts(&self) -> u64 {
        self.retries.len() as u64
    }

    /// Total backoff seconds charged across retries.
    pub fn backoff_seconds(&self) -> f64 {
        // + 0.0 normalizes the -0.0 an empty f64 sum produces.
        self.retries.iter().map(|r| r.4).sum::<f64>() + 0.0
    }

    /// Total k-mers spilled to the host across ranks.
    pub fn spilled_kmers(&self) -> u64 {
        self.spills.iter().map(|s| s.1).sum()
    }

    /// Total table regrows across ranks.
    pub fn regrow_count(&self) -> u64 {
        self.regrows.iter().map(|r| r.1).sum()
    }

    /// Exchange logical payload bytes summed over collectives.
    pub fn exchange_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.bytes).sum()
    }

    /// Physical injection-tier bytes summed over collectives (differs
    /// from [`Self::exchange_bytes`] only when the wire codec was on).
    pub fn exchange_comp_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.comp_bytes).sum()
    }

    /// Intra-node tier seconds summed over collectives and ranks.
    pub fn intra_seconds(&self) -> f64 {
        self.rounds.iter().map(|r| r.intra_secs).sum()
    }

    /// Injection-tier wire seconds summed over collectives and ranks.
    pub fn inject_seconds(&self) -> f64 {
        self.rounds.iter().map(|r| r.inject_secs).sum()
    }

    /// Overlap-hidden seconds summed over collectives and ranks.
    pub fn hidden_seconds(&self) -> f64 {
        self.rounds.iter().map(|r| r.hidden_sum).sum()
    }

    /// Exposed (unhidden) wire seconds summed over collectives and ranks.
    pub fn exposed_seconds(&self) -> f64 {
        self.rounds.iter().map(|r| r.exposed_sum).sum()
    }

    /// Count of storage operations of one kind (`write`, `read`,
    /// `retry`, `quarantine`, `rederive`).
    pub fn io_count(&self, op: &str) -> u64 {
        self.io_events.iter().filter(|e| e.0 == op).count() as u64
    }

    /// Payload bytes moved by storage operations of one kind.
    pub fn io_bytes(&self, op: &str) -> u64 {
        self.io_events
            .iter()
            .filter(|e| e.0 == op)
            .map(|e| e.2)
            .sum()
    }

    /// Simulated seconds charged by storage operations of one kind.
    pub fn io_seconds(&self, op: &str) -> f64 {
        self.io_events
            .iter()
            .filter(|e| e.0 == op)
            .map(|e| e.3)
            .sum::<f64>()
            + 0.0
    }

    /// Total simulated disk time across every storage operation.
    pub fn storage_seconds(&self) -> f64 {
        self.io_events.iter().map(|e| e.3).sum::<f64>() + 0.0
    }

    /// Checks the two structural invariants, returning a violation
    /// message if either fails (a correct journal can never trip these).
    pub fn check_invariants(&self) -> Result<(), String> {
        // Allow for float addition noise at the very last bit.
        let slack = 1e-9 * (1.0 + self.total_rank_seconds.abs());
        if self.critical_len > self.makespan + slack {
            return Err(format!(
                "critical path {} exceeds makespan {}",
                self.critical_len, self.makespan
            ));
        }
        if self.makespan > self.total_rank_seconds + slack {
            return Err(format!(
                "makespan {} exceeds total journaled rank-seconds {}",
                self.makespan, self.total_rank_seconds
            ));
        }
        Ok(())
    }

    /// Renders the human-readable report `dedukt analyze` prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let w = &mut out;
        let _ = writeln!(w, "dedukt analyze report");
        let _ = writeln!(w, "=====================");
        let _ = writeln!(
            w,
            "run: mode={} nodes={} nranks={}",
            if self.mode.is_empty() {
                "?"
            } else {
                &self.mode
            },
            self.nodes,
            self.nranks
        );
        if !self.detail.is_empty() {
            let _ = writeln!(w, "detail: {}", self.detail);
        }

        let _ = writeln!(w, "\nphase breakdown (simulated seconds)");
        let total = self.phase_total();
        for (phase, secs) in &self.phases {
            let pct = if total > 0.0 {
                secs / total * 100.0
            } else {
                0.0
            };
            let _ = writeln!(w, "  {phase:<10} {secs:.6}  ({pct:.1}%)");
        }
        let _ = writeln!(w, "  {:<10} {total:.6}", "total");
        let _ = writeln!(w, "  {:<10} {:.6}", "makespan", self.makespan);

        let _ = writeln!(w, "\nreconciliation (journal vs phase totals)");
        let _ = writeln!(
            w,
            "  journaled rank-seconds: {:.6} across {} ranks",
            self.total_rank_seconds, self.nranks
        );
        let _ = writeln!(w, "  step means (rank-seconds / nranks):");
        for (label, mean) in &self.step_means {
            let _ = writeln!(w, "    {label:<20} {mean:.6}");
        }
        match self.check_invariants() {
            Ok(()) => {
                let _ = writeln!(
                    w,
                    "  invariants: critical path {:.6} <= makespan {:.6} <= rank-seconds {:.6}: OK",
                    self.critical_len, self.makespan, self.total_rank_seconds
                );
            }
            Err(e) => {
                let _ = writeln!(w, "  invariants: VIOLATED — {e}");
            }
        }

        let _ = writeln!(w, "\ncritical path");
        let coverage = if self.makespan > 0.0 {
            self.critical_len / self.makespan * 100.0
        } else {
            100.0
        };
        let _ = writeln!(
            w,
            "  length: {:.6} s ({coverage:.1}% of makespan), {} segments",
            self.critical_len,
            self.critical_path.len()
        );
        // Aggregate path time by (label, rank) and show the top chains.
        let mut by_label: BTreeMap<(String, usize), f64> = BTreeMap::new();
        for seg in &self.critical_path {
            *by_label.entry((seg.label.clone(), seg.rank)).or_insert(0.0) += seg.duration;
        }
        let mut top: Vec<_> = by_label.into_iter().collect();
        top.sort_by(|a, b| b.1.total_cmp(&a.1));
        for ((label, rank), secs) in top.iter().take(8) {
            let _ = writeln!(w, "    {label:<20} rank {rank:<4} {secs:.6}");
        }

        let _ = writeln!(w, "\nexchange");
        let _ = writeln!(
            w,
            "  collectives: {}, bytes: {}",
            self.rounds.len(),
            self.exchange_bytes()
        );
        if self.exchange_comp_bytes() != self.exchange_bytes() {
            let logical = self.exchange_bytes();
            let physical = self.exchange_comp_bytes();
            let ratio = if physical > 0 {
                logical as f64 / physical as f64
            } else {
                1.0
            };
            let _ = writeln!(
                w,
                "  wire compression: {physical} physical bytes ({ratio:.2}x)"
            );
        }
        let _ = writeln!(
            w,
            "  tier seconds: intra {:.6}, inject {:.6}",
            self.intra_seconds(),
            self.inject_seconds()
        );
        let _ = writeln!(
            w,
            "  hidden seconds: {:.6}, exposed seconds: {:.6}",
            self.hidden_seconds(),
            self.exposed_seconds()
        );
        if !self.rounds.is_empty() {
            let _ = writeln!(
                w,
                "  {:<6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>9} {:>10}",
                "step",
                "bytes",
                "intra-sec",
                "inject-sec",
                "wire-mean",
                "wire-max",
                "straggler",
                "imbalance"
            );
            for r in &self.rounds {
                let _ = writeln!(
                    w,
                    "  {:<6} {:>12} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>9} {:>10.3}",
                    r.step,
                    r.bytes,
                    r.intra_secs,
                    r.inject_secs,
                    r.wire_mean,
                    r.wire_max,
                    r.straggler,
                    r.imbalance()
                );
            }
        }

        if !self.io_events.is_empty() {
            let _ = writeln!(w, "\nstorage (simulated NVMe tier)");
            let _ = writeln!(
                w,
                "  bin writes: {} ({} bytes, {:.6} s)",
                self.io_count("write"),
                self.io_bytes("write"),
                self.io_seconds("write")
            );
            let _ = writeln!(
                w,
                "  bin reads: {} ({} bytes, {:.6} s)",
                self.io_count("read"),
                self.io_bytes("read"),
                self.io_seconds("read")
            );
            let _ = writeln!(
                w,
                "  read retries: {}, quarantined bins: {}, re-derives: {} ({} bytes replayed)",
                self.io_count("retry"),
                self.io_count("quarantine"),
                self.io_count("rederive"),
                self.io_bytes("rederive")
            );
            let _ = writeln!(
                w,
                "  disk seconds: {:.6} total, {:.6} in recovery",
                self.storage_seconds(),
                self.io_seconds("retry")
                    + self.io_seconds("quarantine")
                    + self.io_seconds("rederive")
            );
        }

        let _ = writeln!(w, "\nimbalance (per-rank busy seconds)");
        if !self.busy_per_rank.is_empty() {
            let mut h = Histogram::new();
            for &busy in &self.busy_per_rank {
                h.observe((busy * 1e6).round() as u64);
            }
            let mean = self.busy_per_rank.iter().sum::<f64>() / self.busy_per_rank.len() as f64;
            let max = self.busy_per_rank.iter().cloned().fold(0.0_f64, f64::max);
            let _ = writeln!(
                w,
                "  p50: {:.6}, p99: {:.6}, max: {:.6}, mean: {:.6}",
                h.quantile(0.5) as f64 * 1e-6,
                h.quantile(0.99) as f64 * 1e-6,
                max,
                mean
            );
            let _ = writeln!(
                w,
                "  imbalance (max/mean): {:.4}",
                if mean > 0.0 { max / mean } else { 1.0 }
            );
        }

        let _ = writeln!(w, "\nrecovery");
        let failed: u64 = self.retries.iter().map(|r| r.2).sum();
        let corrupt: u64 = self.retries.iter().map(|r| r.3).sum();
        let _ = writeln!(
            w,
            "  retry attempts: {} (failed: {failed}, corrupt: {corrupt}), backoff seconds: {:.6}",
            self.retry_attempts(),
            self.backoff_seconds()
        );
        let _ = writeln!(
            w,
            "  regrows: {}, spilled k-mers: {}, oom events: {}",
            self.regrow_count(),
            self.spilled_kmers(),
            self.ooms.len()
        );
        for (rank, detail) in &self.ooms {
            let _ = writeln!(w, "    oom @ rank {rank}: {detail}");
        }
        if !self.rank_deaths.is_empty() || !self.rescales.is_empty() {
            let _ = writeln!(
                w,
                "  rank deaths: {}, rescales: {}",
                self.rank_deaths.len(),
                self.rescales.len()
            );
            for (rank, round) in &self.rank_deaths {
                let _ = writeln!(w, "    rank {rank} died @ round {round}");
            }
            for (round, from, to) in &self.rescales {
                let _ = writeln!(w, "    rescale @ round {round}: {from} -> {to} ranks");
            }
        }

        let _ = writeln!(w, "\nwall clock (host seconds)");
        for (stage, secs) in &self.wall {
            let _ = writeln!(w, "  {stage:<10} {secs:.6}");
        }
        let wall_total = self.wall_stage("total");
        if wall_total > 0.0 {
            let _ = writeln!(
                w,
                "  simulated/wall ratio: {:.1}x",
                self.makespan / wall_total
            );
        }
        out
    }
}

/// Analyzes a parsed journal into a [`RunAnalysis`].
///
/// Fails only on a structurally empty journal (no events at all); a
/// journal from any real run always carries at least the `meta`/`run`
/// envelope.
pub fn analyze(events: &[JournalEvent]) -> Result<RunAnalysis, String> {
    if events.is_empty() {
        return Err("journal is empty".to_string());
    }
    let mut a = RunAnalysis::default();
    let mut intervals: Vec<Interval> = Vec::new();
    let mut rounds: BTreeMap<u64, CollectiveRound> = BTreeMap::new();
    // Per (step, rank) accumulated (wire, charged): hierarchical routing
    // journals two tier events per rank per step, which sum here back to
    // that rank's total wire and clock charge for the round.
    let mut round_wires: BTreeMap<u64, BTreeMap<usize, (f64, f64)>> = BTreeMap::new();
    for ev in events {
        match ev {
            JournalEvent::Meta {
                mode,
                nodes,
                nranks,
                detail,
            } => {
                a.mode = mode.clone();
                a.nodes = *nodes;
                a.nranks = *nranks;
                a.detail = detail.clone();
            }
            JournalEvent::Span {
                rank,
                phase,
                start,
                end,
                ..
            } => intervals.push(Interval {
                rank: *rank,
                label: phase.clone(),
                start: *start,
                end: *end,
                sync: false,
            }),
            JournalEvent::Collective {
                step,
                rank,
                label,
                start,
                wire,
                hidden,
                charged,
                bytes,
                tier,
                comp_bytes,
            } => {
                intervals.push(Interval {
                    rank: *rank,
                    label: label.clone(),
                    start: *start,
                    end: *start + *charged,
                    sync: true,
                });
                let r = rounds.entry(*step).or_insert_with(|| CollectiveRound {
                    step: *step,
                    ..CollectiveRound::default()
                });
                if tier == "intra" {
                    r.intra_secs += *wire;
                } else {
                    // Injection tier carries the round's payload volume;
                    // intra-tier events re-count the same bytes in relay.
                    r.bytes += *bytes;
                    r.comp_bytes += *comp_bytes;
                    r.inject_secs += *wire;
                }
                r.hidden_sum += hidden.min(*charged);
                r.exposed_sum += (charged - hidden).max(0.0);
                let per_rank = round_wires
                    .entry(*step)
                    .or_default()
                    .entry(*rank)
                    .or_insert((0.0, 0.0));
                per_rank.0 += *wire;
                per_rank.1 += *charged;
            }
            JournalEvent::Retry {
                round,
                attempt,
                failed,
                corrupt,
                backoff,
            } => a
                .retries
                .push((*round, *attempt, *failed, *corrupt, *backoff)),
            JournalEvent::Regrow { rank, count } => a.regrows.push((*rank, *count)),
            JournalEvent::Spill { rank, kmers } => a.spills.push((*rank, *kmers)),
            JournalEvent::Oom { rank, detail } => a.ooms.push((*rank, detail.clone())),
            JournalEvent::RankDead { rank, round } => a.rank_deaths.push((*rank, *round)),
            JournalEvent::Rescale { round, from, to } => a.rescales.push((*round, *from, *to)),
            JournalEvent::Io {
                op,
                bin,
                bytes,
                secs,
            } => a.io_events.push((op.clone(), *bin, *bytes, *secs)),
            JournalEvent::Phase { phase, secs } => a.phases.push((phase.clone(), *secs)),
            JournalEvent::Wall { stage, secs } => a.wall.push((stage.clone(), *secs)),
            JournalEvent::Run { makespan } => a.makespan = *makespan,
        }
    }

    // Per-collective wire statistics: mean in rank order (matching the
    // engine's own accumulation order), max, and the straggler rank.
    for (step, wires) in round_wires {
        let r = rounds.get_mut(&step).expect("round exists");
        let n = wires.len().max(1) as f64;
        r.wire_mean = wires.values().map(|(wire, _)| wire).sum::<f64>() / n;
        r.charged_mean = wires.values().map(|(_, charged)| charged).sum::<f64>() / n;
        let (straggler, wire_max) =
            wires
                .iter()
                .fold((0usize, f64::MIN), |acc, (&rank, &(wire, _))| {
                    if wire > acc.1 {
                        (rank, wire)
                    } else {
                        acc
                    }
                });
        r.wire_max = wire_max.max(0.0);
        r.straggler = straggler;
    }
    a.rounds = rounds.into_values().collect();

    // Step attribution: mean rank-seconds per label, first-seen order.
    let mut order: Vec<String> = Vec::new();
    let mut sums: BTreeMap<String, f64> = BTreeMap::new();
    let mut busy: BTreeMap<usize, f64> = BTreeMap::new();
    for iv in &intervals {
        if !sums.contains_key(&iv.label) {
            order.push(iv.label.clone());
        }
        *sums.entry(iv.label.clone()).or_insert(0.0) += iv.duration();
        *busy.entry(iv.rank).or_insert(0.0) += iv.duration();
        a.total_rank_seconds += iv.duration();
    }
    let nranks = a.nranks.max(busy.len()).max(1);
    a.nranks = nranks;
    a.step_means = order
        .into_iter()
        .map(|label| {
            let mean = sums[&label] / nranks as f64;
            (label, mean)
        })
        .collect();
    a.busy_per_rank = (0..nranks)
        .map(|r| busy.get(&r).copied().unwrap_or(0.0))
        .collect();

    if a.makespan == 0.0 {
        a.makespan = intervals.iter().map(|iv| iv.end).fold(0.0, f64::max);
    }
    let (path, len) = critical_path(&intervals);
    a.critical_path = path;
    a.critical_len = len;
    Ok(a)
}

/// Walks the critical path backwards from the last-ending interval.
///
/// Predecessor rules (exact-timestamp matching — every start is a copy of
/// some clock value, so no epsilon is needed):
/// * a **compute span** starts when *its own rank's* previous charge
///   ended — pick that rank's latest interval ending at or before the
///   span's start;
/// * a **collective** starts at the global clock max — pick the latest
///   interval on *any* rank ending at or before the collective's start
///   (the last-arriving rank is the blocker).
fn critical_path(intervals: &[Interval]) -> (Vec<CritSegment>, f64) {
    if intervals.is_empty() {
        return (Vec::new(), 0.0);
    }
    let mut current = 0usize;
    for (i, iv) in intervals.iter().enumerate() {
        if iv.end > intervals[current].end {
            current = i;
        }
    }
    let mut segments = Vec::new();
    let mut guard = intervals.len() + 1;
    loop {
        let cur = &intervals[current];
        segments.push(CritSegment {
            rank: cur.rank,
            label: cur.label.clone(),
            start: cur.start,
            duration: cur.duration(),
        });
        guard -= 1;
        if cur.start <= 0.0 || guard == 0 {
            break;
        }
        let mut pred: Option<usize> = None;
        for (i, iv) in intervals.iter().enumerate() {
            if i == current || iv.end > cur.start {
                continue;
            }
            if !cur.sync && iv.rank != cur.rank {
                continue;
            }
            match pred {
                None => pred = Some(i),
                Some(p) if iv.end > intervals[p].end => pred = Some(i),
                Some(_) => {}
            }
        }
        match pred {
            Some(p) => current = p,
            None => break,
        }
    }
    segments.reverse();
    let len = segments.iter().map(|s| s.duration).sum();
    (segments, len)
}

/// Renders the `dedukt analyze --diff` regression triage report between
/// two analyzed runs (`a` = baseline, `b` = candidate).
pub fn render_diff(a: &RunAnalysis, b: &RunAnalysis) -> String {
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w, "dedukt analyze diff");
    let _ = writeln!(w, "===================");
    let _ = writeln!(
        w,
        "A: mode={} nodes={} nranks={}",
        if a.mode.is_empty() { "?" } else { &a.mode },
        a.nodes,
        a.nranks
    );
    let _ = writeln!(
        w,
        "B: mode={} nodes={} nranks={}",
        if b.mode.is_empty() { "?" } else { &b.mode },
        b.nodes,
        b.nranks
    );

    let mut regressions: Vec<String> = Vec::new();
    let mut line = |name: &str, va: f64, vb: f64, regress_if_worse: bool| -> String {
        let delta = if va != 0.0 {
            (vb - va) / va * 100.0
        } else if vb != 0.0 {
            100.0
        } else {
            0.0
        };
        let tag = if delta.abs() < 5.0 {
            ""
        } else if delta > 0.0 {
            if regress_if_worse {
                regressions.push(format!("{name} (+{delta:.1}%)"));
            }
            "  <-- regressed"
        } else {
            "  <-- improved"
        };
        format!("  {name:<22} {va:.6} -> {vb:.6} ({delta:+.1}%){tag}")
    };

    let mut body = Vec::new();
    body.push(line("makespan", a.makespan, b.makespan, true));
    for phase in ["parse", "exchange", "count"] {
        body.push(line(
            &format!("phase {phase}"),
            a.phase(phase),
            b.phase(phase),
            true,
        ));
    }
    body.push(line("critical path", a.critical_len, b.critical_len, true));
    body.push(line(
        "exchange bytes",
        a.exchange_bytes() as f64,
        b.exchange_bytes() as f64,
        true,
    ));
    body.push(line(
        "hidden seconds",
        a.hidden_seconds(),
        b.hidden_seconds(),
        false,
    ));
    body.push(line(
        "exposed seconds",
        a.exposed_seconds(),
        b.exposed_seconds(),
        true,
    ));
    body.push(line(
        "retry attempts",
        a.retry_attempts() as f64,
        b.retry_attempts() as f64,
        true,
    ));
    body.push(line(
        "backoff seconds",
        a.backoff_seconds(),
        b.backoff_seconds(),
        true,
    ));
    body.push(line(
        "regrows",
        a.regrow_count() as f64,
        b.regrow_count() as f64,
        true,
    ));
    body.push(line(
        "spilled k-mers",
        a.spilled_kmers() as f64,
        b.spilled_kmers() as f64,
        true,
    ));
    body.push(line(
        "wall total",
        a.wall_stage("total"),
        b.wall_stage("total"),
        false,
    ));
    for l in body {
        let _ = writeln!(w, "{l}");
    }
    if regressions.is_empty() {
        let _ = writeln!(w, "regressions: none");
    } else {
        let _ = writeln!(w, "regressions: {}", regressions.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(step: u64, rank: usize, phase: &str, start: f64, end: f64) -> JournalEvent {
        JournalEvent::Span {
            step,
            rank,
            phase: phase.into(),
            start,
            end,
        }
    }

    fn collective(step: u64, rank: usize, start: f64, wire: f64, bytes: u64) -> JournalEvent {
        JournalEvent::Collective {
            step,
            rank,
            label: "alltoallv".into(),
            start,
            wire,
            hidden: 0.0,
            charged: wire,
            bytes,
            tier: "inject".into(),
            comp_bytes: bytes,
        }
    }

    fn tiered(
        step: u64,
        rank: usize,
        start: f64,
        wire: f64,
        bytes: u64,
        tier: &str,
        comp_bytes: u64,
    ) -> JournalEvent {
        JournalEvent::Collective {
            step,
            rank,
            label: "alltoallv".into(),
            start,
            wire,
            hidden: 0.0,
            charged: wire,
            bytes,
            tier: tier.into(),
            comp_bytes,
        }
    }

    /// Two ranks: rank 1 computes longer, the collective starts at rank
    /// 1's finish, then rank 0 receives the bigger payload. The critical
    /// path must thread rank 1's compute into rank 0's wire time.
    fn two_rank_events() -> Vec<JournalEvent> {
        vec![
            JournalEvent::Meta {
                mode: "cpu".into(),
                nodes: 1,
                nranks: 2,
                detail: "test".into(),
            },
            span(0, 0, "parse", 0.0, 1.0),
            span(0, 1, "parse", 0.0, 3.0),
            collective(1, 0, 3.0, 2.0, 2048),
            collective(1, 1, 3.0, 0.5, 512),
            span(2, 0, "count", 5.0, 6.0),
            span(2, 1, "count", 3.5, 4.0),
            JournalEvent::Phase {
                phase: "parse".into(),
                secs: 2.0,
            },
            JournalEvent::Phase {
                phase: "exchange".into(),
                secs: 1.25,
            },
            JournalEvent::Phase {
                phase: "count".into(),
                secs: 0.75,
            },
            JournalEvent::Run { makespan: 6.0 },
        ]
    }

    #[test]
    fn critical_path_threads_the_straggler_chain() {
        let a = analyze(&two_rank_events()).unwrap();
        assert_eq!(a.makespan, 6.0);
        // Chain: rank1 parse (3.0) -> rank0 alltoallv (2.0) -> rank0
        // count (1.0) = 6.0 — full coverage of the makespan.
        let labels: Vec<(usize, &str)> = a
            .critical_path
            .iter()
            .map(|s| (s.rank, s.label.as_str()))
            .collect();
        assert_eq!(
            labels,
            vec![(1, "parse"), (0, "alltoallv"), (0, "count")],
            "path: {:?}",
            a.critical_path
        );
        assert_eq!(a.critical_len, 6.0);
        a.check_invariants().unwrap();
    }

    #[test]
    fn invariants_hold_and_totals_add_up() {
        let a = analyze(&two_rank_events()).unwrap();
        // parse 4.0 + collectives 2.5 + count 1.5 rank-seconds.
        assert!((a.total_rank_seconds - 8.0).abs() < 1e-12);
        assert!(a.critical_len <= a.makespan + 1e-12);
        assert!(a.makespan <= a.total_rank_seconds + 1e-12);
        assert_eq!(a.exchange_bytes(), 2560);
        assert_eq!(a.rounds.len(), 1);
        assert_eq!(a.rounds[0].straggler, 0);
        assert!((a.rounds[0].wire_mean - 1.25).abs() < 1e-12);
        assert!((a.rounds[0].imbalance() - 1.6).abs() < 1e-12);
        assert_eq!(a.phase("exchange"), 1.25);
        assert!((a.phase_total() - 4.0).abs() < 1e-12);
    }

    /// A hierarchical round journals two tier events per rank per step;
    /// the round must merge them back into per-rank totals, count bytes
    /// only on the injection tier, and split the tier seconds.
    #[test]
    fn hierarchical_rounds_merge_tiers_per_rank() {
        let events = vec![
            JournalEvent::Meta {
                mode: "cpu".into(),
                nodes: 2,
                nranks: 2,
                detail: "test".into(),
            },
            // Rank 0: 0.3 s intra relay then 1.7 s injection.
            tiered(1, 0, 0.0, 0.3, 4096, "intra", 4096),
            tiered(1, 0, 0.3, 1.7, 2048, "inject", 1024),
            // Rank 1: 0.1 s intra then 0.4 s injection.
            tiered(1, 1, 0.0, 0.1, 1024, "intra", 1024),
            tiered(1, 1, 0.1, 0.4, 512, "inject", 256),
            JournalEvent::Run { makespan: 2.0 },
        ];
        let a = analyze(&events).unwrap();
        assert_eq!(a.rounds.len(), 1);
        let r = &a.rounds[0];
        // Bytes count the injection tier only — the intra events carry
        // the same payload in relay and would double-count.
        assert_eq!(r.bytes, 2048 + 512);
        assert_eq!(r.comp_bytes, 1024 + 256);
        assert!((r.intra_secs - 0.4).abs() < 1e-12);
        assert!((r.inject_secs - 2.1).abs() < 1e-12);
        // Per-rank wire is the sum of that rank's tier events.
        assert!((r.wire_mean - (2.0 + 0.5) / 2.0).abs() < 1e-12);
        assert!((r.wire_max - 2.0).abs() < 1e-12);
        assert_eq!(r.straggler, 0);
        assert_eq!(a.exchange_comp_bytes(), 1280);
        assert!((a.intra_seconds() - 0.4).abs() < 1e-12);
        assert!((a.inject_seconds() - 2.1).abs() < 1e-12);
        a.check_invariants().unwrap();
        let text = a.render();
        assert!(text.contains("intra-sec"), "{text}");
        assert!(text.contains("wire compression"), "{text}");
    }

    #[test]
    fn render_contains_every_report_section() {
        let a = analyze(&two_rank_events()).unwrap();
        let text = a.render();
        for needle in [
            "phase breakdown",
            "reconciliation",
            "critical path",
            "exchange",
            "tier seconds",
            "imbalance",
            "recovery",
            "wall clock",
            "invariants",
            "OK",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn rank_deaths_and_rescales_feed_the_recovery_section() {
        let mut events = two_rank_events();
        events.insert(3, JournalEvent::RankDead { rank: 1, round: 0 });
        events.insert(
            4,
            JournalEvent::Rescale {
                round: 1,
                from: 2,
                to: 1,
            },
        );
        let a = analyze(&events).unwrap();
        assert_eq!(a.rank_deaths, vec![(1, 0)]);
        assert_eq!(a.rescales, vec![(1, 2, 1)]);
        a.check_invariants().unwrap();
        let text = a.render();
        assert!(text.contains("rank 1 died @ round 0"), "{text}");
        assert!(text.contains("rescale @ round 1: 2 -> 1 ranks"), "{text}");
        // Runs without deaths keep the section silent.
        let clean = analyze(&two_rank_events()).unwrap();
        assert!(!clean.render().contains("rank deaths"));
    }

    #[test]
    fn io_events_feed_the_storage_section() {
        let io = |op: &str, bin: u64, bytes: u64, secs: f64| JournalEvent::Io {
            op: op.into(),
            bin,
            bytes,
            secs,
        };
        let mut events = two_rank_events();
        events.insert(3, io("write", 0, 1000, 0.5));
        events.insert(4, io("write", 1, 3000, 1.5));
        events.insert(5, io("read", 0, 1000, 0.25));
        events.insert(6, io("retry", 1, 0, 0.1));
        events.insert(7, io("quarantine", 1, 0, 0.0));
        events.insert(8, io("rederive", 1, 3000, 2.0));
        events.insert(9, io("read", 1, 3000, 0.75));
        let a = analyze(&events).unwrap();
        assert_eq!(a.io_count("write"), 2);
        assert_eq!(a.io_bytes("write"), 4000);
        assert_eq!(a.io_count("read"), 2);
        assert_eq!(a.io_count("retry"), 1);
        assert_eq!(a.io_count("quarantine"), 1);
        assert_eq!(a.io_count("rederive"), 1);
        assert!((a.io_seconds("write") - 2.0).abs() < 1e-12);
        assert!((a.storage_seconds() - 5.1).abs() < 1e-12);
        // Io events are annotations, not clock intervals — the structural
        // invariants must be unaffected.
        a.check_invariants().unwrap();
        let text = a.render();
        assert!(text.contains("storage (simulated NVMe tier)"), "{text}");
        assert!(text.contains("bin writes: 2 (4000 bytes"), "{text}");
        assert!(text.contains("quarantined bins: 1"), "{text}");
        // In-memory runs keep the section silent.
        let clean = analyze(&two_rank_events()).unwrap();
        assert!(!clean.render().contains("storage (simulated NVMe tier)"));
    }

    #[test]
    fn diff_flags_regressions() {
        let a = analyze(&two_rank_events()).unwrap();
        let mut worse_events = two_rank_events();
        for ev in &mut worse_events {
            if let JournalEvent::Run { makespan } = ev {
                *makespan = 9.0;
            }
            if let JournalEvent::Phase { phase, secs } = ev {
                if phase == "exchange" {
                    *secs = 4.25;
                }
            }
        }
        let b = analyze(&worse_events).unwrap();
        let text = render_diff(&a, &b);
        assert!(text.contains("regressed"), "{text}");
        assert!(text.contains("makespan"), "{text}");
        assert!(
            text.contains("regressions:") && !text.contains("regressions: none"),
            "{text}"
        );
        let same = render_diff(&a, &a);
        assert!(same.contains("regressions: none"), "{same}");
    }

    #[test]
    fn empty_journal_is_an_error() {
        assert!(analyze(&[]).is_err());
    }
}
