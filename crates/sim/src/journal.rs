//! Structured run journal — a JSONL flight recorder for one run.
//!
//! Where the Chrome trace ([`crate::trace`]) targets human eyeballs in a
//! timeline viewer, the journal targets *machines*: one flat JSON object
//! per line, with a typed event vocabulary rich enough to reconstruct the
//! superstep DAG offline. Every charge against a simulated rank clock is
//! journaled — compute spans, collective charges, retry backoff — so an
//! analyzer can re-derive the makespan, walk the critical path, and
//! reconcile per-phase totals against the metrics snapshot exactly
//! (see [`crate::analyze`]).
//!
//! The journal follows the metrics discipline: collection is opt-in, and
//! a run without a journal attached is bit-identical to one with it
//! (pinned by `tests/journal_schema.rs`). Events are recorded in a
//! deterministic order (rank-major within each superstep), so two
//! identical runs produce byte-identical journals.
//!
//! No JSON dependency: lines are emitted directly and parsed by the small
//! flat-object parser in [`parse_flat_json`], which `dedukt analyze` and
//! `dedukt-bench --check` reuse.

use crate::trace::escape;
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::Mutex;

/// One typed journal event (one JSONL line).
///
/// The `ev` field on the wire names the variant; the vocabulary is pinned
/// by `tests/journal_schema.rs`. All times are simulated seconds unless a
/// variant says otherwise.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalEvent {
    /// Run header: what was run, on how many simulated resources.
    Meta {
        /// Pipeline mode label (e.g. `gpu-supermer`).
        mode: String,
        /// Simulated node count.
        nodes: usize,
        /// Simulated rank count.
        nranks: usize,
        /// Free-form configuration detail (k, fault/mem plans, …).
        detail: String,
    },
    /// One compute span on one rank's simulated timeline.
    Span {
        /// Superstep index (global, monotonically increasing).
        step: u64,
        /// Rank whose clock was charged.
        rank: usize,
        /// Step name (e.g. `build-supermers`, `count`, `retry-backoff`).
        phase: String,
        /// Span start on the rank's simulated clock, seconds.
        start: f64,
        /// Span end on the rank's simulated clock, seconds.
        end: f64,
    },
    /// One rank's share of a synchronizing collective.
    Collective {
        /// Collective index (the exchange superstep counter).
        step: u64,
        /// Participating rank.
        rank: usize,
        /// Collective label (e.g. `alltoallv`).
        label: String,
        /// Synchronized start instant (all ranks align here), seconds.
        start: f64,
        /// Pure wire time charged to this rank, seconds.
        wire: f64,
        /// Overlapped compute hidden behind the wire, seconds.
        hidden: f64,
        /// Time actually charged: `max(wire, hidden)`, seconds.
        charged: f64,
        /// Payload bytes this rank contributed to the collective
        /// (*logical* — pre-codec — bytes when wire compression is on).
        bytes: u64,
        /// Network tier the charge belongs to: `"inject"` (the fat-tree
        /// injection tier — all direct-route collectives and barriers) or
        /// `"intra"` (the intra-node gather/scatter tier of hierarchical
        /// routing). Journals written before routing landed omit the
        /// field; the parser defaults it to `"inject"`.
        tier: String,
        /// Bytes actually put on the wire after the codec — equals
        /// `bytes` when compression is off (and when the field is absent
        /// in an old journal).
        comp_bytes: u64,
    },
    /// A retry attempt after failed or corrupt bucket deliveries.
    Retry {
        /// Exchange round the retry belongs to.
        round: u64,
        /// Attempt index (1 = first retry).
        attempt: u32,
        /// Buckets whose send failed in flight on the previous attempt.
        failed: u64,
        /// Buckets that arrived corrupt and were discarded.
        corrupt: u64,
        /// Backoff charged to every rank before this attempt, seconds.
        backoff: f64,
    },
    /// Count-table grow-and-rehash total for one rank.
    Regrow {
        /// Rank whose table grew.
        rank: usize,
        /// Number of successful regrows.
        count: u64,
    },
    /// Host-spill total for one rank.
    Spill {
        /// Rank that spilled.
        rank: usize,
        /// k-mer instances parked on the host spill list.
        kmers: u64,
    },
    /// Device memory exhausted beyond recovery.
    Oom {
        /// Rank that ran out of device memory.
        rank: usize,
        /// Human-readable failure detail.
        detail: String,
    },
    /// A whole rank died at a round boundary and its key ranges were
    /// re-partitioned across the survivors.
    RankDead {
        /// Rank that died.
        rank: usize,
        /// Zero-based exchange round whose boundary detected the death.
        round: u64,
    },
    /// An elastic rescale shrank or grew the active rank set at a round
    /// boundary.
    Rescale {
        /// Zero-based exchange round the rescale took effect before.
        round: u64,
        /// Active ranks before the rescale.
        from: usize,
        /// Active ranks after the rescale.
        to: usize,
    },
    /// One storage-tier operation on the out-of-core bin store: a bin
    /// write or read, a transient-read retry, a quarantine after
    /// detected corruption, or a re-derive replaying the bin's input
    /// slice (DESIGN.md §12). Annotation only — the simulated seconds
    /// are charged through the owning rank's compute spans.
    Io {
        /// Operation: `write`, `read`, `retry`, `quarantine`, or
        /// `rederive`.
        op: String,
        /// Bin the operation touched.
        bin: u64,
        /// Payload bytes moved (0 for retries and quarantines).
        bytes: u64,
        /// Simulated seconds the operation cost its owning rank.
        secs: f64,
    },
    /// Driver phase summary, computed from the same accumulators as the
    /// run report and the metrics snapshot (reconciles exactly).
    Phase {
        /// Phase name: `parse`, `exchange`, or `count`.
        phase: String,
        /// Simulated seconds attributed to the phase.
        secs: f64,
    },
    /// Wall-clock stage timing (host `Instant`, *not* simulated time).
    Wall {
        /// Driver stage name.
        stage: String,
        /// Real elapsed seconds on the host.
        secs: f64,
    },
    /// Run trailer: the simulated makespan (max over rank clocks).
    Run {
        /// Simulated makespan, seconds.
        makespan: f64,
    },
}

/// Formats an `f64` so that parsing the text recovers the exact bits
/// (Rust's shortest-roundtrip `Display`).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        // Journals never contain non-finite values; clamp defensively so
        // the output stays valid JSON.
        "0".to_string()
    }
}

impl JournalEvent {
    /// The `ev` discriminator this event serializes with.
    pub fn kind(&self) -> &'static str {
        match self {
            JournalEvent::Meta { .. } => "meta",
            JournalEvent::Span { .. } => "span",
            JournalEvent::Collective { .. } => "collective",
            JournalEvent::Retry { .. } => "retry",
            JournalEvent::Regrow { .. } => "regrow",
            JournalEvent::Spill { .. } => "spill",
            JournalEvent::Oom { .. } => "oom",
            JournalEvent::RankDead { .. } => "rankdead",
            JournalEvent::Rescale { .. } => "rescale",
            JournalEvent::Io { .. } => "io",
            JournalEvent::Phase { .. } => "phase",
            JournalEvent::Wall { .. } => "wall",
            JournalEvent::Run { .. } => "run",
        }
    }

    /// Serializes the event as one flat JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            JournalEvent::Meta {
                mode,
                nodes,
                nranks,
                detail,
            } => format!(
                "{{\"ev\":\"meta\",\"mode\":\"{}\",\"nodes\":{nodes},\"nranks\":{nranks},\"detail\":\"{}\"}}",
                escape(mode),
                escape(detail)
            ),
            JournalEvent::Span {
                step,
                rank,
                phase,
                start,
                end,
            } => format!(
                "{{\"ev\":\"span\",\"step\":{step},\"rank\":{rank},\"phase\":\"{}\",\"start\":{},\"end\":{}}}",
                escape(phase),
                num(*start),
                num(*end)
            ),
            JournalEvent::Collective {
                step,
                rank,
                label,
                start,
                wire,
                hidden,
                charged,
                bytes,
                tier,
                comp_bytes,
            } => format!(
                "{{\"ev\":\"collective\",\"step\":{step},\"rank\":{rank},\"label\":\"{}\",\"start\":{},\"wire\":{},\"hidden\":{},\"charged\":{},\"bytes\":{bytes},\"tier\":\"{}\",\"comp_bytes\":{comp_bytes}}}",
                escape(label),
                num(*start),
                num(*wire),
                num(*hidden),
                num(*charged),
                escape(tier)
            ),
            JournalEvent::Retry {
                round,
                attempt,
                failed,
                corrupt,
                backoff,
            } => format!(
                "{{\"ev\":\"retry\",\"round\":{round},\"attempt\":{attempt},\"failed\":{failed},\"corrupt\":{corrupt},\"backoff\":{}}}",
                num(*backoff)
            ),
            JournalEvent::Regrow { rank, count } => {
                format!("{{\"ev\":\"regrow\",\"rank\":{rank},\"count\":{count}}}")
            }
            JournalEvent::Spill { rank, kmers } => {
                format!("{{\"ev\":\"spill\",\"rank\":{rank},\"kmers\":{kmers}}}")
            }
            JournalEvent::Oom { rank, detail } => format!(
                "{{\"ev\":\"oom\",\"rank\":{rank},\"detail\":\"{}\"}}",
                escape(detail)
            ),
            JournalEvent::RankDead { rank, round } => {
                format!("{{\"ev\":\"rankdead\",\"rank\":{rank},\"round\":{round}}}")
            }
            JournalEvent::Rescale { round, from, to } => {
                format!("{{\"ev\":\"rescale\",\"round\":{round},\"from\":{from},\"to\":{to}}}")
            }
            JournalEvent::Io {
                op,
                bin,
                bytes,
                secs,
            } => format!(
                "{{\"ev\":\"io\",\"op\":\"{}\",\"bin\":{bin},\"bytes\":{bytes},\"secs\":{}}}",
                escape(op),
                num(*secs)
            ),
            JournalEvent::Phase { phase, secs } => format!(
                "{{\"ev\":\"phase\",\"phase\":\"{}\",\"secs\":{}}}",
                escape(phase),
                num(*secs)
            ),
            JournalEvent::Wall { stage, secs } => format!(
                "{{\"ev\":\"wall\",\"stage\":\"{}\",\"secs\":{}}}",
                escape(stage),
                num(*secs)
            ),
            JournalEvent::Run { makespan } => {
                format!("{{\"ev\":\"run\",\"makespan\":{}}}", num(*makespan))
            }
        }
    }

    /// Parses one JSONL line back into a typed event.
    pub fn parse(line: &str) -> Result<JournalEvent, String> {
        let map = parse_flat_json(line)?;
        let ev = map.str_field("ev")?;
        let event = match ev {
            "meta" => JournalEvent::Meta {
                mode: map.str_field("mode")?.to_string(),
                nodes: map.u64_field("nodes")? as usize,
                nranks: map.u64_field("nranks")? as usize,
                detail: map.str_field("detail")?.to_string(),
            },
            "span" => JournalEvent::Span {
                step: map.u64_field("step")?,
                rank: map.u64_field("rank")? as usize,
                phase: map.str_field("phase")?.to_string(),
                start: map.f64_field("start")?,
                end: map.f64_field("end")?,
            },
            "collective" => JournalEvent::Collective {
                step: map.u64_field("step")?,
                rank: map.u64_field("rank")? as usize,
                label: map.str_field("label")?.to_string(),
                start: map.f64_field("start")?,
                wire: map.f64_field("wire")?,
                hidden: map.f64_field("hidden")?,
                charged: map.f64_field("charged")?,
                bytes: map.u64_field("bytes")?,
                // Pre-routing journals lack the tier/codec fields; default
                // to the injection tier with an identity codec so old
                // journals keep analyzing.
                tier: match map.get("tier") {
                    Some(_) => map.str_field("tier")?.to_string(),
                    None => "inject".to_string(),
                },
                comp_bytes: match map.get("comp_bytes") {
                    Some(_) => map.u64_field("comp_bytes")?,
                    None => map.u64_field("bytes")?,
                },
            },
            "retry" => JournalEvent::Retry {
                round: map.u64_field("round")?,
                attempt: map.u64_field("attempt")? as u32,
                failed: map.u64_field("failed")?,
                corrupt: map.u64_field("corrupt")?,
                backoff: map.f64_field("backoff")?,
            },
            "regrow" => JournalEvent::Regrow {
                rank: map.u64_field("rank")? as usize,
                count: map.u64_field("count")?,
            },
            "spill" => JournalEvent::Spill {
                rank: map.u64_field("rank")? as usize,
                kmers: map.u64_field("kmers")?,
            },
            "oom" => JournalEvent::Oom {
                rank: map.u64_field("rank")? as usize,
                detail: map.str_field("detail")?.to_string(),
            },
            "rankdead" => JournalEvent::RankDead {
                rank: map.u64_field("rank")? as usize,
                round: map.u64_field("round")?,
            },
            "rescale" => JournalEvent::Rescale {
                round: map.u64_field("round")?,
                from: map.u64_field("from")? as usize,
                to: map.u64_field("to")? as usize,
            },
            "io" => JournalEvent::Io {
                op: map.str_field("op")?.to_string(),
                bin: map.u64_field("bin")?,
                bytes: map.u64_field("bytes")?,
                secs: map.f64_field("secs")?,
            },
            "phase" => JournalEvent::Phase {
                phase: map.str_field("phase")?.to_string(),
                secs: map.f64_field("secs")?,
            },
            "wall" => JournalEvent::Wall {
                stage: map.str_field("stage")?.to_string(),
                secs: map.f64_field("secs")?,
            },
            "run" => JournalEvent::Run {
                makespan: map.f64_field("makespan")?,
            },
            other => return Err(format!("unknown journal event kind `{other}`")),
        };
        Ok(event)
    }
}

/// A scalar value in a flat JSON object: string or number.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonScalar {
    /// An unescaped string value.
    Str(String),
    /// A numeric value (integers are exact up to 2^53).
    Num(f64),
}

/// A parsed flat JSON object (no nesting): field name → scalar.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FlatJson(BTreeMap<String, JsonScalar>);

impl FlatJson {
    /// Looks up a field.
    pub fn get(&self, key: &str) -> Option<&JsonScalar> {
        self.0.get(key)
    }

    /// A required string field.
    pub fn str_field(&self, key: &str) -> Result<&str, String> {
        match self.0.get(key) {
            Some(JsonScalar::Str(s)) => Ok(s),
            Some(JsonScalar::Num(_)) => Err(format!("field `{key}` is a number, not a string")),
            None => Err(format!("missing field `{key}`")),
        }
    }

    /// A required numeric field.
    pub fn f64_field(&self, key: &str) -> Result<f64, String> {
        match self.0.get(key) {
            Some(JsonScalar::Num(n)) => Ok(*n),
            Some(JsonScalar::Str(_)) => Err(format!("field `{key}` is a string, not a number")),
            None => Err(format!("missing field `{key}`")),
        }
    }

    /// A required non-negative integer field.
    pub fn u64_field(&self, key: &str) -> Result<u64, String> {
        let n = self.f64_field(key)?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(format!("field `{key}`={n} is not a non-negative integer"));
        }
        Ok(n as u64)
    }
}

/// Parses one flat JSON object (`{"key": value, …}` with string or
/// numeric values, no nesting). This is deliberately the smallest parser
/// that reads what [`JournalEvent::to_json`] and the bench baseline rows
/// emit; it is not a general JSON parser.
pub fn parse_flat_json(line: &str) -> Result<FlatJson, String> {
    let mut chars = line.trim().chars().peekable();
    let mut map = BTreeMap::new();
    let skip_ws = |chars: &mut std::iter::Peekable<std::str::Chars>| {
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
    };
    let parse_string =
        |chars: &mut std::iter::Peekable<std::str::Chars>| -> Result<String, String> {
            if chars.next() != Some('"') {
                return Err("expected `\"`".to_string());
            }
            let mut out = String::new();
            loop {
                match chars.next() {
                    Some('"') => return Ok(out),
                    Some('\\') => match chars.next() {
                        Some('"') => out.push('"'),
                        Some('\\') => out.push('\\'),
                        Some('n') => out.push('\n'),
                        Some('t') => out.push('\t'),
                        Some('r') => out.push('\r'),
                        Some('/') => out.push('/'),
                        Some('u') => {
                            let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                            let cp = u32::from_str_radix(&hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape `\\{other:?}`")),
                    },
                    Some(c) => out.push(c),
                    None => return Err("unterminated string".to_string()),
                }
            }
        };
    skip_ws(&mut chars);
    if chars.next() != Some('{') {
        return Err("expected `{`".to_string());
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some('"') => {}
            other => return Err(format!("expected field name, found {other:?}")),
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(format!("expected `:` after field `{key}`"));
        }
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => JsonScalar::Str(parse_string(&mut chars)?),
            Some(c) if *c == '-' || *c == '+' || c.is_ascii_digit() => {
                let mut text = String::new();
                while matches!(
                    chars.peek(),
                    Some(c) if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')
                ) {
                    text.push(chars.next().expect("peeked"));
                }
                JsonScalar::Num(
                    text.parse::<f64>()
                        .map_err(|_| format!("field `{key}`: bad number `{text}`"))?,
                )
            }
            other => return Err(format!("field `{key}`: unsupported value {other:?}")),
        };
        map.insert(key, value);
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => break,
            other => return Err(format!("expected `,` or `}}`, found {other:?}")),
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err("trailing characters after object".to_string());
    }
    Ok(FlatJson(map))
}

/// A thread-safe event collector, shared between the network engine and
/// the driver the way the metrics registry is ([`crate::MetricsRegistry`]).
///
/// Pushes are cheap appends under a mutex; a run that never attaches a
/// journal pays nothing.
#[derive(Debug, Default)]
pub struct Journal {
    events: Mutex<Vec<JournalEvent>>,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Journal {
        Journal::default()
    }

    /// Appends one event.
    pub fn push(&self, ev: JournalEvent) {
        self.events.lock().expect("journal poisoned").push(ev);
    }

    /// Appends many events in order.
    pub fn extend(&self, evs: impl IntoIterator<Item = JournalEvent>) {
        self.events.lock().expect("journal poisoned").extend(evs);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("journal poisoned").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clones the recorded events in order.
    pub fn snapshot(&self) -> Vec<JournalEvent> {
        self.events.lock().expect("journal poisoned").clone()
    }

    /// Drains the recorded events, leaving the journal empty.
    pub fn take(&self) -> Vec<JournalEvent> {
        std::mem::take(&mut *self.events.lock().expect("journal poisoned"))
    }
}

/// Writes events as JSONL: one [`JournalEvent::to_json`] object per line.
pub fn write_journal<W: Write>(w: &mut W, events: &[JournalEvent]) -> io::Result<()> {
    for ev in events {
        writeln!(w, "{}", ev.to_json())?;
    }
    Ok(())
}

/// Parses a JSONL journal back into typed events. Blank lines are
/// skipped; any malformed line is an error naming its line number.
pub fn read_journal(text: &str) -> Result<Vec<JournalEvent>, String> {
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = JournalEvent::parse(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        events.push(ev);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ev: JournalEvent) {
        let line = ev.to_json();
        let back = JournalEvent::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
        assert_eq!(back, ev, "roundtrip failed for {line}");
    }

    #[test]
    fn every_variant_roundtrips() {
        roundtrip(JournalEvent::Meta {
            mode: "gpu-supermer".into(),
            nodes: 2,
            nranks: 12,
            detail: "k=17 m=7 fault=\"none\"".into(),
        });
        roundtrip(JournalEvent::Span {
            step: 3,
            rank: 7,
            phase: "build-supermers".into(),
            start: 0.125,
            end: 0.3333333333333333,
        });
        roundtrip(JournalEvent::Collective {
            step: 5,
            rank: 1,
            label: "alltoallv".into(),
            start: 1.5e-3,
            wire: 2.0e-4,
            hidden: 0.0,
            charged: 2.0e-4,
            bytes: 1 << 40,
            tier: "inject".into(),
            comp_bytes: 1 << 40,
        });
        roundtrip(JournalEvent::Collective {
            step: 6,
            rank: 0,
            label: "alltoallv".into(),
            start: 2.0e-3,
            wire: 1.0e-4,
            hidden: 0.0,
            charged: 1.0e-4,
            bytes: 9_000,
            tier: "intra".into(),
            comp_bytes: 6_200, // compressed supermer payload
        });
        roundtrip(JournalEvent::Retry {
            round: 2,
            attempt: 1,
            failed: 3,
            corrupt: 1,
            backoff: 0.05,
        });
        roundtrip(JournalEvent::Regrow { rank: 4, count: 2 });
        roundtrip(JournalEvent::Spill {
            rank: 4,
            kmers: 100_000,
        });
        roundtrip(JournalEvent::Oom {
            rank: 9,
            detail: "spill limit exceeded\nafter 3 grows".into(),
        });
        roundtrip(JournalEvent::RankDead { rank: 5, round: 2 });
        roundtrip(JournalEvent::Rescale {
            round: 3,
            from: 12,
            to: 8,
        });
        roundtrip(JournalEvent::Io {
            op: "rederive".into(),
            bin: 17,
            bytes: 1 << 22,
            secs: 0.0625,
        });
        roundtrip(JournalEvent::Phase {
            phase: "exchange".into(),
            secs: 8.25,
        });
        roundtrip(JournalEvent::Wall {
            stage: "count".into(),
            secs: 0.001953125,
        });
        roundtrip(JournalEvent::Run { makespan: 10.75 });
    }

    #[test]
    fn floats_roundtrip_exactly() {
        // Shortest-roundtrip display must recover the exact bits even for
        // awkward values.
        for &x in &[0.1, 1.0 / 3.0, 1e-300, 123456.789012345, f64::MIN_POSITIVE] {
            let ev = JournalEvent::Run { makespan: x };
            match JournalEvent::parse(&ev.to_json()).unwrap() {
                JournalEvent::Run { makespan } => assert_eq!(makespan.to_bits(), x.to_bits()),
                other => panic!("wrong variant {other:?}"),
            }
        }
    }

    #[test]
    fn journal_collects_in_order_and_drains() {
        let j = Journal::new();
        assert!(j.is_empty());
        j.push(JournalEvent::Run { makespan: 1.0 });
        j.extend([
            JournalEvent::Run { makespan: 2.0 },
            JournalEvent::Run { makespan: 3.0 },
        ]);
        assert_eq!(j.len(), 3);
        let evs = j.take();
        assert!(j.is_empty());
        assert_eq!(
            evs,
            vec![
                JournalEvent::Run { makespan: 1.0 },
                JournalEvent::Run { makespan: 2.0 },
                JournalEvent::Run { makespan: 3.0 },
            ]
        );
    }

    #[test]
    fn jsonl_write_read_roundtrip() {
        let events = vec![
            JournalEvent::Meta {
                mode: "cpu".into(),
                nodes: 1,
                nranks: 4,
                detail: "k=17".into(),
            },
            JournalEvent::Span {
                step: 0,
                rank: 0,
                phase: "parse".into(),
                start: 0.0,
                end: 0.5,
            },
            JournalEvent::Run { makespan: 0.5 },
        ];
        let mut buf = Vec::new();
        write_journal(&mut buf, &events).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert_eq!(read_journal(&text).unwrap(), events);
        // Blank lines are tolerated.
        assert_eq!(read_journal(&format!("\n{text}\n")).unwrap(), events);
    }

    #[test]
    fn legacy_collective_lines_default_tier_and_comp_bytes() {
        // A pre-routing journal line: no `tier`, no `comp_bytes`.
        let line = "{\"ev\":\"collective\",\"step\":2,\"rank\":3,\"label\":\"alltoallv\",\
                    \"start\":0.5,\"wire\":0.25,\"hidden\":0,\"charged\":0.25,\"bytes\":128}";
        match JournalEvent::parse(line).unwrap() {
            JournalEvent::Collective {
                tier,
                comp_bytes,
                bytes,
                ..
            } => {
                assert_eq!(tier, "inject");
                assert_eq!(comp_bytes, bytes);
                assert_eq!(bytes, 128);
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(JournalEvent::parse("not json").is_err());
        assert!(JournalEvent::parse("{\"ev\":\"nope\"}").is_err());
        assert!(JournalEvent::parse("{\"ev\":\"run\"}")
            .unwrap_err()
            .contains("makespan"));
        assert!(read_journal("{\"ev\":\"run\",\"makespan\":1}\ngarbage")
            .unwrap_err()
            .contains("line 2"));
    }

    #[test]
    fn flat_parser_handles_escapes_and_numbers() {
        let map = parse_flat_json(
            "{\"a\": \"he said \\\"hi\\\"\\n\", \"b\": -1.5e3, \"c\": 42, \"d\": \"\\u0041\"}",
        )
        .unwrap();
        assert_eq!(map.str_field("a").unwrap(), "he said \"hi\"\n");
        assert_eq!(map.f64_field("b").unwrap(), -1500.0);
        assert_eq!(map.u64_field("c").unwrap(), 42);
        assert_eq!(map.str_field("d").unwrap(), "A");
        assert!(map.u64_field("b").is_err());
        assert!(map.str_field("missing").is_err());
        assert!(parse_flat_json("{\"a\": [1]}").is_err(), "no nesting");
        assert!(parse_flat_json("{\"a\": 1} trailing").is_err());
    }
}
