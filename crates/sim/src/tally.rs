//! Lightweight concurrent counters for instrumenting simulated kernels and
//! collectives.

use std::sync::atomic::{AtomicU64, Ordering};

/// A relaxed atomic event counter. Suitable for statistics only — relaxed
/// ordering gives exact totals once all writers have been joined, but no
/// synchronisation of other data.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value. Exact once all incrementing threads have finished.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero and returns the previous value.
    pub fn take(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

impl Clone for Counter {
    fn clone(&self) -> Self {
        Counter(AtomicU64::new(self.get()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counts_single_threaded() {
        let c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
        assert_eq!(c.take(), 42);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counts_across_threads() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }

    #[test]
    fn clone_snapshots_value() {
        let c = Counter::new();
        c.add(7);
        let d = c.clone();
        c.add(1);
        assert_eq!(d.get(), 7);
        assert_eq!(c.get(), 8);
    }
}
