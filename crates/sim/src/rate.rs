//! Throughputs: bytes/s and items/s.
//!
//! Cost models are parameterised by rates (HBM bandwidth, injection
//! bandwidth, per-core k-mer insertion rate …) and convert work into
//! [`SimTime`] by dividing through a [`Rate`].

use crate::{DataVolume, SimTime};
use std::fmt;

/// A throughput in *units per second*. The unit is contextual: bytes for
/// bandwidths, items (bases, k-mers) for processing rates.
#[derive(Clone, Copy, PartialEq, PartialOrd)]
pub struct Rate(f64);

impl Rate {
    /// From units per second.
    #[inline]
    pub fn per_sec(units: f64) -> Self {
        debug_assert!(units.is_finite() && units > 0.0, "invalid Rate: {units}");
        Rate(units)
    }

    /// Bandwidth constructor: gigabytes (1e9 bytes) per second.
    #[inline]
    pub fn gb_per_sec(gb: f64) -> Self {
        Rate::per_sec(gb * 1e9)
    }

    /// Bandwidth constructor: megabytes (1e6 bytes) per second.
    #[inline]
    pub fn mb_per_sec(mb: f64) -> Self {
        Rate::per_sec(mb * 1e6)
    }

    /// Item-rate constructor: millions of items per second.
    #[inline]
    pub fn mitems_per_sec(m: f64) -> Self {
        Rate::per_sec(m * 1e6)
    }

    /// Item-rate constructor: billions of items per second.
    #[inline]
    pub fn gitems_per_sec(g: f64) -> Self {
        Rate::per_sec(g * 1e9)
    }

    /// Units per second as `f64`.
    #[inline]
    pub fn units_per_sec(self) -> f64 {
        self.0
    }

    /// Time to process `units` of work at this rate.
    #[inline]
    pub fn time_for(self, units: f64) -> SimTime {
        SimTime::from_secs(units / self.0)
    }

    /// Time to move `volume` bytes at this rate (rate must be a bandwidth).
    #[inline]
    pub fn time_for_volume(self, volume: DataVolume) -> SimTime {
        self.time_for(volume.bytes_f64())
    }

    /// Scales the rate, e.g. by a parallel efficiency factor in (0, 1].
    #[inline]
    pub fn scaled(self, factor: f64) -> Rate {
        Rate::per_sec(self.0 * factor)
    }

    /// Observed rate from work over time. Returns `None` if the elapsed time
    /// is zero.
    pub fn observed(units: f64, elapsed: SimTime) -> Option<Rate> {
        if elapsed.is_zero() || units <= 0.0 {
            None
        } else {
            Some(Rate::per_sec(units / elapsed.as_secs()))
        }
    }
}

impl fmt::Debug for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rate({self})")
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let u = self.0;
        if u >= 1e9 {
            write!(f, "{:.3} G/s", u / 1e9)
        } else if u >= 1e6 {
            write!(f, "{:.3} M/s", u / 1e6)
        } else if u >= 1e3 {
            write!(f, "{:.3} K/s", u / 1e3)
        } else {
            write!(f, "{u:.3} /s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_for_work() {
        let r = Rate::mitems_per_sec(10.0); // 10M items/s
        assert!((r.time_for(5e6).as_secs() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_moves_volume() {
        // Summit per-node injection: 23 GB/s. 23 GB should take 1 s.
        let bw = Rate::gb_per_sec(23.0);
        let t = bw.time_for_volume(DataVolume::from_bytes(23_000_000_000));
        assert!((t.as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_efficiency() {
        let r = Rate::gb_per_sec(10.0).scaled(0.5);
        assert!((r.units_per_sec() - 5e9).abs() < 1.0);
    }

    #[test]
    fn observed_rate_roundtrip() {
        let r = Rate::observed(1e6, SimTime::from_secs(2.0)).unwrap();
        assert!((r.units_per_sec() - 5e5).abs() < 1e-6);
        assert!(Rate::observed(1e6, SimTime::ZERO).is_none());
        assert!(Rate::observed(0.0, SimTime::from_secs(1.0)).is_none());
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Rate::gitems_per_sec(2.5)), "2.500 G/s");
        assert_eq!(format!("{}", Rate::mitems_per_sec(2.5)), "2.500 M/s");
        assert_eq!(format!("{}", Rate::per_sec(1500.0)), "1.500 K/s");
        assert_eq!(format!("{}", Rate::per_sec(12.0)), "12.000 /s");
    }
}
