//! Property tests for the telemetry layer: histogram shards must merge
//! losslessly, and the Chrome-trace emitter must always produce
//! well-formed JSON, no matter how hostile the span/counter names are.

use dedukt_sim::trace::{write_chrome_trace_with, TraceCounter, TraceEvent};
use dedukt_sim::{Histogram, SimTime};
use proptest::prelude::*;

// ── A minimal JSON syntax checker ────────────────────────────────────────
// The workspace has no JSON dependency (by design — see trace.rs), so the
// tests prove well-formedness with a tiny recursive-descent recogniser.
// It accepts exactly RFC 8259 syntax and produces no values.

fn check_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    json_value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing garbage at byte {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn json_value(b: &[u8], i: &mut usize) -> Result<(), String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => {
            *i += 1;
            json_seq(b, i, b'}', |b, i| {
                json_string(b, i)?;
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' at byte {i}"));
                }
                *i += 1;
                json_value(b, i)
            })
        }
        Some(b'[') => {
            *i += 1;
            json_seq(b, i, b']', json_value)
        }
        Some(b'"') => json_string(b, i),
        Some(b't') => json_literal(b, i, b"true"),
        Some(b'f') => json_literal(b, i, b"false"),
        Some(b'n') => json_literal(b, i, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => json_number(b, i),
        _ => Err(format!("unexpected byte at {i}")),
    }
}

/// Parses `member (',' member)* close` or an immediate `close`.
fn json_seq(
    b: &[u8],
    i: &mut usize,
    close: u8,
    member: fn(&[u8], &mut usize) -> Result<(), String>,
) -> Result<(), String> {
    skip_ws(b, i);
    if b.get(*i) == Some(&close) {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        member(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(c) if *c == close => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '{}' at byte {i}", close as char)),
        }
    }
}

fn json_string(b: &[u8], i: &mut usize) -> Result<(), String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {i}"));
    }
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                    Some(b'u') => {
                        for k in 1..=4 {
                            if !b.get(*i + k).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {i}"));
                            }
                        }
                        *i += 5;
                    }
                    _ => return Err(format!("bad escape at byte {i}")),
                }
            }
            0x00..=0x1F => return Err(format!("raw control byte in string at {i}")),
            _ => *i += 1, // UTF-8 continuation bytes pass through
        }
    }
    Err("unterminated string".into())
}

fn json_number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let digits = |b: &[u8], i: &mut usize| {
        let from = *i;
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
        *i > from
    };
    if !digits(b, i) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        if !digits(b, i) {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        if !digits(b, i) {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

fn json_literal(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() - *i >= lit.len() && &b[*i..*i + lit.len()] == lit {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {i}"))
    }
}

#[test]
fn json_checker_rejects_malformed_text() {
    for bad in [
        "",
        "[",
        "[1,]",
        "{\"a\" 1}",
        "[1] trailing",
        "\"unterminated",
        "\"bad \u{1} control\"",
        "[01e]",
        "{\"k\": }",
    ] {
        assert!(check_json(bad).is_err(), "accepted malformed: {bad:?}");
    }
    for good in ["[]", "[1.5, -2e9, \"a\\nb\", {\"k\": null}]", "{}"] {
        check_json(good).unwrap_or_else(|e| panic!("rejected {good:?}: {e}"));
    }
}

fn render_trace(events: &[TraceEvent], counters: &[TraceCounter]) -> String {
    let mut buf = Vec::new();
    write_chrome_trace_with(&mut buf, events, counters).unwrap();
    String::from_utf8(buf).unwrap()
}

#[test]
fn trace_with_counters_and_hostile_names_is_valid_json() {
    let hostile = "quote\" slash\\ newline\n tab\t nul\u{0} unicode\u{1F9EC}";
    let events = vec![TraceEvent {
        name: hostile.to_string(),
        rank: 0,
        start: SimTime::from_micros(0.5),
        duration: SimTime::from_micros(1.25),
    }];
    let counters = vec![TraceCounter {
        name: hostile.to_string(),
        rank: 3,
        ts: SimTime::from_micros(2.0),
        value: 1e18,
    }];
    let text = render_trace(&events, &counters);
    check_json(&text).unwrap_or_else(|e| panic!("invalid trace JSON ({e}):\n{text}"));
    // The metadata, span, and counter events all survived.
    assert_eq!(text.matches("\"ph\": \"M\"").count(), 2);
    assert_eq!(text.matches("\"ph\": \"X\"").count(), 1);
    assert_eq!(text.matches("\"ph\": \"C\"").count(), 1);
}

// Strategy for arbitrary span/counter names, biased toward JSON-hostile
// characters (the vendored proptest's string strategy is charset-based).
fn name_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..128, 0..12).prop_map(|codes| {
        codes
            .into_iter()
            .map(|c| char::from_u32(c).unwrap_or('\u{FFFD}'))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Telemetry invariant: merging per-shard histograms gives exactly
    /// the histogram of the concatenated samples — bucket-wise and in
    /// every summary statistic. This is what lets every pipeline build
    /// block-local histograms and fold them into the registry.
    #[test]
    fn histogram_merge_equals_histogram_of_concatenation(
        shards in prop::collection::vec(
            prop::collection::vec(0u64..1 << 48, 0..40),
            0..6,
        ),
    ) {
        let mut merged = Histogram::new();
        for shard in &shards {
            let mut h = Histogram::new();
            for &v in shard {
                h.observe(v);
            }
            merged.merge(&h);
        }
        let mut whole = Histogram::new();
        for &v in shards.iter().flatten() {
            whole.observe(v);
        }
        prop_assert_eq!(merged.buckets(), whole.buckets());
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.sum(), whole.sum());
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
    }

    /// Every histogram observation lands in the bucket whose bound
    /// brackets it, so merge order can never move samples across buckets.
    #[test]
    fn histogram_buckets_bracket_their_samples(v in 0u64..=u64::MAX) {
        let b = Histogram::bucket_of(v);
        prop_assert!(v <= Histogram::bucket_bound(b));
        if b > 0 {
            prop_assert!(v > Histogram::bucket_bound(b - 1));
        }
    }

    /// Quantile estimates are monotone in `q` and never leave the
    /// observed `[min, max]` range — the guarantees the analyzer's
    /// p50/p99 imbalance lines rest on.
    #[test]
    fn histogram_quantiles_are_monotone_and_bounded(
        samples in prop::collection::vec(0u64..1 << 48, 1..200),
        q_millis in prop::collection::vec(0u32..=1000, 2..12),
    ) {
        let mut h = Histogram::new();
        for &v in &samples {
            h.observe(v);
        }
        let mut sorted_q: Vec<f64> = q_millis.iter().map(|&m| m as f64 / 1000.0).collect();
        sorted_q.sort_by(f64::total_cmp);
        let mut last = None;
        for &q in &sorted_q {
            let est = h.quantile(q);
            prop_assert!(est >= h.min(), "q={q}: {est} < min {}", h.min());
            prop_assert!(est <= h.max(), "q={q}: {est} > max {}", h.max());
            if let Some(prev) = last {
                prop_assert!(est >= prev, "q={q}: {est} < previous {prev}");
            }
            last = Some(est);
        }
    }

    /// The trace emitter produces well-formed JSON for arbitrary names,
    /// ranks, timestamps, and counter values.
    #[test]
    fn chrome_trace_is_always_valid_json(
        names in prop::collection::vec(name_strategy(), 1..5),
        ranks in prop::collection::vec(0usize..16, 1..5),
        micros in prop::collection::vec(0u32..1_000_000, 1..5),
        values in prop::collection::vec(0u64..1 << 52, 1..5),
    ) {
        let n = names.len().min(ranks.len()).min(micros.len()).min(values.len());
        let mut events = Vec::new();
        let mut counters = Vec::new();
        for j in 0..n {
            let ts = SimTime::from_micros(micros[j] as f64 / 7.0);
            events.push(TraceEvent {
                name: names[j].clone(),
                rank: ranks[j],
                start: ts,
                duration: SimTime::from_micros(values[j] as f64 / 3.0),
            });
            counters.push(TraceCounter {
                name: names[j].clone(),
                rank: ranks[j],
                ts,
                value: values[j] as f64,
            });
        }
        let text = render_trace(&events, &counters);
        if let Err(e) = check_json(&text) {
            prop_assert!(false, "invalid trace JSON ({}):\n{}", e, text);
        }
    }
}
