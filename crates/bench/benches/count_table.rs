//! Microbenchmark: open-addressing count tables — host vs device-atomic
//! insert paths, uniform vs skewed key distributions.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dedukt_core::table::{DeviceCountTable, HostCountTable};
use dedukt_gpu::Device;
use dedukt_sim::SplitMix64;

/// Uniform distinct keys.
fn uniform_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_u64() >> 2).collect()
}

/// Zipf-ish skew: a few hot keys dominate (repeat-rich genomes).
fn skewed_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            if rng.next_below(4) == 0 {
                rng.next_below(16) // hot set
            } else {
                rng.next_u64() >> 2
            }
        })
        .collect()
}

fn bench_tables(c: &mut Criterion) {
    let n = 100_000;
    let mut g = c.benchmark_group("count_table");
    g.throughput(Throughput::Elements(n as u64));

    for (dist, keys) in [
        ("uniform", uniform_keys(n, 1)),
        ("skewed", skewed_keys(n, 2)),
    ] {
        g.bench_with_input(BenchmarkId::new("host_insert", dist), &keys, |b, keys| {
            b.iter(|| {
                let mut t: HostCountTable = HostCountTable::with_expected(keys.len(), 0.7, 9);
                for &k in keys {
                    t.insert(black_box(k));
                }
                t.distinct()
            })
        });
        g.bench_with_input(BenchmarkId::new("device_insert", dist), &keys, |b, keys| {
            let device = Device::v100();
            b.iter(|| {
                let t = DeviceCountTable::new(&device, keys.len() * 2, 9).unwrap();
                for &k in keys {
                    t.insert(black_box(k));
                }
                t.capacity()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
