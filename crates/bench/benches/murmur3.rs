//! Microbenchmark: MurmurHash3 throughput on packed k-mer words.
//!
//! Every k-mer is hashed at least twice in the pipelines (owner routing
//! and table slot), so hash throughput bounds the host-side paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dedukt_hash::{murmur3_x64_128, murmur3_x86_32, Murmur3x64};

fn bench_murmur(c: &mut Criterion) {
    let mut g = c.benchmark_group("murmur3");
    let words: Vec<u64> = (0..4096u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    let hasher = Murmur3x64::new(0x5EED);

    g.throughput(Throughput::Elements(words.len() as u64));
    g.bench_function("hash_u64_packed_kmers", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &w in &words {
                acc ^= hasher.hash_u64(black_box(w));
            }
            acc
        })
    });

    g.bench_function("x64_128_byte_slices", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &w in &words {
                acc ^= murmur3_x64_128(black_box(&w.to_le_bytes()), 0x5EED).0;
            }
            acc
        })
    });

    g.bench_function("x86_32_byte_slices", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &w in &words {
                acc ^= murmur3_x86_32(black_box(&w.to_le_bytes()), 0x5EED);
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench_murmur);
criterion_main!(benches);
