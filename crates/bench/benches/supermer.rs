//! Microbenchmark: supermer construction — windowed (Algorithm 2) vs the
//! unbounded reference scan, and k-mer re-extraction at the receiver.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dedukt_core::supermer::{build_supermers_reference, build_supermers_windowed};
use dedukt_core::CountingConfig;
use dedukt_sim::SplitMix64;

fn random_codes(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_below(4) as u8).collect()
}

fn bench_supermer(c: &mut Criterion) {
    let cfg = CountingConfig::default(); // k=17, m=7, window=15
    let scheme = cfg.minimizer_scheme();
    let reads: Vec<Vec<u8>> = (0..20).map(|i| random_codes(5_000, i)).collect();
    let total_kmers: u64 = reads.iter().map(|r| (r.len() - cfg.k + 1) as u64).sum();

    let mut g = c.benchmark_group("supermer");
    g.throughput(Throughput::Elements(total_kmers));

    g.bench_function("windowed_w15", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for r in &reads {
                n += build_supermers_windowed(black_box(r), cfg.k, cfg.window, &scheme).len();
            }
            n
        })
    });

    g.bench_function("reference_unbounded", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for r in &reads {
                n += build_supermers_reference(black_box(r), cfg.k, &scheme).len();
            }
            n
        })
    });

    // Receiver-side k-mer extraction (the supermer pipeline's counting
    // surcharge, §V-C).
    let supermers: Vec<_> = reads
        .iter()
        .flat_map(|r| build_supermers_windowed(r, cfg.k, cfg.window, &scheme))
        .collect();
    g.bench_function("extract_kmers_from_supermers", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for sm in &supermers {
                for kw in sm.kmers(cfg.k) {
                    acc ^= kw;
                }
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench_supermer);
criterion_main!(benches);
