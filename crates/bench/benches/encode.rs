//! Microbenchmark: 2-bit packing and rolling k-mer extraction.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dedukt_dna::kmer::kmer_words;
use dedukt_dna::packed::PackedSeq;
use dedukt_dna::Encoding;
use dedukt_sim::SplitMix64;

fn random_codes(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_below(4) as u8).collect()
}

fn bench_encode(c: &mut Criterion) {
    let codes = random_codes(100_000, 42);
    let mut g = c.benchmark_group("encode");
    g.throughput(Throughput::Elements(codes.len() as u64));

    g.bench_function("pack_2bit", |b| {
        b.iter(|| PackedSeq::from_codes(black_box(&codes), Encoding::PaperRandom).packed_bytes())
    });

    let packed = PackedSeq::from_codes(&codes, Encoding::PaperRandom);
    g.bench_function("unpack_2bit", |b| {
        b.iter(|| black_box(&packed).to_codes().len())
    });

    g.bench_function("rolling_kmer_extraction_k17", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for w in kmer_words(black_box(&codes), 17, Encoding::PaperRandom) {
                acc ^= w;
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench_encode);
criterion_main!(benches);
