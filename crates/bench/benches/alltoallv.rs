//! Microbenchmark: BSP engine Alltoallv overhead (host cost of the
//! simulated collective — transpose + cost model, not wire time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dedukt_net::cost::Network;
use dedukt_net::BspWorld;

fn bench_alltoallv(c: &mut Criterion) {
    let mut g = c.benchmark_group("alltoallv_engine");
    for nodes in [2usize, 16] {
        let nranks = nodes * 6;
        let payload = 256usize; // u64 words per rank pair
        g.throughput(Throughput::Bytes((nranks * nranks * payload * 8) as u64));
        g.bench_with_input(BenchmarkId::new("bsp_u64", nranks), &nodes, |b, &nodes| {
            b.iter_with_setup(
                || {
                    let world = BspWorld::new(Network::summit_gpu(nodes));
                    let p = world.nranks();
                    let send: Vec<Vec<Vec<u64>>> = (0..p)
                        .map(|src| {
                            (0..p)
                                .map(|dst| vec![(src ^ dst) as u64; payload])
                                .collect()
                        })
                        .collect();
                    (world, send)
                },
                |(mut world, send)| world.alltoallv(send).times.max,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_alltoallv);
criterion_main!(benches);
