//! Microbenchmark: minimizer scan cost per ordering (§IV-A's "extra
//! computational overhead" discussion).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dedukt_core::minimizer::{MinimizerScheme, OrderingKind};
use dedukt_dna::kmer::kmer_words;
use dedukt_dna::Encoding;
use dedukt_sim::SplitMix64;

fn random_codes(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_below(4) as u8).collect()
}

fn bench_minimizer(c: &mut Criterion) {
    let codes = random_codes(20_000, 7);
    let k = 17;
    let kmers: Vec<u64> = kmer_words(&codes, k, Encoding::PaperRandom).collect();
    let mut g = c.benchmark_group("minimizer");
    g.throughput(Throughput::Elements(kmers.len() as u64));

    let schemes = [
        (
            "lexicographic",
            Encoding::Alphabetical,
            OrderingKind::EncodedLexicographic,
        ),
        ("kmc2", Encoding::Alphabetical, OrderingKind::Kmc2),
        (
            "random-encoding",
            Encoding::PaperRandom,
            OrderingKind::EncodedLexicographic,
        ),
    ];
    for (name, enc, ord) in schemes {
        for m in [7usize, 9] {
            let scheme = MinimizerScheme {
                encoding: enc,
                ordering: ord,
                m,
            };
            g.bench_with_input(BenchmarkId::new(name, m), &scheme, |b, scheme| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for &w in &kmers {
                        acc ^= scheme.minimizer_of(black_box(w), k).word;
                    }
                    acc
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_minimizer);
criterion_main!(benches);
