//! Experiment harness shared by the table/figure regenerators.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §5 for the index). This library holds what they share:
//! command-line parsing, dataset materialisation with caching, report
//! formatting, and the paper's reference numbers for side-by-side
//! printing.

pub mod args;
pub mod paper;
pub mod printer;
pub mod runner;

pub use args::ExperimentArgs;
pub use printer::{print_header, Table};
pub use runner::{generate, run_mode};
