//! Plain-text table rendering for the regenerators.

/// Prints the experiment banner.
pub fn print_header(title: &str, detail: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    if !detail.is_empty() {
        println!("{detail}");
    }
    println!("================================================================");
}

/// A simple left-aligned text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; must match the header arity.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Renders to a string.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a large count human-readably (`412M`, `4.7B`, `1234`).
pub fn fmt_count(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.1}B", n as f64 / 1e9)
    } else if n >= 10_000_000 {
        format!("{}M", n / 1_000_000)
    } else if n >= 10_000 {
        format!("{}K", n / 1_000)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new(["name", "value"]);
        t.row(["short", "1"]);
        t.row(["a-much-longer-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("short"));
        // Columns align: "1" and "22" start at the same offset.
        let off1 = lines[2].find('1').unwrap();
        let off2 = lines[3].find("22").unwrap();
        assert_eq!(off1, off2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(412_000_000), "412M");
        assert_eq!(fmt_count(4_700_000_000), "4.7B");
        assert_eq!(fmt_count(167_000_000_000), "167.0B");
        assert_eq!(fmt_count(55_000), "55K");
        assert_eq!(fmt_count(123), "123");
    }
}
