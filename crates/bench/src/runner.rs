//! Dataset materialisation and pipeline invocation for the regenerators.

use dedukt_core::{Mode, RunConfig, RunReport};
use dedukt_dna::{Dataset, DatasetId, ReadSet};

use crate::args::ExperimentArgs;

/// Generates (or regenerates) a dataset under the experiment's flags.
pub fn generate(id: DatasetId, args: &ExperimentArgs) -> ReadSet {
    let mut ds = Dataset::new(id, args.scale);
    if let Some(seed) = args.seed {
        ds.seed = seed;
    }
    let reads = ds.generate();
    eprintln!(
        "  [data] {}: {} reads, {} bases, {} k-mers (k=17)",
        id.short_name(),
        reads.len(),
        reads.total_bases(),
        reads.total_kmers(17)
    );
    reads
}

/// Applies the flags every experiment honours to a fresh `RunConfig`.
fn apply_common_flags(rc: &mut RunConfig, args: &ExperimentArgs) {
    rc.gpu_direct = args.gpu_direct;
    rc.round_limit_bytes = args.round_limit;
    rc.overlap_rounds = args.overlap_rounds;
    if let Some(algo) = args.exchange_algo {
        rc.exchange_algo = algo;
    }
    rc.wire_compress = args.wire_compress;
    if args.fault_seed.is_some() || args.fault_spec.is_some() {
        let spec = match &args.fault_spec {
            Some(s) => dedukt_net::FaultSpec::parse(s).expect("fault spec validated at parse"),
            None => dedukt_net::FaultSpec::default(),
        };
        rc.fault = Some(dedukt_net::FaultPlan::new(
            args.fault_seed.unwrap_or(0),
            spec,
        ));
    }
    if args.mem_seed.is_some() || args.mem_spec.is_some() {
        let spec = match &args.mem_spec {
            Some(s) => dedukt_gpu::MemSpec::parse(s).expect("mem spec validated at parse"),
            None => dedukt_gpu::MemSpec::default(),
        };
        rc.mem = Some(dedukt_gpu::MemPlan::new(args.mem_seed.unwrap_or(0), spec));
    }
    if args.rank_seed.is_some() || args.rank_spec.is_some() {
        let spec = match &args.rank_spec {
            Some(s) => dedukt_net::RankSpec::parse(s).expect("rank spec validated at parse"),
            None => dedukt_net::RankSpec::default(),
        };
        rc.rank = Some(dedukt_net::RankPlan::new(args.rank_seed.unwrap_or(0), spec));
    }
    rc.checkpoint_rounds = args.checkpoint_rounds;
    rc.rescale = args.rescale.clone();
    if let Some(f) = args.table_safety {
        rc.table_safety = f;
    }
    if let Some(b) = args.device_hbm {
        rc.gpu_device.memory_bytes = b;
    }
}

/// Builds a `RunConfig` honouring the experiment flags and runs it.
pub fn run_mode(reads: &ReadSet, mode: Mode, nodes: usize, args: &ExperimentArgs) -> RunReport {
    let mut rc = RunConfig::new(mode, nodes);
    if let Some(m) = args.m {
        rc.counting.m = m;
    }
    apply_common_flags(&mut rc, args);
    dedukt_core::pipeline::run(reads, &rc).expect("valid experiment config")
}

/// Runs the supermer engine out-of-core through the two-pass bin store
/// (DESIGN.md §12) in a scratch directory. The store is a simulation
/// artifact, not a result, so it is removed after the run; all reported
/// fields are deterministic (the simulated NVMe tier has fixed
/// bandwidth/latency and no fault plan is armed).
pub fn run_two_pass(reads: &ReadSet, nodes: usize, args: &ExperimentArgs) -> RunReport {
    let mut rc = RunConfig::new(Mode::GpuSupermer, nodes);
    if let Some(m) = args.m {
        rc.counting.m = m;
    }
    apply_common_flags(&mut rc, args);
    let dir = std::env::temp_dir().join(format!("dedukt-bench-two-pass-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    rc.two_pass_dir = Some(dir.clone());
    let report = dedukt_core::pipeline::run(reads, &rc).expect("valid experiment config");
    let _ = std::fs::remove_dir_all(&dir);
    report
}

/// Like [`run_mode`] with an explicit minimizer length (for sweeps).
pub fn run_mode_with_m(
    reads: &ReadSet,
    mode: Mode,
    nodes: usize,
    m: usize,
    args: &ExperimentArgs,
) -> RunReport {
    let mut rc = RunConfig::new(mode, nodes);
    rc.counting.m = m;
    apply_common_flags(&mut rc, args);
    dedukt_core::pipeline::run(reads, &rc).expect("valid experiment config")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedukt_dna::ScalePreset;

    #[test]
    fn generate_and_run_tiny() {
        let args = ExperimentArgs {
            scale: ScalePreset::Tiny,
            ..Default::default()
        };
        let reads = generate(DatasetId::EColi30x, &args);
        let r = run_mode(&reads, Mode::GpuKmer, 1, &args);
        assert!(r.total_kmers > 0);
        assert_eq!(r.nranks, 6);
    }

    #[test]
    fn m_override_applies() {
        let args = ExperimentArgs {
            scale: ScalePreset::Tiny,
            m: Some(9),
            ..Default::default()
        };
        let reads = generate(DatasetId::ABaumannii30x, &args);
        let r9 = run_mode(&reads, Mode::GpuSupermer, 1, &args);
        let r7 = run_mode_with_m(&reads, Mode::GpuSupermer, 1, 7, &args);
        // Longer minimizers → shorter supermers → more of them (Table II).
        assert!(r9.exchange.units > r7.exchange.units);
    }
}
