//! `dedukt-bench` — the default bench binary: a small, deterministic
//! three-engine baseline whose JSON output is checked in as
//! `BENCH_baseline.json` at the repo root.
//!
//! The baseline runs every counter (CPU baseline, GPU k-mer, GPU
//! supermer) on the tiny synthetic E. coli slice at paper-default
//! parameters and records the functional results (instances, distinct
//! k-mers) plus the simulated phase times. Because both the dataset and
//! the simulation are seeded and deterministic, those fields only change
//! when the cost models or the counting semantics change — making the
//! file a cheap drift detector for CI and for reviewers:
//!
//! ```text
//! cargo run --release -p dedukt-bench > BENCH_baseline.json
//! ```
//!
//! Each row also carries a `wall_total_secs` lane: real host wall-clock
//! seconds for the run ([`RunReport::wall`]). That number is
//! *nondeterministic* (it times this process, not the simulated
//! machine), so the drift gate treats it differently:
//!
//! ```text
//! cargo run --release -p dedukt-bench -- --check BENCH_baseline.json
//! ```
//!
//! `--check` re-runs the baseline and compares against the checked-in
//! file: every simulated/functional field must match **exactly**, while
//! wall-clock fields only need to stay within a loose multiplicative
//! band ([`WALL_TOLERANCE`]×) — wide enough for machine-to-machine
//! variance, tight enough to catch a pipeline stage going pathologically
//! slow. Exit status is 0 on pass, 1 on drift.
//!
//! The per-figure regenerators live in `src/bin/` (`fig3_breakdown`,
//! `table2_volume`, …); this binary is deliberately tiny so the
//! baseline stays fast enough to re-run on every PR.

use dedukt_bench::args::ExperimentArgs;
use dedukt_bench::runner;
use dedukt_core::{Mode, RunReport};
use dedukt_dna::DatasetId;
use dedukt_sim::journal::{parse_flat_json, FlatJson};

/// Fields compared byte-for-byte under `--check` (strings).
const EXACT_STR_FIELDS: &[&str] = &["mode"];

/// Fields compared for exact numeric equality under `--check`: all of
/// them are functional results or simulated seconds, deterministic by
/// construction.
const EXACT_NUM_FIELDS: &[&str] = &[
    "nodes",
    "nranks",
    "total_kmers",
    "distinct_kmers",
    "parse_secs",
    "exchange_secs",
    "count_secs",
    "total_secs",
    "makespan_secs",
    "exchange_bytes",
    "load_imbalance",
];

/// Host wall-clock fields: nondeterministic, so `--check` only requires
/// them to be positive, finite, and within [`WALL_TOLERANCE`]× of the
/// checked-in value in either direction.
const WALL_FIELDS: &[&str] = &["wall_total_secs"];

/// Multiplicative drift band for [`WALL_FIELDS`]. Deliberately loose:
/// the baseline may have been recorded on very different hardware. It
/// still catches a stage going pathologically slow (the failure mode
/// ROADMAP item 3's 10× wall-clock target cares about).
const WALL_TOLERANCE: f64 = 50.0;

/// One baseline row, hand-rolled to JSON (no serde in the workspace).
fn report_json(label: &str, nodes: usize, r: &RunReport) -> String {
    format!(
        "    {{\"mode\": \"{label}\", \"nodes\": {nodes}, \"nranks\": {}, \
         \"total_kmers\": {}, \"distinct_kmers\": {}, \
         \"parse_secs\": {:.6e}, \"exchange_secs\": {:.6e}, \"count_secs\": {:.6e}, \
         \"total_secs\": {:.6e}, \"makespan_secs\": {:.6e}, \
         \"exchange_bytes\": {}, \"load_imbalance\": {:.4}, \
         \"wall_total_secs\": {:.6e}}}",
        r.nranks,
        r.total_kmers,
        r.distinct_kmers,
        r.phases.parse.as_secs(),
        r.phases.exchange.as_secs(),
        r.phases.count.as_secs(),
        r.total_time().as_secs(),
        r.makespan.as_secs(),
        r.exchange.bytes,
        r.load.imbalance(),
        r.wall.total,
    )
}

/// Pulls the per-mode rows out of a baseline file: each row is one flat
/// JSON object on its own line inside the `"baseline"` array.
fn extract_rows(text: &str) -> Result<Vec<FlatJson>, String> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let t = line.trim().trim_end_matches(',');
        if t.starts_with('{') && t.contains("\"mode\"") {
            rows.push(parse_flat_json(t).map_err(|e| format!("bad baseline row: {e}"))?);
        }
    }
    if rows.is_empty() {
        return Err("no baseline rows found (expected one `{\"mode\": ...}` per line)".into());
    }
    Ok(rows)
}

/// Compares a checked-in baseline against freshly computed rows. Exact
/// on simulated/functional fields, tolerant on wall-clock fields.
fn check_rows(baseline: &[FlatJson], fresh: &[FlatJson]) -> Result<(), String> {
    if baseline.len() != fresh.len() {
        return Err(format!(
            "row count drifted: baseline has {} rows, current run has {}",
            baseline.len(),
            fresh.len()
        ));
    }
    for (i, (b, f)) in baseline.iter().zip(fresh).enumerate() {
        let label = f.str_field("mode").unwrap_or("?").to_string();
        let at = |field: &str, e: String| format!("row {i} ({label}) field `{field}`: {e}");
        for &field in EXACT_STR_FIELDS {
            let bv = b.str_field(field).map_err(|e| at(field, e))?;
            let fv = f.str_field(field).map_err(|e| at(field, e))?;
            if bv != fv {
                return Err(format!(
                    "row {i}: mode drifted: baseline {bv:?} vs current {fv:?} \
                     (row order changed?)"
                ));
            }
        }
        for &field in EXACT_NUM_FIELDS {
            let bv = b.f64_field(field).map_err(|e| at(field, e))?;
            let fv = f.f64_field(field).map_err(|e| at(field, e))?;
            if bv != fv {
                return Err(format!(
                    "row {i} ({label}): `{field}` drifted: baseline {bv} vs current {fv} \
                     — simulated/functional fields must match exactly; if the change is \
                     intended, regenerate with `cargo run --release -p dedukt-bench > \
                     BENCH_baseline.json`"
                ));
            }
        }
        for &field in WALL_FIELDS {
            let bv = b.f64_field(field).map_err(|e| at(field, e))?;
            let fv = f.f64_field(field).map_err(|e| at(field, e))?;
            if !(bv.is_finite() && bv > 0.0) {
                return Err(format!(
                    "row {i} ({label}): baseline `{field}`={bv} is not a positive time"
                ));
            }
            if !(fv.is_finite() && fv > 0.0) {
                return Err(format!(
                    "row {i} ({label}): measured `{field}`={fv} is not a positive time"
                ));
            }
            let ratio = fv / bv;
            if !(1.0 / WALL_TOLERANCE..=WALL_TOLERANCE).contains(&ratio) {
                return Err(format!(
                    "row {i} ({label}): `{field}` outside the {WALL_TOLERANCE}x wall-clock \
                     band: baseline {bv:.3e}s vs current {fv:.3e}s (ratio {ratio:.1})"
                ));
            }
        }
    }
    Ok(())
}

fn main() {
    // `--check <baseline>` is bench-binary-specific, so peel it off
    // before handing the rest to the shared experiment-flag parser.
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let mut check_path = None;
    if let Some(pos) = raw.iter().position(|a| a == "--check") {
        raw.remove(pos);
        if pos < raw.len() {
            check_path = Some(raw.remove(pos));
        } else {
            eprintln!("error: --check needs a baseline path");
            std::process::exit(2);
        }
    }
    let mut args = match ExperimentArgs::try_parse(raw.iter().cloned()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: dedukt-bench [--check BENCH_baseline.json] [--scale tiny|bench|xFACTOR] \
                 [--nodes N] [common experiment flags...]"
            );
            std::process::exit(2);
        }
    };
    // The checked-in baseline is the tiny deterministic slice; larger
    // scales remain available via --scale for local comparisons.
    if !raw.iter().any(|a| a == "--scale") {
        args.scale = dedukt_dna::ScalePreset::Tiny;
    }
    let nodes = args.nodes.unwrap_or(2);
    let reads = runner::generate(DatasetId::EColi30x, &args);
    let mut rows = Vec::new();
    for (label, mode) in [
        ("cpu", Mode::CpuBaseline),
        ("gpu-kmer", Mode::GpuKmer),
        ("gpu-supermer", Mode::GpuSupermer),
    ] {
        let report = runner::run_mode(&reads, mode, nodes, &args);
        eprintln!(
            "  [bench] {label}: {} instances, {} distinct, total {} (wall {:.3}s)",
            report.total_kmers,
            report.distinct_kmers,
            report.total_time(),
            report.wall.total,
        );
        rows.push(report_json(label, nodes, &report));
    }
    // The out-of-core lane: the supermer engine spooled through the
    // two-pass bin store on the simulated NVMe tier. Functional fields
    // must match the in-memory rows; the simulated times price the disk.
    let report = runner::run_two_pass(&reads, nodes, &args);
    eprintln!(
        "  [bench] two_pass: {} instances, {} distinct, total {} (wall {:.3}s)",
        report.total_kmers,
        report.distinct_kmers,
        report.total_time(),
        report.wall.total,
    );
    rows.push(report_json("two_pass", nodes, &report));
    if let Some(path) = check_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: --check {path}: {e}");
                std::process::exit(2);
            }
        };
        let verdict = extract_rows(&text).and_then(|baseline| {
            let fresh: Vec<FlatJson> = rows
                .iter()
                .map(|r| parse_flat_json(r.trim()).expect("bench rows are flat JSON"))
                .collect();
            check_rows(&baseline, &fresh)
        });
        match verdict {
            Ok(()) => {
                eprintln!(
                    "  [bench] --check PASS: {} rows match {path} (simulated fields exact, \
                     wall clock within {WALL_TOLERANCE}x)",
                    rows.len()
                );
            }
            Err(e) => {
                eprintln!("  [bench] --check FAIL vs {path}: {e}");
                std::process::exit(1);
            }
        }
    } else {
        println!("{{");
        println!("  \"dataset\": \"ecoli-tiny\",");
        println!("  \"k\": 17,");
        println!("  \"baseline\": [");
        println!("{}", rows.join(",\n"));
        println!("  ]");
        println!("}}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "dataset": "ecoli-tiny",
  "k": 17,
  "baseline": [
    {"mode": "cpu", "nodes": 2, "nranks": 84, "total_kmers": 10, "distinct_kmers": 5, "parse_secs": 1.0e0, "exchange_secs": 2.0e0, "count_secs": 3.0e0, "total_secs": 6.0e0, "makespan_secs": 7.0e0, "exchange_bytes": 100, "load_imbalance": 1.2000, "wall_total_secs": 5.0e-2}
  ]
}"#;

    #[test]
    fn extract_finds_rows() {
        let rows = extract_rows(SAMPLE).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].str_field("mode").unwrap(), "cpu");
        assert!(extract_rows("{}").is_err());
    }

    #[test]
    fn check_passes_on_identical_rows_and_wall_drift() {
        let rows = extract_rows(SAMPLE).unwrap();
        check_rows(&rows, &rows).unwrap();
        // Wall clock may drift by a lot without failing the gate.
        let drifted = SAMPLE.replace("5.0e-2", "9.0e-1");
        check_rows(&rows, &extract_rows(&drifted).unwrap()).unwrap();
    }

    #[test]
    fn check_rejects_simulated_and_pathological_wall_drift() {
        let rows = extract_rows(SAMPLE).unwrap();
        // Any simulated-field change fails exactly.
        let sim = extract_rows(&SAMPLE.replace("2.0e0", "2.1e0")).unwrap();
        assert!(check_rows(&rows, &sim)
            .unwrap_err()
            .contains("exchange_secs"));
        // Wall clock outside the tolerance band fails too.
        let wall = extract_rows(&SAMPLE.replace("5.0e-2", "9.9e1")).unwrap();
        assert!(check_rows(&rows, &wall)
            .unwrap_err()
            .contains("wall_total_secs"));
        // Missing rows fail.
        assert!(check_rows(&rows, &[]).unwrap_err().contains("row count"));
    }
}
