//! `dedukt-bench` — the default bench binary: a small, deterministic
//! three-engine baseline whose JSON output is checked in as
//! `BENCH_baseline.json` at the repo root.
//!
//! The baseline runs every counter (CPU baseline, GPU k-mer, GPU
//! supermer) on the tiny synthetic E. coli slice at paper-default
//! parameters and records the functional results (instances, distinct
//! k-mers) plus the simulated phase times. Because both the dataset and
//! the simulation are seeded and deterministic, the file only changes
//! when the cost models or the counting semantics change — making it a
//! cheap drift detector for CI and for reviewers:
//!
//! ```text
//! cargo run --release -p dedukt-bench > BENCH_baseline.json
//! ```
//!
//! The per-figure regenerators live in `src/bin/` (`fig3_breakdown`,
//! `table2_volume`, …); this binary is deliberately tiny so the
//! baseline stays fast enough to re-run on every PR.

use dedukt_bench::args::ExperimentArgs;
use dedukt_bench::runner;
use dedukt_core::{Mode, RunReport};
use dedukt_dna::DatasetId;

/// One baseline row, hand-rolled to JSON (no serde in the workspace).
fn report_json(label: &str, nodes: usize, r: &RunReport) -> String {
    format!(
        "    {{\"mode\": \"{label}\", \"nodes\": {nodes}, \"nranks\": {}, \
         \"total_kmers\": {}, \"distinct_kmers\": {}, \
         \"parse_secs\": {:.6e}, \"exchange_secs\": {:.6e}, \"count_secs\": {:.6e}, \
         \"total_secs\": {:.6e}, \"makespan_secs\": {:.6e}, \
         \"exchange_bytes\": {}, \"load_imbalance\": {:.4}}}",
        r.nranks,
        r.total_kmers,
        r.distinct_kmers,
        r.phases.parse.as_secs(),
        r.phases.exchange.as_secs(),
        r.phases.count.as_secs(),
        r.total_time().as_secs(),
        r.makespan.as_secs(),
        r.exchange.bytes,
        r.load.imbalance(),
    )
}

fn main() {
    let mut args = ExperimentArgs::parse();
    // The checked-in baseline is the tiny deterministic slice; larger
    // scales remain available via --scale for local comparisons.
    if !std::env::args().any(|a| a == "--scale") {
        args.scale = dedukt_dna::ScalePreset::Tiny;
    }
    let nodes = args.nodes.unwrap_or(2);
    let reads = runner::generate(DatasetId::EColi30x, &args);
    let mut rows = Vec::new();
    for (label, mode) in [
        ("cpu", Mode::CpuBaseline),
        ("gpu-kmer", Mode::GpuKmer),
        ("gpu-supermer", Mode::GpuSupermer),
    ] {
        let report = runner::run_mode(&reads, mode, nodes, &args);
        eprintln!(
            "  [bench] {label}: {} instances, {} distinct, total {}",
            report.total_kmers,
            report.distinct_kmers,
            report.total_time()
        );
        rows.push(report_json(label, nodes, &report));
    }
    println!("{{");
    println!("  \"dataset\": \"ecoli-tiny\",");
    println!("  \"k\": 17,");
    println!("  \"baseline\": [");
    println!("{}", rows.join(",\n"));
    println!("  ]");
    println!("}}");
}
