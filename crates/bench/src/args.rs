//! Minimal command-line parsing for the experiment binaries.
//!
//! Every regenerator accepts the same flags:
//!
//! * `--scale tiny|bench|x<FACTOR>` — dataset scale (default `bench`).
//! * `--nodes N` — override the node count where it makes sense.
//! * `--m N` — minimizer length override.
//! * `--seed N` — dataset seed override.
//! * `--gpu-direct` — enable GPUDirect staging.
//! * `--round-limit BYTES` — memory-bounded exchange rounds (§III-A).
//! * `--overlap-rounds` — overlap count kernels with the next round's wire.
//! * `--exchange-algo direct|hierarchical` — exchange routing (DESIGN.md §10).
//! * `--wire-compress` — supermer wire codec (varint/delta + 2-bit bases).
//! * `--fault-seed N` / `--fault-spec k=v,...` — deterministic network
//!   fault injection with driver-side retry (DESIGN.md §7).
//! * `--mem-seed N` / `--mem-spec k=v,...` — deterministic memory
//!   pressure with regrow/spill recovery (DESIGN.md §8).
//! * `--rank-seed N` / `--rank-spec k=v,...` — deterministic rank-level
//!   failure with replay recovery (DESIGN.md §11).
//! * `--checkpoint-rounds N` / `--rescale ROUND:WORLD,...` — checkpoint
//!   cadence bounding replay, and elastic world rescale (DESIGN.md §11).
//! * `--table-safety F` — count-table sizing safety factor.
//! * `--device-hbm BYTES` — simulated device memory budget override.

use dedukt_dna::ScalePreset;

/// Parsed common flags.
#[derive(Clone, Debug)]
pub struct ExperimentArgs {
    /// Dataset scale preset.
    pub scale: ScalePreset,
    /// Node-count override.
    pub nodes: Option<usize>,
    /// Minimizer-length override.
    pub m: Option<usize>,
    /// Dataset seed override.
    pub seed: Option<u64>,
    /// Use GPUDirect in the GPU pipelines.
    pub gpu_direct: bool,
    /// Per-round send cap in bytes (memory-bounded rounds, §III-A).
    pub round_limit: Option<u64>,
    /// Overlap count kernels with the next round's exchange.
    pub overlap_rounds: bool,
    /// Exchange routing override (`--exchange-algo direct|hierarchical`).
    pub exchange_algo: Option<dedukt_net::cost::ExchangeAlgo>,
    /// Ship supermer buckets through the wire codec (`--wire-compress`).
    pub wire_compress: bool,
    /// Fault-injection seed (activates faults even without a spec).
    pub fault_seed: Option<u64>,
    /// Fault-injection spec string, `key=value` comma list (activates
    /// faults with seed 0 even without `--fault-seed`).
    pub fault_spec: Option<String>,
    /// Memory-pressure seed (activates pressure even without a spec).
    pub mem_seed: Option<u64>,
    /// Memory-pressure spec string, `key=value` comma list (activates
    /// pressure with seed 0 even without `--mem-seed`).
    pub mem_spec: Option<String>,
    /// Rank-failure seed (activates the plan even without a spec).
    pub rank_seed: Option<u64>,
    /// Rank-failure spec string, `key=value` comma list (activates the
    /// plan with seed 0 even without `--rank-seed`).
    pub rank_spec: Option<String>,
    /// Checkpoint cadence in rounds, bounding death replay.
    pub checkpoint_rounds: Option<u64>,
    /// Elastic rescale schedule, `(round, world)` pairs.
    pub rescale: Vec<(u64, usize)>,
    /// Count-table sizing safety factor override.
    pub table_safety: Option<f64>,
    /// Simulated device memory budget override, in bytes.
    pub device_hbm: Option<u64>,
}

impl Default for ExperimentArgs {
    fn default() -> Self {
        ExperimentArgs {
            scale: ScalePreset::Bench,
            nodes: None,
            m: None,
            seed: None,
            gpu_direct: false,
            round_limit: None,
            overlap_rounds: false,
            exchange_algo: None,
            wire_compress: false,
            fault_seed: None,
            fault_spec: None,
            mem_seed: None,
            mem_spec: None,
            rank_seed: None,
            rank_spec: None,
            checkpoint_rounds: None,
            rescale: Vec::new(),
            table_safety: None,
            device_hbm: None,
        }
    }
}

impl ExperimentArgs {
    /// Parses `std::env::args`, exiting with a usage message on error.
    pub fn parse() -> ExperimentArgs {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!(
                    "usage: <bin> [--scale tiny|bench|xFACTOR] [--nodes N] [--m N] [--seed N] \
                     [--gpu-direct] [--round-limit BYTES] [--overlap-rounds] \
                     [--exchange-algo direct|hierarchical] [--wire-compress] \
                     [--fault-seed N] [--fault-spec k=v,...] \
                     [--mem-seed N] [--mem-spec k=v,...] \
                     [--rank-seed N] [--rank-spec k=v,...] \
                     [--checkpoint-rounds N] [--rescale ROUND:WORLD,...] \
                     [--table-safety F] [--device-hbm BYTES]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses from an explicit iterator (testable).
    pub fn try_parse<I: IntoIterator<Item = String>>(args: I) -> Result<ExperimentArgs, String> {
        let mut out = ExperimentArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = it.next().ok_or("--scale needs a value")?;
                    out.scale = match v.as_str() {
                        "tiny" => ScalePreset::Tiny,
                        "bench" => ScalePreset::Bench,
                        s if s.starts_with('x') => {
                            let f: f64 = s[1..]
                                .parse()
                                .map_err(|_| format!("bad scale factor {s:?}"))?;
                            if f <= 0.0 {
                                return Err("scale factor must be positive".into());
                            }
                            ScalePreset::Custom(f)
                        }
                        other => return Err(format!("unknown scale {other:?}")),
                    };
                }
                "--nodes" => {
                    let v = it.next().ok_or("--nodes needs a value")?;
                    let n: usize = v.parse().map_err(|_| format!("bad node count {v:?}"))?;
                    if n == 0 {
                        return Err("--nodes must be positive".into());
                    }
                    out.nodes = Some(n);
                }
                "--m" => {
                    let v = it.next().ok_or("--m needs a value")?;
                    out.m = Some(
                        v.parse()
                            .map_err(|_| format!("bad minimizer length {v:?}"))?,
                    );
                }
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    out.seed = Some(v.parse().map_err(|_| format!("bad seed {v:?}"))?);
                }
                "--gpu-direct" => out.gpu_direct = true,
                "--round-limit" => {
                    let v = it.next().ok_or("--round-limit needs a value")?;
                    let b: u64 = v.parse().map_err(|_| format!("bad round limit {v:?}"))?;
                    if b == 0 {
                        return Err("--round-limit must be positive".into());
                    }
                    out.round_limit = Some(b);
                }
                "--overlap-rounds" => out.overlap_rounds = true,
                "--exchange-algo" => {
                    let v = it.next().ok_or("--exchange-algo needs a value")?;
                    out.exchange_algo = Some(dedukt_net::ExchangeRoute::parse(&v)?.algo());
                }
                "--wire-compress" => out.wire_compress = true,
                "--fault-seed" => {
                    let v = it.next().ok_or("--fault-seed needs a value")?;
                    out.fault_seed = Some(v.parse().map_err(|_| format!("bad fault seed {v:?}"))?);
                }
                "--fault-spec" => {
                    let v = it.next().ok_or("--fault-spec needs a value")?;
                    // Parse eagerly so a typo fails at the flag, not mid-run.
                    dedukt_net::FaultSpec::parse(&v)?;
                    out.fault_spec = Some(v);
                }
                "--mem-seed" => {
                    let v = it.next().ok_or("--mem-seed needs a value")?;
                    out.mem_seed = Some(v.parse().map_err(|_| format!("bad mem seed {v:?}"))?);
                }
                "--mem-spec" => {
                    let v = it.next().ok_or("--mem-spec needs a value")?;
                    dedukt_gpu::MemSpec::parse(&v)?;
                    out.mem_spec = Some(v);
                }
                "--rank-seed" => {
                    let v = it.next().ok_or("--rank-seed needs a value")?;
                    out.rank_seed = Some(v.parse().map_err(|_| format!("bad rank seed {v:?}"))?);
                }
                "--rank-spec" => {
                    let v = it.next().ok_or("--rank-spec needs a value")?;
                    dedukt_net::RankSpec::parse(&v)?;
                    out.rank_spec = Some(v);
                }
                "--checkpoint-rounds" => {
                    let v = it.next().ok_or("--checkpoint-rounds needs a value")?;
                    let n: u64 = v
                        .parse()
                        .map_err(|_| format!("bad checkpoint cadence {v:?}"))?;
                    if n == 0 {
                        return Err("--checkpoint-rounds must be at least 1".into());
                    }
                    out.checkpoint_rounds = Some(n);
                }
                "--rescale" => {
                    let v = it.next().ok_or("--rescale needs a value")?;
                    out.rescale = dedukt_core::config::parse_rescale(&v)?;
                }
                "--table-safety" => {
                    let v = it.next().ok_or("--table-safety needs a value")?;
                    let f: f64 = v
                        .parse()
                        .map_err(|_| format!("bad table safety factor {v:?}"))?;
                    if !f.is_finite() || f <= 0.0 {
                        return Err("--table-safety must be a positive finite factor".into());
                    }
                    out.table_safety = Some(f);
                }
                "--device-hbm" => {
                    let v = it.next().ok_or("--device-hbm needs a value")?;
                    let b: u64 = v
                        .parse()
                        .map_err(|_| format!("bad device HBM byte count {v:?}"))?;
                    if b == 0 {
                        return Err("--device-hbm must be positive".into());
                    }
                    out.device_hbm = Some(b);
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ExperimentArgs, String> {
        ExperimentArgs::try_parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.scale, ScalePreset::Bench);
        assert!(a.nodes.is_none());
        assert!(!a.gpu_direct);
    }

    #[test]
    fn full_flags() {
        let a = parse(&[
            "--scale",
            "tiny",
            "--nodes",
            "16",
            "--m",
            "9",
            "--seed",
            "7",
            "--gpu-direct",
            "--round-limit",
            "4096",
            "--overlap-rounds",
        ])
        .unwrap();
        assert_eq!(a.scale, ScalePreset::Tiny);
        assert_eq!(a.nodes, Some(16));
        assert_eq!(a.m, Some(9));
        assert_eq!(a.seed, Some(7));
        assert!(a.gpu_direct);
        assert_eq!(a.round_limit, Some(4096));
        assert!(a.overlap_rounds);
    }

    #[test]
    fn custom_scale() {
        let a = parse(&["--scale", "x0.25"]).unwrap();
        assert_eq!(a.scale, ScalePreset::Custom(0.25));
        assert!(parse(&["--scale", "x-1"]).is_err());
        assert!(parse(&["--scale", "huge"]).is_err());
    }

    #[test]
    fn fault_flags() {
        let a = parse(&["--fault-seed", "7", "--fault-spec", "fail=0.1,retries=3"]).unwrap();
        assert_eq!(a.fault_seed, Some(7));
        assert_eq!(a.fault_spec.as_deref(), Some("fail=0.1,retries=3"));
        // Malformed specs fail at the flag, not mid-run.
        assert!(parse(&["--fault-spec", "bogus=1"]).is_err());
        assert!(parse(&["--fault-spec", "fail"]).is_err());
        assert!(parse(&["--fault-seed", "many"]).is_err());
    }

    #[test]
    fn mem_flags() {
        let a = parse(&[
            "--mem-seed",
            "5",
            "--mem-spec",
            "under=0.5,shrink=0.25",
            "--table-safety",
            "0.5",
            "--device-hbm",
            "1048576",
        ])
        .unwrap();
        assert_eq!(a.mem_seed, Some(5));
        assert_eq!(a.mem_spec.as_deref(), Some("under=0.5,shrink=0.25"));
        assert_eq!(a.table_safety, Some(0.5));
        assert_eq!(a.device_hbm, Some(1048576));
        // Malformed specs and out-of-range knobs fail at the flag.
        assert!(parse(&["--mem-spec", "bogus=1"]).is_err());
        assert!(parse(&["--table-safety", "0"]).is_err());
        assert!(parse(&["--device-hbm", "0"]).is_err());
    }

    #[test]
    fn rank_flags() {
        let a = parse(&[
            "--rank-seed",
            "3",
            "--rank-spec",
            "rate=0.01,max-dead=3,kill=1:2",
            "--checkpoint-rounds",
            "2",
            "--rescale",
            "1:8,3:12",
        ])
        .unwrap();
        assert_eq!(a.rank_seed, Some(3));
        assert_eq!(
            a.rank_spec.as_deref(),
            Some("rate=0.01,max-dead=3,kill=1:2")
        );
        assert_eq!(a.checkpoint_rounds, Some(2));
        assert_eq!(a.rescale, vec![(1, 8), (3, 12)]);
        // Malformed specs and schedules fail at the flag, not mid-run.
        assert!(parse(&["--rank-spec", "bogus=1"]).is_err());
        assert!(parse(&["--rank-spec", "kill=abc"]).is_err());
        assert!(parse(&["--checkpoint-rounds", "0"]).is_err());
        assert!(parse(&["--rescale", "5"]).is_err());
    }

    #[test]
    fn exchange_flags() {
        let a = parse(&["--exchange-algo", "hierarchical", "--wire-compress"]).unwrap();
        assert_eq!(
            a.exchange_algo,
            Some(dedukt_net::cost::ExchangeAlgo::NodeAggregated)
        );
        assert!(a.wire_compress);
        let d = parse(&["--exchange-algo", "direct"]).unwrap();
        assert_eq!(
            d.exchange_algo,
            Some(dedukt_net::cost::ExchangeAlgo::Direct)
        );
        assert!(parse(&["--exchange-algo", "fancy"]).is_err());
        assert!(parse(&["--exchange-algo"]).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--nodes"]).is_err());
        assert!(parse(&["--nodes", "zero"]).is_err());
        assert!(parse(&["--nodes", "0"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--round-limit"]).is_err());
        assert!(parse(&["--round-limit", "0"]).is_err());
        assert!(parse(&["--round-limit", "lots"]).is_err());
    }
}
