//! Ablation: minimizer length m (§V-D).
//!
//! "Using a smaller minimizer length creates an opportunity to have
//! longer but fewer supermers. Though this directly reduces the
//! communication volume, it often increases work load imbalance." This
//! sweep quantifies that trade-off across m.
//!
//! Usage: `cargo run --release -p dedukt-bench --bin ablation_minimizer_len
//!         [--scale ...] [--nodes N]`

use dedukt_bench::runner::run_mode_with_m;
use dedukt_bench::{generate, print_header, ExperimentArgs, Table};
use dedukt_core::model::avg_supermer_len;
use dedukt_core::Mode;
use dedukt_dna::DatasetId;

fn main() {
    let args = ExperimentArgs::parse();
    let nodes = args.nodes.unwrap_or(16);
    let id = DatasetId::CElegans40x;
    let reads = generate(id, &args);
    print_header(
        "Ablation — minimizer length vs volume and imbalance (§V-D)",
        &format!(
            "{}, {nodes} nodes, GPU supermer counter, k=17",
            id.short_name()
        ),
    );

    let total_kmers = reads.total_kmers(17) as u64;
    let mut t = Table::new([
        "m",
        "supermers",
        "avg len",
        "wire bytes",
        "reduction vs kmers",
        "alltoallv",
        "load imbalance",
    ]);
    for m in [5usize, 7, 9, 11, 13] {
        let r = run_mode_with_m(&reads, Mode::GpuSupermer, nodes, m, &args);
        let s = avg_supermer_len(total_kmers as f64, r.exchange.units as f64, 17.0);
        t.row([
            format!("{m}"),
            format!("{}", r.exchange.units),
            format!("{s:.1}"),
            format!("{}", r.exchange.bytes),
            format!("{:.2}x", (total_kmers * 8) as f64 / r.exchange.bytes as f64),
            format!("{}", r.exchange.alltoallv_time),
            format!("{:.2}", r.load.imbalance()),
        ]);
    }
    t.print();
    println!();
    println!(
        "paper's trade-off (§V-D): smaller m → longer, fewer supermers (more volume\n\
         reduction) but coarser minimizer buckets (worse imbalance)."
    );
}
