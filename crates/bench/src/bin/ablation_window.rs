//! Ablation: supermer window length (§IV-B/§IV-C).
//!
//! The window bounds supermer length (`window + k − 1` bases must pack
//! into one 64-bit word, so `window ≤ 33 − k`). Small windows chop
//! supermers that the minimizer structure would allow to be longer,
//! inflating the exchanged unit count; window 15 (the paper's choice for
//! k = 17) is the largest that still packs. This ablation sweeps the
//! window and also prints the un-windowed ideal from the reference
//! builder.
//!
//! Usage: `cargo run --release -p dedukt-bench --bin ablation_window
//!         [--scale ...] [--m N]`

use dedukt_bench::{generate, print_header, ExperimentArgs, Table};
use dedukt_core::supermer::{build_supermers_reference, build_supermers_windowed};
use dedukt_core::CountingConfig;
use dedukt_dna::DatasetId;

fn main() {
    let args = ExperimentArgs::parse();
    let id = DatasetId::EColi30x;
    let reads = generate(id, &args);
    let mut cfg = CountingConfig::default();
    if let Some(m) = args.m {
        cfg.m = m;
    }
    let scheme = cfg.minimizer_scheme();
    print_header(
        "Ablation — supermer window length",
        &format!("{}; k={}, m={}", id.short_name(), cfg.k, cfg.m),
    );

    let total_kmers = reads.total_kmers(cfg.k) as u64;
    let mut t = Table::new([
        "window",
        "supermers",
        "avg len (bases)",
        "wire bytes",
        "reduction vs kmers",
    ]);
    for window in [1usize, 2, 4, 8, 12, 15] {
        let mut n = 0u64;
        let mut len = 0u64;
        for read in &reads.reads {
            for sm in build_supermers_windowed(&read.codes, cfg.k, window, &scheme) {
                n += 1;
                len += sm.len as u64;
            }
        }
        let bytes = n * 9;
        t.row([
            format!("{window}"),
            format!("{n}"),
            format!("{:.1}", len as f64 / n as f64),
            format!("{bytes}"),
            format!("{:.2}x", (total_kmers * 8) as f64 / bytes as f64),
        ]);
    }
    // Unbounded reference (what an infinitely wide word would allow).
    let mut n = 0u64;
    let mut len = 0u64;
    for read in &reads.reads {
        for sm in build_supermers_reference(&read.codes, cfg.k, &scheme) {
            n += 1;
            len += sm.codes.len() as u64;
        }
    }
    t.row([
        "unbounded".to_string(),
        format!("{n}"),
        format!("{:.1}", len as f64 / n as f64),
        format!("{}", n * 9 + len / 4), // variable-length encoding estimate
        "-".to_string(),
    ]);
    t.print();
    println!();
    println!(
        "window=1 degenerates to one supermer per k-mer (worse than k-mers: 9 B vs 8 B);\n\
         the paper's window=15 recovers most of the unbounded reduction while keeping\n\
         every supermer in a single 64-bit word."
    );
}
