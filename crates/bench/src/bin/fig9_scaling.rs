//! Regenerates Fig. 9: scalability of the k-mer insertion rate through
//! the GPU computation kernels (exchange excluded), 4 → 128 nodes.
//!
//! The paper runs the small (<1 GB) datasets up to 32 nodes and the large
//! ones up to 128, observing near-linear scaling (2.3× from 64 to 128
//! nodes on C. elegans and H. sapiens).
//!
//! Usage: `cargo run --release -p dedukt-bench --bin fig9_scaling
//!         [--scale ...]`

use dedukt_bench::{generate, print_header, run_mode, ExperimentArgs, Table};
use dedukt_core::Mode;
use dedukt_dna::DatasetId;

fn main() {
    let args = ExperimentArgs::parse();
    print_header(
        "Fig. 9 — k-mer insertion rate scaling (GPU kernels, excl. exchange)",
        "rates in billions of k-mers per simulated second",
    );

    let mut t = Table::new(["dataset", "4", "16", "32", "64", "128", "64→128"]);
    for id in DatasetId::ALL {
        let reads = generate(id, &args);
        let small = DatasetId::SMALL.contains(&id);
        let node_counts: &[usize] = if small {
            &[4, 16, 32]
        } else {
            &[4, 16, 32, 64, 128]
        };
        let mut cells = vec![id.short_name().to_string()];
        let mut rates = Vec::new();
        for &n in node_counts {
            let r = run_mode(&reads, Mode::GpuKmer, n, &args);
            let rate = r
                .insertion_rate()
                .map(|x| x.units_per_sec() / 1e9)
                .unwrap_or(0.0);
            rates.push(rate);
            cells.push(format!("{rate:.2}"));
        }
        while cells.len() < 6 {
            cells.push("-".to_string()); // small datasets stop at 32 nodes
        }
        let last_ratio = if rates.len() >= 2 {
            format!("{:.2}x", rates[rates.len() - 1] / rates[rates.len() - 2])
        } else {
            "-".to_string()
        };
        cells.push(last_ratio);
        t.row(cells);
    }
    t.print();
    println!();
    println!(
        "paper: near-linear scaling; C. elegans and H. sapiens scale 2.3x from 64 to 128 nodes\n\
         (the last column for large datasets; linear would be 2.0x)."
    );
}
