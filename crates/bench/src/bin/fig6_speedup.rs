//! Regenerates Fig. 6: overall speedup (excl. I/O) of the GPU counters
//! over the CPU baseline.
//!
//! Fig. 6a: 16 nodes (96 GPUs vs 672 cores), four bacterial datasets.
//! Fig. 6b: 64 nodes (384 GPUs vs 2,688 cores), C. elegans + H. sapiens.
//! Pass `--nodes 16` or `--nodes 64` to pick the sub-figure (default 16).
//!
//! Usage: `cargo run --release -p dedukt-bench --bin fig6_speedup
//!         [--nodes 16|64] [--scale ...]`

use dedukt_bench::runner::run_mode_with_m;
use dedukt_bench::{generate, print_header, run_mode, ExperimentArgs, Table};
use dedukt_core::Mode;
use dedukt_dna::DatasetId;

fn main() {
    let args = ExperimentArgs::parse();
    let nodes = args.nodes.unwrap_or(16);
    let datasets: &[DatasetId] = if nodes >= 64 {
        &DatasetId::LARGE
    } else {
        &DatasetId::SMALL
    };
    print_header(
        &format!(
            "Fig. 6{} — overall speedup over the CPU baseline",
            if nodes >= 64 { 'b' } else { 'a' }
        ),
        &format!(
            "{nodes} nodes: {} GPU ranks vs {} CPU ranks; times are simulated",
            nodes * 6,
            nodes * 42
        ),
    );

    let mut t = Table::new([
        "dataset",
        "CPU total",
        "GPU kmer total",
        "speedup kmer",
        "speedup supermer m=7",
        "speedup supermer m=9",
    ]);
    for &id in datasets {
        let reads = generate(id, &args);
        let cpu = run_mode(&reads, Mode::CpuBaseline, nodes, &args);
        let kmer = run_mode(&reads, Mode::GpuKmer, nodes, &args);
        let sm7 = run_mode_with_m(&reads, Mode::GpuSupermer, nodes, 7, &args);
        let sm9 = run_mode_with_m(&reads, Mode::GpuSupermer, nodes, 9, &args);
        t.row([
            id.short_name().to_string(),
            format!("{}", cpu.total_time()),
            format!("{}", kmer.total_time()),
            format!("{:.1}x", kmer.speedup_over(&cpu)),
            format!("{:.1}x", sm7.speedup_over(&cpu)),
            format!("{:.1}x", sm9.speedup_over(&cpu)),
        ]);
    }
    t.print();
    println!();
    println!(
        "paper: ~11x (kmer) / ~13x (supermer) average on 16 nodes; up to 150x on H. sapiens at 64 nodes."
    );
    println!(
        "note: our simulated GPU kernels omit the paper's unmodelled constant overheads, so\n\
         small-dataset speedups come out higher; ordering and supermer>kmer shape are preserved\n\
         (see EXPERIMENTS.md)."
    );
}
