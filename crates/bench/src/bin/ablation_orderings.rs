//! Ablation: minimizer ordering vs partition skew and supermer counts.
//!
//! §IV-A argues that plain lexicographic minimizers skew partitions, that
//! KMC2's AAA/ACA demotion helps, and that the randomized base encoding
//! (the paper's choice) spreads partitions without extra compute. This
//! ablation quantifies all three, plus the balanced-assignment extension
//! (the paper's §VII future-work item).
//!
//! Usage: `cargo run --release -p dedukt-bench --bin ablation_orderings
//!         [--scale ...] [--nodes N]`

use dedukt_bench::{generate, print_header, ExperimentArgs, Table};
use dedukt_core::minimizer::{MinimizerScheme, OrderingKind};
use dedukt_core::partition::{minimizer_owner, BalancedAssignment};
use dedukt_core::supermer::build_supermers_reference;
use dedukt_core::{Mode, RunConfig};
use dedukt_dna::{DatasetId, Encoding};
use dedukt_hash::Murmur3x64;
use dedukt_sim::DistStats;
use std::collections::HashMap;

fn main() {
    let args = ExperimentArgs::parse();
    let nodes = args.nodes.unwrap_or(4);
    let nranks = nodes * Mode::GpuSupermer.ranks_per_node();
    let id = DatasetId::CElegans40x;
    let reads = generate(id, &args);
    let rc = RunConfig::new(Mode::GpuSupermer, nodes);
    let k = rc.counting.k;
    let m = args.m.unwrap_or(7);
    print_header(
        "Ablation — minimizer ordering vs supermer count and partition skew",
        &format!("{}; k={k}, m={m}, {nranks} ranks", id.short_name()),
    );

    let orderings: [(&str, Encoding, OrderingKind); 3] = [
        (
            "lexicographic",
            Encoding::Alphabetical,
            OrderingKind::EncodedLexicographic,
        ),
        (
            "KMC2 (AAA/ACA demoted)",
            Encoding::Alphabetical,
            OrderingKind::Kmc2,
        ),
        (
            "random encoding (paper)",
            Encoding::PaperRandom,
            OrderingKind::EncodedLexicographic,
        ),
    ];

    let hasher = Murmur3x64::new(rc.counting.hash_seed);
    let mut t = Table::new([
        "ordering",
        "supermers",
        "avg len",
        "hash-routing imbalance",
        "balanced-assignment imbalance",
    ]);
    for (name, enc, ord) in orderings {
        let scheme = MinimizerScheme {
            encoding: enc,
            ordering: ord,
            m,
        };
        let mut nsmers = 0u64;
        let mut total_len = 0u64;
        let mut loads = vec![0u64; nranks];
        let mut weights: HashMap<u64, u64> = HashMap::new();
        for read in &reads.reads {
            for sm in build_supermers_reference(&read.codes, k, &scheme) {
                nsmers += 1;
                total_len += sm.codes.len() as u64;
                let kmers = sm.num_kmers(k) as u64;
                loads[minimizer_owner(&hasher, sm.minimizer, nranks)] += kmers;
                *weights.entry(sm.minimizer).or_insert(0) += kmers;
            }
        }
        let hash_imb = DistStats::from_loads(&loads).unwrap().imbalance();
        // Balanced extension: LPT over the observed minimizer weights.
        let balanced = BalancedAssignment::build(&weights, nranks, rc.counting.hash_seed);
        let mut bal_loads = vec![0u64; nranks];
        for (&mz, &w) in &weights {
            bal_loads[balanced.owner(mz)] += w;
        }
        let bal_imb = DistStats::from_loads(&bal_loads).unwrap().imbalance();
        t.row([
            name.to_string(),
            format!("{nsmers}"),
            format!("{:.1}", total_len as f64 / nsmers as f64),
            format!("{hash_imb:.2}"),
            format!("{bal_imb:.2}"),
        ]);
    }
    t.print();
    println!();
    println!(
        "expected shape: lexicographic worst skew; the randomized encoding spreads partitions\n\
         at zero compute cost (§IV-A); LPT assignment (the §VII future-work item) cuts the\n\
         imbalance further at the price of a precomputed minimizer→rank map."
    );
}
