//! Ablation: k-mer length, narrow (u64) vs wide (u128) packing.
//!
//! The paper fixes k = 17; this extension sweeps k across the packing
//! boundary (k ≤ 63) through the one width-generic driver: every k runs
//! all three engines — CPU baseline, GPU k-mer, GPU supermer — and the
//! engines must agree exactly. Wire bytes are exact per width (8-byte
//! keys narrow, 16 wide; +1 length byte per supermer), and the supermer
//! advantage grows with k because each extra supermer base amortizes a
//! whole extra k-mer payload.
//!
//! Usage: `cargo run --release -p dedukt-bench --bin ablation_wide_k
//!         [--scale ...]`

use dedukt_bench::{generate, print_header, ExperimentArgs, Table};
use dedukt_core::{pipeline, Mode, PackedKmer, RunConfig};
use dedukt_dna::{DatasetId, ReadSet};

struct SweepRow {
    kmers: u64,
    kmer_bytes: u64,
    supermers: u64,
    supermer_bytes: u64,
}

/// Runs all three engines at key width `K` and returns the exchange
/// volumes (k-mer engines vs supermer engine). Panics if the engines
/// disagree on any count.
fn sweep<K: PackedKmer>(reads: &ReadSet, k: usize, m: usize, window: usize) -> SweepRow {
    let mut rc = RunConfig::new(Mode::CpuBaseline, 1);
    rc.counting.k = k;
    rc.counting.m = m;
    rc.counting.window = window;
    let cpu = pipeline::run_typed::<K>(reads, &rc).expect("valid config");
    rc.mode = Mode::GpuKmer;
    let km = pipeline::run_typed::<K>(reads, &rc).expect("valid config");
    rc.mode = Mode::GpuSupermer;
    let sm = pipeline::run_typed::<K>(reads, &rc).expect("valid config");
    assert_eq!(
        cpu.total_kmers, km.total_kmers,
        "engines must agree at k={k}"
    );
    assert_eq!(
        km.total_kmers, sm.total_kmers,
        "engines must agree at k={k}"
    );
    assert_eq!(
        cpu.distinct_kmers, sm.distinct_kmers,
        "engines must agree at k={k}"
    );
    // Wire accounting must be width-honest to the byte.
    assert_eq!(km.exchange.bytes, km.exchange.units * K::KMER_WIRE_BYTES);
    assert_eq!(
        sm.exchange.bytes,
        sm.exchange.units * K::SUPERMER_WIRE_BYTES
    );
    SweepRow {
        kmers: km.exchange.units,
        kmer_bytes: km.exchange.bytes,
        supermers: sm.exchange.units,
        supermer_bytes: sm.exchange.bytes,
    }
}

fn main() {
    let args = ExperimentArgs::parse();
    let reads = generate(DatasetId::EColi30x, &args);
    print_header(
        "Ablation — k-mer length across the narrow/wide packing boundary",
        "E. coli 30X, 1 node, all three engines per k; wire bytes are exact",
    );

    let mut t = Table::new([
        "k",
        "packing",
        "key B",
        "smer B",
        "kmers",
        "kmer bytes",
        "supermers",
        "supermer bytes",
        "reduction",
    ]);

    for (k, m) in [
        (17usize, 7usize),
        (31, 7),
        (33, 9),
        (41, 11),
        (55, 13),
        (63, 15),
    ] {
        let wide = k > 31;
        let window = if wide {
            65 - k
        } else {
            RunConfig::new(Mode::GpuSupermer, 1)
                .counting
                .window
                .min(33 - k)
        };
        let row = if wide {
            sweep::<u128>(&reads, k, m, window)
        } else {
            sweep::<u64>(&reads, k, m, window)
        };
        let (key_b, smer_b) = if wide {
            (u128::KMER_WIRE_BYTES, u128::SUPERMER_WIRE_BYTES)
        } else {
            (u64::KMER_WIRE_BYTES, u64::SUPERMER_WIRE_BYTES)
        };
        t.row([
            format!("{k}"),
            if wide { "u128" } else { "u64" }.to_string(),
            format!("{key_b}"),
            format!("{smer_b}"),
            format!("{}", row.kmers),
            format!("{}", row.kmer_bytes),
            format!("{}", row.supermers),
            format!("{}", row.supermer_bytes),
            format!("{:.2}x", row.kmer_bytes as f64 / row.supermer_bytes as f64),
        ]);
    }
    t.print();
    println!();
    println!(
        "note: the window shrinks as k approaches the packing bound (33 − k narrow,\n\
         65 − k wide), capping supermer length at one packed word; the reduction\n\
         factor still grows with k because each supermer base amortizes a full\n\
         key-width k-mer payload."
    );
}
