//! Ablation: k-mer length, narrow (u64) vs wide (u128) packing.
//!
//! The paper fixes k = 17; this extension sweeps k into the wide regime
//! (k ≤ 63, one `u128` per k-mer) on the CPU pipelines and reports how
//! the supermer advantage evolves: longer k-mers mean fewer k-mers per
//! read but *larger* per-k-mer payloads, and supermers amortize ever
//! better (each extra supermer base carries a whole extra k-mer).
//!
//! Usage: `cargo run --release -p dedukt-bench --bin ablation_wide_k
//!         [--scale ...]`

use dedukt_bench::{generate, print_header, ExperimentArgs, Table};
use dedukt_core::wide::{run_cpu_wide, WideConfig, WideMode};
use dedukt_core::{pipeline, CpuCoreModel, Mode, RunConfig};
use dedukt_dna::DatasetId;

fn main() {
    let args = ExperimentArgs::parse();
    let reads = generate(DatasetId::EColi30x, &args);
    print_header(
        "Ablation — k-mer length across the narrow/wide packing boundary",
        "E. coli 30X, 1 node, CPU pipelines; wire bytes are exact",
    );

    let mut t = Table::new([
        "k",
        "packing",
        "kmers",
        "kmer bytes",
        "supermers",
        "supermer bytes",
        "reduction",
    ]);

    // Narrow reference point: the paper's k = 17 (u64 packing).
    {
        let mut rc = RunConfig::new(Mode::GpuKmer, 1);
        rc.counting.k = 17;
        let km = pipeline::run(&reads, &rc).expect("valid config");
        let mut rcs = RunConfig::new(Mode::GpuSupermer, 1);
        rcs.counting.k = 17;
        let sm = pipeline::run(&reads, &rcs).expect("valid config");
        t.row([
            "17".to_string(),
            "u64".to_string(),
            format!("{}", km.exchange.units),
            format!("{}", km.exchange.bytes),
            format!("{}", sm.exchange.units),
            format!("{}", sm.exchange.bytes),
            format!(
                "{:.2}x",
                km.exchange.bytes as f64 / sm.exchange.bytes as f64
            ),
        ]);
    }

    let cpu = CpuCoreModel::default();
    for (k, m) in [(33usize, 9usize), (41, 11), (55, 13), (63, 15)] {
        let cfg = WideConfig {
            k,
            m,
            window: 65 - k,
            ..WideConfig::default()
        };
        let km = run_cpu_wide(&reads, &cfg, WideMode::Kmer, 1, &cpu);
        let sm = run_cpu_wide(&reads, &cfg, WideMode::Supermer, 1, &cpu);
        assert_eq!(km.total_kmers, sm.total_kmers, "pipelines must agree");
        t.row([
            format!("{k}"),
            "u128".to_string(),
            format!("{}", km.exchange.units),
            format!("{}", km.exchange.bytes),
            format!("{}", sm.exchange.units),
            format!("{}", sm.exchange.bytes),
            format!(
                "{:.2}x",
                km.exchange.bytes as f64 / sm.exchange.bytes as f64
            ),
        ]);
    }
    t.print();
    println!();
    println!(
        "note: the wide window shrinks as k grows (window = 65 − k), capping supermer\n\
         length at one u128; the reduction factor still grows with k because each\n\
         supermer base amortizes a full 16-byte k-mer."
    );
}
