//! Regenerates Fig. 3: runtime breakdown of the CPU- and GPU-based k-mer
//! counters on 64 nodes for the H. sapiens 54X dataset.
//!
//! The paper's observation: with GPU acceleration the compute modules
//! shrink by ~two orders of magnitude while the k-mer exchange stays
//! roughly the same, turning the problem communication-bound.
//!
//! Usage: `cargo run --release -p dedukt-bench --bin fig3_breakdown
//!         [--scale tiny|bench|xF] [--nodes N]`

use dedukt_bench::{generate, print_header, run_mode, ExperimentArgs, Table};
use dedukt_core::{pipeline, Mode, RunConfig};
use dedukt_dna::DatasetId;

fn main() {
    let args = ExperimentArgs::parse();
    let nodes = args.nodes.unwrap_or(64);
    print_header(
        "Fig. 3 — runtime breakdown, CPU vs GPU k-mer counter",
        &format!("dataset: H. sapiens 54X (synthetic), {nodes} nodes; times are simulated"),
    );

    let reads = generate(DatasetId::HSapiens54x, &args);
    let cpu = run_mode(&reads, Mode::CpuBaseline, nodes, &args);
    let gpu = run_mode(&reads, Mode::GpuKmer, nodes, &args);

    let mut t = Table::new([
        "module",
        &format!("CPU ({} ranks)", cpu.nranks),
        &format!("GPU ({} ranks)", gpu.nranks),
    ]);
    t.row([
        "parse & process kmers".to_string(),
        format!("{}", cpu.phases.parse),
        format!("{}", gpu.phases.parse),
    ]);
    t.row([
        "exchange (incl. MPI call)".to_string(),
        format!("{}", cpu.phases.exchange),
        format!("{}", gpu.phases.exchange),
    ]);
    t.row([
        "kmer counter".to_string(),
        format!("{}", cpu.phases.count),
        format!("{}", gpu.phases.count),
    ]);
    t.row([
        "TOTAL (excl. I/O)".to_string(),
        format!("{}", cpu.total_time()),
        format!("{}", gpu.total_time()),
    ]);
    t.print();

    let compute_speedup =
        (cpu.phases.parse + cpu.phases.count) / (gpu.phases.parse + gpu.phases.count);
    let exchange_ratio = cpu.phases.exchange / gpu.phases.exchange;
    println!();
    println!(
        "overall speedup (excl. I/O):   {:.0}x   (paper: ~100x, '50 minutes to 30 seconds')",
        cpu.total_time() / gpu.total_time()
    );
    println!("compute speedup (parse+count): {compute_speedup:.0}x   (paper: ~400-600x implied by Fig. 3)");
    println!("exchange CPU/GPU ratio:        {exchange_ratio:.2}   (paper: 'roughly the same')");
    println!(
        "GPU exchange fraction:         {:.0}%   (paper: exchange becomes the bottleneck, up to 80%)",
        gpu.phases.exchange_fraction() * 100.0
    );

    // With exchange dominant, memory-bounded rounds + double buffering hide
    // the count kernel behind the next round's wire time (max instead of sum).
    let cap = (gpu.exchange.bytes / gpu.nranks as u64 / 4).max(1024);
    let run_rounds = |overlap: bool| {
        let mut rc = RunConfig::new(Mode::GpuKmer, nodes);
        rc.round_limit_bytes = Some(cap);
        rc.overlap_rounds = overlap;
        pipeline::run(&reads, &rc).expect("valid config")
    };
    let blocking = run_rounds(false);
    let overlapped = run_rounds(true);
    println!();
    println!(
        "with a {cap} B per-round cap ({} rounds):",
        blocking.exchange.rounds
    );
    println!(
        "  GPU total, blocking rounds:  {}   overlapped (--overlap-rounds): {}",
        blocking.total_time(),
        overlapped.total_time()
    );
    println!(
        "  overlap hides count behind wire, saving {} ({:.0}% of the count bar)",
        blocking.total_time() - overlapped.total_time(),
        if blocking.phases.count.is_zero() {
            0.0
        } else {
            (blocking.total_time() - overlapped.total_time()) / blocking.phases.count * 100.0
        }
    );
}
