//! Regenerates Fig. 8: speedup of the MPI_Alltoallv routine using
//! supermers (m=7 and m=9) relative to k-mers.
//!
//! Fig. 8a: 16 nodes (96 GPUs), small datasets; Fig. 8b: 64 nodes
//! (384 GPUs), all datasets — up to 3× for H. sapiens.
//!
//! Usage: `cargo run --release -p dedukt-bench --bin fig8_alltoallv
//!         [--nodes 16|64] [--scale ...]`

use dedukt_bench::runner::run_mode_with_m;
use dedukt_bench::{generate, print_header, run_mode, ExperimentArgs, Table};
use dedukt_core::Mode;
use dedukt_dna::DatasetId;

fn main() {
    let args = ExperimentArgs::parse();
    let nodes = args.nodes.unwrap_or(16);
    let datasets: &[DatasetId] = if nodes >= 64 {
        &DatasetId::ALL
    } else {
        &DatasetId::SMALL
    };
    print_header(
        &format!(
            "Fig. 8{} — Alltoallv speedup of supermers over k-mers",
            if nodes >= 64 { 'b' } else { 'a' }
        ),
        &format!(
            "{nodes} nodes, {} GPU ranks; wire times are simulated",
            nodes * 6
        ),
    );

    let mut t = Table::new([
        "dataset",
        "kmer alltoallv",
        "m=7 alltoallv",
        "m=9 alltoallv",
        "speedup m=7",
        "speedup m=9",
    ]);
    for &id in datasets {
        let reads = generate(id, &args);
        let kmer = run_mode(&reads, Mode::GpuKmer, nodes, &args);
        let sm7 = run_mode_with_m(&reads, Mode::GpuSupermer, nodes, 7, &args);
        let sm9 = run_mode_with_m(&reads, Mode::GpuSupermer, nodes, 9, &args);
        t.row([
            id.short_name().to_string(),
            format!("{}", kmer.exchange.alltoallv_time),
            format!("{}", sm7.exchange.alltoallv_time),
            format!("{}", sm9.exchange.alltoallv_time),
            format!(
                "{:.2}x",
                kmer.exchange.alltoallv_time / sm7.exchange.alltoallv_time
            ),
            format!(
                "{:.2}x",
                kmer.exchange.alltoallv_time / sm9.exchange.alltoallv_time
            ),
        ]);
    }
    t.print();
    println!();
    println!("paper: up to 3x (H. sapiens, 64 nodes, m=7); m=7 ≥ m=9 everywhere.");
}
