//! Ablation: memory-bounded multi-round exchange (§III-A).
//!
//! "Depending on the total size of the input, relative to software limits
//! (approximating available memory), the computation and communication may
//! proceed in multiple rounds." This sweep caps the per-rank, per-round
//! payload and shows the cost of the extra collective latency — and how
//! double-buffered overlap (`--overlap-rounds`) wins most of it back by
//! hiding each round's count kernel behind the next round's wire time.
//! Result identity across caps and overlap modes is asserted in
//! `tests/rounds_invariants.rs`.
//!
//! Usage: `cargo run --release -p dedukt-bench --bin ablation_rounds
//!         [--scale ...] [--nodes N]`

use dedukt_bench::{generate, print_header, ExperimentArgs, Table};
use dedukt_core::{pipeline, Mode, RunConfig, RunReport};
use dedukt_dna::{DatasetId, ReadSet};
use dedukt_sim::SimTime;

fn run_capped(reads: &ReadSet, nodes: usize, cap: Option<u64>, overlap: bool) -> RunReport {
    let mut rc = RunConfig::new(Mode::GpuKmer, nodes);
    rc.round_limit_bytes = cap;
    rc.overlap_rounds = overlap;
    pipeline::run(reads, &rc).expect("valid config")
}

fn main() {
    let args = ExperimentArgs::parse();
    let nodes = args.nodes.unwrap_or(4);
    let reads = generate(DatasetId::EColi30x, &args);
    print_header(
        "Ablation — exchange rounds under per-round memory caps",
        &format!("E. coli 30X, {nodes} nodes, GPU k-mer counter"),
    );

    let rc = RunConfig::new(Mode::GpuKmer, nodes);
    let unlimited = run_capped(&reads, nodes, None, false);
    let out_bytes_per_rank = unlimited.exchange.bytes / rc.nranks() as u64;

    let mut t = Table::new([
        "per-round cap",
        "rounds",
        "alltoallv (wire)",
        "blocking total",
        "overlap total",
        "overlap saves",
    ]);
    t.row([
        "unlimited".to_string(),
        format!("{}", unlimited.exchange.rounds),
        format!("{}", unlimited.exchange.alltoallv_time),
        format!("{}", unlimited.total_time()),
        "-".to_string(),
        "-".to_string(),
    ]);
    let mut best_saving = SimTime::ZERO;
    for divisor in [2u64, 4, 16, 64] {
        let cap = (out_bytes_per_rank / divisor).max(1024);
        let blocking = run_capped(&reads, nodes, Some(cap), false);
        let overlapped = run_capped(&reads, nodes, Some(cap), true);
        let saved = blocking.total_time() - overlapped.total_time();
        if saved > best_saving {
            best_saving = saved;
        }
        t.row([
            format!("{cap} B"),
            format!("{}", blocking.exchange.rounds),
            format!("{}", blocking.exchange.alltoallv_time),
            format!("{}", blocking.total_time()),
            format!("{}", overlapped.total_time()),
            format!("{saved}"),
        ]);
    }
    t.print();
    println!();
    println!(
        "the cost of memory-bounded operation is the extra per-round collective\n\
         latency; overlapping rounds charges max(wire, count) per round instead\n\
         of wire + count, recovering up to {best_saving} here. counts are\n\
         bit-identical in every cell (asserted by tests/rounds_invariants.rs)."
    );
}
