//! Ablation: memory-bounded multi-round exchange (§III-A).
//!
//! "Depending on the total size of the input, relative to software limits
//! (approximating available memory), the computation and communication may
//! proceed in multiple rounds." This sweep caps the per-rank, per-round
//! payload and shows the cost of the extra collective latency — and that
//! results are bit-identical regardless.
//!
//! Usage: `cargo run --release -p dedukt-bench --bin ablation_rounds
//!         [--scale ...] [--nodes N]`

use dedukt_bench::{generate, print_header, ExperimentArgs, Table};
use dedukt_core::{pipeline, Mode, RunConfig};
use dedukt_dna::DatasetId;

fn main() {
    let args = ExperimentArgs::parse();
    let nodes = args.nodes.unwrap_or(4);
    let reads = generate(DatasetId::EColi30x, &args);
    print_header(
        "Ablation — exchange rounds under per-round memory caps",
        &format!("E. coli 30X, {nodes} nodes, GPU k-mer counter"),
    );

    let mut rc = RunConfig::new(Mode::GpuKmer, nodes);
    rc.collect_spectrum = true;
    let unlimited = pipeline::run(&reads, &rc);
    let out_bytes_per_rank = unlimited.exchange.bytes / rc.nranks() as u64;

    let mut t = Table::new([
        "per-round cap",
        "rounds (approx)",
        "alltoallv time",
        "total",
        "distinct kmers",
    ]);
    t.row([
        "unlimited".to_string(),
        "1".to_string(),
        format!("{}", unlimited.exchange.alltoallv_time),
        format!("{}", unlimited.total_time()),
        format!("{}", unlimited.distinct_kmers),
    ]);
    for divisor in [2u64, 4, 16, 64] {
        let cap = (out_bytes_per_rank / divisor).max(1024);
        let mut rc = RunConfig::new(Mode::GpuKmer, nodes);
        rc.round_limit_bytes = Some(cap);
        rc.collect_spectrum = true;
        let r = pipeline::run(&reads, &rc);
        assert_eq!(
            r.distinct_kmers, unlimited.distinct_kmers,
            "rounds must not change results"
        );
        assert_eq!(
            r.spectrum, unlimited.spectrum,
            "rounds must not change the spectrum"
        );
        t.row([
            format!("{cap} B"),
            format!("{divisor}"),
            format!("{}", r.exchange.alltoallv_time),
            format!("{}", r.total_time()),
            format!("{}", r.distinct_kmers),
        ]);
    }
    t.print();
    println!();
    println!(
        "results are asserted identical across all caps; the cost of memory-bounded\n\
         operation is the extra per-round collective latency."
    );
}
