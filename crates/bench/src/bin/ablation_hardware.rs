//! Ablation: would newer GPUs help? (V100 vs A100.)
//!
//! The paper's conclusion is that GPU acceleration turns k-mer counting
//! communication-bound (§VII). This ablation makes that concrete: swap
//! the simulated V100s for A100s (1.25× instruction rate, 1.7× HBM,
//! 2× NVLink) and observe that the compute bars shrink while the
//! exchange — set by the *network* — does not, so end-to-end gains are
//! marginal. Faster GPUs cannot fix a communication-bound pipeline.
//!
//! Usage: `cargo run --release -p dedukt-bench --bin ablation_hardware
//!         [--scale ...] [--nodes N]`

use dedukt_bench::{generate, print_header, ExperimentArgs, Table};
use dedukt_core::{pipeline, Mode, RunConfig};
use dedukt_dna::DatasetId;
use dedukt_gpu::DeviceConfig;

fn main() {
    let args = ExperimentArgs::parse();
    let nodes = args.nodes.unwrap_or(16);
    let reads = generate(DatasetId::CElegans40x, &args);
    print_header(
        "Ablation — simulated GPU generation (V100 vs A100)",
        &format!("C. elegans 40X, {nodes} nodes, GPU supermer counter"),
    );

    let mut t = Table::new(["device", "parse", "exchange", "count", "total", "vs V100"]);
    let mut baseline_total = None;
    for device in [DeviceConfig::v100(), DeviceConfig::a100()] {
        let mut rc = RunConfig::new(Mode::GpuSupermer, nodes);
        rc.gpu_device = device.clone();
        let r = pipeline::run(&reads, &rc).expect("valid config");
        let total = r.total_time();
        let speedup = baseline_total
            .map(|b: dedukt_sim::SimTime| format!("{:.2}x", b / total))
            .unwrap_or_else(|| "1.00x".into());
        if baseline_total.is_none() {
            baseline_total = Some(total);
        }
        t.row([
            device.name.clone(),
            format!("{}", r.phases.parse),
            format!("{}", r.phases.exchange),
            format!("{}", r.phases.count),
            format!("{total}"),
            speedup,
        ]);
    }
    t.print();
    println!();
    println!(
        "expected shape: compute bars shrink with the newer device; the exchange bar is\n\
         network-bound and barely moves, so the end-to-end win is small — the paper's\n\
         'communication is the bottleneck' conclusion, quantified."
    );
}
