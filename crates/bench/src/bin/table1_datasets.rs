//! Regenerates Table I: the dataset inventory.
//!
//! Prints the synthetic catalog at the chosen scale next to the paper's
//! real datasets, so every other experiment's inputs are auditable.
//!
//! Usage: `cargo run --release -p dedukt-bench --bin table1_datasets
//!         [--scale tiny|bench|xF]`

use dedukt_bench::printer::fmt_count;
use dedukt_bench::{print_header, ExperimentArgs, Table};
use dedukt_dna::{Dataset, DatasetId};
use dedukt_sim::DataVolume;

fn main() {
    let args = ExperimentArgs::parse();
    print_header(
        "Table I — datasets used for performance evaluation",
        &format!(
            "synthetic catalog at scale {:?}; paper sizes for reference",
            args.scale
        ),
    );

    let mut t = Table::new([
        "Short Name",
        "Species and Strain",
        "Paper FASTQ",
        "Synth genome (bp)",
        "Coverage",
        "Synth bases",
        "Synth FASTQ (approx)",
    ]);
    for id in DatasetId::ALL {
        let mut ds = Dataset::new(id, args.scale);
        if let Some(seed) = args.seed {
            ds.seed = seed;
        }
        t.row([
            id.short_name().to_string(),
            id.species().to_string(),
            format!("{}", DataVolume::from_bytes(id.paper_fastq_bytes())),
            fmt_count(ds.genome.length as u64),
            format!("{:.0}X", ds.reads.coverage),
            fmt_count(ds.expected_bases() as u64),
            format!("{}", DataVolume::from_bytes(ds.approx_fastq_bytes())),
        ]);
    }
    t.print();
    println!();
    println!(
        "note: bacterial genome lengths keep Table II's k-mer ratios (412:187:154:129);\n\
         the bacteria-to-human gap is compressed to fit one host (see EXPERIMENTS.md)."
    );
}
