//! Regenerates Table II: total number of k-mers and supermers exchanged
//! per dataset, for minimizer lengths 9 and 7, plus the §IV-D model's
//! view of the same reduction.
//!
//! Usage: `cargo run --release -p dedukt-bench --bin table2_volume
//!         [--scale ...] [--nodes N]`

use dedukt_bench::paper::table2_counts;
use dedukt_bench::printer::fmt_count;
use dedukt_bench::runner::run_mode_with_m;
use dedukt_bench::{generate, print_header, run_mode, ExperimentArgs, Table};
use dedukt_core::model::avg_supermer_len;
use dedukt_core::Mode;
use dedukt_dna::DatasetId;

fn main() {
    let args = ExperimentArgs::parse();
    let nodes = args.nodes.unwrap_or(1);
    print_header(
        "Table II — k-mers and supermers exchanged",
        &format!(
            "synthetic datasets at scale {:?}, {nodes} node(s); paper counts for reference",
            args.scale
        ),
    );

    let mut t = Table::new([
        "dataset",
        "kmers",
        "supermers m=9",
        "supermers m=7",
        "reduction m=7",
        "paper reduction m=7",
        "avg supermer len m=7",
    ]);
    for id in DatasetId::ALL {
        let reads = generate(id, &args);
        let kmer = run_mode(&reads, Mode::GpuKmer, nodes, &args);
        let sm9 = run_mode_with_m(&reads, Mode::GpuSupermer, nodes, 9, &args);
        let sm7 = run_mode_with_m(&reads, Mode::GpuSupermer, nodes, 7, &args);
        let (pk, _ps9, ps7) = table2_counts(id);
        // Byte-level reduction: 8 B per k-mer vs 9 B per supermer.
        let reduction = kmer.exchange.bytes as f64 / sm7.exchange.bytes as f64;
        let paper_reduction = (pk * 8) as f64 / (ps7 * 9) as f64;
        let s_avg = avg_supermer_len(kmer.exchange.units as f64, sm7.exchange.units as f64, 17.0);
        t.row([
            id.short_name().to_string(),
            fmt_count(kmer.exchange.units),
            fmt_count(sm9.exchange.units),
            fmt_count(sm7.exchange.units),
            format!("{reduction:.2}x"),
            format!("{paper_reduction:.2}x"),
            format!("{s_avg:.1}"),
        ]);
    }
    t.print();
    println!();
    println!(
        "paper counts (k-mers / m=9 / m=7): E. coli 412M/126M/108M … H. sapiens 167B/59B/50B.\n\
         shape checks: m=7 yields fewer, longer supermers than m=9; byte reduction ≈ 3-4x."
    );
}
