//! Regenerates Table III: imbalance in the number of k-mers counted per
//! rank under k-mer hashing vs minimizer (supermer) partitioning, plus
//! this reproduction's balanced-assignment extension.
//!
//! Usage: `cargo run --release -p dedukt-bench --bin table3_imbalance
//!         [--scale ...] [--nodes N]`

use dedukt_bench::paper::table3_row;
use dedukt_bench::printer::fmt_count;
use dedukt_bench::runner::run_mode_with_m;
use dedukt_bench::{generate, print_header, run_mode, ExperimentArgs, Table};
use dedukt_core::Mode;
use dedukt_dna::DatasetId;

fn main() {
    let args = ExperimentArgs::parse();
    let nodes = args.nodes.unwrap_or(64);
    print_header(
        "Table III — per-rank k-mer load imbalance (kmer vs supermer routing)",
        &format!(
            "{nodes} nodes, {} GPU ranks; load = k-mer instances counted per rank",
            nodes * 6
        ),
    );

    let mut t = Table::new([
        "dataset",
        "avg kmers/rank",
        "kmer min",
        "kmer max",
        "kmer imbal",
        "smer min",
        "smer max",
        "smer imbal",
        "balanced imbal",
        "paper imbal",
    ]);
    for id in [DatasetId::CElegans40x, DatasetId::HSapiens54x] {
        let reads = generate(id, &args);
        let kmer = run_mode(&reads, Mode::GpuKmer, nodes, &args);
        let smer = run_mode_with_m(&reads, Mode::GpuSupermer, nodes, 7, &args);
        // The §VII future-work extension: frequency-aware assignment.
        let balanced = {
            let mut rc = dedukt_core::RunConfig::new(Mode::GpuSupermer, nodes);
            rc.counting.m = 7;
            rc.balanced_minimizers = true;
            dedukt_core::pipeline::run(&reads, &rc).expect("valid config")
        };
        let ks = kmer.load.stats();
        let ss = smer.load.stats();
        let bs = balanced.load.stats();
        let paper = table3_row(id)
            .map(|r| format!("{:.2}", r.5))
            .unwrap_or_default();
        t.row([
            id.short_name().to_string(),
            fmt_count(ks.mean as u64),
            fmt_count(ks.min),
            fmt_count(ks.max),
            format!("{:.2}", ks.imbalance()),
            fmt_count(ss.min),
            fmt_count(ss.max),
            format!("{:.2}", ss.imbalance()),
            format!("{:.2}", bs.imbalance()),
            paper,
        ]);
    }
    t.print();
    println!();
    println!(
        "paper (384 GPUs): C. elegans kmer 1.16; H. sapiens supermer 2.37.\n\
         shape checks: supermer imbalance > kmer imbalance; H. sapiens (repeat-rich) worst;\n\
         the balanced-assignment extension (§VII future work) pulls it back down."
    );
}
