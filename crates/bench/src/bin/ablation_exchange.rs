//! Ablation: exchange routing — direct vs node-aggregated Alltoallv.
//!
//! Direct `MPI_Alltoallv` posts `P − 1` messages per rank: at the CPU
//! baseline's 2,688 ranks the per-message software costs bite. The
//! node-aggregated variant (the direction of Pan et al., SC'18 — the
//! paper's §VI) combines per-node payloads first, cutting the message
//! count by `ranks/node ×` at the cost of crossing the intra-node fabric
//! twice.
//!
//! Usage: `cargo run --release -p dedukt-bench --bin ablation_exchange
//!         [--scale ...] [--nodes N]`

use dedukt_bench::{generate, print_header, ExperimentArgs, Table};
use dedukt_core::{pipeline, Mode, RunConfig};
use dedukt_dna::DatasetId;
use dedukt_net::cost::ExchangeAlgo;

fn main() {
    let args = ExperimentArgs::parse();
    let nodes = args.nodes.unwrap_or(64);
    let reads = generate(DatasetId::CElegans40x, &args);
    print_header(
        "Ablation — direct vs node-aggregated Alltoallv",
        &format!("C. elegans 40X, {nodes} nodes"),
    );

    let mut t = Table::new([
        "counter",
        "routing",
        "messages/rank",
        "alltoallv time",
        "total",
    ]);
    for mode in [Mode::CpuBaseline, Mode::GpuKmer] {
        for algo in [ExchangeAlgo::Direct, ExchangeAlgo::NodeAggregated] {
            let mut rc = RunConfig::new(mode, nodes);
            rc.exchange_algo = algo;
            let r = pipeline::run(&reads, &rc).expect("valid config");
            let msgs = match algo {
                ExchangeAlgo::Direct => r.nranks - 1,
                ExchangeAlgo::NodeAggregated => nodes - 1,
            };
            t.row([
                format!("{mode:?} ({} ranks)", r.nranks),
                format!("{algo:?}"),
                format!("{msgs}"),
                format!("{}", r.exchange.alltoallv_time),
                format!("{}", r.total_time()),
            ]);
        }
    }
    t.print();
    println!();
    println!(
        "expected shape: aggregation wins where message count dominates (many ranks,\n\
         modest payloads — the 2,688-rank CPU baseline) and loses where the double\n\
         intra-node hop outweighs it (large payloads, few ranks)."
    );
}
